//! Cross-engine fuzz matrix: random protocol behaviors (random message
//! sizes, destinations, round counts, self-sends, messages spanning
//! multiple delivery rounds) must produce bit-for-bit identical
//! transcripts on the sequential, parallel, and distributed engines,
//! conserve traffic exactly, and fail identically when the round-limit
//! safety valve fires.
//!
//! This subsumes the old `sparse_equivalence` suite in km-core: the
//! invariants are the same, but the matrix now includes the distributed
//! engine, where every message is serialized to a byte frame and
//! crosses a real channel between OS threads.

use km_core::engine::{DistributedEngine, ParallelEngine, SequentialEngine};
use km_core::{Envelope, NetConfig, Outbox, Protocol, Raw, RoundCtx, Status};
use proptest::prelude::*;
use rand::Rng;

/// Sends `fanout` random-size byte blobs to uniformly random machines
/// (self included — self-sends are free and bypass links) for `rounds`
/// rounds, and logs every reception. The private per-machine RNG drives
/// all choices, so every engine must see identical traffic.
#[derive(Debug)]
struct RandomTraffic {
    rounds: u64,
    fanout: usize,
    max_len: usize,
    log: Vec<(usize, usize)>,
    received_msgs: u64,
}

fn traffic(k: usize, rounds: u64, fanout: usize, max_len: usize) -> Vec<RandomTraffic> {
    (0..k)
        .map(|_| RandomTraffic {
            rounds,
            fanout,
            max_len,
            log: Vec::new(),
            received_msgs: 0,
        })
        .collect()
}

impl Protocol for RandomTraffic {
    type Msg = Raw;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<Raw>>,
        out: &mut Outbox<Raw>,
    ) -> Status {
        for env in inbox.iter() {
            self.log.push((env.src, env.msg.0.len()));
            if env.src != ctx.me {
                self.received_msgs += 1;
            }
        }
        if ctx.round < self.rounds {
            for _ in 0..self.fanout {
                let dst = ctx.rng.gen_range(0..ctx.k);
                let len = ctx.rng.gen_range(0..=self.max_len);
                out.send(dst, Raw::from_vec(vec![dst as u8; len]));
            }
            Status::Active
        } else {
            Status::Done
        }
    }
}

proptest! {
    /// Sent == received conservation under the sparse path, for traffic
    /// that exercises empty links, drained links, self-sends, and
    /// messages larger than one round's budget — on both the in-process
    /// reference engine and the message-passing one.
    #[test]
    fn random_protocols_conserve_traffic(
        k in 2usize..9,
        rounds in 1u64..6,
        fanout in 0usize..5,
        max_len in 0usize..40,
        bandwidth in 1u64..200,
        seed in 0u64..1_000_000,
    ) {
        let cfg = NetConfig::with_bandwidth(k, bandwidth, seed).max_rounds(1_000_000);
        for dist in [false, true] {
            let machines = traffic(k, rounds, fanout, max_len);
            let report = if dist {
                DistributedEngine::run(cfg, machines).unwrap()
            } else {
                SequentialEngine::run(cfg, machines).unwrap()
            };
            let m = &report.metrics;
            prop_assert_eq!(
                m.sent_msgs.iter().sum::<u64>(),
                m.recv_msgs.iter().sum::<u64>(),
                "message conservation after drain"
            );
            prop_assert_eq!(
                m.sent_bits.iter().sum::<u64>(),
                m.recv_bits.iter().sum::<u64>(),
                "bit conservation after drain"
            );
            // The protocols' own receive logs agree with the metrics
            // (self-sends appear in logs but not in link metrics).
            let logged: u64 = report.machines.iter().map(|p| p.received_msgs).sum();
            prop_assert_eq!(logged, m.recv_msgs.iter().sum::<u64>());
            // Sparse invariant: the delivery loop never visits more links
            // than messages it moves (a visit only happens for queued
            // traffic; partial deliveries re-visit, bounded by bits/B).
            let delivered: u64 = m.recv_msgs.iter().sum();
            let worst_partial = m.total_bits() / bandwidth + delivered;
            prop_assert!(
                m.link_visits <= worst_partial + delivered,
                "link_visits {} exceeds active-traffic bound {}",
                m.link_visits,
                worst_partial + delivered
            );
        }
    }

    /// Sequential, parallel, and distributed engines are
    /// transcript-identical on the same random workloads: same metrics,
    /// same per-machine logs — even though the distributed engine pushed
    /// every message through a serialized byte frame.
    #[test]
    fn engines_are_transcript_identical(
        k in 2usize..9,
        rounds in 1u64..5,
        fanout in 0usize..4,
        max_len in 0usize..32,
        bandwidth in 1u64..150,
        seed in 0u64..1_000_000,
        threads in 2usize..5,
    ) {
        let cfg = NetConfig::with_bandwidth(k, bandwidth, seed).max_rounds(1_000_000);
        let seq = SequentialEngine::run(cfg, traffic(k, rounds, fanout, max_len)).unwrap();
        let par = ParallelEngine::with_threads(threads)
            .run(cfg, traffic(k, rounds, fanout, max_len))
            .unwrap();
        let dist = DistributedEngine::run(cfg, traffic(k, rounds, fanout, max_len)).unwrap();
        prop_assert_eq!(&seq.metrics, &par.metrics, "parallel metrics diverged");
        prop_assert_eq!(&seq.metrics, &dist.metrics, "distributed metrics diverged");
        for (i, (s, p)) in seq.machines.iter().zip(&par.machines).enumerate() {
            prop_assert_eq!(&s.log, &p.log, "machine {} parallel transcript diverged", i);
        }
        for (i, (s, d)) in seq.machines.iter().zip(&dist.machines).enumerate() {
            prop_assert_eq!(&s.log, &d.log, "machine {} distributed transcript diverged", i);
        }
        // The wire report must account for exactly the logical traffic:
        // payload bits before padding equal the WireSize transcript, and
        // a frame is never smaller than the bits it carries.
        let wire = dist.wire.as_ref().expect("distributed runs report wire");
        prop_assert_eq!(wire.logical_bits, seq.metrics.total_bits());
        prop_assert!(wire.measured_bits() >= wire.logical_bits);
        let link_msgs: u64 = seq.metrics.sent_msgs.iter().sum();
        prop_assert_eq!(
            wire.messages,
            link_msgs,
            "every link message framed exactly once"
        );
        prop_assert!(
            wire.frames <= link_msgs,
            "one batch frame per active link-round, never more frames than messages"
        );
        prop_assert!((wire.frames == 0) == (link_msgs == 0));
    }

    /// The round-limit safety valve fires identically on every engine:
    /// same error variant, same limit, same count of still-active
    /// machines, same queued traffic.
    #[test]
    fn round_limit_errors_are_bit_identical(
        k in 2usize..7,
        fanout in 1usize..4,
        max_len in 0usize..24,
        bandwidth in 1u64..100,
        seed in 0u64..1_000_000,
        limit in 1u64..4,
    ) {
        let cfg = NetConfig::with_bandwidth(k, bandwidth, seed).max_rounds(limit);
        // rounds >> limit so the protocol can never quiesce in time.
        let rounds = limit + 10;
        let seq = SequentialEngine::run(cfg, traffic(k, rounds, fanout, max_len)).unwrap_err();
        let par = ParallelEngine::with_threads(3)
            .run(cfg, traffic(k, rounds, fanout, max_len))
            .unwrap_err();
        let dist = DistributedEngine::run(cfg, traffic(k, rounds, fanout, max_len)).unwrap_err();
        prop_assert_eq!(&seq, &par, "parallel error diverged");
        prop_assert_eq!(&seq, &dist, "distributed error diverged");
    }
}
