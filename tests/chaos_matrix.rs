//! Chaos matrix: the distributed engine under an adversarial wire.
//!
//! For every algorithm family in the workspace, and for arbitrary
//! frame drop/duplicate/corrupt/delay probabilities, a distributed run
//! on the faulty wire must produce a `RunOutcome` **bit-identical** to
//! the fault-free sequential reference — the checksum + sequence
//! number + NACK recovery layer (see `km_core::faults` and the
//! distributed engine's failure model) makes the adversary invisible
//! to the logical transcript, visible only in the `WireReport`'s
//! recovery counters.
//!
//! And when the adversary crashes a machine outright, every family
//! must fail with the *typed* `EngineError::MachineLost` naming the
//! crashed machine and round — no hang, no panic, no partial output.
//!
//! Fault rates are sampled in `0.0..0.35`: high enough to mangle a
//! large fraction of frames, low enough that recovery converges (at
//! rate 1.0 the NACKs and retransmits die too, which is
//! indistinguishable from a cut link and correctly times out).

use km_core::{
    run_algorithm, CrashSpec, EngineError, EngineKind, FaultPlan, KmAlgorithm, NetConfig, Protocol,
    RunOutcome, Runner, WireCodec,
};
use km_graph::generators::gnp;
use km_graph::{Partition, Vertex, WeightedGraph};
use km_mst::{DistributedMst, DistributedSketchConnectivity};
use km_pagerank::congest_baseline::CongestBaseline;
use km_pagerank::kmachine::{bidirect, DistributedPageRank};
use km_pagerank::PrConfig;
use km_sort::DistributedSort;
use km_triangle::baseline::BroadcastTriangles;
use km_triangle::kmachine::{DistributedTriangles, TriConfig};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(10_000_000)
}

/// Runs `alg` once on the sequential engine (fault-free ground truth)
/// and once on the distributed engine under `plan`, asserting the
/// outcomes are bit-identical and that any recovery traffic stayed out
/// of the logical accounting.
fn assert_chaos_identical<A>(alg: &A, netc: NetConfig, plan: FaultPlan)
where
    A: KmAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
    <A::Machine as Protocol>::Msg: WireCodec,
{
    let seq = run_algorithm(alg, Runner::new(netc).engine(EngineKind::Sequential))
        .expect("sequential reference");
    let dist = run_algorithm(
        alg,
        Runner::new(netc)
            .engine(EngineKind::Distributed)
            .faults(plan),
    )
    .expect("faulted distributed run must still converge");
    assert_eq!(
        seq, dist,
        "outcome diverged under faults {plan:?} (RunOutcome equality covers output, metrics, config)"
    );
    let wire = dist.wire.expect("distributed runs report wire traffic");
    assert_eq!(
        wire.messages,
        dist.metrics.total_msgs(),
        "every logical message framed exactly once, whatever the adversary did"
    );
    assert!(
        wire.frames <= wire.messages,
        "one batch frame per active link-round, never more frames than messages"
    );
    assert_eq!(wire.logical_bits, dist.metrics.total_bits());
    if plan == FaultPlan::default() {
        assert_eq!(wire.recovery_bytes(), 0, "no faults, no recovery traffic");
    }
}

/// Runs `alg` on the distributed engine with machine `crash.machine`
/// crashing at round `crash.round`, asserting the exact typed failure
/// arrives (within the plan's short barrier timeout — no hang).
fn assert_crash_is_typed<A>(alg: &A, netc: NetConfig, crash: CrashSpec)
where
    A: KmAlgorithm,
    A::Output: std::fmt::Debug,
    <A::Machine as Protocol>::Msg: WireCodec,
{
    let plan = FaultPlan {
        crash: Some(crash),
        barrier_timeout_ms: 500,
        ..FaultPlan::default()
    };
    let err = run_algorithm(
        alg,
        Runner::new(netc)
            .engine(EngineKind::Distributed)
            .faults(plan),
    )
    .expect_err("a crashed machine must fail the run");
    assert_eq!(
        err,
        EngineError::MachineLost {
            machine: crash.machine,
            round: crash.round,
        }
    );
}

fn chaos_plan(seed: u64, drop: f64, duplicate: f64, corrupt: f64, delay: f64) -> FaultPlan {
    FaultPlan {
        seed,
        drop,
        duplicate,
        corrupt,
        delay,
        ..FaultPlan::default()
    }
}

// ---- sample-sort ----------------------------------------------------

fn sort_alg(n: usize, k: usize) -> DistributedSort {
    let mut rng = ChaCha8Rng::seed_from_u64(402);
    DistributedSort {
        inputs: km_sort::SampleSort::random_input(n, k, &mut rng),
        samples_per_machine: 20,
    }
}

proptest! {
    #[test]
    fn sort_survives_chaos(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        corrupt in 0.0f64..0.35,
        delay in 0.0f64..0.35,
    ) {
        let alg = sort_alg(200, 5);
        assert_chaos_identical(&alg, net(5, 200, 20), chaos_plan(seed, drop, dup, corrupt, delay));
    }
}

#[test]
fn sort_crash_is_typed() {
    let alg = sort_alg(200, 5);
    assert_crash_is_typed(
        &alg,
        net(5, 200, 20),
        CrashSpec {
            machine: 1,
            round: 1,
        },
    );
}

// ---- MST ------------------------------------------------------------

struct MstInstance {
    wg: WeightedGraph,
    part: Arc<Partition>,
}

fn mst_instance() -> MstInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(403);
    let g = gnp(40, 0.2, &mut rng);
    let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    MstInstance {
        wg: WeightedGraph::from_weighted_edges(40, &edges, &ws).unwrap(),
        part: Arc::new(Partition::by_hash(40, 5, 3)),
    }
}

proptest! {
    #[test]
    fn mst_survives_chaos(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        corrupt in 0.0f64..0.35,
        delay in 0.0f64..0.35,
    ) {
        let inst = mst_instance();
        let alg = DistributedMst { g: &inst.wg, part: &inst.part };
        assert_chaos_identical(&alg, net(5, 40, 21), chaos_plan(seed, drop, dup, corrupt, delay));
    }
}

#[test]
fn mst_crash_is_typed() {
    let inst = mst_instance();
    let alg = DistributedMst {
        g: &inst.wg,
        part: &inst.part,
    };
    assert_crash_is_typed(
        &alg,
        net(5, 40, 21),
        CrashSpec {
            machine: 2,
            round: 1,
        },
    );
}

// ---- sketch connectivity --------------------------------------------

struct CcInstance {
    g: km_graph::CsrGraph,
    part: Arc<Partition>,
}

fn cc_instance() -> CcInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(406);
    CcInstance {
        g: gnp(60, 0.03, &mut rng),
        part: Arc::new(Partition::by_hash(60, 5, 2)),
    }
}

proptest! {
    #[test]
    fn sketch_connectivity_survives_chaos(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        corrupt in 0.0f64..0.35,
        delay in 0.0f64..0.35,
    ) {
        let inst = cc_instance();
        let alg = DistributedSketchConnectivity { g: &inst.g, part: &inst.part };
        assert_chaos_identical(&alg, net(5, 60, 24), chaos_plan(seed, drop, dup, corrupt, delay));
    }
}

#[test]
fn sketch_connectivity_crash_is_typed() {
    let inst = cc_instance();
    let alg = DistributedSketchConnectivity {
        g: &inst.g,
        part: &inst.part,
    };
    assert_crash_is_typed(
        &alg,
        net(5, 60, 24),
        CrashSpec {
            machine: 4,
            round: 2,
        },
    );
}

// ---- PageRank (k-machine) -------------------------------------------

struct PrInstance {
    g: km_graph::DiGraph,
    part: Arc<Partition>,
    cfg: PrConfig,
}

fn pr_instance(k: usize) -> PrInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(400);
    let g = bidirect(&gnp(50, 0.1, &mut rng));
    let part = Arc::new(Partition::by_hash(g.n(), k, 1));
    PrInstance {
        g,
        part,
        cfg: PrConfig {
            reset_prob: 0.4,
            tokens_per_vertex: 15,
        },
    }
}

proptest! {
    #[test]
    fn pagerank_survives_chaos(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        corrupt in 0.0f64..0.35,
        delay in 0.0f64..0.35,
    ) {
        let inst = pr_instance(5);
        let alg = DistributedPageRank::new(&inst.g, &inst.part, inst.cfg);
        let n = inst.g.n();
        assert_chaos_identical(&alg, net(5, n, 18), chaos_plan(seed, drop, dup, corrupt, delay));
    }
}

#[test]
fn pagerank_crash_is_typed() {
    let inst = pr_instance(5);
    let alg = DistributedPageRank::new(&inst.g, &inst.part, inst.cfg);
    let n = inst.g.n();
    assert_crash_is_typed(
        &alg,
        net(5, n, 18),
        CrashSpec {
            machine: 0,
            round: 1,
        },
    );
}

// ---- CONGEST baseline -----------------------------------------------

proptest! {
    #[test]
    fn congest_baseline_survives_chaos(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        corrupt in 0.0f64..0.35,
        delay in 0.0f64..0.35,
    ) {
        let inst = pr_instance(4);
        let alg = CongestBaseline { g: &inst.g, part: &inst.part, cfg: inst.cfg };
        let n = inst.g.n();
        assert_chaos_identical(&alg, net(4, n, 22), chaos_plan(seed, drop, dup, corrupt, delay));
    }
}

#[test]
fn congest_baseline_crash_is_typed() {
    let inst = pr_instance(4);
    let alg = CongestBaseline {
        g: &inst.g,
        part: &inst.part,
        cfg: inst.cfg,
    };
    let n = inst.g.n();
    assert_crash_is_typed(
        &alg,
        net(4, n, 22),
        CrashSpec {
            machine: 3,
            round: 1,
        },
    );
}

// ---- triangles ------------------------------------------------------

struct TriInstance {
    g: km_graph::CsrGraph,
    part: Arc<Partition>,
}

fn tri_instance(k: usize) -> TriInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(401);
    TriInstance {
        g: gnp(40, 0.3, &mut rng),
        part: Arc::new(Partition::by_hash(40, k, 2)),
    }
}

proptest! {
    #[test]
    fn triangles_survive_chaos(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        corrupt in 0.0f64..0.35,
        delay in 0.0f64..0.35,
    ) {
        let inst = tri_instance(6);
        let alg = DistributedTriangles { g: &inst.g, part: &inst.part, cfg: TriConfig::default() };
        assert_chaos_identical(&alg, net(6, 40, 19), chaos_plan(seed, drop, dup, corrupt, delay));
    }
}

#[test]
fn triangles_crash_is_typed() {
    let inst = tri_instance(6);
    let alg = DistributedTriangles {
        g: &inst.g,
        part: &inst.part,
        cfg: TriConfig::default(),
    };
    assert_crash_is_typed(
        &alg,
        net(6, 40, 19),
        CrashSpec {
            machine: 5,
            round: 1,
        },
    );
}

// ---- broadcast triangle baseline ------------------------------------

proptest! {
    #[test]
    fn broadcast_baseline_survives_chaos(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        corrupt in 0.0f64..0.35,
        delay in 0.0f64..0.35,
    ) {
        let inst = tri_instance(5);
        let alg = BroadcastTriangles { g: &inst.g, part: &inst.part };
        assert_chaos_identical(&alg, net(5, 40, 23), chaos_plan(seed, drop, dup, corrupt, delay));
    }
}

#[test]
fn broadcast_baseline_crash_is_typed() {
    let inst = tri_instance(5);
    let alg = BroadcastTriangles {
        g: &inst.g,
        part: &inst.part,
    };
    assert_crash_is_typed(
        &alg,
        net(5, 40, 23),
        CrashSpec {
            machine: 2,
            round: 2,
        },
    );
}

// ---- cross-cutting sanity -------------------------------------------

/// The maximal non-crash adversary the recovery layer is specified
/// for: every fault class at once, at aggressive (but sub-saturating)
/// rates, on the chattiest family. One deterministic worst case that
/// always runs, however few `PROPTEST_CASES` the environment asks for.
#[test]
fn kitchen_sink_adversary_is_invisible() {
    let alg = sort_alg(240, 6);
    let plan = chaos_plan(1234, 0.3, 0.3, 0.3, 0.3);
    assert_chaos_identical(&alg, net(6, 240, 25), plan);

    // And the same plan's recovery traffic is visible where it should
    // be: the wire report, not the metrics (checked inside the helper).
    let outcome: RunOutcome<_> = run_algorithm(
        &alg,
        Runner::new(net(6, 240, 25))
            .engine(EngineKind::Distributed)
            .faults(plan),
    )
    .unwrap();
    let wire = outcome.wire.unwrap();
    assert!(
        wire.retransmit_frames > 0 && wire.nack_frames > 0,
        "an adversary this aggressive must have forced actual recovery \
         (got {} retransmits, {} nacks)",
        wire.retransmit_frames,
        wire.nack_frames
    );
}
