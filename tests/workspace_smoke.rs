//! Workspace-level smoke tests.
//!
//! Two jobs: (1) keep the Cargo workspace membership in sync with the
//! crates this repo documents and re-exports, and (2) run each
//! example's main path on a tiny input (`n ≤ 64`, `k ≤ 4` for k-machine
//! runs) so `cargo test` catches a broken example path without the cost
//! of the full demo sizes.

use km_repro::core::clique::clique_config;
use km_repro::core::{run_algorithm, NetConfig, Runner};
use km_repro::graph::generators::classic::star;
use km_repro::graph::generators::lower_bound_h::LowerBoundGraph;
use km_repro::graph::generators::{chung_lu, gnp, power_law_weights};
use km_repro::graph::Partition;
use km_repro::lower::infocost::InfoCostReport;
use km_repro::lower::pagerank_lb::PagerankLb;
use km_repro::pagerank::congest_baseline::run_congest_pagerank;
use km_repro::pagerank::kmachine::{bidirect, run_kmachine_pagerank};
use km_repro::pagerank::{power_iteration, PrConfig};
use km_repro::triangle::clique::run_clique_triangles;
use km_repro::triangle::kmachine::{run_kmachine_triangles, DistributedTriangles, TriConfig};
use km_repro::triangle::seq::{count_triangles, enumerate_triangles};
use km_repro::triangle::verify::assert_exact_enumeration;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::Command;
use std::sync::Arc;

/// The eight workspace crates the README documents, plus the umbrella.
const EXPECTED_MEMBERS: [&str; 9] = [
    "km-bench",
    "km-core",
    "km-graph",
    "km-lower",
    "km-mst",
    "km-pagerank",
    "km-repro",
    "km-sort",
    "km-triangle",
];

/// `cargo metadata` must report every documented workspace member —
/// someone adding or renaming a crate has to update the README/docs
/// story (and this list) in the same PR.
#[test]
fn workspace_membership_stays_in_sync() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let out = Command::new(cargo)
        .args([
            "metadata",
            "--no-deps",
            "--format-version",
            "1",
            "--manifest-path",
            manifest,
        ])
        .output()
        .expect("cargo metadata runs");
    assert!(
        out.status.success(),
        "cargo metadata failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metadata = String::from_utf8(out.stdout).expect("utf8 metadata");
    for name in EXPECTED_MEMBERS {
        assert!(
            metadata.contains(&format!("\"name\":\"{name}\"")),
            "workspace member `{name}` missing from cargo metadata \
             (crate renamed/removed without updating the workspace story?)"
        );
    }
}

/// `examples/quickstart.rs` path: G(n, p) → RVP partition → Algorithm 1
/// PageRank + Theorem 5 triangles, verified against sequential oracles.
#[test]
fn quickstart_path_tiny() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let (n, k) = (48, 4);
    let g = gnp(n, 0.15, &mut rng);
    let part = Arc::new(Partition::by_hash(n, k, 42));
    assert_eq!(part.loads().iter().sum::<usize>(), n);

    let net = NetConfig::polylog(k, n, 1).max_rounds(50_000_000);
    let dg = bidirect(&g);
    let cfg = PrConfig::paper(n, 0.15, 8.0);
    let (pr, metrics) = run_kmachine_pagerank(&dg, &part, cfg, net).expect("pagerank run");
    assert!(metrics.rounds > 0);
    let exact = power_iteration(&dg, 0.15, 1e-12, 10_000);
    assert_eq!(pr.len(), exact.len());
    // Coarse sanity only — the δ-approximation claim has its own tests.
    let mass: f64 = pr.iter().sum();
    assert!(
        mass > 0.5 && mass < 1.5,
        "estimated PageRank mass {mass} far from 1"
    );

    let (triangles, _) =
        run_kmachine_triangles(&g, &part, TriConfig::default(), net).expect("triangle run");
    assert_eq!(
        triangles,
        enumerate_triangles(&g),
        "distributed == sequential"
    );
}

/// `examples/pagerank_scaling.rs` path: star graph, Algorithm 1 vs the
/// conversion-theorem baseline.
#[test]
fn pagerank_scaling_path_tiny() {
    let (n, k) = (64, 4);
    let g = bidirect(&star(n));
    let cfg = PrConfig::paper(n, 0.4, 2.0);
    let net = NetConfig::polylog(k, n, 3).max_rounds(50_000_000);
    let part = Arc::new(Partition::by_hash(n, k, 5));
    let (_, ma) = run_kmachine_pagerank(&g, &part, cfg, net).expect("alg1");
    let (_, mb) = run_congest_pagerank(&g, &part, cfg, net).expect("baseline");
    assert!(ma.rounds > 0 && mb.rounds > 0);
}

/// `examples/congested_clique.rs` path: Corollary 1's `k = n` special
/// case (k equals n by definition here, so only n is kept tiny).
#[test]
fn congested_clique_path_tiny() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let n = 27;
    let g = gnp(n, 0.5, &mut rng);
    let (ts, metrics) = run_clique_triangles(&g, 7).expect("clique run");
    assert_eq!(ts.len(), count_triangles(&g));
    assert!(metrics.rounds > 0);
    let cfg = clique_config(n, 0);
    assert_eq!(cfg.k, n);
}

/// `examples/lower_bound_demo.rs` path: Figure-1 graph, Lemma 4 value
/// separation, and the Theorem 1 information chain on a measured run.
#[test]
fn lower_bound_demo_path_tiny() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let (n, k, eps) = (61, 4, 0.3);
    let h = LowerBoundGraph::random(n, &mut rng);
    let lo = h.pagerank_v_for_bit(eps, false);
    let hi = h.pagerank_v_for_bit(eps, true);
    assert!(hi > lo, "Lemma 4 separation must be positive");

    let part = Arc::new(Partition::random_vertex(h.n(), k, &mut rng));
    let net = NetConfig::polylog(k, h.n(), 2).max_rounds(50_000_000);
    let cfg = PrConfig {
        reset_prob: eps,
        tokens_per_vertex: 4_000,
    };
    let (pr, metrics) = run_kmachine_pagerank(&h.graph, &part, cfg, net).expect("run");
    let mid = (lo + hi) / 2.0;
    let decoded = (0..h.quarter)
        .filter(|&i| (pr[h.v_vertex(i) as usize] > mid) == h.bits[i])
        .count();
    assert!(
        decoded * 2 > h.quarter,
        "decoding the secret bits should beat chance ({decoded}/{})",
        h.quarter
    );

    let bound = PagerankLb::new(h.n(), k).glbt(net.bandwidth_bits);
    let report = InfoCostReport::from_run(&metrics, &bound);
    assert!(
        report.chain_holds(),
        "Theorem 1 chain must hold on a real run: {report:?}"
    );
}

/// `examples/social_triangles.rs` path: Chung–Lu power-law graph,
/// triangle + open-triad enumeration via the explicit machine build.
#[test]
fn social_triangles_path_tiny() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let (n, k) = (60, 4);
    let weights = power_law_weights(n, 2.2, 8.0);
    let g = chung_lu(&weights, &mut rng);
    let part = Arc::new(Partition::random_vertex(n, k, &mut rng));
    let net = NetConfig::polylog(k, n, 9).max_rounds(50_000_000);
    let cfg = TriConfig {
        degree_threshold: None,
        enumerate_triads: true,
        use_proxies: true,
    };
    let alg = DistributedTriangles {
        g: &g,
        part: &part,
        cfg,
    };
    let outcome = run_algorithm(&alg, Runner::new(net)).expect("run");
    assert_exact_enumeration(&g, &outcome.output.triangles);

    // Triads exist whenever some vertex has degree ≥ 2; with the seeds
    // above this graph comfortably has them.
    assert!(
        !outcome.output.open_triads.is_empty(),
        "expected open triads on a power-law graph"
    );
}

/// `examples/distributed_engine.rs` path: Borůvka MST on the sequential
/// vs the distributed engine, bit-identical outcomes plus a wire report
/// whose payload bits equal the logical transcript.
#[test]
fn distributed_engine_path_tiny() {
    use km_repro::core::EngineKind;
    use km_repro::graph::WeightedGraph;
    use km_repro::mst::DistributedMst;
    use rand::Rng;

    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let (n, k) = (48, 4);
    let g = gnp(n, 0.12, &mut rng);
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let wg = WeightedGraph::from_weighted_edges(n, &edges, &ws).expect("finite weights");
    let part = Arc::new(Partition::by_hash(n, k, 3));
    let net = NetConfig::polylog(k, n, 11).max_rounds(50_000_000);
    let alg = DistributedMst {
        g: &wg,
        part: &part,
    };

    let seq = run_algorithm(&alg, Runner::new(net).engine(EngineKind::Sequential)).expect("seq");
    let dist = run_algorithm(&alg, Runner::new(net).engine(EngineKind::Distributed)).expect("dist");
    assert_eq!(seq, dist, "engines must be bit-identical");
    let wire = dist.wire.expect("distributed runs report wire traffic");
    assert_eq!(wire.logical_bits, dist.metrics.total_bits());
    assert!(wire.measured_bits() >= wire.logical_bits);
}

/// `examples/streaming_ingest.rs` path: chunked streaming build (with
/// and without disk spill) bit-identical to the in-memory builder, then
/// sketch connectivity on the prebuilt input.
#[test]
fn streaming_ingest_path_tiny() {
    use km_repro::graph::{
        DistGraphBuilder, EdgeStream, GnpStream, SpillConfig, StreamingDistBuilder,
    };
    use km_repro::mst::run_sketch_connectivity_dist;

    let (n, k, seed) = (56usize, 4usize, 12u64);
    let p = 0.08;
    let part = Arc::new(Partition::by_hash(n, k, 7));

    let mut stream = GnpStream::<ChaCha8Rng>::new(n, p, seed, 16);
    let streamed = StreamingDistBuilder::new(&part)
        .undirected(&mut stream)
        .expect("in-range edges");
    stream.reset();
    let spilled = StreamingDistBuilder::new(&part)
        .spill(SpillConfig::default())
        .undirected(&mut stream)
        .expect("spill build");
    let g = gnp(n, p, &mut ChaCha8Rng::seed_from_u64(seed));
    let in_memory = DistGraphBuilder::new(&part).undirected(&g);
    assert_eq!(streamed, spilled, "spill path must be bit-identical");
    assert_eq!(streamed, in_memory, "streaming == in-memory");

    let net = NetConfig::polylog(k, n, 5).max_rounds(50_000_000);
    let (cc, metrics) = run_sketch_connectivity_dist(&streamed, net).expect("sketch run");
    assert_eq!(cc.components, n - cc.forest.len());
    assert!(metrics.rounds > 0);
}

/// `examples/sketch_connectivity.rs` path: the O~(n/k²) sketch protocol
/// and the Borůvka baseline on the same topology, with matching forest
/// sizes and the no-broadcast recv-bits gap.
#[test]
fn sketch_connectivity_path_tiny() {
    use km_repro::graph::WeightedGraph;
    use km_repro::mst::{run_boruvka, run_sketch_connectivity};
    use rand::Rng;

    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let (n, k) = (64, 4);
    let g = gnp(n, 0.06, &mut rng);
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let wg = WeightedGraph::from_weighted_edges(n, &edges, &ws).expect("finite weights");

    let part = Arc::new(Partition::by_hash(n, k, 7));
    let net = NetConfig::polylog(k, n, 5).max_rounds(50_000_000);
    let (cc, sm) = run_sketch_connectivity(&g, &part, net).expect("sketch run");
    let (forest, _, bm) = run_boruvka(&wg, &part, net).expect("boruvka run");
    assert_eq!(cc.forest.len(), forest.len(), "same spanning forest size");
    assert_eq!(cc.components, n - forest.len());
    assert!(sm.rounds > 0 && bm.rounds > 0);
}
