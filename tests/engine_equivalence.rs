//! Integration: the parallel engine is transcript-equivalent to the
//! sequential engine across every protocol in the workspace.

use km_core::{NetConfig, ParallelEngine, SequentialEngine};
use km_graph::generators::gnp;
use km_graph::{Partition, Vertex, WeightedGraph};
use km_mst::BoruvkaMst;
use km_pagerank::kmachine::{bidirect, KmPageRank};
use km_pagerank::PrConfig;
use km_sort::SampleSort;
use km_triangle::kmachine::{KmTriangle, TriConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(10_000_000)
}

#[test]
fn pagerank_parallel_equals_sequential() {
    let mut rng = ChaCha8Rng::seed_from_u64(300);
    let g = bidirect(&gnp(70, 0.1, &mut rng));
    let part = Arc::new(Partition::by_hash(g.n(), 7, 1));
    let cfg = PrConfig {
        reset_prob: 0.4,
        tokens_per_vertex: 25,
    };
    let netc = net(7, g.n(), 8);
    let seq = SequentialEngine::run(netc, KmPageRank::build_all(&g, &part, cfg)).unwrap();
    let par = ParallelEngine::with_threads(3)
        .run(netc, KmPageRank::build_all(&g, &part, cfg))
        .unwrap();
    assert_eq!(seq.metrics, par.metrics);
    for (a, b) in seq.machines.iter().zip(&par.machines) {
        assert_eq!(a.output(), b.output());
    }
}

#[test]
fn triangle_parallel_equals_sequential() {
    let mut rng = ChaCha8Rng::seed_from_u64(301);
    let g = gnp(60, 0.4, &mut rng);
    let part = Arc::new(Partition::by_hash(60, 9, 2));
    let netc = net(9, 60, 9);
    let seq = SequentialEngine::run(netc, KmTriangle::build_all(&g, &part, TriConfig::default()))
        .unwrap();
    let par = ParallelEngine::with_threads(4)
        .run(netc, KmTriangle::build_all(&g, &part, TriConfig::default()))
        .unwrap();
    assert_eq!(seq.metrics, par.metrics);
    for (a, b) in seq.machines.iter().zip(&par.machines) {
        assert_eq!(a.triangles, b.triangles);
    }
}

#[test]
fn sort_parallel_equals_sequential() {
    let mut rng = ChaCha8Rng::seed_from_u64(302);
    let inputs = SampleSort::random_input(400, 6, &mut rng);
    let netc = net(6, 400, 10);
    let seq = SequentialEngine::run(netc, SampleSort::build_all(inputs.clone(), 30)).unwrap();
    let par = ParallelEngine::with_threads(3)
        .run(netc, SampleSort::build_all(inputs, 30))
        .unwrap();
    assert_eq!(seq.metrics, par.metrics);
    for (a, b) in seq.machines.iter().zip(&par.machines) {
        assert_eq!(a.output, b.output);
    }
}

#[test]
fn mst_parallel_equals_sequential() {
    let mut rng = ChaCha8Rng::seed_from_u64(303);
    let g = gnp(50, 0.2, &mut rng);
    let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let wg = WeightedGraph::from_weighted_edges(50, &edges, &ws);
    let part = Arc::new(Partition::by_hash(50, 5, 3));
    let netc = net(5, 50, 11);
    let seq = SequentialEngine::run(netc, BoruvkaMst::build_all(&wg, &part)).unwrap();
    let par = ParallelEngine::with_threads(2)
        .run(netc, BoruvkaMst::build_all(&wg, &part))
        .unwrap();
    assert_eq!(seq.metrics, par.metrics);
    for (a, b) in seq.machines.iter().zip(&par.machines) {
        assert_eq!(a.forest, b.forest);
    }
}
