//! Cross-engine equivalence matrix: for every algorithm in the
//! workspace, the sequential, parallel, and distributed engines must
//! produce *identical* `RunOutcome`s (output, metrics, and config echo)
//! through the `run_algorithm` path — the engines differ only in
//! wall-clock and, for the distributed engine, in the extra measured
//! `WireReport`.
//!
//! Each algorithm is exercised at several thread counts, including one
//! that does not divide `k` (uneven worker chunks), on the distributed
//! engine (real byte channels, one serialized frame per message), and
//! under `EngineKind::Auto` (whose resolution must never change
//! results, whatever `KM_ENGINE` says).

use km_core::WireCodec;
use km_core::{run_algorithm, EngineKind, KmAlgorithm, NetConfig, Protocol, RunOutcome, Runner};
use km_graph::generators::gnp;
use km_graph::{CsrGraph, Partition, Vertex, WeightedGraph};
use km_mst::{DistributedMst, DistributedSketchConnectivity};
use km_pagerank::congest_baseline::CongestBaseline;
use km_pagerank::kmachine::{bidirect, DistributedPageRank};
use km_pagerank::PrConfig;
use km_sort::DistributedSort;
use km_triangle::baseline::BroadcastTriangles;
use km_triangle::kmachine::{DistributedTriangles, TriConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(10_000_000)
}

/// Runs `alg` on the sequential engine, then on the parallel engine at
/// several thread counts, the distributed engine, and `Auto`, asserting
/// every outcome is identical to the sequential reference. Returns the
/// reference outcome for algorithm-specific sanity checks.
fn assert_cross_engine<A>(alg: &A, netc: NetConfig) -> RunOutcome<A::Output>
where
    A: KmAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
    <A::Machine as Protocol>::Msg: WireCodec,
{
    let seq = run_algorithm(alg, Runner::new(netc).engine(EngineKind::Sequential))
        .expect("sequential run");
    for kind in [
        EngineKind::Parallel { threads: 2 },
        EngineKind::Parallel { threads: 3 },
        EngineKind::Distributed,
        EngineKind::Auto,
    ] {
        let other = run_algorithm(alg, Runner::new(netc).engine(kind)).expect("run");
        assert_eq!(seq.output, other.output, "{kind:?} output diverged");
        assert_eq!(seq.metrics, other.metrics, "{kind:?} metrics diverged");
        assert_eq!(seq.config, other.config, "{kind:?} config echo diverged");
        if kind == EngineKind::Distributed {
            let wire = other.wire.expect("distributed runs report wire traffic");
            assert_eq!(
                wire.logical_bits,
                other.metrics.total_bits(),
                "framed logical bits must match the metrics transcript"
            );
            assert!(
                wire.measured_bits() >= wire.logical_bits,
                "frames cannot be smaller than the bits they carry"
            );
        }
    }
    seq
}

#[test]
fn sort_outcomes_identical_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(302);
    let (n, k) = (400, 6);
    let alg = DistributedSort {
        inputs: km_sort::SampleSort::random_input(n, k, &mut rng),
        samples_per_machine: 30,
    };
    let outcome = assert_cross_engine(&alg, net(k, n, 10));
    let total: usize = outcome.output.iter().map(Vec::len).sum();
    assert_eq!(total, n, "all keys accounted for");
}

#[test]
fn mst_outcomes_identical_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(303);
    let g = gnp(50, 0.2, &mut rng);
    let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let wg = WeightedGraph::from_weighted_edges(50, &edges, &ws).unwrap();
    let part = Arc::new(Partition::by_hash(50, 5, 3));
    let alg = DistributedMst {
        g: &wg,
        part: &part,
    };
    let outcome = assert_cross_engine(&alg, net(5, 50, 11));
    let (forest, weight) = outcome.output;
    let (want_forest, want_weight) = km_mst::kruskal(&wg);
    assert_eq!(forest, want_forest);
    assert!((weight - want_weight).abs() < 1e-9);
}

#[test]
fn sketch_connectivity_outcomes_identical_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(306);
    // Sparse enough for several components plus isolated vertices.
    let g = gnp(90, 0.025, &mut rng);
    let part = Arc::new(Partition::by_hash(90, 6, 2));
    let alg = DistributedSketchConnectivity { g: &g, part: &part };
    let outcome = assert_cross_engine(&alg, net(6, 90, 14));

    // Union-find oracle: the forest must induce exactly the graph's
    // component structure.
    let mut parent: Vec<Vertex> = (0..90).collect();
    fn find(parent: &mut [Vertex], mut x: Vertex) -> Vertex {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut components = 90usize;
    for e in g.edges() {
        let (ru, rv) = (find(&mut parent, e.u), find(&mut parent, e.v));
        if ru != rv {
            parent[ru as usize] = rv;
            components -= 1;
        }
    }
    assert_eq!(outcome.output.components, components);
    assert_eq!(outcome.output.forest.len(), 90 - components);
    for e in &outcome.output.forest {
        assert!(g.has_edge(e.u, e.v), "{e:?} not a graph edge");
    }
    // Forest reachability equals graph reachability.
    let pairs: Vec<(Vertex, Vertex)> = outcome.output.forest.iter().map(|e| (e.u, e.v)).collect();
    let f = CsrGraph::from_edges(90, &pairs);
    let roots = |g: &CsrGraph| {
        let mut p: Vec<Vertex> = (0..90).collect();
        for e in g.edges() {
            let (ru, rv) = (find(&mut p, e.u), find(&mut p, e.v));
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                p[hi as usize] = lo;
            }
        }
        (0..90u32).map(|v| find(&mut p, v)).collect::<Vec<_>>()
    };
    assert_eq!(roots(&f), roots(&g));
}

#[test]
fn pagerank_outcomes_identical_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(300);
    let g = bidirect(&gnp(70, 0.1, &mut rng));
    let part = Arc::new(Partition::by_hash(g.n(), 7, 1));
    let cfg = PrConfig {
        reset_prob: 0.4,
        tokens_per_vertex: 25,
    };
    let alg = DistributedPageRank::new(&g, &part, cfg);
    let outcome = assert_cross_engine(&alg, net(7, g.n(), 8));
    assert!(outcome.output.iter().all(|&x| x >= 0.0));
}

#[test]
fn congest_baseline_outcomes_identical_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(304);
    let g = bidirect(&gnp(60, 0.1, &mut rng));
    let part = Arc::new(Partition::by_hash(g.n(), 5, 4));
    let cfg = PrConfig {
        reset_prob: 0.4,
        tokens_per_vertex: 20,
    };
    let alg = CongestBaseline {
        g: &g,
        part: &part,
        cfg,
    };
    assert_cross_engine(&alg, net(5, g.n(), 12));
}

#[test]
fn triangle_outcomes_identical_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(301);
    let g = gnp(60, 0.4, &mut rng);
    let part = Arc::new(Partition::by_hash(60, 9, 2));
    let alg = DistributedTriangles {
        g: &g,
        part: &part,
        cfg: TriConfig::default(),
    };
    let outcome = assert_cross_engine(&alg, net(9, 60, 9));
    assert_eq!(
        outcome.output.triangles,
        km_triangle::seq::enumerate_triangles(&g)
    );
}

#[test]
fn broadcast_baseline_outcomes_identical_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(305);
    let g = gnp(40, 0.4, &mut rng);
    let part = Arc::new(Partition::by_hash(40, 6, 3));
    let alg = BroadcastTriangles { g: &g, part: &part };
    assert_cross_engine(&alg, net(6, 40, 4));
}
