//! Integration: triangle enumeration pipelines across crates.

use km_graph::generators::{chung_lu, classic, gnp, power_law_weights};
use km_graph::Partition;
use km_repro::core::NetConfig;
use km_triangle::baseline::run_broadcast_triangles;
use km_triangle::clique::run_clique_triangles;
use km_triangle::kmachine::{run_kmachine_triangles, TriConfig};
use km_triangle::seq::count_triangles;
use km_triangle::verify::assert_exact_enumeration;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(10_000_000)
}

#[test]
fn three_enumerators_agree_on_random_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(200);
    for (n, p, k) in [(80usize, 0.4, 8usize), (60, 0.6, 27), (100, 0.25, 13)] {
        let g = gnp(n, p, &mut rng);
        let part = Arc::new(Partition::by_hash(n, k, 3));
        let (a, _) = run_kmachine_triangles(&g, &part, TriConfig::default(), net(k, n, 1)).unwrap();
        let (b, _) = run_broadcast_triangles(&g, &part, net(k, n, 1)).unwrap();
        assert_exact_enumeration(&g, &a);
        assert_exact_enumeration(&g, &b);
        assert_eq!(a, b);
    }
}

#[test]
fn congested_clique_end_to_end() {
    let mut rng = ChaCha8Rng::seed_from_u64(201);
    let g = gnp(50, 0.5, &mut rng);
    let (ts, metrics) = run_clique_triangles(&g, 9).unwrap();
    assert_exact_enumeration(&g, &ts);
    assert_eq!(ts.len(), count_triangles(&g));
    assert!(metrics.rounds > 0);
}

#[test]
fn power_law_graph_with_random_vertex_partition() {
    // Skewed degrees + true RVP (not hash) + the designation rule active.
    let mut rng = ChaCha8Rng::seed_from_u64(202);
    let w = power_law_weights(250, 2.2, 8.0);
    let g = chung_lu(&w, &mut rng);
    let k = 11;
    let part = Arc::new(Partition::random_vertex(g.n(), k, &mut rng));
    let cfg = TriConfig {
        degree_threshold: Some(30),
        enumerate_triads: false,
        use_proxies: true,
    };
    let (ts, _) = run_kmachine_triangles(&g, &part, cfg, net(k, g.n(), 5)).unwrap();
    assert_exact_enumeration(&g, &ts);
}

#[test]
fn complete_graph_stress() {
    let g = classic::complete(60);
    let part = Arc::new(Partition::by_hash(60, 16, 7));
    let (ts, metrics) =
        run_kmachine_triangles(&g, &part, TriConfig::default(), net(16, 60, 2)).unwrap();
    assert_eq!(ts.len(), 60 * 59 * 58 / 6);
    // Edge replication: each of the m edges reaches at most q machines,
    // so total messages stay well below m·k.
    let m = g.m() as u64;
    assert!(
        metrics.total_msgs() < m * 16,
        "msgs {}",
        metrics.total_msgs()
    );
}
