//! Integration: full PageRank pipelines across crates
//! (generate → partition → distribute → run → compare to oracle).

use km_graph::generators::lower_bound_h::LowerBoundGraph;
use km_graph::generators::{classic, gnp};
use km_graph::Partition;
use km_pagerank::congest_baseline::run_congest_pagerank;
use km_pagerank::kmachine::{bidirect, run_kmachine_pagerank};
use km_pagerank::{max_relative_error, power_iteration, PrConfig};
use km_repro::core::NetConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(10_000_000)
}

#[test]
fn algorithm1_and_baseline_agree_with_oracle_on_gnp() {
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let g = bidirect(&gnp(120, 0.08, &mut rng));
    let eps = 0.3;
    let exact = power_iteration(&g, eps, 1e-13, 100_000);
    let part = Arc::new(Partition::by_hash(g.n(), 6, 9));
    let cfg = PrConfig {
        reset_prob: eps,
        tokens_per_vertex: 3000,
    };
    let floor = eps / g.n() as f64;

    let (pr_a, m_a) = run_kmachine_pagerank(&g, &part, cfg, net(6, g.n(), 5)).unwrap();
    let (pr_b, m_b) = run_congest_pagerank(&g, &part, cfg, net(6, g.n(), 5)).unwrap();
    assert!(max_relative_error(&pr_a, &exact, floor) < 0.1);
    assert!(max_relative_error(&pr_b, &exact, floor) < 0.1);
    assert!(m_a.rounds > 0 && m_b.rounds > 0);
}

#[test]
fn lower_bound_graph_end_to_end() {
    // The Theorem-2 hard instance run through the whole stack: the
    // distributed estimate must reveal the orientation bits.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let h = LowerBoundGraph::random(81, &mut rng);
    let part = Arc::new(Partition::random_vertex(h.n(), 4, &mut rng));
    let cfg = PrConfig {
        reset_prob: 0.3,
        tokens_per_vertex: 40_000,
    };
    let (pr, _) = run_kmachine_pagerank(&h.graph, &part, cfg, net(4, h.n(), 3)).unwrap();
    // Decode each bit by thresholding at the midpoint of the two analytic
    // values; all bits must decode correctly with this token budget.
    let mid = (h.pagerank_v_for_bit(0.3, false) + h.pagerank_v_for_bit(0.3, true)) / 2.0;
    for i in 0..h.quarter {
        let decoded = pr[h.v_vertex(i) as usize] > mid;
        assert_eq!(decoded, h.bits[i], "bit {i} mis-decoded");
    }
}

#[test]
fn star_worst_case_superiority() {
    // On the star, Algorithm 1 must beat the baseline in max per-machine
    // traffic (the quantity that drives its round complexity).
    let n = 800;
    let g = bidirect(&classic::star(n));
    let part = Arc::new(Partition::by_hash(n, 8, 4));
    let cfg = PrConfig {
        reset_prob: 0.4,
        tokens_per_vertex: 10,
    };
    let (_, m_a) = run_kmachine_pagerank(&g, &part, cfg, net(8, n, 6)).unwrap();
    let (_, m_b) = run_congest_pagerank(&g, &part, cfg, net(8, n, 6)).unwrap();
    assert!(
        m_b.max_recv_bits() > 2 * m_a.max_recv_bits(),
        "baseline max recv {} vs alg1 {}",
        m_b.max_recv_bits(),
        m_a.max_recv_bits()
    );
}

#[test]
fn deterministic_across_engine_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let g = bidirect(&gnp(60, 0.1, &mut rng));
    let part = Arc::new(Partition::by_hash(g.n(), 5, 2));
    let cfg = PrConfig {
        reset_prob: 0.5,
        tokens_per_vertex: 20,
    };
    let run = || run_kmachine_pagerank(&g, &part, cfg, net(5, g.n(), 11)).unwrap();
    let (pr1, m1) = run();
    let (pr2, m2) = run();
    assert_eq!(pr1, pr2);
    assert_eq!(m1, m2);
}
