//! The paper's headline PageRank claim, live: Algorithm 1 scales like
//! `n/k²` while the conversion-theorem baseline scales like `n/k`
//! (Theorem 4 vs Klauck et al.), shown on the star graph — the
//! congestion worst case that motivates the light/heavy vertex split.
//!
//! ```text
//! cargo run --release --example pagerank_scaling
//! ```

use km_repro::core::NetConfig;
use km_repro::graph::generators::classic::star;
use km_repro::graph::Partition;
use km_repro::pagerank::analysis::log_log_slope;
use km_repro::pagerank::congest_baseline::run_congest_pagerank;
use km_repro::pagerank::kmachine::{bidirect, run_kmachine_pagerank};
use km_repro::pagerank::PrConfig;
use std::sync::Arc;

fn main() {
    let n = 4000;
    let g = bidirect(&star(n));
    let cfg = PrConfig::paper(n, 0.4, 2.0);
    println!(
        "star({n}): hub degree {} — every token funnels through it\n",
        n - 1
    );
    println!(
        "{:>4}  {:>12}  {:>16}  {:>8}",
        "k", "alg1 rounds", "baseline rounds", "speedup"
    );

    let ks = [4usize, 8, 16, 32];
    let mut alg = Vec::new();
    let mut base = Vec::new();
    for &k in &ks {
        let net = NetConfig::polylog(k, n, 3).max_rounds(50_000_000);
        let part = Arc::new(Partition::by_hash(n, k, 5));
        let (_, ma) = run_kmachine_pagerank(&g, &part, cfg, net).expect("alg1");
        let (_, mb) = run_congest_pagerank(&g, &part, cfg, net).expect("baseline");
        println!(
            "{k:>4}  {:>12}  {:>16}  {:>7.1}x",
            ma.rounds,
            mb.rounds,
            mb.rounds as f64 / ma.rounds as f64
        );
        alg.push(ma.rounds as f64);
        base.push(mb.rounds as f64);
    }
    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    println!(
        "\nfitted log-log slopes: Algorithm 1 {:.2} (theory ~ -2), baseline {:.2} (theory ~ -1)",
        log_log_slope(&xs, &alg).unwrap(),
        log_log_slope(&xs, &base).unwrap()
    );
    println!("the speedup column grows ~ k: that is the paper's superlinear-in-k improvement");
}
