//! Streaming / out-of-core ingestion: build the distributed input with
//! `km_graph::stream` — edges arrive in bounded chunks and are routed
//! straight to their home machines (the random-vertex-partition input
//! shape of Section 1.1), so the `O(m)` global CSR is never
//! materialized. The same build runs a second time through the
//! disk-spill path, and the resulting `DistGraph`s are bit-identical to
//! each other and to the one-shot in-memory builder.
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! ```

use km_repro::core::NetConfig;
use km_repro::graph::generators::gnp;
use km_repro::graph::{
    DistGraphBuilder, EdgeStream, GnpStream, Partition, SpillConfig, StreamingDistBuilder,
};
use km_repro::mst::run_sketch_connectivity_dist;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let (n, k, seed) = (100_000usize, 8usize, 12u64);
    let p = 4.0 / (n - 1) as f64; // E[deg] = 4
    let part = Arc::new(Partition::by_hash(n, k, 7));

    // Chunked G(n, p): same RNG stream as the one-shot generator, but
    // only one bounded chunk of edges is ever resident.
    let t = Instant::now();
    let mut stream = GnpStream::<ChaCha8Rng>::new(n, p, seed, 1 << 16);
    let streamed = StreamingDistBuilder::new(&part)
        .undirected(&mut stream)
        .expect("generator edges are in range");
    let streamed_ms = t.elapsed().as_secs_f64() * 1e3;
    let m = streamed.edge_loads().iter().sum::<usize>() / 2;
    println!(
        "streamed  G(n = {n}, E[deg] = 4) onto k = {k} machines: m = {m} \
         in {streamed_ms:.1} ms ({:.2e} edges/s)",
        m as f64 / (streamed_ms / 1e3)
    );

    // Same stream through the disk-spill path: raw chunks go to
    // per-machine run files, each machine finalizes independently.
    let t = Instant::now();
    stream.reset();
    let spilled = StreamingDistBuilder::new(&part)
        .spill(SpillConfig::default())
        .undirected(&mut stream)
        .expect("spill build");
    println!(
        "spilled   same stream through per-machine run files in {:.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(streamed, spilled, "spill path must be bit-identical");

    // And the one-shot in-memory path builds the very same DistGraph —
    // the only difference is that it materializes the global CSR first.
    let t = Instant::now();
    let g = gnp(n, p, &mut ChaCha8Rng::seed_from_u64(seed));
    let in_memory = DistGraphBuilder::new(&part).undirected(&g);
    println!(
        "in-memory one-shot CSR + fused build in {:.1} ms (allocates the \
         global graph the streaming paths never hold)",
        t.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(streamed, in_memory, "streaming == in-memory, byte for byte");

    // The prebuilt input drops straight into the paper's algorithms.
    let net = NetConfig::polylog(k, n, 5).max_rounds(500_000_000);
    let t = Instant::now();
    let (cc, metrics) = run_sketch_connectivity_dist(&streamed, net).expect("sketch run");
    println!(
        "sketch_cc on the streamed input: {} components, {} phases, \
         {} rounds in {:.1} ms",
        cc.components,
        cc.phases,
        metrics.rounds,
        t.elapsed().as_secs_f64() * 1e3
    );
}
