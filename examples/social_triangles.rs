//! A social-network analysis session on the k-machine model: triangle
//! enumeration and open triads (friend-of-friend pairs) on a power-law
//! graph — the workloads the paper's introduction motivates (community
//! detection, friend recommendation).
//!
//! ```text
//! cargo run --release --example social_triangles
//! ```

use km_repro::core::{run_algorithm, NetConfig, Runner};
use km_repro::graph::generators::{chung_lu, power_law_weights};
use km_repro::graph::Partition;
use km_repro::triangle::kmachine::{DistributedTriangles, TriConfig};
use km_repro::triangle::triads::global_clustering_coefficient;
use km_repro::triangle::verify::assert_exact_enumeration;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let n = 400;
    let k = 16;

    // A "social network": power-law degrees, a few celebrities.
    let weights = power_law_weights(n, 2.2, 12.0);
    let g = chung_lu(&weights, &mut rng);
    println!(
        "network: n = {n}, m = {}, max degree = {} (power law 2.2)",
        g.m(),
        g.max_degree()
    );

    let part = Arc::new(Partition::random_vertex(n, k, &mut rng));
    let net = NetConfig::polylog(k, n, 9).max_rounds(50_000_000);
    let cfg = TriConfig {
        degree_threshold: None,
        enumerate_triads: true,
        use_proxies: true,
    };
    let alg = DistributedTriangles {
        g: &g,
        part: &part,
        cfg,
    };
    let outcome = run_algorithm(&alg, Runner::new(net)).expect("run");
    let triangles = &outcome.output.triangles;
    let triads = &outcome.output.open_triads;
    assert_exact_enumeration(&g, triangles);

    println!(
        "\n{} triangles and {} open triads enumerated in {} rounds",
        triangles.len(),
        triads.len(),
        outcome.metrics.rounds
    );
    println!(
        "global clustering coefficient: {:.4}",
        global_clustering_coefficient(&g)
    );

    // Friend recommendation: the open triad (center, a, b) suggests the
    // a–b edge; rank candidate pairs by how many common friends they share.
    let mut common: HashMap<(u32, u32), usize> = HashMap::new();
    for &(_, a, b) in triads {
        *common.entry((a, b)).or_insert(0) += 1;
    }
    let mut ranked: Vec<((u32, u32), usize)> = common.into_iter().collect();
    ranked.sort_by_key(|&(pair, c)| (std::cmp::Reverse(c), pair));
    println!("\ntop friend recommendations (pair: common friends):");
    for ((a, b), c) in ranked.into_iter().take(5) {
        println!("  {a} – {b}: {c} common friends, not yet connected");
    }
}
