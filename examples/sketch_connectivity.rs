//! The `O~(n/k²)` sketch-connectivity protocol vs Borůvka's broadcast:
//! run both on the same graph at growing `k` and watch the per-machine
//! received bits diverge — the sketch protocol's shrink with `k`, the
//! broadcast's don't. This is the Section 1.3 MST/connectivity upper
//! bound of \[51\] meeting its GLBT `Ω~(n/k²)` lower bound.
//!
//! ```text
//! cargo run --release --example sketch_connectivity
//! ```

use km_repro::core::NetConfig;
use km_repro::graph::generators::gnp;
use km_repro::graph::{Partition, Vertex, WeightedGraph};
use km_repro::lower::bounds::mst_rounds;
use km_repro::mst::{run_boruvka, run_sketch_connectivity};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let n = 2_000;
    let g = gnp(n, 0.004, &mut rng);
    let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let wg = WeightedGraph::from_weighted_edges(n, &edges, &ws).expect("finite weights");
    println!("G(n = {n}, p = 0.004): m = {}\n", g.m());

    println!(
        "{:>4}  {:>28}  {:>28}  {:>10}",
        "k", "sketch max recv bits (/link)", "boruvka max recv bits (/link)", "LB rounds"
    );
    for k in [4usize, 8, 16, 32] {
        let part = Arc::new(Partition::by_hash(n, k, 7));
        let net = NetConfig::polylog(k, n, 5).max_rounds(50_000_000);

        let (cc, sm) = run_sketch_connectivity(&g, &part, net).expect("sketch run");
        let (forest, _, bm) = run_boruvka(&wg, &part, net).expect("boruvka run");
        assert_eq!(
            cc.forest.len(),
            forest.len(),
            "both spanning forests cover the same components"
        );

        let links = (k - 1) as u64;
        println!(
            "{k:>4}  {:>17} ({:>8})  {:>17} ({:>8})  {:>10.0}",
            sm.max_recv_bits(),
            sm.max_recv_bits() / links,
            bm.max_recv_bits(),
            bm.max_recv_bits() / links,
            mst_rounds(n, k),
        );
    }
    println!(
        "\nPer-link received bits track rounds (Lemma 3). The sketch protocol's fall \
         like n/k^2 * polylog; Boruvka's choice broadcast keeps every machine's \
         total at Theta~(n), so its per-link bits only fall like n/k."
    );
}
