//! Quickstart: the k-machine model in five minutes.
//!
//! Generates a random graph, partitions it across 8 machines the way
//! Pregel/Giraph would (random vertex partition), and runs the paper's
//! two headline algorithms — PageRank (Algorithm 1, `O~(n/k²)` rounds)
//! and triangle enumeration (Theorem 5, `O~(m/k^{5/3})` rounds) — on the
//! bandwidth-accounted simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use km_repro::core::NetConfig;
use km_repro::graph::generators::gnp;
use km_repro::graph::Partition;
use km_repro::pagerank::kmachine::{bidirect, run_kmachine_pagerank};
use km_repro::pagerank::{power_iteration, PrConfig};
use km_repro::triangle::kmachine::{run_kmachine_triangles, TriConfig};
use km_repro::triangle::seq::enumerate_triangles;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 500;
    let k = 8;

    // 1. An input graph nobody's single machine could hold (pretend!).
    let g = gnp(n, 0.05, &mut rng);
    println!(
        "input: G({n}, 0.05) with m = {} edges, k = {k} machines",
        g.m()
    );

    // 2. The random vertex partition of Section 1.1 (via hashing, so every
    //    machine can locate every vertex locally).
    let part = Arc::new(Partition::by_hash(n, k, 42));
    println!("partition loads: {:?}", part.loads());

    // 3. PageRank by distributed random-walk tokens (Algorithm 1).
    let net = NetConfig::polylog(k, n, 1);
    let dg = bidirect(&g);
    let cfg = PrConfig::paper(n, 0.15, 8.0);
    let (pr, metrics) = run_kmachine_pagerank(&dg, &part, cfg, net).expect("pagerank run");
    println!(
        "\npagerank: {} rounds, {} messages, {} total bits",
        metrics.rounds,
        metrics.total_msgs(),
        metrics.total_bits()
    );
    let exact = power_iteration(&dg, 0.15, 1e-12, 10_000);
    let mut top: Vec<(u32, f64)> = (0..n as u32).map(|v| (v, pr[v as usize])).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top-5 vertices by estimated PageRank (vs power iteration):");
    for &(v, est) in top.iter().take(5) {
        println!("  v{v:<4} est {est:.5}   exact {:.5}", exact[v as usize]);
    }

    // 4. Triangle enumeration via the color partition + edge proxies.
    let (triangles, tm) =
        run_kmachine_triangles(&g, &part, TriConfig::default(), net).expect("triangle run");
    println!(
        "\ntriangles: {} found in {} rounds ({} messages)",
        triangles.len(),
        tm.rounds,
        tm.total_msgs()
    );
    assert_eq!(
        triangles,
        enumerate_triangles(&g),
        "distributed == sequential"
    );
    println!("verified against the sequential oracle: exact");
}
