//! Corollary 1 live: triangle enumeration in the congested clique
//! (`k = n`, one vertex per machine) runs in `Θ~(n^{1/3})` rounds — and
//! the paper's lower bound says nothing can do asymptotically better.
//!
//! ```text
//! cargo run --release --example congested_clique
//! ```

use km_repro::core::clique::clique_config;
use km_repro::graph::generators::gnp;
use km_repro::triangle::clique::run_clique_triangles;
use km_repro::triangle::seq::count_triangles;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!(
        "{:>5}  {:>9}  {:>7}  {:>8}  {:>14}",
        "n", "triangles", "rounds", "n^(1/3)", "rounds/n^(1/3)"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for n in [27usize, 64, 125, 216] {
        let g = gnp(n, 0.5, &mut rng);
        let (ts, metrics) = run_clique_triangles(&g, 7).expect("run");
        assert_eq!(ts.len(), count_triangles(&g));
        let cbrt = (n as f64).powf(1.0 / 3.0);
        println!(
            "{n:>5}  {:>9}  {:>7}  {cbrt:>8.2}  {:>14.2}",
            ts.len(),
            metrics.rounds,
            metrics.rounds as f64 / cbrt
        );
    }
    let cfg = clique_config(216, 0);
    println!(
        "\nlower bound shape (Corollary 1): Omega(n^(1/3)/B) = {:.2} rounds at n=216, B = {} bits; \
         the last column staying ~constant is the Theta~(n^(1/3)) claim",
        km_repro::lower::bounds::clique_triangle_rounds(216, cfg.bandwidth_bits),
        cfg.bandwidth_bits
    );
}
