//! The General Lower Bound Theorem, end to end: build the Figure-1 graph
//! `H`, watch the Lemma 4 PageRank separation encode the secret bit
//! vector, decode it from a real distributed run, and check the Theorem 1
//! information chain `IC ≤ max|Π_i| ≤ (B+1)(k−1)·T` on the transcript.
//!
//! ```text
//! cargo run --release --example lower_bound_demo
//! ```

use km_repro::core::NetConfig;
use km_repro::graph::generators::lower_bound_h::LowerBoundGraph;
use km_repro::graph::Partition;
use km_repro::lower::infocost::InfoCostReport;
use km_repro::lower::pagerank_lb::{max_paths_known, PagerankLb};
use km_repro::pagerank::kmachine::run_kmachine_pagerank;
use km_repro::pagerank::PrConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let eps = 0.3;
    let k = 4;
    let h = LowerBoundGraph::random(201, &mut rng);
    println!(
        "H: n = {}, q = {} secret orientation bits, bits = {:?}...",
        h.n(),
        h.quarter,
        &h.bits[..8.min(h.quarter)]
    );

    // Lemma 4: the two possible PageRank values of each v_i.
    let lo = h.pagerank_v_for_bit(eps, false);
    let hi = h.pagerank_v_for_bit(eps, true);
    println!(
        "\nLemma 4 @ eps={eps}: PR(v|b=0) = {:.3}/n, PR(v|b=1) = {:.3}/n (ratio {:.3})",
        lo * h.n() as f64,
        hi * h.n() as f64,
        hi / lo
    );

    // Lemma 5: RVP leaks few paths to any machine.
    let part = Arc::new(Partition::random_vertex(h.n(), k, &mut rng));
    println!(
        "Lemma 5: max weakly-connected paths revealed to any machine by RVP: {} of {}",
        max_paths_known(&h, &part),
        h.quarter
    );

    // Run the (correct) Algorithm 1 and decode the secret bits from the
    // output — the information the lower bound says must have moved.
    let net = NetConfig::polylog(k, h.n(), 2).max_rounds(50_000_000);
    let cfg = PrConfig {
        reset_prob: eps,
        tokens_per_vertex: 60_000,
    };
    let (pr, metrics) = run_kmachine_pagerank(&h.graph, &part, cfg, net).expect("run");
    let mid = (lo + hi) / 2.0;
    let decoded: Vec<bool> = (0..h.quarter)
        .map(|i| pr[h.v_vertex(i) as usize] > mid)
        .collect();
    let correct = decoded.iter().zip(&h.bits).filter(|(a, b)| a == b).count();
    println!(
        "\ndecoded {correct}/{} secret bits from the PageRank output alone",
        h.quarter
    );

    // Theorem 1: the information chain on the measured transcript.
    let bound = PagerankLb::new(h.n(), k).glbt(net.bandwidth_bits);
    let report = InfoCostReport::from_run(&metrics, &bound);
    println!(
        "\nTheorem 1 chain: IC = {:.0} bits  <=  max|Pi| = {} bits  <=  (B+1)(k-1)T = {:.0} bits",
        report.ic_predicted, report.max_transcript_bits, report.lemma3_capacity
    );
    println!(
        "rounds T = {} >= lower bound {:.2}: {}",
        report.rounds,
        report.round_lower_bound,
        report.chain_holds()
    );
    println!("\nthat inequality chain IS the proof sketch of Theorem 2 — measured on a real run");
}
