//! The distributed engine: real message passing, same transcript.
//!
//! Runs Borůvka MST once on the in-process sequential engine and once
//! on `EngineKind::Distributed` — where every machine is its own OS
//! thread and every message is serialized to a length-prefixed byte
//! frame and pushed through a bounded channel — then checks the two
//! `RunOutcome`s are bit-identical and prints what the byte channels
//! actually carried next to the logical `WireSize` accounting the
//! paper's bounds charge.
//!
//! ```text
//! cargo run --release --example distributed_engine
//! ```

use km_repro::core::{run_algorithm, EngineKind, NetConfig, Runner};
use km_repro::graph::generators::gnp;
use km_repro::graph::{Partition, WeightedGraph};
use km_repro::mst::DistributedMst;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let (n, k) = (400, 16);
    let g = gnp(n, 0.03, &mut rng);
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let wg = WeightedGraph::from_weighted_edges(n, &edges, &ws).expect("finite weights");
    let part = Arc::new(Partition::by_hash(n, k, 3));
    let net = NetConfig::polylog(k, n, 11).max_rounds(50_000_000);
    let alg = DistributedMst {
        g: &wg,
        part: &part,
    };
    println!(
        "input: G({n}, 0.03) with m = {} edges, k = {k} machines",
        g.m()
    );

    // In-process reference: one thread plays all k machines.
    let seq = run_algorithm(&alg, Runner::new(net).engine(EngineKind::Sequential)).expect("seq");

    // Message passing: k worker threads, byte frames, bounded channels,
    // a round barrier — and, by construction, the same transcript.
    let dist = run_algorithm(&alg, Runner::new(net).engine(EngineKind::Distributed)).expect("dist");
    assert_eq!(seq, dist, "engines must be bit-identical");
    println!(
        "\nboruvka mst: {} forest edges, weight {:.4}, {} rounds on both engines",
        seq.output.0.len(),
        seq.output.1,
        seq.metrics.rounds
    );

    // What the wires saw: each (link, round) ships one batch frame, so
    // the fixed header is amortized over every message it carries; the
    // message bits themselves equal the logical transcript.
    let wire = dist.wire.expect("distributed runs report wire traffic");
    println!(
        "wire: {} messages in {} batch frames ({:.1} msgs/frame), {} measured bits vs {} logical bits ({:.3}x)",
        wire.messages,
        wire.frames,
        wire.msgs_per_frame(),
        wire.measured_bits(),
        wire.logical_bits,
        wire.wire_vs_logical()
    );
    println!(
        "      overhead: {} header bits + {} batch-record bits + {} padding bits",
        wire.header_bits(),
        wire.record_bits(),
        wire.padding_bits()
    );
    assert_eq!(wire.logical_bits, dist.metrics.total_bits());
    println!("\nverified: distributed == sequential, frames account for every logical bit");
}
