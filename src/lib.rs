//! # km-repro
//!
//! Umbrella crate for the reproduction of *On the Distributed Complexity of
//! Large-Scale Graph Computations* (Pandurangan, Robinson, Scquizzato;
//! SPAA 2018). Re-exports the workspace crates under stable names so
//! examples and downstream users need a single dependency:
//!
//! * [`core`] — the k-machine model simulator (engines, routing, metrics);
//! * [`graph`] — graphs, generators, and the RVP/REP input partitions;
//! * [`pagerank`] — Algorithm 1 and its baselines (Theorems 2 & 4);
//! * [`triangle`] — triangle enumeration (Theorems 3 & 5, Corollaries 1–2);
//! * [`lower`] — the General Lower Bound Theorem machinery (Theorem 1);
//! * [`sort`] — distributed sample sort (Section 1.3 application);
//! * [`mst`] — connectivity/MST via Borůvka phases (Section 1.3).
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the top-level
//! `README.md` for the full paper→code map.
//!
//! ## Running a protocol through the `Runner`
//!
//! A distributed algorithm implements [`core::Protocol`] from the point
//! of view of one machine; the [`core::Runner`] executes all `k`
//! machines in synchronous rounds, charging each link `B` bits per
//! round, on whichever engine [`core::EngineKind`] selects (the
//! sequential reference and the thread-parallel engine are
//! transcript-identical). Here every machine greets machine 0 and stops:
//!
//! ```
//! use km_repro::core::{
//!     EngineKind, Envelope, NetConfig, Outbox, Protocol, RoundCtx, Runner, Status,
//! };
//!
//! struct Greeter {
//!     heard: usize,
//! }
//!
//! impl Protocol for Greeter {
//!     type Msg = u32;
//!     fn round(
//!         &mut self,
//!         ctx: &mut RoundCtx<'_>,
//!         inbox: &mut Vec<Envelope<u32>>,
//!         out: &mut Outbox<u32>,
//!     ) -> Status {
//!         self.heard += inbox.len();
//!         if ctx.round == 0 && ctx.me != 0 {
//!             out.send(0, ctx.me as u32); // everyone pings machine 0
//!             Status::Active
//!         } else {
//!             Status::Done
//!         }
//!     }
//! }
//!
//! let k = 4;
//! let machines = (0..k).map(|_| Greeter { heard: 0 }).collect();
//! let report = Runner::new(NetConfig::with_bandwidth(k, 64, /* seed */ 7))
//!     .engine(EngineKind::Auto) // or Sequential / Parallel { threads }
//!     .run(machines)
//!     .unwrap();
//!
//! // Machine 0 heard from the other k-1 machines…
//! assert_eq!(report.machines[0].heard, k - 1);
//! // …and the run's round count was accounted by the engine.
//! assert!(report.metrics.rounds >= 1);
//! ```
//!
//! Full algorithms (sorting, MST, PageRank, triangles) implement
//! [`core::KmAlgorithm`] — the build → run → extract lifecycle — and run
//! through [`core::run_algorithm`], which returns a structured
//! [`core::RunOutcome`] (output + metrics + config echo):
//!
//! ```
//! use km_repro::core::{run_algorithm, NetConfig, Runner};
//! use km_repro::sort::DistributedSort;
//!
//! let alg = DistributedSort::new(vec![vec![5, 1], vec![4, 8], vec![7, 2]]);
//! let outcome = run_algorithm(&alg, Runner::new(NetConfig::polylog(3, 6, 1))).unwrap();
//! assert_eq!(outcome.output, vec![vec![1, 2], vec![4, 5], vec![7, 8]]);
//! assert!(outcome.metrics.rounds > 0);
//! ```
//!
//! ## Generating and partitioning an input graph
//!
//! Inputs follow Section 1.1's random vertex partition: a hash-based
//! assignment every machine can evaluate locally. Deterministic seeds
//! make every run replayable:
//!
//! ```
//! use km_repro::graph::generators::gnp;
//! use km_repro::graph::Partition;
//! use km_repro::triangle::seq::count_triangles;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//! let g = gnp(64, 0.2, &mut rng); // Erdős–Rényi G(64, 0.2)
//! assert_eq!(g.n(), 64);
//! assert!(g.m() > 0);
//!
//! // Same seed ⇒ identical graph (replayability).
//! let mut rng2 = ChaCha8Rng::seed_from_u64(42);
//! assert_eq!(g, gnp(64, 0.2, &mut rng2));
//!
//! // Random vertex partition over k = 4 machines: every vertex has a
//! // home, and loads are near-balanced (Θ~(n/k) whp, Lemma "RVP").
//! let part = Partition::by_hash(g.n(), 4, 3);
//! assert_eq!(part.loads().iter().sum::<usize>(), g.n());
//!
//! // The sequential triangle oracle the distributed algorithms are
//! // verified against:
//! let t = count_triangles(&g);
//! assert!(t > 0, "G(64, 0.2) has triangles whp");
//! ```

pub use km_core as core;
pub use km_graph as graph;
pub use km_lower as lower;
pub use km_mst as mst;
pub use km_pagerank as pagerank;
pub use km_sort as sort;
pub use km_triangle as triangle;
