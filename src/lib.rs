//! # km-repro
//!
//! Umbrella crate for the reproduction of *On the Distributed Complexity of
//! Large-Scale Graph Computations* (Pandurangan, Robinson, Scquizzato;
//! SPAA 2018). Re-exports the workspace crates under stable names so
//! examples and downstream users need a single dependency:
//!
//! * [`core`] — the k-machine model simulator (engines, routing, metrics);
//! * [`graph`] — graphs, generators, and the RVP/REP input partitions;
//! * [`pagerank`] — Algorithm 1 and its baselines (Theorems 2 & 4);
//! * [`triangle`] — triangle enumeration (Theorems 3 & 5, Corollaries 1–2);
//! * [`lower`] — the General Lower Bound Theorem machinery (Theorem 1);
//! * [`sort`] — distributed sample sort (Section 1.3 application);
//! * [`mst`] — connectivity/MST via Borůvka phases (Section 1.3).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use km_core as core;
pub use km_graph as graph;
pub use km_lower as lower;
pub use km_mst as mst;
pub use km_pagerank as pagerank;
pub use km_sort as sort;
pub use km_triangle as triangle;
