//! The four repo-policy lint rules (see DESIGN.md, "Model checking &
//! lint policy"):
//!
//! 1. **error-not-panic** — no `.unwrap()` / `.expect(` / `panic!` /
//!    `unreachable!` / `todo!` / `unimplemented!` in non-test library
//!    code unless the site carries
//!    `// lint: allow(panic) — <why this is unreachable>`.
//! 2. **hash-iter** — no `HashMap`/`HashSet` in the protocol/engine
//!    crates (iteration order nondeterminism must not be able to leak
//!    into transcripts) unless annotated
//!    `// lint: allow(hash-iter) — <why order never leaks>`.
//! 3. **wire-roundtrip** — every named `impl WireCodec for T` has a
//!    round-trip test whose name mentions the type.
//! 4. **doc-integrity** — backticked file paths and `KM_*` knobs in
//!    the top-level docs resolve, and CHANGES.md stays newest-first.

use crate::scan::{rs_files_under, RsFile};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    ".expect_err(",
    "panic!",
    "unreachable!",
    "todo!(",
    "unimplemented!(",
];

/// Crates whose per-round message handling must be deterministic: a
/// `HashMap`/`HashSet` there is one `for` loop away from
/// iteration-order nondeterminism reaching a transcript.
const ORDER_SENSITIVE: &[&str] = &[
    "crates/core/src/",
    "crates/sort/src/",
    "crates/mst/src/",
    "crates/pagerank/src/",
    "crates/triangle/src/",
];

/// Runs every rule over the repo rooted at `root`; returns all
/// violations, deterministically ordered.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut files: Vec<RsFile> = Vec::new();
    for dir in ["crates", "src", "shims", "xtask", "tests", "examples"] {
        for p in rs_files_under(&root.join(dir)) {
            match RsFile::load(root, &p) {
                Ok(f) => files.push(f),
                Err(e) => files.push(RsFile {
                    rel: p.to_string_lossy().into_owned(),
                    raw_lines: vec![format!("<unreadable: {e}>")],
                    code_lines: vec![String::new()],
                    test_lines: vec![false],
                }),
            }
        }
    }
    let mut out = Vec::new();
    panic_rule(&files, &mut out);
    hash_rule(&files, &mut out);
    wire_roundtrip_rule(&files, &mut out);
    doc_rule(root, &files, &mut out);
    out
}

/// Library code the panic rule covers: crate `src/` trees, minus
/// binaries (whose `main` may legitimately bail), test/bench/example
/// code, the offline shims (which mirror upstream APIs that panic by
/// contract), and xtask itself.
fn panic_rule_applies(rel: &str) -> bool {
    let lib_tree = (rel.starts_with("crates/") && rel.contains("/src/"))
        || (rel.starts_with("src/") && rel.ends_with(".rs"));
    lib_tree
        && !rel.contains("/bin/")
        && !rel.ends_with("main.rs")
        && !rel.contains("/tests/")
        && !rel.contains("/benches/")
        && !rel.contains("/examples/")
        // Experiment drivers are an arm of the `experiments` binary
        // (nothing else links them); like bins, they may bail on a
        // broken run.
        && !rel.starts_with("crates/bench/src/exp/")
}

fn annotated(f: &RsFile, line_idx: usize, marker: &str) -> bool {
    let here = f.raw_lines.get(line_idx).map(String::as_str).unwrap_or("");
    let above = line_idx
        .checked_sub(1)
        .and_then(|i| f.raw_lines.get(i))
        .map(String::as_str)
        .unwrap_or("");
    here.contains(marker) || above.contains(marker)
}

/// True if `line[at]` starts `token` as its own token (not a suffix of
/// a longer identifier, e.g. `.unwrap()` inside `.unwrap_or()` can't
/// happen, but `panic!` inside `dont_panic!` could).
fn token_at(line: &str, at: usize) -> bool {
    at == 0 || !line.as_bytes()[at - 1].is_ascii_alphanumeric() && line.as_bytes()[at - 1] != b'_'
}

fn panic_rule(files: &[RsFile], out: &mut Vec<Violation>) {
    for f in files {
        if !panic_rule_applies(&f.rel) {
            continue;
        }
        for (i, code) in f.code_lines.iter().enumerate() {
            if f.test_lines.get(i).copied().unwrap_or(false) {
                continue;
            }
            for token in PANIC_TOKENS {
                let Some(at) = code.find(token) else {
                    continue;
                };
                if !token_at(code, at) {
                    continue;
                }
                if annotated(f, i, "lint: allow(panic)") {
                    continue;
                }
                out.push(Violation {
                    rule: "error-not-panic",
                    file: f.rel.clone(),
                    line: i + 1,
                    msg: format!(
                        "`{token}` in non-test library code: return a typed error, or \
                         annotate the site `// lint: allow(panic) — <why unreachable>`"
                    ),
                });
                break; // one report per line
            }
        }
    }
}

fn hash_rule(files: &[RsFile], out: &mut Vec<Violation>) {
    for f in files {
        let covered = ORDER_SENSITIVE.iter().any(|p| f.rel.starts_with(p));
        if !covered || f.rel.contains("/bin/") {
            continue;
        }
        for (i, code) in f.code_lines.iter().enumerate() {
            if f.test_lines.get(i).copied().unwrap_or(false) {
                continue;
            }
            for token in ["HashMap", "HashSet"] {
                let Some(at) = code.find(token) else {
                    continue;
                };
                let end = at + token.len();
                let tail_ok = code
                    .as_bytes()
                    .get(end)
                    .is_none_or(|c| !c.is_ascii_alphanumeric() && *c != b'_');
                if !token_at(code, at) || !tail_ok {
                    continue;
                }
                if annotated(f, i, "lint: allow(hash-iter)") {
                    continue;
                }
                out.push(Violation {
                    rule: "hash-iter",
                    file: f.rel.clone(),
                    line: i + 1,
                    msg: format!(
                        "`{token}` in an order-sensitive crate: use a BTree collection, or \
                         annotate `// lint: allow(hash-iter) — <why order never leaks>`"
                    ),
                });
                break;
            }
        }
    }
}

/// Crate name for grouping: `crates/<name>/...` or `root`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
}

/// Splits CamelCase into lowercase words: "L0Sketch" → ["l0","sketch"],
/// "ScatterToken" → ["scatter","token"].
fn camel_words(name: &str) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    for c in name.chars() {
        if c.is_ascii_uppercase() || words.is_empty() {
            words.push(String::new());
        }
        let w = words.last_mut().expect("pushed above");
        w.push(c.to_ascii_lowercase());
    }
    words.retain(|w| w.len() >= 2 && w != "msg");
    words
}

fn wire_roundtrip_rule(files: &[RsFile], out: &mut Vec<Violation>) {
    // (crate, type) -> first impl site; plus per-crate round-trip test
    // function names (any file of the crate, tests included).
    let mut impls: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut tests: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in files {
        if !f.rel.starts_with("crates/") {
            continue;
        }
        // Impls inside test code (test-only harness types) don't need
        // wire coverage; their round-trip *tests* still count below.
        let test_file = f.rel.contains("/tests/") || f.rel.contains("/benches/");
        let krate = crate_of(&f.rel).to_owned();
        for (i, code) in f.code_lines.iter().enumerate() {
            let in_test = test_file || f.test_lines.get(i).copied().unwrap_or(false);
            if let Some(pos) = code.find("WireCodec for ").filter(|_| !in_test) {
                let before = code[..pos].trim_end();
                // Only `impl ... WireCodec for T`, not prose or bounds.
                if before.ends_with("impl") || before.contains("impl<") {
                    let ty: String = code[pos + "WireCodec for ".len()..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    // Skip primitives and macro metavariables ($t):
                    // named protocol types start with an uppercase
                    // letter.
                    if ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                        impls
                            .entry((krate.clone(), ty))
                            .or_insert((f.rel.clone(), i + 1));
                    }
                }
            }
            if let Some(pos) = code.find("fn ") {
                let name: String = code[pos + 3..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if name.contains("roundtrip") {
                    tests.entry(krate.clone()).or_default().push(name);
                }
            }
        }
    }
    for ((krate, ty), (file, line)) in impls {
        let words = camel_words(&ty);
        let empty = Vec::new();
        let names = tests.get(&krate).unwrap_or(&empty);
        let covered = names
            .iter()
            .any(|n| words.iter().any(|w| n.contains(w.as_str())));
        if !covered {
            out.push(Violation {
                rule: "wire-roundtrip",
                file,
                line,
                msg: format!(
                    "`impl WireCodec for {ty}` has no round-trip test in crate `{krate}` \
                     (expected a test fn whose name contains `roundtrip` and one of {words:?})"
                ),
            });
        }
    }
}

/// Lines like `- **2026-08-08 · PR 9: ...` → (date, pr).
fn changes_entry(line: &str) -> Option<(String, u64)> {
    let rest = line.strip_prefix("- **")?;
    let (date, rest) = rest.split_at(rest.char_indices().nth(10)?.0);
    if date.len() != 10 || date.as_bytes()[4] != b'-' || date.as_bytes()[7] != b'-' {
        return None;
    }
    let rest = rest.strip_prefix(" · PR ")?;
    let pr: u64 = rest
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()?;
    Some((date.to_owned(), pr))
}

fn looks_like_path(token: &str) -> bool {
    let charset = token
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || "_./-".contains(c));
    // A known extension, or a first segment naming a repo directory —
    // bare `a/b` alone is too path-like to trust (`n/k` is math).
    let known_ext = [".md", ".rs", ".toml", ".json", ".yml", ".lock"]
        .iter()
        .any(|ext| token.ends_with(ext));
    let known_dir = [
        "crates/",
        "shims/",
        "src/",
        "tests/",
        "examples/",
        "benches/",
        "results/",
        ".github/",
        "xtask/",
        ".cargo/",
    ]
    .iter()
    .any(|d| token.starts_with(d));
    charset
        && (known_ext || known_dir)
        && !token.starts_with("http")
        && !token.starts_with('/')
        && !token.contains("..")
}

fn doc_rule(root: &Path, files: &[RsFile], out: &mut Vec<Violation>) {
    // All library source, concatenated, for `KM_*` knob resolution.
    let mut all_code = String::new();
    for f in files {
        for l in &f.raw_lines {
            all_code.push_str(l);
            all_code.push('\n');
        }
    }
    for doc in ["README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md"] {
        let path = root.join(doc);
        let Ok(text) = fs::read_to_string(&path) else {
            out.push(Violation {
                rule: "doc-integrity",
                file: doc.to_owned(),
                line: 0,
                msg: "top-level doc is missing".to_owned(),
            });
            continue;
        };
        let mut entries: Vec<(usize, String, u64)> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            // CHANGES.md is a historical log (its old entries quote
            // paths as they were then); only its ordering is checked.
            for token in backtick_spans(line)
                .into_iter()
                .filter(|_| doc != "CHANGES.md")
            {
                if looks_like_path(token) {
                    if !root.join(token).exists() {
                        out.push(Violation {
                            rule: "doc-integrity",
                            file: doc.to_owned(),
                            line: i + 1,
                            msg: format!("`{token}` does not resolve to a file in the repo"),
                        });
                    }
                } else if let Some(knob) = km_knob(token) {
                    if !all_code.contains(knob) {
                        out.push(Violation {
                            rule: "doc-integrity",
                            file: doc.to_owned(),
                            line: i + 1,
                            msg: format!(
                                "`{knob}` is documented but appears nowhere in the source"
                            ),
                        });
                    }
                }
            }
            if doc == "CHANGES.md" {
                if let Some((date, pr)) = changes_entry(line) {
                    entries.push((i + 1, date, pr));
                }
            }
        }
        for w in entries.windows(2) {
            let (_, ref d0, p0) = w[0];
            let (line, ref d1, p1) = w[1];
            if p1 >= p0 {
                out.push(Violation {
                    rule: "doc-integrity",
                    file: doc.to_owned(),
                    line,
                    msg: format!("CHANGES.md must be newest-first: PR {p1} listed after PR {p0}"),
                });
            }
            if d1 > d0 {
                out.push(Violation {
                    rule: "doc-integrity",
                    file: doc.to_owned(),
                    line,
                    msg: format!(
                        "CHANGES.md dates must not increase downward: {d1} listed after {d0}"
                    ),
                });
            }
        }
    }
}

/// `KM_ENGINE`, `KM_FAULTS=...` → the knob name; None for non-knobs.
fn km_knob(token: &str) -> Option<&str> {
    let name = token.split('=').next().unwrap_or(token);
    let ok = name.starts_with("KM_")
        && name.len() > 3
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
    ok.then_some(name)
}

fn backtick_spans(line: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        if close > 0 {
            spans.push(&after[..close]);
        }
        rest = &after[close + 1..];
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_words_split_and_filter() {
        assert_eq!(camel_words("L0Sketch"), vec!["l0", "sketch"]);
        assert_eq!(camel_words("ScatterToken"), vec!["scatter", "token"]);
        assert_eq!(camel_words("MstMsg"), vec!["mst"]);
        assert_eq!(camel_words("PrMsg"), vec!["pr"]);
        assert_eq!(camel_words("Routed"), vec!["routed"]);
    }

    #[test]
    fn changes_entries_parse() {
        assert_eq!(
            changes_entry("- **2026-08-08 · PR 9: Batched wire frames**"),
            Some(("2026-08-08".to_owned(), 9))
        );
        assert_eq!(changes_entry("- regular bullet"), None);
        assert_eq!(changes_entry("# heading"), None);
    }

    #[test]
    fn path_and_knob_heuristics() {
        assert!(looks_like_path("crates/core/src/lib.rs"));
        assert!(looks_like_path("DESIGN.md"));
        assert!(!looks_like_path("km_graph::stream"));
        assert!(!looks_like_path("BENCH_<date>.json"));
        assert!(!looks_like_path("--engine"));
        assert_eq!(km_knob("KM_ENGINE"), Some("KM_ENGINE"));
        assert_eq!(km_knob("KM_FAULTS=drop=0.3"), Some("KM_FAULTS"));
        assert_eq!(km_knob("RUST_LOG"), None);
        assert_eq!(km_knob("KM_engine"), None);
    }

    #[test]
    fn backtick_spans_extract() {
        assert_eq!(
            backtick_spans("see `a/b.rs` and `KM_X` plus ``"),
            vec!["a/b.rs", "KM_X"]
        );
    }
}
