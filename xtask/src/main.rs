//! Repo automation. One subcommand so far:
//!
//! ```text
//! cargo xtask lint    run the repo-policy lint pass (CI-enforced)
//! ```
//!
//! The rules and the annotation grammar are documented in DESIGN.md
//! ("Model checking & lint policy"). Exit status: 0 clean, 1 with
//! violations (each printed as `file:line: [rule] message`), 2 usage.

mod lint;
mod scan;

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask; CARGO_MANIFEST_DIR is set both via
    // the `cargo xtask` alias and plain `cargo run -p xtask`.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    manifest.parent().map(PathBuf::from).unwrap_or(manifest)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = repo_root();
            let violations = lint::run(&root);
            if violations.is_empty() {
                println!("xtask lint: clean");
                return;
            }
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            std::process::exit(1);
        }
        _ => {
            eprintln!("usage: cargo xtask lint");
            std::process::exit(2);
        }
    }
}
