//! Source scanning for the lint pass: a light Rust "tokenizer" that
//! blanks comments and string/char literals (so token searches can't
//! trip over prose), plus `#[cfg(test)]` region mapping via brace
//! tracking on the blanked text.
//!
//! This is intentionally not a real parser. It only needs to be sound
//! for the narrow questions the lint asks ("does this non-test line
//! contain `.unwrap()` as code?"), and the blanking rules below cover
//! everything the workspace's style actually produces: line and
//! (nested) block comments, plain/byte/raw strings, char literals,
//! and lifetimes.

use std::fs;
use std::path::{Path, PathBuf};

/// One `.rs` file, pre-processed for linting.
pub struct RsFile {
    /// Repo-relative path with forward slashes (stable lint output).
    pub rel: String,
    /// The file exactly as read, split into lines (annotations — which
    /// live in comments — are looked up here).
    pub raw_lines: Vec<String>,
    /// The same lines with comments and literals blanked to spaces;
    /// token searches run against these.
    pub code_lines: Vec<String>,
    /// `test_lines[i]` — line i sits inside a `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
}

impl RsFile {
    pub fn load(root: &Path, path: &Path) -> std::io::Result<RsFile> {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let blanked = blank_noncode(&text);
        let raw_lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let code_lines: Vec<String> = blanked.lines().map(str::to_owned).collect();
        let test_lines = cfg_test_lines(&blanked, raw_lines.len());
        Ok(RsFile {
            rel,
            raw_lines,
            code_lines,
            test_lines,
        })
    }
}

/// Recursively collect every `.rs` file under `dir` (sorted, so lint
/// output and violation ordering are deterministic across runs).
pub fn rs_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Replaces the contents of comments and string/char literals with
/// spaces, preserving every newline (and therefore all line/column
/// positions).
pub fn blank_noncode(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    // Blank a byte: newlines survive (line structure), all else spaces.
    // Multi-byte UTF-8 inside literals collapses to one space per byte,
    // which is fine — positions of *code* bytes are what matter.
    let blank = |out: &mut Vec<u8>, c: u8| out.push(if c == b'\n' { b'\n' } else { b' ' });
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match c {
            b'/' if next == Some(b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            b'/' if next == Some(b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                }
            }
            b'"' => i = blank_string(b, i, &mut out, 0),
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                // br"...", r#"..."#, b"..." — skip the prefix as code,
                // then blank the string body.
                let mut j = i;
                while b[j] == b'r' || b[j] == b'b' {
                    out.push(b[j]);
                    j += 1;
                }
                let mut hashes = 0;
                while b.get(j) == Some(&b'#') {
                    out.push(b'#');
                    j += 1;
                    hashes += 1;
                }
                i = blank_string(b, j, &mut out, hashes);
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal closes with
                // a quote within a few bytes ('x', '\n', '\u{1F600}');
                // a lifetime never closes.
                if let Some(end) = char_literal_end(b, i) {
                    out.push(b'\'');
                    for &c in &b[i + 1..end] {
                        blank(&mut out, c);
                    }
                    out.push(b'\'');
                    i = end + 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"') && (i == 0 || !is_ident(b[i - 1]))
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Blanks a string literal starting at the opening quote `b[i]`; raw
/// strings pass `hashes` > 0 and ignore escapes.
fn blank_string(b: &[u8], i: usize, out: &mut Vec<u8>, hashes: usize) -> usize {
    out.push(b'"');
    let mut j = i + 1;
    while j < b.len() {
        if hashes == 0 && b[j] == b'\\' && j + 1 < b.len() {
            out.push(b' ');
            // A line-continuation escape must keep its newline.
            out.push(if b[j + 1] == b'\n' { b'\n' } else { b' ' });
            j += 2;
            continue;
        }
        if b[j] == b'"' {
            let close = (1..=hashes).all(|h| b.get(j + h) == Some(&b'#'));
            if close {
                out.push(b'"');
                for _ in 0..hashes {
                    out.push(b'#');
                }
                return j + 1 + hashes;
            }
        }
        out.push(if b[j] == b'\n' { b'\n' } else { b' ' });
        j += 1;
    }
    j
}

/// Returns the index of the closing quote if `b[i]` opens a char
/// literal, or None for a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    if b.get(i + 1) == Some(&b'\\') {
        // Escaped: scan to the next quote (covers '\n', '\'', '\u{..}').
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
            j += 1;
        }
        return (b.get(j) == Some(&b'\'')).then_some(j);
    }
    // Unescaped char literal is exactly one char wide (possibly
    // multi-byte); a lifetime ('a, 'static) has no closing quote
    // before an identifier break.
    let mut j = i + 1;
    let mut bytes = 0;
    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
        j += 1;
        bytes += 1;
        if bytes > 4 {
            return None;
        }
    }
    (b.get(j) == Some(&b'\'') && bytes > 0).then_some(j)
}

/// Marks lines covered by `#[cfg(test)]` items: from the attribute to
/// the end of the item it gates (the matching `}` of its block, or the
/// `;` for bodyless items). Works on blanked text so strings and
/// comments can't confuse the brace tracking.
fn cfg_test_lines(blanked: &str, n_lines: usize) -> Vec<bool> {
    let mut test = vec![false; n_lines];
    let b = blanked.as_bytes();
    // Line number (0-based) for every byte offset.
    let mut line_of = Vec::with_capacity(b.len());
    let mut ln = 0usize;
    for &c in b {
        line_of.push(ln);
        if c == b'\n' {
            ln += 1;
        }
    }
    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= b.len() {
        if &b[i..i + needle.len()] != needle.as_slice() {
            i += 1;
            continue;
        }
        let start_line = line_of[i];
        let mut j = i + needle.len();
        // Skip further attributes and whitespace between the cfg and
        // the item it gates (e.g. `#[cfg(test)]\n#[allow(...)]\nmod`).
        loop {
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b'#') && b.get(j + 1) == Some(&b'[') {
                let mut depth = 0usize;
                while j < b.len() {
                    match b[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // Walk to the end of the gated item.
        let mut depth = 0usize;
        let mut end = j;
        while end < b.len() {
            match b[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end_line = line_of.get(end).copied().unwrap_or(n_lines - 1);
        for t in test.iter_mut().take(end_line + 1).skip(start_line) {
            *t = true;
        }
        i = end.max(i + needle.len());
    }
    test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_removes_comments_strings_chars_but_keeps_code() {
        let src = r##"let a = x.unwrap(); // unwrap() here is prose
let s = "panic!(no)"; let r = r#"unreachable!"#;
let c = '}'; let lt: &'static str = "";
/* panic! in a block
   comment */ let b = y.expect("boom");"##;
        let out = blank_noncode(src);
        assert!(out.contains("x.unwrap();"));
        assert!(out.contains("y.expect(\"    \")"));
        let panics = out.matches("panic!").count();
        assert_eq!(panics, 0, "blanked text: {out}");
        assert!(!out.contains("unreachable!"));
        // The char literal's brace is blanked; the lifetime survives.
        assert!(out.contains("let c = ' ';"));
        assert!(out.contains("&'static str"));
        // Line structure intact.
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn cfg_test_regions_cover_the_gated_item_only() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n\
                   #[cfg(test)]\n\
                   use std::fmt;\n\
                   fn live3() {}\n";
        let blanked = blank_noncode(src);
        let test = cfg_test_lines(&blanked, src.lines().count());
        assert_eq!(
            test,
            vec![false, true, true, true, true, false, true, true, false]
        );
    }
}
