//! The General Lower Bound Theorem (Theorem 1) as an executable
//! calculator.
//!
//! The theorem: if for a `(1 − ε − n^{−Ω(1)})`-fraction of (partition,
//! randomness) pairs some machine satisfies
//!
//! * Premise 1: `Pr[Z = z | p_i, r] ≤ 2^{−(H[Z] − o(IC))}` (little initial
//!   knowledge of `Z`), and
//! * Premise 2: `Pr[Z = z | A_i(p,r), p_i, r] ≥ 2^{−(H[Z] − IC)}` (the
//!   output pins `Z` down to `IC` fewer bits of surprisal),
//!
//! then `T = Ω(IC / Bk)`. The engine of the proof is **Lemma 3**: over `T`
//! rounds a machine's `k−1` links can deliver at most `(B+1)(k−1)T` bits
//! of transcript entropy, so any machine that must *learn* `IC` bits
//! forces `T ≥ IC / ((B+1)(k−1))`.

use km_core::Metrics;

/// A concrete instantiation of Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlbtBound {
    /// The information cost `IC` in bits.
    pub ic: f64,
    /// Per-link bandwidth `B` in bits/round.
    pub bandwidth_bits: u64,
    /// Number of machines `k`.
    pub k: usize,
}

impl GlbtBound {
    /// Builds an instance; `ic` must be positive.
    pub fn new(ic: f64, bandwidth_bits: u64, k: usize) -> Self {
        assert!(ic > 0.0, "information cost must be positive");
        assert!(k >= 2, "the theorem needs at least 2 machines");
        GlbtBound {
            ic,
            bandwidth_bits,
            k,
        }
    }

    /// The round lower bound `T ≥ IC / ((B+1)(k−1))` — Equation (3) with
    /// Lemma 3's exact constant.
    pub fn round_lower_bound(&self) -> f64 {
        self.ic / ((self.bandwidth_bits as f64 + 1.0) * (self.k as f64 - 1.0))
    }

    /// Lemma 3's transcript capacity: the maximum entropy (bits) a
    /// machine's transcript can carry in `t` rounds.
    pub fn transcript_capacity(&self, t: u64) -> f64 {
        (self.bandwidth_bits as f64 + 1.0) * (self.k as f64 - 1.0) * t as f64
    }

    /// Checks the theorem's conclusion against a measured run: the run's
    /// round count must be at least the lower bound (sanity: no correct
    /// algorithm we execute may beat the theorem).
    pub fn is_respected_by(&self, metrics: &Metrics) -> bool {
        (metrics.rounds as f64) >= self.round_lower_bound().floor()
    }

    /// Checks the *premise machinery* against a run: if some machine must
    /// end up knowing `IC` bits about `Z`, then some machine's received
    /// bits must be at least `IC` (its transcript is its only source of
    /// information beyond its input).
    pub fn transcript_explains_ic(&self, metrics: &Metrics) -> bool {
        metrics.max_recv_bits() as f64 >= self.ic
    }
}

/// Premise-2-style surprisal change: how many bits of surprisal about `Z`
/// the output removed, given prior and posterior probabilities of the
/// realized `z`.
///
/// # Panics
/// Panics unless `0 < prior ≤ posterior ≤ 1`.
pub fn surprisal_reduction(prior: f64, posterior: f64) -> f64 {
    assert!(
        prior > 0.0 && posterior >= prior && posterior <= 1.0,
        "need 0 < prior ≤ posterior ≤ 1"
    );
    crate::entropy::surprisal(prior) - crate::entropy::surprisal(posterior)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_bound_shape() {
        let b = GlbtBound::new(1_000_000.0, 99, 11);
        // IC/((B+1)(k−1)) = 10^6/(100·10) = 1000.
        assert!((b.round_lower_bound() - 1000.0).abs() < 1e-9);
        assert!((b.transcript_capacity(1000) - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn bound_scales_inversely_with_k_and_b() {
        let base = GlbtBound::new(1e6, 64, 8).round_lower_bound();
        assert!(GlbtBound::new(1e6, 128, 8).round_lower_bound() < base);
        assert!(GlbtBound::new(1e6, 64, 16).round_lower_bound() < base);
        assert!(GlbtBound::new(2e6, 64, 8).round_lower_bound() > base);
    }

    #[test]
    fn respected_by_measured_runs() {
        let b = GlbtBound::new(640.0, 63, 3);
        let mut m = Metrics::new(3);
        m.rounds = 5; // 640/(64·2) = 5
        assert!(b.is_respected_by(&m));
        m.rounds = 4;
        assert!(!b.is_respected_by(&m));
    }

    #[test]
    fn transcript_check() {
        let b = GlbtBound::new(100.0, 64, 4);
        let mut m = Metrics::new(4);
        m.recv_bits = vec![10, 150, 20, 0];
        assert!(b.transcript_explains_ic(&m));
        m.recv_bits = vec![10, 90, 20, 0];
        assert!(!b.transcript_explains_ic(&m));
    }

    #[test]
    fn surprisal_reduction_in_bits() {
        // Prior 2^-10, posterior 2^-4: 6 bits learned.
        let r = surprisal_reduction(2f64.powi(-10), 2f64.powi(-4));
        assert!((r - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn needs_two_machines() {
        let _ = GlbtBound::new(1.0, 8, 1);
    }
}
