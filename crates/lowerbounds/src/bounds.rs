//! The paper's predicted complexity bounds as constant-free shape
//! functions.
//!
//! Experiments plot these curves against measured round counts; the claim
//! being reproduced is the *shape* (exponents in `n` and `k`, who wins,
//! crossovers), not absolute constants — `Ω~`/`O~` hide polylog factors.

/// Theorem 2: PageRank needs `Ω~(n/(B·k²))` rounds.
pub fn pagerank_rounds_lb(n: usize, k: usize, bandwidth_bits: u64) -> f64 {
    n as f64 / (bandwidth_bits as f64 * (k * k) as f64)
}

/// Theorem 4: Algorithm 1 runs in `O~(n/k²)` rounds.
pub fn pagerank_rounds_ub(n: usize, k: usize) -> f64 {
    n as f64 / (k * k) as f64
}

/// The Klauck et al. baseline: `O~(n/k)` rounds.
pub fn pagerank_baseline_rounds(n: usize, k: usize) -> f64 {
    n as f64 / k as f64
}

/// Theorem 3: triangle enumeration needs `Ω~(m/(B·k^{5/3}))` rounds on
/// graphs with `m = Θ(n²)` edges.
pub fn triangle_rounds_lb(m: usize, k: usize, bandwidth_bits: u64) -> f64 {
    m as f64 / (bandwidth_bits as f64 * (k as f64).powf(5.0 / 3.0))
}

/// Theorem 5: the algorithm runs in `O~(m/k^{5/3} + n/k^{4/3})` rounds.
pub fn triangle_rounds_ub(n: usize, m: usize, k: usize) -> f64 {
    let kf = k as f64;
    m as f64 / kf.powf(5.0 / 3.0) + n as f64 / kf.powf(4.0 / 3.0)
}

/// The general IC-derived bound `Ω~((t/k)^{2/3}/k)` rounds for graphs with
/// `t` triangles (the form Theorem 3's proof actually derives).
pub fn triangle_rounds_lb_from_t(t: f64, k: usize, bandwidth_bits: u64) -> f64 {
    (t / k as f64).powf(2.0 / 3.0) / (k as f64 * bandwidth_bits as f64)
}

/// Corollary 1: congested-clique triangle enumeration is `Θ~(n^{1/3}/B)`.
pub fn clique_triangle_rounds(n: usize, bandwidth_bits: u64) -> f64 {
    (n as f64).powf(1.0 / 3.0) / bandwidth_bits as f64
}

/// Corollary 2: round-optimal k-machine triangle enumeration exchanges
/// `Ω~(n²·k^{1/3})` messages.
pub fn triangle_messages_lb(n: usize, k: usize) -> f64 {
    (n * n) as f64 * (k as f64).powf(1.0 / 3.0)
}

/// Corollary 2 (congested clique): `Ω~(n^{7/3})` messages for
/// `O~(n^{1/3})`-round algorithms.
pub fn clique_triangle_messages_lb(n: usize) -> f64 {
    (n as f64).powf(7.0 / 3.0)
}

/// Section 1.3: distributed sorting is `Θ~(n/k²)` rounds (GLBT lower
/// bound; sample-sort upper bound).
pub fn sorting_rounds(n: usize, k: usize) -> f64 {
    n as f64 / (k * k) as f64
}

/// Section 1.3 / \[51\]: connectivity and MST are `Θ~(n/k²)` rounds.
pub fn mst_rounds(n: usize, k: usize) -> f64 {
    n as f64 / (k * k) as f64
}

/// Footnote 3: REP→RVP conversion costs `O~(m/k² + n/k)` rounds.
pub fn rep_conversion_rounds(n: usize, m: usize, k: usize) -> f64 {
    m as f64 / (k * k) as f64 + n as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_gap_is_factor_k() {
        let n = 1 << 20;
        for k in [4usize, 16, 64] {
            let ub = pagerank_rounds_ub(n, k);
            let base = pagerank_baseline_rounds(n, k);
            assert!((base / ub - k as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn triangle_ub_terms_cross_over() {
        // Dense: m-term dominates; sparse: n-term dominates.
        let k = 64;
        let dense = triangle_rounds_ub(1000, 500_000, k);
        let m_term = 500_000.0 / (k as f64).powf(5.0 / 3.0);
        assert!(dense > m_term && dense < 1.5 * m_term);
        let sparse = triangle_rounds_ub(1_000_000, 2_000_000, k);
        let n_term = 1_000_000.0 / (k as f64).powf(4.0 / 3.0);
        assert!(sparse > n_term);
    }

    #[test]
    fn lower_bounds_below_upper_bounds() {
        let (n, k, b) = (1 << 16, 32, 256);
        let m = n * n / 4;
        assert!(pagerank_rounds_lb(n, k, b) <= pagerank_rounds_ub(n, k));
        assert!(triangle_rounds_lb(m, k, b) <= triangle_rounds_ub(n, m, k));
    }

    #[test]
    fn t_form_matches_dense_form() {
        // t = Θ(n³) gives IC form Θ(n²/k^{2/3}), matching m/k^{5/3} up to B.
        let n = 1024usize;
        let k = 64;
        let t = (n as f64).powi(3) / 6.0;
        let from_t = triangle_rounds_lb_from_t(t, k, 1);
        let dense = triangle_rounds_lb(n * n, k, 1);
        let ratio = from_t / dense;
        assert!(ratio > 0.05 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn clique_bound_is_cuberoot() {
        assert!((clique_triangle_rounds(1_000_000, 1) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn message_bound_grows_with_k() {
        assert!(triangle_messages_lb(1000, 64) > triangle_messages_lb(1000, 8));
        assert!((clique_triangle_messages_lb(128) - (128f64).powf(7.0 / 3.0)).abs() < 1e-6);
    }
}
