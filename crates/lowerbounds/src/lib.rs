//! # km-lower
//!
//! The **General Lower Bound Theorem** (Theorem 1) machinery and its
//! instantiations.
//!
//! Theorem 1 relates round complexity to *information cost*: if on a
//! `(1−ε−n^{−Ω(1)})`-fraction of inputs some machine's output lowers the
//! surprisal of a random variable `Z` by `IC` bits relative to its initial
//! knowledge (Premises 1 and 2), then `T = Ω(IC/Bk)`. The proof's bridge
//! is Lemma 3: a machine's transcript over `T` rounds takes at most
//! `2^{(B+1)(k−1)T}` values, so its entropy — hence the information it can
//! deliver — is at most `(B+1)(k−1)T` bits.
//!
//! Modules:
//!
//! * [`entropy`] — Shannon entropy, surprisal, mutual information (the
//!   quantities the proof manipulates), computed from empirical counts;
//! * [`glbt`] — the theorem itself as a calculator: IC → round lower
//!   bound, plus the Lemma 3 transcript-capacity bound and premise checks
//!   against measured [`km_core::Metrics`];
//! * [`bounds`] — the paper's concrete predicted bounds (Theorems 2, 3,
//!   Corollaries 1, 2, and the sorting/MST applications of Section 1.3)
//!   as constant-free shape functions for the experiment tables;
//! * [`pagerank_lb`] — the Theorem 2 instantiation on the Figure-1 graph;
//! * [`triangle_lb`] — the Theorem 3 instantiation on `G(n, 1/2)`,
//!   including Rivin's `Ω(ℓ^{2/3})` edges-for-ℓ-triangles bound;
//! * [`rodl_rucinski`] — the Proposition 2 concentration bound, validated
//!   empirically;
//! * [`infocost`] — joins measured transcripts with predicted IC into the
//!   reports the GLBT experiment prints.

pub mod bounds;
pub mod entropy;
pub mod glbt;
pub mod infocost;
pub mod pagerank_lb;
pub mod rodl_rucinski;
pub mod triangle_lb;

pub use glbt::GlbtBound;
pub use infocost::InfoCostReport;
