//! Proposition 2 (Rödl–Ruciński): induced-edge concentration.
//!
//! For a graph with `m < ηn²` edges and a uniformly random `t`-subset `R`
//! with `t ≥ 1/3η`: `Pr[e(G[R]) > 3ηt²] < t·e^{−ct}`. The proof of
//! Theorem 5 uses it (with `η = 2m/n²` in the dense case and `η = 1/3t`
//! in the sparse case) to bound the edges any triplet machine receives —
//! a Chernoff bound does *not* apply because induced edges are not
//! independent (footnote 13).

use km_graph::subgraph::{induced_edge_count, random_vertex_subset};
use km_graph::CsrGraph;
use rand::Rng;

/// The `η` used by the Theorem 5 analysis for subset size `t`:
/// `max(2m/n², 1/3t)` (dense case / sparse case).
pub fn eta_for(g: &CsrGraph, t: usize) -> f64 {
    assert!(t > 0, "need a nonempty subset");
    let n = g.n() as f64;
    let dense = 2.0 * g.m() as f64 / (n * n);
    let sparse = 1.0 / (3.0 * t as f64);
    dense.max(sparse)
}

/// The Proposition 2 threshold `3ηt²`.
pub fn induced_edge_bound(g: &CsrGraph, t: usize) -> f64 {
    3.0 * eta_for(g, t) * (t * t) as f64
}

/// Samples `trials` random `t`-subsets and returns the fraction whose
/// induced edge count exceeds `3ηt²` (should be ≈ 0 per Proposition 2).
pub fn violation_rate<R: Rng>(g: &CsrGraph, t: usize, trials: usize, rng: &mut R) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let bound = induced_edge_bound(g, t);
    let mut violations = 0usize;
    for _ in 0..trials {
        let subset = random_vertex_subset(g, t, rng);
        if (induced_edge_count(g, &subset) as f64) > bound {
            violations += 1;
        }
    }
    violations as f64 / trials as f64
}

/// The mean induced edge count over `trials` random `t`-subsets
/// (for the P2 experiment table; expectation is `m·t(t−1)/(n(n−1))`).
pub fn mean_induced_edges<R: Rng>(g: &CsrGraph, t: usize, trials: usize, rng: &mut R) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let total: usize = (0..trials)
        .map(|_| {
            let subset = random_vertex_subset(g, t, rng);
            induced_edge_count(g, &subset)
        })
        .sum();
    total as f64 / trials as f64
}

/// Exact expectation of `e(G[R])` for a uniform `t`-subset:
/// `m · t(t−1) / (n(n−1))`.
pub fn expected_induced_edges(g: &CsrGraph, t: usize) -> f64 {
    let n = g.n() as f64;
    if g.n() < 2 {
        return 0.0;
    }
    g.m() as f64 * (t as f64) * (t as f64 - 1.0) / (n * (n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::{classic, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn eta_switches_between_regimes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let dense = gnp(100, 0.5, &mut rng);
        // Dense: 2m/n² ≈ 0.5 dominates 1/3t for t = 20.
        assert!((eta_for(&dense, 20) - 2.0 * dense.m() as f64 / 10_000.0).abs() < 1e-12);
        let sparse = classic::path(100);
        // Sparse (m=99, 2m/n² ≈ 0.020): 1/3t dominates for t = 10.
        assert!((eta_for(&sparse, 10) - 1.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn no_violations_on_gnp() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = gnp(300, 0.4, &mut rng);
        for t in [20usize, 60, 120] {
            let rate = violation_rate(&g, t, 200, &mut rng);
            assert_eq!(rate, 0.0, "t={t}");
        }
    }

    #[test]
    fn mean_matches_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = gnp(200, 0.3, &mut rng);
        let t = 50;
        let mean = mean_induced_edges(&g, t, 400, &mut rng);
        let expect = expected_induced_edges(&g, t);
        assert!(
            (mean - expect).abs() < 0.1 * expect,
            "mean {mean} vs expectation {expect}"
        );
    }

    #[test]
    fn bound_exceeds_expectation_by_constant_factor() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = gnp(200, 0.5, &mut rng);
        let t = 40;
        // 3ηt² = 6·m/n²·t² ≈ 6·E[e(G[R])] — a comfortable margin.
        assert!(induced_edge_bound(&g, t) > 3.0 * expected_induced_edges(&g, t));
    }

    #[test]
    fn complete_graph_edge_case() {
        // K_n: every t-subset induces exactly C(t,2); bound must hold.
        let g = classic::complete(50);
        let t = 20;
        let induced = (t * (t - 1) / 2) as f64;
        assert!(induced <= induced_edge_bound(&g, t));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(violation_rate(&g, t, 50, &mut rng), 0.0);
    }
}
