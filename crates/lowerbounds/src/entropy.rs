//! Information-theoretic primitives (Section 2.2's toolbox).

/// Surprisal (self-information) of an event with probability `p`:
/// `log₂(1/p)` — the paper's measure of "amount of surprise" (Section 2.1).
///
/// # Panics
/// Panics unless `0 < p ≤ 1`.
pub fn surprisal(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability out of (0,1]: {p}");
    -p.log2()
}

/// Binary entropy `H(p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// Shannon entropy (bits) of an empirical distribution given by counts.
pub fn entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.log2()
        })
        .sum()
}

/// Mutual information `I[X;Y] = H(X) + H(Y) − H(X,Y)` (bits) from a joint
/// count matrix (`joint[x][y]`).
pub fn mutual_information(joint: &[Vec<u64>]) -> f64 {
    let rows = joint.len();
    let cols = joint.first().map_or(0, Vec::len);
    let mut row_counts = vec![0u64; rows];
    let mut col_counts = vec![0u64; cols];
    let mut flat = Vec::with_capacity(rows * cols);
    for (x, row) in joint.iter().enumerate() {
        assert_eq!(row.len(), cols, "ragged joint matrix");
        for (y, &c) in row.iter().enumerate() {
            row_counts[x] += c;
            col_counts[y] += c;
            flat.push(c);
        }
    }
    entropy_from_counts(&row_counts) + entropy_from_counts(&col_counts) - entropy_from_counts(&flat)
}

/// Entropy of a uniform distribution over `m` outcomes: `log₂ m`.
pub fn uniform_entropy(m: u64) -> f64 {
    assert!(m > 0, "need at least one outcome");
    (m as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surprisal_of_coin_flip() {
        assert!((surprisal(0.5) - 1.0).abs() < 1e-12);
        assert!((surprisal(0.25) - 2.0).abs() < 1e-12);
        assert_eq!(surprisal(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn surprisal_rejects_zero() {
        let _ = surprisal(0.0);
    }

    #[test]
    fn binary_entropy_extremes_and_peak() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.1) < binary_entropy(0.3));
    }

    #[test]
    fn empirical_entropy_uniform_and_point() {
        assert!((entropy_from_counts(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy_from_counts(&[7, 0, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[]), 0.0);
    }

    #[test]
    fn mi_of_independent_and_identical() {
        // Independent fair bits: I = 0.
        let indep = vec![vec![25, 25], vec![25, 25]];
        assert!(mutual_information(&indep).abs() < 1e-12);
        // Perfectly correlated bits: I = 1.
        let ident = vec![vec![50, 0], vec![0, 50]];
        assert!((mutual_information(&ident) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_entropy_is_log() {
        assert!((uniform_entropy(1024) - 10.0).abs() < 1e-12);
    }
}
