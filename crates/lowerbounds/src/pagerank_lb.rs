//! Theorem 2: the `Ω~(n/(B·k²))` PageRank lower bound, instantiated.
//!
//! `Z` is the set of pairs `{(b_i, v_i)}`: the secret orientation bits
//! matched with the (random-ID-obfuscated) output vertices. The proof
//! shows
//!
//! * Lemma 5: RVP initially reveals only `O(n·log n / k²)` weakly
//!   connected `x–u–t–v` paths to any machine, so (Lemma 7) every machine
//!   starts `≈ m/4` bits short of `Z`;
//! * Lemma 8: a machine outputting `m/4k` PageRank values of `V`-vertices
//!   can reconstruct that many `(b_i, v_i)` pairs, closing `IC = m/4k`
//!   bits of surprisal.
//!
//! Theorem 1 then yields `T = Ω(m/4k / Bk) = Ω~(n/Bk²)`.

use crate::glbt::GlbtBound;
use km_graph::generators::lower_bound_h::LowerBoundGraph;
use km_graph::{MachineIdx, Partition};

/// `H[Z]`-scale quantities of the Theorem 2 construction on `H(n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagerankLb {
    /// Number of vertices `n = 4q + 1`.
    pub n: usize,
    /// Number of machines.
    pub k: usize,
    /// `q = m/4`: the number of secret bits (entropy of the orientation
    /// part of `Z`).
    pub secret_bits: usize,
    /// The information cost `IC = m/4k` of Lemma 8.
    pub ic: f64,
}

impl PagerankLb {
    /// Instantiates the bound for an `H` graph on (approximately) `n`
    /// vertices and `k` machines.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2, "need k ≥ 2");
        let q = (n - 1) / 4;
        let n = 4 * q + 1;
        PagerankLb {
            n,
            k,
            secret_bits: q,
            ic: q as f64 / k as f64,
        }
    }

    /// The Theorem 1 instance (IC = m/4k).
    pub fn glbt(&self, bandwidth_bits: u64) -> GlbtBound {
        GlbtBound::new(self.ic, bandwidth_bits, self.k)
    }

    /// The round lower bound `Ω(n/(B·k²))` (exact Lemma 3 constant).
    pub fn round_lower_bound(&self, bandwidth_bits: u64) -> f64 {
        self.glbt(bandwidth_bits).round_lower_bound()
    }
}

/// Lemma 5 (empirical side): the number of weakly connected
/// `x_i–u_i–t_i–v_i` paths machine `i` can discover from its RVP share —
/// it learns path `i` iff it holds `{x_i, t_i}` or `{u_i, v_i}` (those two
/// co-locations reveal the orientation and the matching output vertex).
pub fn paths_known_initially(h: &LowerBoundGraph, part: &Partition, machine: MachineIdx) -> usize {
    (0..h.quarter)
        .filter(|&i| {
            let (x, u, t, v) = (h.x_vertex(i), h.u_vertex(i), h.t_vertex(i), h.v_vertex(i));
            let at = |w| part.home(w) == machine;
            (at(x) && at(t)) || (at(u) && at(v))
        })
        .count()
}

/// The Lemma 5 claim: w.h.p. every machine knows only
/// `O(n·log n / k²)` paths initially. Returns the max over machines,
/// to be compared against `bound_factor · (q·log n / k²  + 1)`.
pub fn max_paths_known(h: &LowerBoundGraph, part: &Partition) -> usize {
    (0..part.k())
        .map(|i| paths_known_initially(h, part, i))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ic_scales_as_n_over_k() {
        let lb = PagerankLb::new(4001, 10);
        assert_eq!(lb.secret_bits, 1000);
        assert!((lb.ic - 100.0).abs() < 1e-12);
        // Round LB = IC/((B+1)(k−1)) = 100/(65·9).
        let t = lb.round_lower_bound(64);
        assert!((t - 100.0 / (65.0 * 9.0)).abs() < 1e-9);
    }

    #[test]
    fn round_bound_quadratic_in_k() {
        let n = 16_001;
        let b = 64;
        let t4 = PagerankLb::new(n, 4).round_lower_bound(b);
        let t8 = PagerankLb::new(n, 8).round_lower_bound(b);
        // (B+1)(k−1)·k scaling: roughly 4x between k and 2k.
        let ratio = t4 / t8;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn lemma5_paths_concentrate() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let h = LowerBoundGraph::random(8001, &mut rng);
        let n = h.n();
        for k in [4usize, 8, 16] {
            let part = Partition::random_vertex(n, k, &mut rng);
            let max = max_paths_known(&h, &part) as f64;
            // Expected per machine: 2q/k² (two co-location patterns).
            let expected = 2.0 * h.quarter as f64 / (k * k) as f64;
            let logn = (n as f64).ln();
            assert!(
                max <= 4.0 * expected + 4.0 * logn,
                "k={k}: max {max}, expected {expected}"
            );
        }
    }

    #[test]
    fn path_detection_matches_colocations() {
        let h = LowerBoundGraph::new(vec![true, false]);
        // n = 9: x0 x1 | u0 u1 | t0 t1 | v0 v1 | w.
        // Machine 0 gets {x0, t0} -> knows path 0.
        let mut assign = vec![1; 9];
        assign[h.x_vertex(0) as usize] = 0;
        assign[h.t_vertex(0) as usize] = 0;
        let part = Partition::from_assignment(2, assign);
        assert_eq!(paths_known_initially(&h, &part, 0), 1);
        // Machine 1 holds everything else: path 1 fully, plus {u0, v0}.
        assert_eq!(paths_known_initially(&h, &part, 1), 2);
    }
}
