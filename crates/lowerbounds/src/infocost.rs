//! Joining predicted information costs with measured transcripts.
//!
//! The GLBT experiment row: for an instrumented run, compare (a) the
//! predicted `IC`, (b) the busiest machine's measured received bits
//! (its transcript `Π_i`, the quantity Premise 2 forces to be ≥ IC), and
//! (c) the Lemma 3 capacity `(B+1)(k−1)T` of the observed run — the chain
//! `IC ≤ max|Π_i| ≤ (B+1)(k−1)T` is exactly how Theorem 1 forces `T` up.

use crate::glbt::GlbtBound;
use km_core::Metrics;
use serde::Serialize;

/// One GLBT validation row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct InfoCostReport {
    /// Predicted information cost (bits).
    pub ic_predicted: f64,
    /// Measured `max_i |Π_i|` (bits received by the busiest machine).
    pub max_transcript_bits: u64,
    /// Lemma 3 capacity of the observed run: `(B+1)(k−1)·rounds`.
    pub lemma3_capacity: f64,
    /// Observed rounds.
    pub rounds: u64,
    /// The theorem's round lower bound `IC/((B+1)(k−1))`.
    pub round_lower_bound: f64,
}

impl InfoCostReport {
    /// Builds the report from a run's metrics and a GLBT instance.
    pub fn from_run(metrics: &Metrics, bound: &GlbtBound) -> Self {
        InfoCostReport {
            ic_predicted: bound.ic,
            max_transcript_bits: metrics.max_recv_bits(),
            lemma3_capacity: bound.transcript_capacity(metrics.rounds),
            rounds: metrics.rounds,
            round_lower_bound: bound.round_lower_bound(),
        }
    }

    /// The Theorem 1 chain `IC ≤ (B+1)(k−1)·T` must hold on any correct
    /// run (the transcript inequality `max|Π_i| ≤ capacity` is structural).
    pub fn chain_holds(&self) -> bool {
        self.max_transcript_bits as f64 <= self.lemma3_capacity + 1e-9
            && self.rounds as f64 >= self.round_lower_bound.floor()
    }

    /// How many of the predicted IC bits the busiest transcript actually
    /// carried (≥ 1.0 means the algorithm indeed moved IC bits; ≪ 1.0
    /// would indicate the prediction overshoots for this instance).
    pub fn transcript_to_ic_ratio(&self) -> f64 {
        self.max_transcript_bits as f64 / self.ic_predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(rounds: u64, recv: Vec<u64>) -> Metrics {
        let mut m = Metrics::new(recv.len());
        m.rounds = rounds;
        m.recv_bits = recv;
        m
    }

    #[test]
    fn chain_detects_consistency() {
        let bound = GlbtBound::new(1000.0, 99, 11);
        // 1000/(100·10) = 1 round minimum.
        let ok = metrics(5, vec![0, 2000, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let report = InfoCostReport::from_run(&ok, &bound);
        assert!(report.chain_holds());
        assert!((report.transcript_to_ic_ratio() - 2.0).abs() < 1e-12);
        // Transcript exceeding Lemma 3 capacity is impossible → flagged.
        let bad = metrics(1, vec![0, 2000, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let report = InfoCostReport::from_run(&bad, &bound);
        assert!(!report.chain_holds());
    }

    #[test]
    fn report_carries_run_shape() {
        let bound = GlbtBound::new(640.0, 63, 3);
        let m = metrics(7, vec![100, 50, 640]);
        let r = InfoCostReport::from_run(&m, &bound);
        assert_eq!(r.rounds, 7);
        assert_eq!(r.max_transcript_bits, 640);
        assert!((r.lemma3_capacity - 64.0 * 2.0 * 7.0).abs() < 1e-9);
        assert!((r.round_lower_bound - 5.0).abs() < 1e-9);
    }
}
