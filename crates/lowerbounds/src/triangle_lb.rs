//! Theorem 3: the `Ω~(m/(B·k^{5/3}))` triangle-enumeration lower bound.
//!
//! `Z` is the characteristic vector of the edges of `G ~ G(n, 1/2)`
//! (`H[Z] = C(n,2)` bits). The proof:
//!
//! * Lemma 10: each machine's RVP share reveals only `O(n²·log n/k)`
//!   edges, so its prior on `Z` stays within `2^{−(C(n,2) − O(n²log n/k))}`;
//! * Lemma 11: the machine outputting `t/k` of the `t = Θ(n³)` triangles
//!   pins down `Ω((t/k)^{2/3})` *previously unknown* edges — Rivin's bound
//!   that `ℓ` triangles need `Ω(ℓ^{2/3})` distinct edges;
//! * Theorem 1 with `IC = Θ(n²/k^{2/3})` gives `T = Ω~(n²/(B·k^{5/3}))`.

use crate::glbt::GlbtBound;
use km_graph::ids::Triangle;

/// Rivin's bound: `ℓ` distinct triangles require at least
/// `Ω(ℓ^{2/3})` distinct edges (Equation (10) of \[60\]); here with the
/// Kruskal–Katona constant: a set of `e` edges spans at most
/// `(√2/6)·e^{3/2} ≤ e^{3/2}` triangles, so `ℓ` triangles need
/// `≥ ℓ^{2/3}` edges (up to the constant we drop).
pub fn edges_needed_for_triangles(triangles: f64) -> f64 {
    if triangles <= 0.0 {
        return 0.0;
    }
    triangles.powf(2.0 / 3.0)
}

/// Counts the exact number of distinct edges used by a triangle list
/// (the empirical side of Rivin's bound).
pub fn distinct_edges(triangles: &[Triangle]) -> usize {
    let mut edges: Vec<(u32, u32)> = triangles
        .iter()
        .flat_map(|t| t.edges().into_iter().map(|e| (e.u, e.v)))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges.len()
}

/// The Theorem 3 instantiation for `G(n, 1/2)` on `k` machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleLb {
    /// Vertices.
    pub n: usize,
    /// Machines.
    pub k: usize,
    /// Expected triangle count `t = C(n,3)/8`.
    pub t: f64,
    /// `IC = Ω((t/k)^{2/3})` — the surprisal closed by the busiest
    /// machine's output (Lemma 11).
    pub ic: f64,
}

impl TriangleLb {
    /// Builds the instance.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2, "need k ≥ 2");
        let nf = n as f64;
        let t = nf * (nf - 1.0) * (nf - 2.0) / 6.0 / 8.0;
        let ic = (t / k as f64).powf(2.0 / 3.0);
        TriangleLb { n, k, t, ic }
    }

    /// The Theorem 1 instance.
    pub fn glbt(&self, bandwidth_bits: u64) -> GlbtBound {
        GlbtBound::new(self.ic, bandwidth_bits, self.k)
    }

    /// The round lower bound `Ω~(n²/(B·k^{5/3}))`.
    pub fn round_lower_bound(&self, bandwidth_bits: u64) -> f64 {
        self.glbt(bandwidth_bits).round_lower_bound()
    }

    /// Corollary 2's message bound for round-optimal algorithms:
    /// every machine must receive `Ω~(IC)` bits ⇒ `Ω~(k·IC)` messages of
    /// `O(log n)` bits, i.e. `Ω~(n²·k^{1/3})`.
    pub fn message_lower_bound(&self) -> f64 {
        self.k as f64 * self.ic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::gnp;
    use km_triangle::seq::enumerate_triangles;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rivin_bound_holds_empirically() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for (n, p) in [(30usize, 0.5), (40, 0.3), (25, 0.8)] {
            let g = gnp(n, p, &mut rng);
            let ts = enumerate_triangles(&g);
            if ts.is_empty() {
                continue;
            }
            let needed = edges_needed_for_triangles(ts.len() as f64);
            let used = distinct_edges(&ts) as f64;
            assert!(
                used >= needed,
                "n={n} p={p}: {used} edges for {} triangles (bound {needed})",
                ts.len()
            );
        }
        assert_eq!(edges_needed_for_triangles(0.0), 0.0);
    }

    #[test]
    fn distinct_edge_counting() {
        let ts = vec![Triangle::new(0, 1, 2), Triangle::new(1, 2, 3)];
        assert_eq!(distinct_edges(&ts), 5); // edge {1,2} shared
    }

    #[test]
    fn ic_scales_as_n_squared_over_k23() {
        let lb = TriangleLb::new(512, 8);
        let expected = (lb.t / 8.0).powf(2.0 / 3.0);
        assert!((lb.ic - expected).abs() < 1e-6);
        // IC ≈ (n³/48k)^{2/3} = Θ(n²/k^{2/3}).
        let n2_scale = (512f64 * 512.0) / 8f64.powf(2.0 / 3.0);
        let ratio = lb.ic / n2_scale;
        assert!(ratio > 0.05 && ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn round_bound_k_to_the_five_thirds() {
        let b = 64;
        let t8 = TriangleLb::new(1024, 8).round_lower_bound(b);
        let t64 = TriangleLb::new(1024, 64).round_lower_bound(b);
        // Ratio should be ≈ 8^{5/3} = 32.
        let ratio = t8 / t64;
        assert!(ratio > 20.0 && ratio < 50.0, "ratio {ratio}");
    }

    #[test]
    fn message_bound_shape() {
        let lb = TriangleLb::new(256, 27);
        let expected = 27.0 * lb.ic;
        assert!((lb.message_lower_bound() - expected).abs() < 1e-6);
    }
}
