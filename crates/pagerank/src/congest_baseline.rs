//! The `O~(n/k)` conversion-theorem baseline (Klauck et al. \[33\]).
//!
//! This is the algorithm the paper improves on: the CONGEST random-walk
//! PageRank of \[20\] mechanically translated to the k-machine model. Each
//! *vertex* `u` sends a per-edge count message `⟨c, u→v⟩` to each neighbor
//! `v` chosen by its tokens — counts are **not** aggregated across the
//! vertices co-hosted on a machine, and there is no heavy-vertex machine
//! distribution. On a star, the hub's home machine therefore receives
//! `Θ(n)` messages per iteration (one per leaf edge) instead of
//! Algorithm 1's `k−1`, which is exactly the `Ω(n/k)`-vs-`O~(n/k²)` gap
//! the T4-UB experiment measures.
//!
//! Token dynamics, the flush barrier, and the estimator are identical to
//! [`crate::kmachine`], so any output difference between the two
//! protocols is purely statistical.

use crate::kmachine::{binomial, LocalState, PrMsg, PrOutput, PrPayload};
use crate::PrConfig;
use km_core::{
    run_algorithm, Envelope, KmAlgorithm, Metrics, NetConfig, Outbox, Protocol, RoundCtx, Runner,
    Status,
};
use km_graph::{DiGraph, Partition, Vertex};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One machine of the conversion-theorem baseline.
#[derive(Debug)]
pub struct CongestPageRank {
    st: LocalState,
    cfg: PrConfig,
    parity: bool,
    flushes_seen: usize,
    flush_live: u64,
    my_live: u64,
    pending: Vec<PrMsg>,
    finished: bool,
    /// Iterations executed (diagnostics).
    pub iterations: u64,
}

impl CongestPageRank {
    /// Builds one protocol instance per machine.
    pub fn build_all(g: &DiGraph, part: &Arc<Partition>, cfg: PrConfig) -> Vec<CongestPageRank> {
        LocalState::build_all(g, part, &cfg)
            .into_iter()
            .map(|st| CongestPageRank {
                st,
                cfg,
                parity: false,
                flushes_seen: 0,
                flush_live: 0,
                my_live: 0,
                pending: Vec::new(),
                finished: false,
                iterations: 0,
            })
            .collect()
    }

    /// This machine's output.
    pub fn output(&self) -> PrOutput {
        let n = self.st.g.global_n();
        let estimates = self
            .st
            .g
            .vertices()
            .iter()
            .zip(&self.st.visits)
            .map(|(&v, &psi)| (v, self.cfg.estimate(n, psi)))
            .collect();
        PrOutput { estimates }
    }

    fn apply(&mut self, msg: &PrMsg) {
        match msg.payload {
            PrPayload::Count { v, count } => self.st.arrive_at_vertex(v, count),
            // lint: allow(panic) — the CONGEST baseline protocol has no Heavy sender
            PrPayload::Heavy { .. } => unreachable!("baseline never sends Heavy"),
            PrPayload::Flush { live } => {
                self.flushes_seen += 1;
                self.flush_live += live;
            }
        }
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<PrMsg>) {
        let me = ctx.me;
        let n = self.st.g.global_n();
        let eps = self.cfg.reset_prob;
        let mut survivors_total = 0;
        let mut staged_local: Vec<(usize, u64)> = Vec::new();

        for j in 0..self.st.g.hosted() {
            let t = std::mem::take(&mut self.st.tokens[j]);
            if t == 0 {
                continue;
            }
            let dead = binomial(ctx.rng, t, eps);
            let live = t - dead;
            if live == 0 {
                continue;
            }
            let outs = self.st.g.neighbors(j);
            if outs.is_empty() {
                continue;
            }
            survivors_total += live;
            // Per-vertex (per-edge) aggregation only: the CONGEST view.
            let mut alpha_u: BTreeMap<Vertex, u64> = BTreeMap::new();
            for _ in 0..live {
                let v = outs[ctx.rng.gen_range(0..outs.len())];
                *alpha_u.entry(v).or_insert(0) += 1;
            }
            for (v, c) in alpha_u {
                let home = self.st.g.home(v);
                if home == me {
                    // lint: allow(panic) — home(v) == me implies v is hosted here
                    let lj = self.st.g.local(v).expect("home(v) == me implies hosted");
                    staged_local.push((lj, c));
                } else {
                    // One message per (u, v) edge — no cross-vertex merge.
                    out.send(home, PrMsg::count(n, self.parity, v, c));
                }
            }
        }
        for (j, c) in staged_local {
            self.st.tokens[j] += c;
            self.st.visits[j] += c;
        }
        self.my_live = survivors_total;
        self.iterations += 1;
        out.broadcast(me, PrMsg::flush(self.parity, survivors_total));
    }

    fn maybe_advance(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<PrMsg>) {
        while !self.finished && self.flushes_seen == ctx.k - 1 {
            if self.flush_live + self.my_live == 0 {
                self.finished = true;
                return;
            }
            self.parity = !self.parity;
            self.flushes_seen = 0;
            self.flush_live = 0;
            self.my_live = 0;
            let pending = std::mem::take(&mut self.pending);
            for msg in &pending {
                self.apply(msg);
            }
            self.step(ctx, out);
        }
    }
}

use rand::Rng;

impl Protocol for CongestPageRank {
    type Msg = PrMsg;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<PrMsg>>,
        out: &mut Outbox<PrMsg>,
    ) -> Status {
        if ctx.round == 0 {
            self.step(ctx, out);
            self.maybe_advance(ctx, out);
            return if self.finished {
                Status::Done
            } else {
                Status::Active
            };
        }
        for env in inbox.drain(..) {
            if env.msg.parity == self.parity {
                self.apply(&env.msg);
            } else {
                self.pending.push(env.msg);
            }
        }
        self.maybe_advance(ctx, out);
        if self.finished {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// The conversion-theorem baseline as a [`KmAlgorithm`].
#[derive(Debug, Clone, Copy)]
pub struct CongestBaseline<'a> {
    /// The input digraph.
    pub g: &'a DiGraph,
    /// The vertex partition (its `k` must match the runner's).
    pub part: &'a Arc<Partition>,
    /// Token parameters.
    pub cfg: PrConfig,
}

impl KmAlgorithm for CongestBaseline<'_> {
    type Machine = CongestPageRank;
    type Output = Vec<f64>;

    fn build(&self, k: usize) -> Vec<CongestPageRank> {
        assert_eq!(self.part.k(), k, "partition k must match the network k");
        CongestPageRank::build_all(self.g, self.part, self.cfg)
    }

    fn extract(&self, machines: Vec<CongestPageRank>, _metrics: &Metrics) -> Vec<f64> {
        let mut pr = vec![0.0; self.g.n()];
        for m in &machines {
            for (v, est) in m.output().estimates {
                pr[v as usize] = est;
            }
        }
        pr
    }
}

/// Runs the baseline end to end. Thin wrapper over [`run_algorithm`]
/// with the default engine choice.
pub fn run_congest_pagerank(
    g: &DiGraph,
    part: &Arc<Partition>,
    cfg: PrConfig,
    net: NetConfig,
) -> Result<(Vec<f64>, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&CongestBaseline { g, part, cfg }, Runner::new(net))?;
    Ok((outcome.output, outcome.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmachine::{bidirect, run_kmachine_pagerank};
    use crate::power_iteration::power_iteration;
    use km_graph::generators::classic;

    fn net(k: usize, n: usize, seed: u64) -> NetConfig {
        NetConfig::polylog(k, n, seed).max_rounds(2_000_000)
    }

    #[test]
    fn baseline_matches_power_iteration_statistically() {
        let n = 24;
        let arcs: Vec<(Vertex, Vertex)> = (0..n as Vertex)
            .map(|i| (i, (i + 1) % n as Vertex))
            .collect();
        let g = DiGraph::from_arcs(n, &arcs);
        let part = Arc::new(Partition::by_hash(n, 4, 1));
        let cfg = PrConfig {
            reset_prob: 0.3,
            tokens_per_vertex: 4000,
        };
        let (pr, _) = run_congest_pagerank(&g, &part, cfg, net(4, n, 3)).unwrap();
        let exact = power_iteration(&g, 0.3, 1e-13, 10_000);
        for v in 0..n {
            let rel = (pr[v] - exact[v]).abs() / exact[v];
            assert!(rel < 0.08, "v={v} rel={rel}");
        }
    }

    #[test]
    fn star_congestion_gap_vs_algorithm_1() {
        // The headline comparison: on a star, Algorithm 1's cross-vertex
        // aggregation and heavy-vertex machine counts beat the per-edge
        // baseline by a wide margin in both messages and rounds.
        let n = 600;
        let k = 8;
        let g = bidirect(&classic::star(n));
        let part = Arc::new(Partition::by_hash(n, k, 5));
        let cfg = PrConfig {
            reset_prob: 0.4,
            tokens_per_vertex: 8,
        };
        let (_, m_base) = run_congest_pagerank(&g, &part, cfg, net(k, n, 7)).unwrap();
        let (_, m_alg1) = run_kmachine_pagerank(&g, &part, cfg, net(k, n, 7)).unwrap();
        // Both protocols pay the same k² flush messages per iteration, which
        // dilutes the total-message ratio at this small scale; the data-only
        // gap is ~20× (see the T4-UB experiment for the full-scale sweep).
        assert!(
            m_base.total_msgs() > 2 * m_alg1.total_msgs(),
            "baseline msgs {} vs alg1 {}",
            m_base.total_msgs(),
            m_alg1.total_msgs()
        );
        assert!(
            m_base.rounds > m_alg1.rounds,
            "baseline rounds {} vs alg1 {}",
            m_base.rounds,
            m_alg1.rounds
        );
    }
}
