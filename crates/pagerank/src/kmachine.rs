//! **Algorithm 1**: distributed PageRank in `O~(n/k²)` rounds (Theorem 4).
//!
//! Each machine holds a token counter per hosted vertex. Per iteration:
//!
//! 1. every token dies with probability `ε` (and at dangling vertices);
//! 2. **light** vertices (`< k` tokens): the machine samples a uniform
//!    out-neighbor per token and aggregates counts *across all its hosted
//!    light vertices* into one `⟨α[v], dest:v⟩` message per destination
//!    vertex (lines 8–16 of Algorithm 1) — so any vertex receives at most
//!    `k−1` messages per iteration no matter its degree;
//! 3. **heavy** vertices (`≥ k` tokens): the machine samples a *machine*
//!    per token from `(n₁ᵤ/dᵤ, …, n_kᵤ/dᵤ)` and sends one `⟨β[j], src:u⟩`
//!    count per machine (lines 18–27); the receiver forwards each counted
//!    token to a uniform hosted out-neighbor of `u` (lines 31–36).
//!
//! Destinations of light messages are home machines of vertices, which
//! under the random vertex partition are i.i.d. uniform — exactly the
//! hypothesis of Lemma 13, so direct routing delivers each iteration in
//! `O~(n/k²)` rounds. (The paper invokes randomized routing here; under
//! RVP the destination machines are already uniform, which is what the
//! routing lemma needs.)
//!
//! **Synchronization.** Iterations are separated by a FIFO *flush
//! barrier*: after its sends, each machine broadcasts a `Flush` carrying
//! the number of tokens that survived its step. Since links are FIFO, a
//! machine that has received flushes from everyone has received all of
//! the iteration's data. The flush values also yield the exact global
//! count of live tokens, so the protocol terminates precisely when no
//! token survives anywhere — no iteration bound needs to be guessed.
//! Machines can drift by at most one iteration, so a single parity bit
//! per message disambiguates (proved in the module tests).

use crate::PrConfig;
use km_core::{
    id_bits, run_algorithm, BitReader, BitWriter, CodecError, Envelope, KmAlgorithm, Metrics,
    NetConfig, Outbox, Protocol, RoundCtx, Runner, Status, WireCodec, WireSize,
};
use km_graph::{DiGraph, DistGraph, DistGraphBuilder, LocalGraph, Partition, Vertex};
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Message payload of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrPayload {
    /// `⟨α[v], dest:v⟩` — `count` tokens moving to vertex `v` (light path,
    /// aggregated across all the sender's light vertices).
    Count {
        /// Destination vertex.
        v: Vertex,
        /// Number of tokens.
        count: u64,
    },
    /// `⟨β[j], src:u⟩` — `count` tokens leaving heavy vertex `u` for
    /// out-neighbors hosted at the receiving machine.
    Heavy {
        /// The heavy source vertex.
        u: Vertex,
        /// Number of tokens.
        count: u64,
    },
    /// Flush barrier: the sender finished its step for this iteration and
    /// produced `live` surviving tokens.
    Flush {
        /// Tokens surviving the sender's step.
        live: u64,
    },
}

/// A parity-tagged message of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrMsg {
    /// Iteration parity (machines drift by ≤ 1 iteration).
    pub parity: bool,
    /// The payload.
    pub payload: PrPayload,
    bits: u32,
}

impl PrMsg {
    pub(crate) fn count(n: usize, parity: bool, v: Vertex, count: u64) -> Self {
        let bits = (2 + id_bits(n) + 32) as u32;
        PrMsg {
            parity,
            payload: PrPayload::Count { v, count },
            bits,
        }
    }
    pub(crate) fn heavy(n: usize, parity: bool, u: Vertex, count: u64) -> Self {
        let bits = (2 + id_bits(n) + 32) as u32;
        PrMsg {
            parity,
            payload: PrPayload::Heavy { u, count },
            bits,
        }
    }
    pub(crate) fn flush(parity: bool, live: u64) -> Self {
        PrMsg {
            parity,
            payload: PrPayload::Flush { live },
            bits: 2 + 32,
        }
    }
}

impl WireSize for PrMsg {
    fn bits(&self) -> u64 {
        self.bits as u64
    }
}

/// Layout: parity (1) · tag (1) · body. A `Flush` body is a bare 32-bit
/// live-token counter (34 bits total); `Count`/`Heavy` carry a vertex id
/// in `id_bits(n)` bits plus a 32-bit count, and the decoder recovers the
/// id width as `remaining − 32` — `id_bits ≥ 1`, so the two shapes can
/// never collide at 34 bits.
impl WireCodec for PrMsg {
    fn encode(&self, w: &mut BitWriter) {
        let idb = self.bits - 34; // 0 for Flush
        w.put(u64::from(self.parity), 1);
        match self.payload {
            PrPayload::Count { v, count } => {
                w.put(0, 1);
                w.put(u64::from(v), idb);
                w.put(count, 32);
            }
            PrPayload::Heavy { u, count } => {
                w.put(1, 1);
                w.put(u64::from(u), idb);
                w.put(count, 32);
            }
            PrPayload::Flush { live } => {
                w.put(0, 1);
                w.put(live, 32);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let total = r.remaining();
        let parity = r.take(1)? != 0;
        let tag = r.take(1)?;
        let payload = match r.remaining() {
            32 => {
                if tag != 0 {
                    return Err(CodecError::Invalid {
                        what: "flush tag bit",
                        value: tag,
                    });
                }
                PrPayload::Flush { live: r.take(32)? }
            }
            rem => {
                // id width: 1..=32 (vertex ids are u32).
                if !(33..=64).contains(&rem) {
                    return Err(CodecError::Invalid {
                        what: "pagerank message body width",
                        value: rem,
                    });
                }
                let idb = (rem - 32) as u32;
                let vertex = r.take(idb)? as Vertex;
                let count = r.take(32)?;
                if tag == 0 {
                    PrPayload::Count { v: vertex, count }
                } else {
                    PrPayload::Heavy { u: vertex, count }
                }
            }
        };
        Ok(PrMsg {
            parity,
            payload,
            bits: total as u32,
        })
    }
}

/// Exact Binomial(`trials`, `p`) sample by Bernoulli trials.
///
/// Trials are bounded by the machine's token count (`O~(n/k)`), so the
/// simple exact loop is both correct and fast enough at simulator scale.
pub(crate) fn binomial<R: Rng>(rng: &mut R, trials: u64, p: f64) -> u64 {
    let mut hits = 0;
    for _ in 0..trials {
        if rng.gen_bool(p) {
            hits += 1;
        }
    }
    hits
}

/// The per-machine state shared by Algorithm 1 and the CONGEST baseline:
/// the shared graph-state layer ([`LocalGraph`]: hosted vertices,
/// global↔local index, out-adjacency, receiver-side `host_targets`) plus
/// the token and visit counters.
#[derive(Debug)]
pub(crate) struct LocalState {
    /// This machine's RVP input.
    pub g: LocalGraph,
    /// Current tokens per local vertex.
    pub tokens: Vec<u64>,
    /// Visit counts ψ per local vertex.
    pub visits: Vec<u64>,
}

impl LocalState {
    /// Builds the local state of every machine from the global input —
    /// machine `i` sees only what RVP gives it (its vertices, their
    /// out-edges and in-edges) plus the shared hash function. One fused
    /// pass over the global graph via [`DistGraphBuilder`].
    pub fn build_all(g: &DiGraph, part: &Arc<Partition>, cfg: &PrConfig) -> Vec<LocalState> {
        Self::from_locals(DistGraphBuilder::new(part).directed(g).into_locals(), cfg)
    }

    /// Builds the local state of every machine from an already-distributed
    /// directed input (e.g. a streaming ingest via `km_graph::stream`) —
    /// no global [`DiGraph`] is ever materialized.
    pub fn build_all_from_dist(dist: &DistGraph, cfg: &PrConfig) -> Vec<LocalState> {
        Self::from_locals(dist.locals().to_vec(), cfg)
    }

    fn from_locals(locals: Vec<LocalGraph>, cfg: &PrConfig) -> Vec<LocalState> {
        locals
            .into_iter()
            .map(|lg| {
                let hosted = lg.hosted();
                LocalState {
                    g: lg,
                    tokens: vec![cfg.tokens_per_vertex; hosted],
                    visits: vec![cfg.tokens_per_vertex; hosted],
                }
            })
            .collect()
    }

    /// Receives `count` tokens addressed to vertex `v` (must be hosted).
    pub fn arrive_at_vertex(&mut self, v: Vertex, count: u64) {
        let j = self
            .g
            .local(v)
            // lint: allow(panic) — Count messages are only ever addressed to home(v)
            .expect("Count message for a non-hosted vertex");
        self.tokens[j] += count;
        self.visits[j] += count;
    }

    /// Receives `count` tokens from heavy vertex `u`, each forwarded to a
    /// uniform hosted out-neighbor of `u` (lines 31–36 of Algorithm 1).
    pub fn arrive_from_heavy<R: Rng>(&mut self, rng: &mut R, u: Vertex, count: u64) {
        let targets = self
            .g
            .host_targets(u)
            // lint: allow(panic) — Heavy messages are only sent to machines hosting an out-neighbor of u
            .expect("Heavy message but no hosted out-neighbor of u");
        debug_assert!(!targets.is_empty());
        for _ in 0..count {
            let j = targets[rng.gen_range(0..targets.len())] as usize;
            self.tokens[j] += 1;
            self.visits[j] += 1;
        }
    }

    /// Total tokens currently held.
    pub fn held_tokens(&self) -> u64 {
        self.tokens.iter().sum()
    }
}

/// One machine of Algorithm 1.
#[derive(Debug)]
pub struct KmPageRank {
    st: LocalState,
    cfg: PrConfig,
    /// Token threshold above which a vertex takes the heavy (β) path;
    /// the paper uses `k`. `u64::MAX` disables the heavy path entirely —
    /// the ablation knob for the T4 design-choice experiment.
    heavy_threshold: u64,
    parity: bool,
    flushes_seen: usize,
    flush_live: u64,
    my_live: u64,
    pending: Vec<PrMsg>,
    finished: bool,
    /// Iterations this machine has executed (for diagnostics).
    pub iterations: u64,
}

impl KmPageRank {
    /// Builds one protocol instance per machine (heavy threshold = `k`,
    /// the paper's choice).
    pub fn build_all(g: &DiGraph, part: &Arc<Partition>, cfg: PrConfig) -> Vec<KmPageRank> {
        Self::build_all_with_threshold(g, part, cfg, part.k() as u64)
    }

    /// Builds instances with an explicit heavy threshold (ablations).
    pub fn build_all_with_threshold(
        g: &DiGraph,
        part: &Arc<Partition>,
        cfg: PrConfig,
        heavy_threshold: u64,
    ) -> Vec<KmPageRank> {
        LocalState::build_all(g, part, &cfg)
            .into_iter()
            .map(|st| Self::from_state(st, cfg, heavy_threshold))
            .collect()
    }

    /// One protocol instance wrapping an already-built local state (the
    /// shared tail of the in-memory and streaming build paths).
    pub(crate) fn from_state(st: LocalState, cfg: PrConfig, heavy_threshold: u64) -> KmPageRank {
        KmPageRank {
            st,
            cfg,
            heavy_threshold,
            parity: false,
            flushes_seen: 0,
            flush_live: 0,
            my_live: 0,
            pending: Vec::new(),
            finished: false,
            iterations: 0,
        }
    }

    /// This machine's output: `(vertex, PageRank estimate)` for every
    /// hosted vertex.
    pub fn output(&self) -> PrOutput {
        let n = self.st.g.global_n();
        let estimates = self
            .st
            .g
            .vertices()
            .iter()
            .zip(&self.st.visits)
            .map(|(&v, &psi)| (v, self.cfg.estimate(n, psi)))
            .collect();
        PrOutput { estimates }
    }

    /// Raw visit counters (for conservation tests).
    pub fn visits(&self) -> impl Iterator<Item = (Vertex, u64)> + '_ {
        self.st
            .g
            .vertices()
            .iter()
            .copied()
            .zip(self.st.visits.iter().copied())
    }

    /// Tokens still held locally (zero after a completed run).
    pub fn held_tokens(&self) -> u64 {
        self.st.held_tokens()
    }

    fn apply(&mut self, rng: &mut rand_chacha::ChaCha8Rng, msg: &PrMsg) {
        match msg.payload {
            PrPayload::Count { v, count } => self.st.arrive_at_vertex(v, count),
            PrPayload::Heavy { u, count } => self.st.arrive_from_heavy(rng, u, count),
            PrPayload::Flush { live } => {
                self.flushes_seen += 1;
                self.flush_live += live;
            }
        }
    }

    /// Runs one iteration step: termination sampling, light α-aggregation,
    /// heavy β-distribution, then the flush broadcast.
    fn step(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<PrMsg>) {
        let k = ctx.k;
        let me = ctx.me;
        let n = self.st.g.global_n();
        let eps = self.cfg.reset_prob;
        let mut survivors_total: u64 = 0;
        // α aggregated across all light vertices (BTreeMap: deterministic
        // emission order, required for replayable transcripts).
        let mut alpha: BTreeMap<Vertex, u64> = BTreeMap::new();
        // Locally-arriving tokens are staged so a token moves once per step.
        let mut staged_local: Vec<(usize, u64)> = Vec::new();

        for j in 0..self.st.g.hosted() {
            let t = std::mem::take(&mut self.st.tokens[j]);
            if t == 0 {
                continue;
            }
            let dead = binomial(ctx.rng, t, eps);
            let live = t - dead;
            if live == 0 {
                continue;
            }
            let outs = self.st.g.neighbors(j);
            if outs.is_empty() {
                continue; // dangling vertex: survivors terminate too
            }
            survivors_total += live;
            let _ = k;
            if live < self.heavy_threshold {
                // Light: per-token uniform neighbor, aggregated into α.
                for _ in 0..live {
                    let v = outs[ctx.rng.gen_range(0..outs.len())];
                    *alpha.entry(v).or_insert(0) += 1;
                }
            } else {
                // Heavy: sample a machine per token ∝ n_{j,u}/d_u.
                let u = self.st.g.vertex(j);
                let mut cum: Vec<(u64, usize)> = Vec::new(); // (cumulative, machine)
                let mut machine_counts: BTreeMap<usize, u64> = BTreeMap::new();
                for &v in outs {
                    *machine_counts.entry(self.st.g.home(v)).or_insert(0) += 1;
                }
                let mut acc = 0;
                for (&m, &c) in &machine_counts {
                    acc += c;
                    cum.push((acc, m));
                }
                let d = acc;
                let mut beta: BTreeMap<usize, u64> = BTreeMap::new();
                for _ in 0..live {
                    let x = ctx.rng.gen_range(0..d);
                    let pos = cum.partition_point(|&(c, _)| c <= x);
                    *beta.entry(cum[pos].1).or_insert(0) += 1;
                }
                for (&j_m, &c) in &beta {
                    if j_m == me {
                        // Our own share: forward to uniform hosted neighbors.
                        let targets = self
                            .st
                            .g
                            .host_targets(u)
                            // lint: allow(panic) — this branch runs only when this machine hosts an out-neighbor of u
                            .expect("heavy vertex with no hosted out-neighbor here");
                        for _ in 0..c {
                            let tj = targets[ctx.rng.gen_range(0..targets.len())] as usize;
                            staged_local.push((tj, 1));
                        }
                    } else {
                        out.send(j_m, PrMsg::heavy(n, self.parity, u, c));
                    }
                }
            }
        }

        // Emit α messages (or deliver locally).
        for (v, c) in alpha {
            let home = self.st.g.home(v);
            if home == me {
                // lint: allow(panic) — home(v) == me implies v is hosted here
                let j = self.st.g.local(v).expect("home(v) == me implies hosted");
                staged_local.push((j, c));
            } else {
                out.send(home, PrMsg::count(n, self.parity, v, c));
            }
        }
        for (j, c) in staged_local {
            self.st.tokens[j] += c;
            self.st.visits[j] += c;
        }

        self.my_live = survivors_total;
        self.iterations += 1;
        let flush = PrMsg::flush(self.parity, survivors_total);
        out.broadcast(me, flush);
    }

    /// If the barrier is complete, either terminate or advance one
    /// iteration (possibly several times if this machine lagged).
    fn maybe_advance(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<PrMsg>) {
        while !self.finished && self.flushes_seen == ctx.k - 1 {
            let global_live = self.flush_live + self.my_live;
            if global_live == 0 {
                self.finished = true;
                return;
            }
            self.parity = !self.parity;
            self.flushes_seen = 0;
            self.flush_live = 0;
            self.my_live = 0;
            let pending = std::mem::take(&mut self.pending);
            for msg in &pending {
                debug_assert_eq!(msg.parity, self.parity, "parity drift exceeded 1");
                self.apply(ctx.rng, msg);
            }
            self.step(ctx, out);
        }
    }
}

impl Protocol for KmPageRank {
    type Msg = PrMsg;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<PrMsg>>,
        out: &mut Outbox<PrMsg>,
    ) -> Status {
        if ctx.round == 0 {
            // Iteration 1 starts unconditionally.
            self.step(ctx, out);
            self.maybe_advance(ctx, out); // k == 1 completes inline
            return if self.finished {
                Status::Done
            } else {
                Status::Active
            };
        }
        for env in inbox.drain(..) {
            if env.msg.parity == self.parity {
                self.apply(ctx.rng, &env.msg);
            } else {
                self.pending.push(env.msg);
            }
        }
        self.maybe_advance(ctx, out);
        if self.finished {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// The global result of a distributed PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PrOutput {
    /// `(vertex, estimate)` pairs output by one machine.
    pub estimates: Vec<(Vertex, f64)>,
}

/// Algorithm 1 as a [`KmAlgorithm`]: digraph + partition + `PrConfig`
/// in, the assembled PageRank vector (indexed by vertex) out.
#[derive(Debug, Clone, Copy)]
pub struct DistributedPageRank<'a> {
    /// The input digraph.
    pub g: &'a DiGraph,
    /// The vertex partition (its `k` must match the runner's).
    pub part: &'a Arc<Partition>,
    /// Token parameters.
    pub cfg: PrConfig,
    /// Heavy-path threshold; `None` uses the paper's `k`. (`u64::MAX`
    /// disables the heavy path — the ablation knob.)
    pub heavy_threshold: Option<u64>,
}

impl<'a> DistributedPageRank<'a> {
    /// An instance with the paper's heavy threshold (`k`).
    pub fn new(g: &'a DiGraph, part: &'a Arc<Partition>, cfg: PrConfig) -> Self {
        DistributedPageRank {
            g,
            part,
            cfg,
            heavy_threshold: None,
        }
    }
}

impl KmAlgorithm for DistributedPageRank<'_> {
    type Machine = KmPageRank;
    type Output = Vec<f64>;

    fn build(&self, k: usize) -> Vec<KmPageRank> {
        assert_eq!(self.part.k(), k, "partition k must match the network k");
        match self.heavy_threshold {
            None => KmPageRank::build_all(self.g, self.part, self.cfg),
            Some(t) => KmPageRank::build_all_with_threshold(self.g, self.part, self.cfg, t),
        }
    }

    fn extract(&self, machines: Vec<KmPageRank>, _metrics: &Metrics) -> Vec<f64> {
        let mut pr = vec![0.0; self.g.n()];
        for m in &machines {
            for (v, est) in m.output().estimates {
                pr[v as usize] = est;
            }
        }
        pr
    }
}

/// Runs Algorithm 1 end to end and returns the assembled PageRank vector
/// plus transcript metrics. Thin wrapper over [`run_algorithm`] with the
/// default engine choice.
pub fn run_kmachine_pagerank(
    g: &DiGraph,
    part: &Arc<Partition>,
    cfg: PrConfig,
    net: NetConfig,
) -> Result<(Vec<f64>, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&DistributedPageRank::new(g, part, cfg), Runner::new(net))?;
    Ok((outcome.output, outcome.metrics))
}

/// Algorithm 1 over an already-distributed directed input: the streaming
/// counterpart of [`DistributedPageRank`], for graphs ingested via
/// `km_graph::stream` where no global [`DiGraph`] ever exists. Uses the
/// paper's heavy threshold (`k`).
#[derive(Debug, Clone, Copy)]
pub struct PrebuiltPageRank<'a> {
    /// The distributed directed input (its `k` must match the runner's).
    pub dist: &'a DistGraph,
    /// Token parameters.
    pub cfg: PrConfig,
}

impl KmAlgorithm for PrebuiltPageRank<'_> {
    type Machine = KmPageRank;
    type Output = Vec<f64>;

    fn build(&self, k: usize) -> Vec<KmPageRank> {
        assert_eq!(
            self.dist.k(),
            k,
            "distributed input k must match the network k"
        );
        let heavy = self.dist.k() as u64;
        LocalState::build_all_from_dist(self.dist, &self.cfg)
            .into_iter()
            .map(|st| KmPageRank::from_state(st, self.cfg, heavy))
            .collect()
    }

    fn extract(&self, machines: Vec<KmPageRank>, _metrics: &Metrics) -> Vec<f64> {
        let n = self.dist.locals()[0].global_n();
        let mut pr = vec![0.0; n];
        for m in &machines {
            for (v, est) in m.output().estimates {
                pr[v as usize] = est;
            }
        }
        pr
    }
}

/// Runs Algorithm 1 from an already-distributed directed input
/// (streaming ingest path).
pub fn run_kmachine_pagerank_dist(
    dist: &DistGraph,
    cfg: PrConfig,
    net: NetConfig,
) -> Result<(Vec<f64>, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&PrebuiltPageRank { dist, cfg }, Runner::new(net))?;
    Ok((outcome.output, outcome.metrics))
}

/// Converts an undirected graph to the bidirected digraph all PageRank
/// entry points expect.
pub fn bidirect(g: &km_graph::CsrGraph) -> DiGraph {
    let arcs: Vec<(Vertex, Vertex)> = g.edges().flat_map(|e| [(e.u, e.v), (e.v, e.u)]).collect();
    DiGraph::from_arcs(g.n(), &arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_iteration::power_iteration;
    use km_core::EngineKind;
    use km_graph::generators::lower_bound_h::LowerBoundGraph;
    use km_graph::generators::{classic, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net(k: usize, n: usize, seed: u64) -> NetConfig {
        NetConfig::polylog(k, n, seed).max_rounds(2_000_000)
    }

    #[test]
    fn binomial_is_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut total = 0;
        for _ in 0..200 {
            total += binomial(&mut rng, 100, 0.3);
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 30.0).abs() < 3.0, "mean {mean}");
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 50, 1.0 - f64::EPSILON), 50);
    }

    #[test]
    fn every_vertex_keeps_initial_visits() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = bidirect(&gnp(60, 0.1, &mut rng));
        let part = Arc::new(Partition::by_hash(60, 4, 9));
        let cfg = PrConfig {
            reset_prob: 0.4,
            tokens_per_vertex: 10,
        };
        let machines = KmPageRank::build_all(&g, &part, cfg);
        let report = Runner::new(net(4, 60, 5)).run(machines).unwrap();
        let mut seen = [false; 60];
        for m in &report.machines {
            for (v, psi) in m.visits() {
                assert!(psi >= 10, "vertex {v} lost its initial tokens");
                seen[v as usize] = true;
            }
            assert_eq!(m.held_tokens(), 0, "all tokens must be dead at termination");
        }
        assert!(
            seen.iter().all(|&s| s),
            "every vertex output by some machine"
        );
    }

    #[test]
    fn matches_power_iteration_on_cycle() {
        // Directed cycle: uniform PageRank 1/n; heavy sampling keeps the
        // statistical error small.
        let n = 24;
        let arcs: Vec<(Vertex, Vertex)> = (0..n as Vertex)
            .map(|i| (i, (i + 1) % n as Vertex))
            .collect();
        let g = DiGraph::from_arcs(n, &arcs);
        let part = Arc::new(Partition::by_hash(n, 4, 1));
        let cfg = PrConfig {
            reset_prob: 0.3,
            tokens_per_vertex: 4000,
        };
        let (pr, _) = run_kmachine_pagerank(&g, &part, cfg, net(4, n, 3)).unwrap();
        let exact = power_iteration(&g, 0.3, 1e-13, 10_000);
        for v in 0..n {
            let rel = (pr[v] - exact[v]).abs() / exact[v];
            assert!(
                rel < 0.08,
                "v={v} rel={rel} got={} want={}",
                pr[v],
                exact[v]
            );
        }
    }

    #[test]
    fn lemma4_separation_through_the_distributed_algorithm() {
        let h = LowerBoundGraph::new(vec![false, true, false, true, false, true]);
        let g = &h.graph;
        let part = Arc::new(Partition::by_hash(g.n(), 3, 7));
        let cfg = PrConfig {
            reset_prob: 0.3,
            tokens_per_vertex: 30_000,
        };
        let (pr, _) = run_kmachine_pagerank(g, &part, cfg, net(3, g.n(), 11)).unwrap();
        // Average the two bit classes: clear separation.
        let avg = |bit: bool| {
            let vals: Vec<f64> = (0..h.quarter)
                .filter(|&i| h.bits[i] == bit)
                .map(|i| pr[h.v_vertex(i) as usize])
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            avg(true) > avg(false) * 1.05,
            "b1={} b0={}",
            avg(true),
            avg(false)
        );
    }

    #[test]
    fn heavy_path_exercised_on_star() {
        // Star hub accumulates ≫ k tokens, forcing the β (heavy) path.
        let g = bidirect(&classic::star(200));
        let part = Arc::new(Partition::by_hash(200, 4, 3));
        let cfg = PrConfig {
            reset_prob: 0.25,
            tokens_per_vertex: 40,
        };
        let machines = KmPageRank::build_all(&g, &part, cfg);
        let report = Runner::new(net(4, 200, 13)).run(machines).unwrap();
        // The hub's PageRank must dominate (roughly (1-eps) mass + share).
        let mut hub_est = 0.0;
        let mut leaf_est = 0.0;
        for m in &report.machines {
            for (v, e) in m.output().estimates {
                if v == 0 {
                    hub_est = e;
                } else {
                    leaf_est = e;
                }
            }
        }
        assert!(hub_est > 20.0 * leaf_est, "hub={hub_est} leaf={leaf_est}");
    }

    #[test]
    fn heavy_path_ablation_still_correct() {
        // With the heavy path disabled everything goes through α
        // aggregation; the estimates stay statistically correct.
        let g = bidirect(&classic::star(100));
        let part = Arc::new(Partition::by_hash(100, 4, 3));
        let cfg = PrConfig {
            reset_prob: 0.3,
            tokens_per_vertex: 2000,
        };
        let machines = KmPageRank::build_all_with_threshold(&g, &part, cfg, u64::MAX);
        let report = Runner::new(net(4, 100, 17)).run(machines).unwrap();
        let mut pr = vec![0.0; 100];
        for m in &report.machines {
            assert_eq!(m.held_tokens(), 0);
            for (v, e) in m.output().estimates {
                pr[v as usize] = e;
            }
        }
        let exact = power_iteration(&g, 0.3, 1e-12, 10_000);
        let rel = (pr[0] - exact[0]).abs() / exact[0];
        assert!(rel < 0.1, "hub estimate off by {rel}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = bidirect(&gnp(50, 0.15, &mut rng));
        let part = Arc::new(Partition::by_hash(50, 5, 2));
        let cfg = PrConfig {
            reset_prob: 0.4,
            tokens_per_vertex: 30,
        };
        let (pr1, m1) = run_kmachine_pagerank(&g, &part, cfg, net(5, 50, 77)).unwrap();
        let (pr2, m2) = run_kmachine_pagerank(&g, &part, cfg, net(5, 50, 77)).unwrap();
        assert_eq!(pr1, pr2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn parallel_engine_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let g = bidirect(&gnp(80, 0.1, &mut rng));
        let part = Arc::new(Partition::by_hash(80, 6, 4));
        let cfg = PrConfig {
            reset_prob: 0.35,
            tokens_per_vertex: 25,
        };
        let netc = net(6, 80, 19);
        let seq = Runner::new(netc)
            .engine(EngineKind::Sequential)
            .run(KmPageRank::build_all(&g, &part, cfg))
            .unwrap();
        let par = Runner::new(netc)
            .engine(EngineKind::Parallel { threads: 3 })
            .run(KmPageRank::build_all(&g, &part, cfg))
            .unwrap();
        assert_eq!(seq.metrics, par.metrics);
        for (a, b) in seq.machines.iter().zip(&par.machines) {
            assert_eq!(a.output(), b.output());
        }
    }

    #[test]
    fn single_machine_degenerate_case() {
        let g = bidirect(&classic::path(10));
        let part = Arc::new(Partition::round_robin(10, 1));
        let cfg = PrConfig {
            reset_prob: 0.5,
            tokens_per_vertex: 10,
        };
        let (pr, metrics) = run_kmachine_pagerank(&g, &part, cfg, net(1, 10, 0)).unwrap();
        assert_eq!(metrics.total_msgs(), 0);
        assert!(pr.iter().all(|&x| x > 0.0));
    }

    proptest::proptest! {
        #[test]
        fn pr_msgs_roundtrip_the_wire(
            n in 2usize..1_000_000,
            v in 0u32..1_000_000,
            count in 0u64..(1 << 32),
            parity in 0u8..2,
            heavy in 0u8..2,
        ) {
            let (parity, heavy) = (parity != 0, heavy != 0);
            let v = v % (n as u32); // a vertex id that fits id_bits(n)
            let msg = if heavy {
                PrMsg::heavy(n, parity, v, count)
            } else {
                PrMsg::count(n, parity, v, count)
            };
            km_core::assert_roundtrip(&msg);
            km_core::assert_roundtrip(&PrMsg::flush(parity, count));
        }
    }
}
