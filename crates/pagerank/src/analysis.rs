//! Approximation-quality metrics for the δ-approximation claim of
//! Theorem 4.

/// Maximum relative error over vertices whose reference value is at least
/// `floor` (tiny values are statistically meaningless for a multiplicative
/// guarantee).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_relative_error(estimate: &[f64], reference: &[f64], floor: f64) -> f64 {
    assert_eq!(estimate.len(), reference.len(), "length mismatch");
    estimate
        .iter()
        .zip(reference)
        .filter(|(_, &r)| r >= floor)
        .map(|(&e, &r)| (e - r).abs() / r)
        .fold(0.0, f64::max)
}

/// Total variation-style L1 error `Σ |estimate − reference|`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn l1_error(estimate: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(estimate.len(), reference.len(), "length mismatch");
    estimate
        .iter()
        .zip(reference)
        .map(|(&e, &r)| (e - r).abs())
        .sum()
}

/// Fits the slope of `log y` against `log x` by least squares — the tool
/// the experiments use to extract scaling exponents (e.g. rounds ∝ k^slope
/// should give ≈ −2 for Algorithm 1 and ≈ −1 for the baseline).
///
/// Returns `None` with fewer than two valid points.
pub fn log_log_slope(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_respects_floor() {
        let est = [1.0, 0.001];
        let refv = [2.0, 0.0001];
        // Only the first vertex is above the floor: error 0.5.
        assert!((max_relative_error(&est, &refv, 0.01) - 0.5).abs() < 1e-12);
        // With floor 0 both count; the second has error 9.
        assert!((max_relative_error(&est, &refv, 0.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn l1_sums_absolute_gaps() {
        assert!((l1_error(&[1.0, 2.0], &[0.5, 2.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slope_recovers_power_laws() {
        let xs: Vec<f64> = (1..=6).map(|k| (1 << k) as f64).collect();
        let inv_sq: Vec<f64> = xs.iter().map(|&x| 100_000.0 / (x * x)).collect();
        let slope = log_log_slope(&xs, &inv_sq).unwrap();
        assert!((slope + 2.0).abs() < 1e-9, "slope {slope}");
        let lin: Vec<f64> = xs.iter().map(|&x| 42.0 * x).collect();
        assert!((log_log_slope(&xs, &lin).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slope_degenerate_cases() {
        assert_eq!(log_log_slope(&[1.0], &[2.0]), None);
        assert_eq!(log_log_slope(&[0.0, 0.0], &[1.0, 2.0]), None);
    }
}
