//! Power iteration — the exact (to tolerance) PageRank oracle.
//!
//! Solves `π = (ε/n)·1 + (1−ε)·Pᵀπ` by Neumann iteration, where `P` is the
//! out-edge transition matrix with *zero rows at dangling vertices* (walks
//! terminate there), matching the Monte-Carlo semantics of \[20\] that the
//! paper's Lemma 4 computes with.

use km_graph::DiGraph;

/// Computes PageRank by power iteration.
///
/// Iterates until the L1 change drops below `tol` or `max_iters` passes.
/// Returns the PageRank vector (length `n`).
///
/// # Panics
/// Panics unless `0 < eps < 1` and `tol > 0`.
pub fn power_iteration(g: &DiGraph, eps: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    assert!(eps > 0.0 && eps < 1.0, "need 0 < ε < 1");
    assert!(tol > 0.0, "need positive tolerance");
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let base = eps / n as f64;
    let damp = 1.0 - eps;
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        next.iter_mut().for_each(|x| *x = base);
        for u in g.vertices() {
            let outs = g.out_neighbors(u);
            if outs.is_empty() {
                continue; // dangling: mass terminates
            }
            let share = damp * pi[u as usize] / outs.len() as f64;
            for &v in outs {
                next[v as usize] += share;
            }
        }
        let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if delta < tol {
            break;
        }
    }
    pi
}

/// Power iteration for an undirected graph (each edge walks both ways).
pub fn power_iteration_undirected(
    g: &km_graph::CsrGraph,
    eps: f64,
    tol: f64,
    max_iters: usize,
) -> Vec<f64> {
    let arcs: Vec<(u32, u32)> = g.edges().flat_map(|e| [(e.u, e.v), (e.v, e.u)]).collect();
    let dg = DiGraph::from_arcs(g.n(), &arcs);
    power_iteration(&dg, eps, tol, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::lower_bound_h::LowerBoundGraph;
    use km_graph::generators::{classic, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn isolated_vertices_get_eps_over_n() {
        let g = DiGraph::from_arcs(4, &[]);
        let pr = power_iteration(&g, 0.2, 1e-12, 1000);
        for &x in &pr {
            assert!((x - 0.05).abs() < 1e-9);
        }
    }

    #[test]
    fn cycle_is_uniform_and_sums_to_one() {
        // Directed cycle: no dangling, symmetric ⇒ uniform 1/n, sum 1.
        let n = 8;
        let arcs: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = DiGraph::from_arcs(n as usize, &arcs);
        let pr = power_iteration(&g, 0.15, 1e-14, 10_000);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for &x in &pr {
            assert!((x - 1.0 / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_closed_form_on_lower_bound_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = LowerBoundGraph::random(41, &mut rng);
        for eps in [0.2, 0.5] {
            let pr = power_iteration(&h.graph, eps, 1e-14, 10_000);
            let exact = h.exact_pagerank(eps);
            for (v, (&got, &want)) in pr.iter().zip(&exact).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "eps={eps} v={v}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn undirected_star_hub_dominates() {
        let g = classic::star(20);
        let pr = power_iteration_undirected(&g, 0.2, 1e-12, 10_000);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr[0] > 5.0 * pr[1]);
        // Leaves are symmetric.
        for leaf in 2..20 {
            assert!((pr[leaf] - pr[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn random_graph_total_mass_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = gnp(100, 0.05, &mut rng);
        let pr = power_iteration_undirected(&g, 0.3, 1e-12, 10_000);
        let sum: f64 = pr.iter().sum();
        // Isolated vertices are dangling but still only contribute ε/n each;
        // total mass is in (ε, 1].
        assert!(sum <= 1.0 + 1e-9 && sum > 0.3);
        assert!(pr.iter().all(|&x| x >= 0.3 / 100.0 - 1e-12));
    }
}
