//! # km-pagerank
//!
//! PageRank in the k-machine model (Sections 2.3 and 3.1 of the paper).
//!
//! **Semantics.** Throughout this crate "PageRank" is the stationary
//! path-sum / Monte-Carlo semantics of Das Sarma et al. \[20\], the
//! definition the paper analyzes: a walk restarts with probability `ε`
//! from a uniform vertex, otherwise follows a uniform out-edge, and
//! *terminates* at dangling vertices. Equivalently,
//! `π(v) = (ε/n) · Σ_paths→v Π (1−ε)/outdeg`. For graphs without dangling
//! vertices this is the classical PageRank vector (sums to 1).
//!
//! Implementations, all agreeing on this semantics:
//!
//! * [`mod@power_iteration`] — the linear-algebra oracle (exact up to `tol`);
//! * [`monte_carlo`] — the sequential token-based estimator of \[20\];
//! * [`congest_baseline`] — the `O~(n/k)`-round conversion-theorem
//!   baseline (per-edge count messages, as in Klauck et al. \[33\]);
//! * [`kmachine`] — **Algorithm 1**: the `O~(n/k²)`-round algorithm with
//!   the light/heavy vertex split and randomized routing (Theorem 4);
//! * [`lemma4`] — closed-form values on the Figure-1 graph `H`;
//! * [`analysis`] — approximation-error metrics for the δ-approximation
//!   claim.

pub mod analysis;
pub mod congest_baseline;
pub mod kmachine;
pub mod lemma4;
pub mod monte_carlo;
pub mod power_iteration;

pub use analysis::{l1_error, max_relative_error};
pub use kmachine::{
    run_kmachine_pagerank, run_kmachine_pagerank_dist, KmPageRank, PrOutput, PrebuiltPageRank,
};
pub use power_iteration::power_iteration;

/// Parameters shared by all PageRank implementations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrConfig {
    /// Reset probability `ε ∈ (0, 1)`.
    pub reset_prob: f64,
    /// Tokens created per vertex (`c·log n` in the paper; [`PrConfig::paper`]
    /// sets `⌈c·log₂ n⌉`).
    pub tokens_per_vertex: u64,
}

impl PrConfig {
    /// The paper's parameterization: `⌈c·log₂ n⌉` tokens per vertex.
    ///
    /// # Panics
    /// Panics unless `0 < reset_prob < 1` and `c > 0`.
    pub fn paper(n: usize, reset_prob: f64, c: f64) -> Self {
        assert!(reset_prob > 0.0 && reset_prob < 1.0, "need 0 < ε < 1");
        assert!(c > 0.0, "need c > 0");
        let tokens = (c * (n.max(2) as f64).log2()).ceil() as u64;
        PrConfig {
            reset_prob,
            tokens_per_vertex: tokens.max(1),
        }
    }

    /// The estimator scale: `π̂(v) = ε·ψ_v / (n · tokens_per_vertex)`.
    pub fn estimate(&self, n: usize, visits: u64) -> f64 {
        self.reset_prob * visits as f64 / (n as f64 * self.tokens_per_vertex as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_scales_tokens() {
        let c = PrConfig::paper(1024, 0.5, 4.0);
        assert_eq!(c.tokens_per_vertex, 40);
        assert_eq!(PrConfig::paper(2, 0.5, 0.1).tokens_per_vertex, 1);
    }

    #[test]
    fn estimator_matches_isolated_vertex() {
        // An isolated vertex's ψ equals its own tokens; estimate must be ε/n.
        let cfg = PrConfig {
            reset_prob: 0.3,
            tokens_per_vertex: 50,
        };
        let est = cfg.estimate(10, 50);
        assert!((est - 0.03).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "0 < ε < 1")]
    fn rejects_bad_eps() {
        let _ = PrConfig::paper(10, 1.0, 1.0);
    }
}
