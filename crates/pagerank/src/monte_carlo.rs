//! The sequential Monte-Carlo estimator of Das Sarma et al. \[20\].
//!
//! The reference implementation of the token process that Algorithm 1
//! distributes: every vertex creates `tokens_per_vertex` tokens; each
//! token repeatedly (a) dies with probability `ε`, else (b) moves to a
//! uniform out-neighbor (dying at dangling vertices); `ψ_v` counts all
//! visits to `v` including the initial placement, and
//! `π̂(v) = ε·ψ_v/(n·tokens_per_vertex)`.
//!
//! Used as the mid-level oracle: the distributed implementations must
//! produce estimates statistically indistinguishable from this one, and
//! this one must converge to [`crate::power_iteration()`](crate::power_iteration()).

use crate::PrConfig;
use km_graph::{DiGraph, Vertex};
use rand::Rng;

/// Runs the sequential token process; returns the PageRank estimates.
pub fn monte_carlo_pagerank<R: Rng>(g: &DiGraph, cfg: &PrConfig, rng: &mut R) -> Vec<f64> {
    let visits = visit_counts(g, cfg, rng);
    visits.iter().map(|&psi| cfg.estimate(g.n(), psi)).collect()
}

/// The raw visit counts `ψ_v` (exposed for conservation tests).
pub fn visit_counts<R: Rng>(g: &DiGraph, cfg: &PrConfig, rng: &mut R) -> Vec<u64> {
    let n = g.n();
    let mut visits = vec![0u64; n];
    for start in 0..n as Vertex {
        for _ in 0..cfg.tokens_per_vertex {
            let mut at = start;
            visits[at as usize] += 1;
            loop {
                if rng.gen_bool(cfg.reset_prob) {
                    break;
                }
                let outs = g.out_neighbors(at);
                if outs.is_empty() {
                    break;
                }
                at = outs[rng.gen_range(0..outs.len())];
                visits[at as usize] += 1;
            }
        }
    }
    visits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_iteration::power_iteration;
    use km_graph::generators::lower_bound_h::LowerBoundGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn visits_at_least_initial_tokens() {
        let g = DiGraph::from_arcs(5, &[(0, 1), (1, 2)]);
        let cfg = PrConfig {
            reset_prob: 0.5,
            tokens_per_vertex: 20,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = visit_counts(&g, &cfg, &mut rng);
        for &x in &v {
            assert!(x >= 20);
        }
        // Vertex 4 is isolated: exactly its own tokens.
        assert_eq!(v[4], 20);
    }

    #[test]
    fn estimates_converge_to_power_iteration() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let h = LowerBoundGraph::random(41, &mut rng);
        let eps = 0.4;
        // Heavy sampling for a tight statistical test.
        let cfg = PrConfig {
            reset_prob: eps,
            tokens_per_vertex: 20_000,
        };
        let mc = monte_carlo_pagerank(&h.graph, &cfg, &mut rng);
        let exact = power_iteration(&h.graph, eps, 1e-13, 10_000);
        for (v, (&got, &want)) in mc.iter().zip(&exact).enumerate() {
            let rel = (got - want).abs() / want;
            assert!(rel < 0.05, "v={v}: got {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn lemma4_separation_visible_in_monte_carlo() {
        let h = LowerBoundGraph::new(vec![false, true, false, true]);
        let eps = 0.3;
        let cfg = PrConfig {
            reset_prob: eps,
            tokens_per_vertex: 50_000,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mc = monte_carlo_pagerank(&h.graph, &cfg, &mut rng);
        // v_1 (bit 1) must measurably exceed v_0 (bit 0).
        let v0 = mc[h.v_vertex(0) as usize];
        let v1 = mc[h.v_vertex(1) as usize];
        assert!(v1 > v0, "v1={v1} v0={v0}");
    }
}
