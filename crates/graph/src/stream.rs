//! Streaming / out-of-core graph ingestion: build a [`DistGraph`]
//! without ever materializing the global CSR.
//!
//! **Why.** The paper's k-machine model assumes the input arrives
//! *already distributed* by the random vertex partition (Section 1.1) —
//! no machine ever holds the whole graph. The in-memory path
//! ([`DistGraphBuilder`]) inverts that: it builds the full global
//! `CsrGraph` on one host and then splits it, capping experiments at
//! whatever one host's RAM can hold. This module restores the model's
//! own input shape: generators emit bounded [`EdgeChunk`]s through the
//! [`EdgeStream`] trait, and [`StreamingDistBuilder`] routes each
//! chunk's edges straight into the per-machine [`LocalGraph`]
//! accumulators, so peak memory is the final distributed state plus
//! `O(n + chunk)` transient — never the `O(m)` global CSR plus its
//! `O(m)` construction scratch.
//!
//! **RNG-replay invariant.** Each chunked generator
//! ([`GnpStream`], [`GnmStream`], [`ChungLuStream`],
//! [`CompleteWeightedStream`]) performs *exactly* the same RNG draws in
//! the same order as its one-shot form, so the streamed edge sequence is
//! bit-identical to the edges the one-shot generator feeds its CSR
//! constructor. `tests/stream_equivalence.rs` proptests both halves of
//! the contract: generator replay, and
//! `StreamingDistBuilder == DistGraphBuilder` byte-for-byte.
//!
//! **Two-pass count-then-fill.** Without spill, the builder drives the
//! stream twice ([`EdgeStream::reset`] rewinds it): pass 1 counts
//! per-vertex degrees, which pre-sizes every machine's flat arrays
//! exactly like [`DistGraphBuilder`]; pass 2 scatters endpoints into
//! the pre-sized windows; a final per-window sort + dedup produces the
//! canonical sorted-CSR form. Self-loops are dropped and duplicate
//! edges collapse (keeping the minimum weight for weighted streams),
//! matching the one-shot constructors.
//!
//! **Disk spill.** With [`SpillConfig`], the builder reads the stream
//! *once*, appending fixed-width little-endian records to one run file
//! per machine (8 bytes `(vertex, neighbor)` unweighted, 16 bytes with
//! an `f64` weight, plus an 8-byte `(source, local target)` host-pair
//! file for directed builds), buffering at most
//! [`SpillConfig::buffer_edges`] records per machine in RAM. Finalize
//! then loads, sorts, and dedups one machine's runs at a time, so
//! transient memory is `O(k·buffer + m/k)` even when the whole edge
//! set exceeds RAM. Run files live in a unique per-build directory that
//! is removed on completion (and best-effort on error).

use crate::dist::{DistGraph, DistGraphBuilder, LocalGraph};
use crate::error::GraphError;
use crate::generators::gnp::unflatten;
use crate::ids::Vertex;
use crate::partition::Partition;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of edges per chunk for the generator streams.
pub const DEFAULT_CHUNK_EDGES: usize = 1 << 16;

/// Default per-machine spill write-buffer size, in edge records.
pub const DEFAULT_SPILL_BUFFER_EDGES: usize = 1 << 14;

/// A bounded batch of edges handed from an [`EdgeStream`] to the
/// builder. Weighted streams keep `weights` aligned with `edges`;
/// unweighted streams leave it empty.
#[derive(Debug, Clone, Default)]
pub struct EdgeChunk {
    edges: Vec<(Vertex, Vertex)>,
    weights: Vec<f64>,
}

impl EdgeChunk {
    /// An empty chunk with room for `cap` edges.
    pub fn with_capacity(cap: usize) -> Self {
        EdgeChunk {
            edges: Vec::with_capacity(cap),
            weights: Vec::with_capacity(cap),
        }
    }

    /// Removes all edges, keeping the allocation.
    pub fn clear(&mut self) {
        self.edges.clear();
        self.weights.clear();
    }

    /// Appends an unweighted edge.
    #[inline]
    pub fn push(&mut self, u: Vertex, v: Vertex) {
        self.edges.push((u, v));
    }

    /// Appends a weighted edge.
    #[inline]
    pub fn push_weighted(&mut self, u: Vertex, v: Vertex, w: f64) {
        self.edges.push((u, v));
        self.weights.push(w);
    }

    /// The buffered edges.
    #[inline]
    pub fn edges(&self) -> &[(Vertex, Vertex)] {
        &self.edges
    }

    /// Weights aligned with [`Self::edges`] (empty for unweighted
    /// streams).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of buffered edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the chunk is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// A resettable source of edge chunks — the streaming counterpart of a
/// one-shot edge list.
///
/// Contract: `next_chunk` clears `chunk`, appends the next batch, and
/// returns `false` once the stream is exhausted (leaving the chunk
/// empty). `reset` rewinds to the start; a reset stream replays the
/// *identical* edge (and weight) sequence, which is what lets the
/// builder run its count pass and fill pass over the same data.
pub trait EdgeStream {
    /// Number of vertices of the streamed graph.
    fn n(&self) -> usize;

    /// Whether chunks carry aligned weights.
    fn is_weighted(&self) -> bool {
        false
    }

    /// Fills `chunk` with the next batch; `false` when exhausted.
    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool;

    /// Rewinds to the start of the identical edge sequence.
    fn reset(&mut self);
}

/// An in-memory edge list viewed as a stream — arbitrary input
/// (duplicates, self-loops, any order) chunked for the builder; also
/// the reference stream for the equivalence tests.
#[derive(Debug, Clone)]
pub struct VecStream {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
    weights: Option<Vec<f64>>,
    chunk_size: usize,
    pos: usize,
}

impl VecStream {
    /// An unweighted stream over `edges`.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn new(n: usize, edges: Vec<(Vertex, Vertex)>, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        VecStream {
            n,
            edges,
            weights: None,
            chunk_size,
            pos: 0,
        }
    }

    /// A weighted stream over parallel `edges` / `weights`.
    ///
    /// # Panics
    /// Panics if the slices differ in length or `chunk_size == 0`.
    pub fn weighted(
        n: usize,
        edges: Vec<(Vertex, Vertex)>,
        weights: Vec<f64>,
        chunk_size: usize,
    ) -> Self {
        assert_eq!(edges.len(), weights.len(), "edges/weights length mismatch");
        assert!(chunk_size > 0, "chunk size must be positive");
        VecStream {
            n,
            edges,
            weights: Some(weights),
            chunk_size,
            pos: 0,
        }
    }
}

impl EdgeStream for VecStream {
    fn n(&self) -> usize {
        self.n
    }

    fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool {
        chunk.clear();
        let end = (self.pos + self.chunk_size).min(self.edges.len());
        match &self.weights {
            Some(ws) => {
                for (&(u, v), &w) in self.edges[self.pos..end].iter().zip(&ws[self.pos..end]) {
                    chunk.push_weighted(u, v, w);
                }
            }
            None => {
                for &(u, v) in &self.edges[self.pos..end] {
                    chunk.push(u, v);
                }
            }
        }
        self.pos = end;
        !chunk.is_empty()
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

/// Chunked `G(n, p)` — the same geometric skip-sampling draw sequence
/// as [`crate::generators::gnp()`], emitted `chunk_size` edges at a
/// time. State is `O(1)`, so this is the generator of choice for the
/// `n = 10⁷` ingestion tier.
#[derive(Debug, Clone)]
pub struct GnpStream<R> {
    n: usize,
    p: f64,
    seed: u64,
    chunk_size: usize,
    total: u64,
    log1p: f64,
    idx: u64,
    done: bool,
    rng: R,
}

impl<R: Rng + SeedableRng> GnpStream<R> {
    /// A stream equivalent to `gnp(n, p, &mut R::seed_from_u64(seed))`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1` and `chunk_size > 0`.
    pub fn new(n: usize, p: f64, seed: u64, chunk_size: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        assert!(chunk_size > 0, "chunk size must be positive");
        let total: u64 = (n as u64) * (n as u64).saturating_sub(1) / 2;
        let mut s = GnpStream {
            n,
            p,
            seed,
            chunk_size,
            total,
            log1p: (1.0 - p).ln(),
            idx: 0,
            done: false,
            rng: R::seed_from_u64(seed),
        };
        s.reset();
        s
    }
}

impl<R: Rng + SeedableRng> EdgeStream for GnpStream<R> {
    fn n(&self) -> usize {
        self.n
    }

    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool {
        chunk.clear();
        if self.done {
            return false;
        }
        if self.p >= 1.0 {
            // The one-shot form returns `classic::complete(n)` without
            // consuming the RNG; emit every pair in row-major order.
            while self.idx < self.total && chunk.len() < self.chunk_size {
                let (u, v) = unflatten(self.idx, self.n);
                chunk.push(u, v);
                self.idx += 1;
            }
            self.done = self.idx >= self.total;
            return !chunk.is_empty();
        }
        while chunk.len() < self.chunk_size {
            // Identical draw to the one-shot loop: Geometric(p) skip.
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (u.ln() / self.log1p).floor() as u64;
            self.idx = match self.idx.checked_add(skip) {
                Some(i) => i,
                None => {
                    self.done = true;
                    break;
                }
            };
            if self.idx >= self.total {
                self.done = true;
                break;
            }
            let (u, v) = unflatten(self.idx, self.n);
            chunk.push(u, v);
            self.idx += 1;
        }
        !chunk.is_empty()
    }

    fn reset(&mut self) {
        self.rng = R::seed_from_u64(self.seed);
        self.idx = 0;
        // The one-shot form returns early (no draws) for these inputs.
        self.done = self.n == 0 || self.p == 0.0;
    }
}

/// Chunked `G(n, m)` — the same Floyd-sampling draw sequence as
/// [`crate::generators::gnm()`], emitting each freshly inserted pair
/// index as it is chosen.
///
/// Note: Floyd's algorithm requires remembering the chosen set, so this
/// stream keeps `O(m)` state — it streams the *edge list*, not the
/// sampler. For `O(1)`-state generation at the largest scales use
/// [`GnpStream`].
#[derive(Debug)]
pub struct GnmStream<R> {
    n: usize,
    m: usize,
    seed: u64,
    chunk_size: usize,
    total: u64,
    j: u64,
    chosen: HashSet<u64>,
    rng: R,
}

impl<R: Rng + SeedableRng> GnmStream<R> {
    /// A stream sampling the same edge set as
    /// `gnm(n, m, &mut R::seed_from_u64(seed))`.
    ///
    /// # Panics
    /// Panics if `m > C(n,2)` or `chunk_size == 0`.
    pub fn new(n: usize, m: usize, seed: u64, chunk_size: usize) -> Self {
        let total: u64 = (n as u64) * (n as u64).saturating_sub(1) / 2;
        assert!((m as u64) <= total, "m={m} exceeds C({n},2)={total}");
        assert!(chunk_size > 0, "chunk size must be positive");
        GnmStream {
            n,
            m,
            seed,
            chunk_size,
            total,
            j: total - m as u64,
            chosen: HashSet::with_capacity(m * 2),
            rng: R::seed_from_u64(seed),
        }
    }
}

impl<R: Rng + SeedableRng> EdgeStream for GnmStream<R> {
    fn n(&self) -> usize {
        self.n
    }

    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool {
        chunk.clear();
        while self.j < self.total && chunk.len() < self.chunk_size {
            // Identical draw to the one-shot loop; each iteration
            // inserts exactly one fresh pair index (`j` itself is always
            // fresh because it exceeds every previously inserted value).
            let t = self.rng.gen_range(0..=self.j);
            let idx = if self.chosen.insert(t) {
                t
            } else {
                self.chosen.insert(self.j);
                self.j
            };
            let (u, v) = unflatten(idx, self.n);
            chunk.push(u, v);
            self.j += 1;
        }
        !chunk.is_empty()
    }

    fn reset(&mut self) {
        self.rng = R::seed_from_u64(self.seed);
        self.j = self.total - self.m as u64;
        self.chosen.clear();
    }
}

/// Chunked Chung–Lu — the same pair-scan `gen_bool` sequence as
/// [`crate::generators::chung_lu()`], with the scan cursor `(i, j)`
/// carried across chunks (including the zero-weight row skip, which
/// consumes no draws).
#[derive(Debug, Clone)]
pub struct ChungLuStream<R> {
    weights: Vec<f64>,
    total: f64,
    seed: u64,
    chunk_size: usize,
    i: usize,
    j: usize,
    rng: R,
}

impl<R: Rng + SeedableRng> ChungLuStream<R> {
    /// A stream equivalent to
    /// `chung_lu(&weights, &mut R::seed_from_u64(seed))`.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite, or
    /// `chunk_size == 0` (same contract as the one-shot form).
    pub fn new(weights: Vec<f64>, seed: u64, chunk_size: usize) -> Self {
        for &w in &weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative"
            );
        }
        assert!(chunk_size > 0, "chunk size must be positive");
        let total: f64 = weights.iter().sum();
        ChungLuStream {
            weights,
            total,
            seed,
            chunk_size,
            i: 0,
            j: 1,
            rng: R::seed_from_u64(seed),
        }
    }
}

impl<R: Rng + SeedableRng> EdgeStream for ChungLuStream<R> {
    fn n(&self) -> usize {
        self.weights.len()
    }

    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool {
        chunk.clear();
        let n = self.weights.len();
        if self.total <= 0.0 {
            // One-shot form draws nothing when the weight mass is zero.
            return false;
        }
        while self.i < n {
            if self.weights[self.i] == 0.0 {
                // Zero-weight rows are skipped without consuming draws.
                self.i += 1;
                self.j = self.i + 1;
                continue;
            }
            while self.j < n {
                if chunk.len() == self.chunk_size {
                    return true;
                }
                let p = (self.weights[self.i] * self.weights[self.j] / self.total).min(1.0);
                let hit = p > 0.0 && self.rng.gen_bool(p);
                if hit {
                    chunk.push(self.i as Vertex, self.j as Vertex);
                }
                self.j += 1;
            }
            self.i += 1;
            self.j = self.i + 1;
        }
        !chunk.is_empty()
    }

    fn reset(&mut self) {
        self.rng = R::seed_from_u64(self.seed);
        self.i = 0;
        self.j = 1;
    }
}

/// Chunked weighted `K_n` — the same `Uniform(0,1)` draw sequence as
/// [`crate::generators::classic::complete_weighted_random()`], one
/// draw per pair in row-major order.
#[derive(Debug, Clone)]
pub struct CompleteWeightedStream<R> {
    n: usize,
    seed: u64,
    chunk_size: usize,
    total: u64,
    idx: u64,
    rng: R,
}

impl<R: Rng + SeedableRng> CompleteWeightedStream<R> {
    /// A stream equivalent to
    /// `complete_weighted_random(n, &mut R::seed_from_u64(seed))`.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn new(n: usize, seed: u64, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        CompleteWeightedStream {
            n,
            seed,
            chunk_size,
            total: (n as u64) * (n as u64).saturating_sub(1) / 2,
            idx: 0,
            rng: R::seed_from_u64(seed),
        }
    }
}

impl<R: Rng + SeedableRng> EdgeStream for CompleteWeightedStream<R> {
    fn n(&self) -> usize {
        self.n
    }

    fn is_weighted(&self) -> bool {
        true
    }

    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool {
        chunk.clear();
        while self.idx < self.total && chunk.len() < self.chunk_size {
            let (u, v) = unflatten(self.idx, self.n);
            let w = self.rng.gen_range(0.0..1.0);
            chunk.push_weighted(u, v, w);
            self.idx += 1;
        }
        !chunk.is_empty()
    }

    fn reset(&mut self) {
        self.rng = R::seed_from_u64(self.seed);
        self.idx = 0;
    }
}

/// Why a streaming build failed.
#[derive(Debug)]
pub enum StreamError {
    /// The streamed input violated a graph invariant (e.g. a non-finite
    /// weight) — same error family as the one-shot constructors.
    Graph(GraphError),
    /// A disk-spill file operation failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Graph(e) => write!(f, "streamed input rejected: {e}"),
            StreamError::Io(e) => write!(f, "spill i/o failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Graph(e) => Some(e),
            StreamError::Io(e) => Some(e),
        }
    }
}

impl From<GraphError> for StreamError {
    fn from(e: GraphError) -> Self {
        StreamError::Graph(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// Disk-spill configuration for [`StreamingDistBuilder::spill`].
#[derive(Debug, Clone, Default)]
pub struct SpillConfig {
    /// Directory for the per-build run-file directory; `None` uses
    /// [`std::env::temp_dir`].
    pub dir: Option<PathBuf>,
    /// In-RAM write buffer per machine, in edge records; `0` uses
    /// [`DEFAULT_SPILL_BUFFER_EDGES`].
    pub buffer_edges: usize,
}

/// Builds all `k` [`LocalGraph`]s straight from an [`EdgeStream`],
/// producing a [`DistGraph`] byte-for-byte equal to the
/// [`DistGraphBuilder`] path without ever holding the global CSR.
#[derive(Debug, Clone)]
pub struct StreamingDistBuilder<'a> {
    part: &'a Arc<Partition>,
    spill: Option<SpillConfig>,
}

/// Monotone counter making concurrent spill directories unique within
/// the process (combined with the pid for uniqueness across processes).
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

impl<'a> StreamingDistBuilder<'a> {
    /// A streaming builder distributing over `part`'s machines.
    pub fn new(part: &'a Arc<Partition>) -> Self {
        StreamingDistBuilder { part, spill: None }
    }

    /// Enables disk spill: the stream is read once and routed to
    /// per-machine run files, finalized one machine at a time.
    pub fn spill(mut self, cfg: SpillConfig) -> Self {
        self.spill = Some(cfg);
        self
    }

    /// Distributes an undirected edge stream (both endpoints receive
    /// the edge, like [`DistGraphBuilder::undirected`]).
    ///
    /// # Panics
    /// Panics if `stream.n() != part.n()` or an endpoint is out of
    /// range (programmer errors, same contract as the one-shot path).
    pub fn undirected<S: EdgeStream + ?Sized>(
        &self,
        stream: &mut S,
    ) -> Result<DistGraph, StreamError> {
        self.build(stream, Mode::Undirected)
    }

    /// Distributes a weighted undirected edge stream; duplicate edges
    /// keep the minimum weight, like [`crate::WeightedGraph`].
    ///
    /// # Errors
    /// [`GraphError::NonFiniteWeight`] (as `StreamError::Graph`) if the
    /// stream yields a NaN/±∞ weight.
    ///
    /// # Panics
    /// Panics if `stream.is_weighted()` is false, `stream.n()`
    /// mismatches the partition, or an endpoint is out of range.
    pub fn weighted<S: EdgeStream + ?Sized>(
        &self,
        stream: &mut S,
    ) -> Result<DistGraph, StreamError> {
        assert!(
            stream.is_weighted(),
            "weighted build needs a weighted stream"
        );
        self.build(stream, Mode::Weighted)
    }

    /// Distributes a directed arc stream: `(u, v)` is the arc `u → v`;
    /// the home of `u` stores the out-edge and the home of `v` gains
    /// the [`LocalGraph::host_targets`] entry, like
    /// [`DistGraphBuilder::directed`].
    ///
    /// # Panics
    /// Panics if `stream.n() != part.n()` or an endpoint is out of
    /// range.
    pub fn directed<S: EdgeStream + ?Sized>(
        &self,
        stream: &mut S,
    ) -> Result<DistGraph, StreamError> {
        self.build(stream, Mode::Directed)
    }

    fn build<S: EdgeStream + ?Sized>(
        &self,
        stream: &mut S,
        mode: Mode,
    ) -> Result<DistGraph, StreamError> {
        assert_eq!(stream.n(), self.part.n(), "partition size mismatch");
        match &self.spill {
            None => self.build_in_ram(stream, mode),
            Some(cfg) => self.build_spilled(stream, mode, cfg),
        }
    }

    // ---- in-RAM two-pass path -------------------------------------

    /// Count pass + fill pass + per-window canonicalization. Transient
    /// memory above the final locals is `O(n)` (degree/cursor arrays —
    /// the same order as the shared `local_of` index) plus one chunk;
    /// the directed mode additionally stages the `O(m)` host pairs,
    /// exactly like the in-memory builder's `pairs` staging.
    fn build_in_ram<S: EdgeStream + ?Sized>(
        &self,
        stream: &mut S,
        mode: Mode,
    ) -> Result<DistGraph, StreamError> {
        let part = self.part;
        let n = part.n();
        let k = part.k();
        let both = mode != Mode::Directed;
        let weighted = mode == Mode::Weighted;

        // Pass 1: raw per-vertex endpoint counts (duplicates included —
        // they only widen the scatter windows, which dedup re-compacts)
        // plus, for directed builds, the per-machine host-pair counts.
        let mut deg = vec![0u32; n];
        let mut host_counts = vec![0usize; k];
        let mut chunk = EdgeChunk::default();
        stream.reset();
        while stream.next_chunk(&mut chunk) {
            check_weights(&chunk, weighted)?;
            for &(u, v) in chunk.edges() {
                check_endpoints(u, v, n);
                if u == v {
                    continue;
                }
                deg[u as usize] += 1;
                if both {
                    deg[v as usize] += 1;
                } else {
                    host_counts[part.home(v)] += 1;
                }
            }
        }

        // Pre-size every machine's flat arrays and lay out one scatter
        // window per vertex (machine-relative offsets).
        let mut locals = DistGraphBuilder::new(part).shells(n);
        let mut pos = vec![0u32; n];
        for (i, l) in locals.iter_mut().enumerate() {
            let mut acc = 0usize;
            for &v in part.members(i) {
                assert!(
                    acc <= u32::MAX as usize,
                    "machine {i} exceeds u32 endpoints"
                );
                pos[v as usize] = acc as u32;
                acc += deg[v as usize] as usize;
            }
            l.neighbors = vec![0 as Vertex; acc];
            if weighted {
                l.weighted = true;
                l.weights = vec![0f64; acc];
            }
            l.offsets.reserve(part.members(i).len());
        }
        let starts = pos.clone();
        drop(deg);
        let mut host_pairs: Vec<Vec<(Vertex, u32)>> =
            host_counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        let local_of: Arc<[u32]> = Arc::clone(&locals[0].local_of);

        // Pass 2: scatter endpoints (and weights / host pairs) into the
        // pre-sized windows. The stream contract guarantees the replay
        // is identical, so every window is filled exactly.
        stream.reset();
        while stream.next_chunk(&mut chunk) {
            check_weights(&chunk, weighted)?;
            for (e, &(u, v)) in chunk.edges().iter().enumerate() {
                if u == v {
                    continue;
                }
                let hu = part.home(u);
                let l = &mut locals[hu];
                let c = pos[u as usize] as usize;
                l.neighbors[c] = v;
                if weighted {
                    l.weights[c] = chunk.weights()[e];
                }
                pos[u as usize] += 1;
                if both {
                    let hv = part.home(v);
                    let l = &mut locals[hv];
                    let c = pos[v as usize] as usize;
                    l.neighbors[c] = u;
                    if weighted {
                        l.weights[c] = chunk.weights()[e];
                    }
                    pos[v as usize] += 1;
                } else {
                    host_pairs[part.home(v)].push((u, local_of[v as usize]));
                }
            }
        }

        // Canonicalize: per-window sort + dedup-compact yields the
        // sorted simple adjacency of the one-shot constructors.
        let mut edge_loads = vec![0usize; k];
        let mut scratch: Vec<(Vertex, f64)> = Vec::new();
        for (i, l) in locals.iter_mut().enumerate() {
            let mut write = 0usize;
            for &v in part.members(i) {
                let lo = starts[v as usize] as usize;
                let hi = pos[v as usize] as usize;
                if weighted {
                    // Sort by (neighbor, weight) so keep-first == keep
                    // the minimum weight, matching `WeightedGraph`.
                    scratch.clear();
                    scratch.extend(
                        l.neighbors[lo..hi]
                            .iter()
                            .zip(&l.weights[lo..hi])
                            .map(|(&nv, &nw)| (nv, nw)),
                    );
                    scratch.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                    let mut last = None;
                    for &(nv, nw) in &scratch {
                        if last != Some(nv) {
                            l.neighbors[write] = nv;
                            l.weights[write] = nw;
                            write += 1;
                            last = Some(nv);
                        }
                    }
                } else {
                    l.neighbors[lo..hi].sort_unstable();
                    let mut last = None;
                    for r in lo..hi {
                        let nv = l.neighbors[r];
                        if last != Some(nv) {
                            // `write <= r` always, so the read above is
                            // never clobbered.
                            l.neighbors[write] = nv;
                            write += 1;
                            last = Some(nv);
                        }
                    }
                }
                l.offsets.push(write);
            }
            l.neighbors.truncate(write);
            if weighted {
                l.weights.truncate(write);
            }
            edge_loads[i] = write;
        }

        if mode == Mode::Directed {
            finalize_host_pairs(&mut locals, host_pairs);
        }
        Ok(DistGraph::assemble(locals, edge_loads))
    }

    // ---- disk-spill single-pass path ------------------------------

    fn build_spilled<S: EdgeStream + ?Sized>(
        &self,
        stream: &mut S,
        mode: Mode,
        cfg: &SpillConfig,
    ) -> Result<DistGraph, StreamError> {
        let part = self.part;
        let n = part.n();
        let k = part.k();
        let both = mode != Mode::Directed;
        let weighted = mode == Mode::Weighted;
        let rec = if weighted { 16 } else { 8 };
        let buffer_edges = if cfg.buffer_edges == 0 {
            DEFAULT_SPILL_BUFFER_EDGES
        } else {
            cfg.buffer_edges
        };

        let dir = SpillDir::create(cfg.dir.clone())?;
        let mut adj = SpillWriters::open(&dir.path, "adj", k, rec * buffer_edges)?;
        let mut host = if both {
            None
        } else {
            Some(SpillWriters::open(&dir.path, "host", k, 8 * buffer_edges)?)
        };

        let mut locals = DistGraphBuilder::new(part).shells(n);
        let local_of: Arc<[u32]> = Arc::clone(&locals[0].local_of);

        // Single pass: route fixed-width records to per-machine runs.
        let mut chunk = EdgeChunk::default();
        stream.reset();
        while stream.next_chunk(&mut chunk) {
            check_weights(&chunk, weighted)?;
            for (e, &(u, v)) in chunk.edges().iter().enumerate() {
                check_endpoints(u, v, n);
                if u == v {
                    continue;
                }
                let w = if weighted { chunk.weights()[e] } else { 0.0 };
                adj.push(part.home(u), u, v, weighted.then_some(w))?;
                if both {
                    adj.push(part.home(v), v, u, weighted.then_some(w))?;
                } else if let Some(h) = host.as_mut() {
                    h.push(part.home(v), u, local_of[v as usize], None)?;
                }
            }
        }
        adj.flush_all()?;
        if let Some(h) = host.as_mut() {
            h.flush_all()?;
        }

        // Finalize one machine at a time: load its run, sort, dedup,
        // fill the local — transient memory is one machine's edge set.
        let mut edge_loads = vec![0usize; k];
        let mut host_pairs: Vec<Vec<(Vertex, u32)>> = vec![Vec::new(); k];
        for (i, l) in locals.iter_mut().enumerate() {
            if weighted {
                let mut triples = adj.read_weighted(i)?;
                triples
                    .sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
                triples.dedup_by_key(|t| (t.0, t.1));
                l.weighted = true;
                l.neighbors.reserve(triples.len());
                l.weights.reserve(triples.len());
                let mut ptr = 0usize;
                for &v in part.members(i) {
                    while ptr < triples.len() && triples[ptr].0 == v {
                        l.neighbors.push(triples[ptr].1);
                        l.weights.push(triples[ptr].2);
                        ptr += 1;
                    }
                    l.offsets.push(l.neighbors.len());
                }
                debug_assert_eq!(ptr, triples.len());
            } else {
                let mut pairs = adj.read_pairs(i)?;
                pairs.sort_unstable();
                pairs.dedup();
                l.neighbors.reserve(pairs.len());
                let mut ptr = 0usize;
                for &v in part.members(i) {
                    while ptr < pairs.len() && pairs[ptr].0 == v {
                        l.neighbors.push(pairs[ptr].1);
                        ptr += 1;
                    }
                    l.offsets.push(l.neighbors.len());
                }
                debug_assert_eq!(ptr, pairs.len());
            }
            edge_loads[i] = l.neighbors.len();
            if let Some(h) = host.as_ref() {
                let mut pairs = h.read_pairs(i)?;
                pairs.sort_unstable();
                pairs.dedup();
                host_pairs[i] = pairs;
            }
        }
        if mode == Mode::Directed {
            finalize_host_pairs(&mut locals, host_pairs);
        }
        drop(adj);
        drop(host);
        dir.remove()?;
        Ok(DistGraph::assemble(locals, edge_loads))
    }
}

/// Build flavor of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Undirected,
    Weighted,
    Directed,
}

#[inline]
fn check_endpoints(u: Vertex, v: Vertex, n: usize) {
    assert!(
        (u as usize) < n && (v as usize) < n,
        "edge ({u},{v}) out of range for n={n}"
    );
}

fn check_weights(chunk: &EdgeChunk, weighted: bool) -> Result<(), StreamError> {
    if !weighted {
        return Ok(());
    }
    assert_eq!(
        chunk.edges().len(),
        chunk.weights().len(),
        "weighted stream emitted unaligned weights"
    );
    for (&(u, v), &w) in chunk.edges().iter().zip(chunk.weights()) {
        if !w.is_finite() {
            return Err(GraphError::NonFiniteWeight { u, v, w }.into());
        }
    }
    Ok(())
}

/// Groups sorted, dedup'd `(source, local target)` pairs into each
/// local's `host_targets` index — the same grouping loop as
/// [`DistGraphBuilder::directed`].
fn finalize_host_pairs(locals: &mut [LocalGraph], host_pairs: Vec<Vec<(Vertex, u32)>>) {
    for (l, mut p) in locals.iter_mut().zip(host_pairs) {
        p.sort_unstable();
        p.dedup();
        for (u, j) in p {
            if l.host_src.last() != Some(&u) {
                l.host_src.push(u);
                l.host_offsets.push(l.host_tgt.len());
            }
            l.host_tgt.push(j);
        }
        l.host_offsets.push(l.host_tgt.len());
    }
}

/// The unique per-build spill directory, removed on drop (best effort)
/// or explicitly with a reported error.
#[derive(Debug)]
struct SpillDir {
    path: PathBuf,
    removed: bool,
}

impl SpillDir {
    fn create(base: Option<PathBuf>) -> Result<Self, StreamError> {
        let base = base.unwrap_or_else(std::env::temp_dir);
        let pid = std::process::id();
        loop {
            let c = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!("km-stream-spill-{pid}-{c}"));
            match fs::create_dir_all(&base).and_then(|()| fs::create_dir(&path)) {
                Ok(()) => {
                    return Ok(SpillDir {
                        path,
                        removed: false,
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn remove(mut self) -> Result<(), StreamError> {
        self.removed = true;
        fs::remove_dir_all(&self.path)?;
        Ok(())
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        if !self.removed {
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

/// One run file per machine with a bounded in-RAM write buffer.
#[derive(Debug)]
struct SpillWriters {
    paths: Vec<PathBuf>,
    files: Vec<File>,
    buffers: Vec<Vec<u8>>,
    buffer_bytes: usize,
}

impl SpillWriters {
    fn open(
        dir: &std::path::Path,
        tag: &str,
        k: usize,
        buffer_bytes: usize,
    ) -> Result<Self, StreamError> {
        let mut paths = Vec::with_capacity(k);
        let mut files = Vec::with_capacity(k);
        for i in 0..k {
            let p = dir.join(format!("{tag}-{i}.run"));
            files.push(File::create(&p)?);
            paths.push(p);
        }
        Ok(SpillWriters {
            paths,
            files,
            buffers: vec![Vec::new(); k],
            buffer_bytes: buffer_bytes.max(24),
        })
    }

    /// Appends one record — `(a, b)` as two `u32`s, plus an optional
    /// `f64` weight — to machine `i`'s run, flushing a full buffer.
    fn push(&mut self, i: usize, a: u32, b: u32, w: Option<f64>) -> Result<(), StreamError> {
        let buf = &mut self.buffers[i];
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&b.to_le_bytes());
        if let Some(w) = w {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        if buf.len() >= self.buffer_bytes {
            self.files[i].write_all(buf)?;
            buf.clear();
        }
        Ok(())
    }

    fn flush_all(&mut self) -> Result<(), StreamError> {
        for (f, buf) in self.files.iter_mut().zip(&mut self.buffers) {
            if !buf.is_empty() {
                f.write_all(buf)?;
            }
            buf.clear();
            buf.shrink_to_fit();
        }
        Ok(())
    }

    fn read_bytes(&self, i: usize) -> Result<Vec<u8>, StreamError> {
        let mut bytes = Vec::new();
        File::open(&self.paths[i])?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    /// Reads machine `i`'s run as 8-byte `(u32, u32)` records.
    fn read_pairs(&self, i: usize) -> Result<Vec<(u32, u32)>, StreamError> {
        let bytes = self.read_bytes(i)?;
        debug_assert_eq!(bytes.len() % 8, 0);
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                )
            })
            .collect())
    }

    /// Reads machine `i`'s run as 16-byte `(u32, u32, f64)` records.
    fn read_weighted(&self, i: usize) -> Result<Vec<(u32, u32, f64)>, StreamError> {
        let bytes = self.read_bytes(i)?;
        debug_assert_eq!(bytes.len() % 16, 0);
        Ok(bytes
            .chunks_exact(16)
            .map(|c| {
                (
                    u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                    f64::from_le_bytes([c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15]]),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators::{chung_lu, classic, gnm, gnp, power_law_weights};
    use crate::weighted::WeightedGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn drain(s: &mut impl EdgeStream) -> (Vec<(Vertex, Vertex)>, Vec<f64>) {
        let mut chunk = EdgeChunk::default();
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        while s.next_chunk(&mut chunk) {
            edges.extend_from_slice(chunk.edges());
            weights.extend_from_slice(chunk.weights());
        }
        (edges, weights)
    }

    #[test]
    fn vec_stream_chunks_and_resets() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)];
        let mut s = VecStream::new(5, edges.clone(), 2);
        let mut chunk = EdgeChunk::default();
        assert!(s.next_chunk(&mut chunk));
        assert_eq!(chunk.edges(), &edges[..2]);
        let (rest, _) = drain(&mut s);
        assert_eq!(rest, &edges[2..]);
        s.reset();
        assert_eq!(drain(&mut s).0, edges);
    }

    #[test]
    fn gnp_stream_replays_one_shot_sequence() {
        for &(n, p, seed) in &[(60, 0.1, 7u64), (40, 0.5, 1), (10, 1.0, 3), (10, 0.0, 3)] {
            let g = gnp(n, p, &mut ChaCha8Rng::seed_from_u64(seed));
            let mut s = GnpStream::<ChaCha8Rng>::new(n, p, seed, 13);
            let (edges, _) = drain(&mut s);
            // gnp emits strictly increasing flat indices, so the edge
            // sequence equals the one-shot CSR's canonical edge order.
            let want: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
            assert_eq!(edges, want, "n={n} p={p}");
            s.reset();
            assert_eq!(drain(&mut s).0, edges);
        }
    }

    #[test]
    fn gnm_stream_samples_the_one_shot_edge_set() {
        for &(n, m, seed) in &[(30, 100, 5u64), (10, 45, 2), (10, 0, 2), (5, 10, 9)] {
            let g = gnm(n, m, &mut ChaCha8Rng::seed_from_u64(seed));
            let mut s = GnmStream::<ChaCha8Rng>::new(n, m, seed, 7);
            let (edges, _) = drain(&mut s);
            assert_eq!(edges.len(), m);
            assert_eq!(CsrGraph::from_edges(n, &edges), g, "n={n} m={m}");
            s.reset();
            assert_eq!(drain(&mut s).0, edges);
        }
    }

    #[test]
    fn chung_lu_stream_replays_one_shot_sequence() {
        let mut w = power_law_weights(50, 2.5, 6.0);
        w[3] = 0.0; // exercise the zero-weight row skip
        w[17] = 0.0;
        let g = chung_lu(&w, &mut ChaCha8Rng::seed_from_u64(23));
        let mut s = ChungLuStream::<ChaCha8Rng>::new(w, 23, 11);
        let (edges, _) = drain(&mut s);
        let want: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(edges, want);
    }

    #[test]
    fn chung_lu_stream_zero_mass_is_empty() {
        let mut s = ChungLuStream::<ChaCha8Rng>::new(vec![0.0; 8], 1, 4);
        assert!(drain(&mut s).0.is_empty());
    }

    #[test]
    fn complete_weighted_stream_replays_one_shot_draws() {
        let g = classic::complete_weighted_random(9, &mut ChaCha8Rng::seed_from_u64(4)).unwrap();
        let mut s = CompleteWeightedStream::<ChaCha8Rng>::new(9, 4, 5);
        let (edges, weights) = drain(&mut s);
        assert_eq!(edges.len(), 36);
        let streamed = WeightedGraph::from_weighted_edges(9, &edges, &weights).unwrap();
        assert_eq!(streamed, g);
    }

    #[test]
    fn streaming_matches_in_memory_on_messy_input() {
        // Duplicates, self-loops, both orientations.
        let edges = vec![
            (0, 1),
            (1, 0),
            (2, 2),
            (3, 4),
            (4, 3),
            (0, 1),
            (5, 0),
            (4, 5),
        ];
        let g = CsrGraph::from_edges(6, &edges);
        let part = Arc::new(Partition::by_hash(6, 3, 1));
        let want = DistGraphBuilder::new(&part).undirected(&g);
        let mut s = VecStream::new(6, edges, 3);
        let got = StreamingDistBuilder::new(&part).undirected(&mut s).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn spill_mode_matches_and_cleans_up() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = gnp(80, 0.15, &mut rng);
        let part = Arc::new(Partition::by_hash(80, 4, 2));
        let want = DistGraphBuilder::new(&part).undirected(&g);
        let dir = std::env::temp_dir().join("km-stream-spill-test");
        let mut s = GnpStream::<ChaCha8Rng>::new(80, 0.15, 12, 17);
        let got = StreamingDistBuilder::new(&part)
            .spill(SpillConfig {
                dir: Some(dir.clone()),
                buffer_edges: 8,
            })
            .undirected(&mut s)
            .unwrap();
        assert_eq!(got, want);
        // The per-build subdirectory is gone; only the base dir remains.
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "spill files not cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn weighted_stream_rejects_non_finite_weight() {
        let part = Arc::new(Partition::round_robin(3, 2));
        let mut s = VecStream::weighted(3, vec![(0, 1), (1, 2)], vec![1.0, f64::NAN], 8);
        let err = StreamingDistBuilder::new(&part)
            .weighted(&mut s)
            .unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Graph(GraphError::NonFiniteWeight { u: 1, v: 2, .. })
            ),
            "{err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("non-finite"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "partition size mismatch")]
    fn rejects_mismatched_partition() {
        let part = Arc::new(Partition::round_robin(5, 2));
        let mut s = VecStream::new(4, vec![(0, 1)], 8);
        let _ = StreamingDistBuilder::new(&part).undirected(&mut s);
    }

    #[test]
    fn empty_stream_builds_empty_locals() {
        let part = Arc::new(Partition::round_robin(7, 3));
        let mut s = VecStream::new(7, Vec::new(), 8);
        let d = StreamingDistBuilder::new(&part).undirected(&mut s).unwrap();
        assert_eq!(d.k(), 3);
        for l in d.locals() {
            assert_eq!(l.edge_endpoints(), 0);
        }
        assert_eq!(d.vertex_balance().max, 3);
    }
}
