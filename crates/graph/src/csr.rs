//! Undirected graphs in compressed sparse row (CSR) form.
//!
//! The k-machine algorithms spend their local (free) computation scanning
//! adjacency lists, so the representation is a flat `offsets`/`neighbors`
//! pair with sorted adjacency — cache-friendly, and `has_edge` is a binary
//! search. Construction deduplicates parallel edges and drops self-loops.

use crate::ids::{Edge, Vertex};

/// An immutable simple undirected graph in CSR form.
///
/// Vertices are `0..n`. Each undirected edge `{u,v}` appears in both
/// adjacency lists; adjacency lists are sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<Vertex>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops are dropped, parallel edges deduplicated, and endpoint
    /// order is irrelevant.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut deg = vec![0usize; n];
        let mut clean: Vec<(Vertex, Vertex)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for n={n}"
            );
            if u != v {
                clean.push(if u < v { (u, v) } else { (v, u) });
            }
        }
        clean.sort_unstable();
        clean.dedup();
        for &(u, v) in &clean {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as Vertex; acc];
        for &(u, v) in &clean {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each adjacency list was filled in increasing order of the *other*
        // endpoint only for the `u < v` direction; sort each list to get the
        // canonical sorted-CSR invariant.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph { offsets, neighbors }
    }

    /// Builds a graph from canonical [`Edge`] values.
    pub fn from_edge_structs(n: usize, edges: &[Edge]) -> Self {
        let pairs: Vec<(Vertex, Vertex)> = edges.iter().map(|e| (e.u, e.v)).collect();
        Self::from_edges(n, &pairs)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether edge `{u,v}` is present (binary search; `O(log deg)`).
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        if u == v {
            return false;
        }
        // Search the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(v as Vertex))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.n() as Vertex
    }

    /// Iterator over each undirected edge once, in canonical `(u < v)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n()).flat_map(move |u| {
            let u = u as Vertex;
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge { u, v })
        })
    }

    /// Edges incident to `v`, each as a canonical [`Edge`].
    pub fn incident_edges(&self, v: Vertex) -> impl Iterator<Item = Edge> + '_ {
        self.neighbors(v).iter().map(move |&w| Edge::new(v, w))
    }

    /// Sum of degrees (`2m`).
    #[inline]
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of neighbors of `u` strictly greater than `u` (out-degree in
    /// the degree-ordered orientation used by triangle enumerators).
    #[inline]
    pub fn higher_degree(&self, u: Vertex) -> usize {
        let list = self.neighbors(u);
        let split = list.partition_point(|&w| w <= u);
        list.len() - split
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn neighbors_sorted_and_has_edge() {
        let g = CsrGraph::from_edges(5, &[(3, 1), (3, 0), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert!(g.has_edge(3, 2) && g.has_edge(2, 3));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn edge_iterator_canonical() {
        let g = path4();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]
        );
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn higher_degree_orientation() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(g.higher_degree(0), 3);
        assert_eq!(g.higher_degree(1), 1);
        assert_eq!(g.higher_degree(3), 0);
    }

    proptest! {
        /// Degree sum equals 2m and every edge appears in both adjacency lists.
        #[test]
        fn csr_invariants(edges in proptest::collection::vec((0u32..40, 0u32..40), 0..200)) {
            let g = CsrGraph::from_edges(40, &edges);
            prop_assert_eq!(g.degree_sum(), 2 * g.m());
            for e in g.edges() {
                prop_assert!(g.neighbors(e.u).contains(&e.v));
                prop_assert!(g.neighbors(e.v).contains(&e.u));
                prop_assert!(g.has_edge(e.u, e.v));
            }
            // Adjacency sorted and loop-free.
            for v in g.vertices() {
                let ns = g.neighbors(v);
                prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(!ns.contains(&v));
            }
        }

        /// Rebuilding from the edge iterator reproduces the same graph.
        #[test]
        fn csr_roundtrip(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..150)) {
            let g = CsrGraph::from_edges(30, &edges);
            let edges2: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
            let g2 = CsrGraph::from_edges(30, &edges2);
            prop_assert_eq!(g, g2);
        }
    }
}
