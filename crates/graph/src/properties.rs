//! Structural queries: connectivity, components, degree statistics.

use crate::csr::CsrGraph;
use crate::ids::Vertex;

/// Breadth-first search from `src`; returns the visit order.
pub fn bfs(g: &CsrGraph, src: Vertex) -> Vec<Vertex> {
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen[src as usize] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    if g.n() == 0 {
        return true;
    }
    bfs(g, 0).len() == g.n()
}

/// Connected component label (smallest representative id) per vertex.
pub fn components(g: &CsrGraph) -> Vec<Vertex> {
    let mut label = vec![Vertex::MAX; g.n()];
    for start in 0..g.n() as Vertex {
        if label[start as usize] != Vertex::MAX {
            continue;
        }
        for v in bfs(g, start) {
            label[v as usize] = start;
        }
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &CsrGraph) -> usize {
    let labels = components(g);
    let mut uniq: Vec<Vertex> = labels;
    uniq.sort_unstable();
    uniq.dedup();
    uniq.len()
}

/// Summary statistics of the degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree Δ.
    pub max: usize,
    /// Mean degree 2m/n.
    pub mean: f64,
    /// Number of isolated vertices.
    pub isolated: usize,
}

/// Computes [`DegreeStats`] for `g`.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.n();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            isolated: 0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0;
    let mut isolated = 0;
    for v in 0..n as Vertex {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        min,
        max,
        mean: g.degree_sum() as f64 / n as f64,
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)])
    }

    #[test]
    fn bfs_order_covers_component() {
        let g = two_components();
        let order = bfs(&g, 0);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn connectivity() {
        assert!(!is_connected(&two_components()));
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(is_connected(&g));
        assert!(is_connected(&CsrGraph::from_edges(0, &[])));
        assert!(!is_connected(&CsrGraph::from_edges(2, &[])));
    }

    #[test]
    fn component_labels() {
        let g = two_components();
        let labels = components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn degree_statistics() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.isolated, 0);

        let empty = degree_stats(&CsrGraph::from_edges(0, &[]));
        assert_eq!(empty.max, 0);
    }
}
