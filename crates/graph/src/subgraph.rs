//! Induced subgraphs and random vertex samples.
//!
//! The triangle-enumeration upper bound (Theorem 5) controls the number of
//! edges landing on one machine via the number of edges *induced by a random
//! vertex subset* (Proposition 2, Rödl–Ruciński). These helpers extract
//! induced subgraphs and count induced edges so `km-lower` can validate the
//! concentration bound empirically.

use crate::csr::CsrGraph;
use crate::ids::Vertex;
use rand::seq::SliceRandom;
use rand::Rng;

/// The subgraph of `g` induced by `subset`, with vertices relabeled
/// `0..subset.len()` in the order given. Returns the relabeled graph and
/// the mapping `new id -> old id`.
pub fn induced_subgraph(g: &CsrGraph, subset: &[Vertex]) -> (CsrGraph, Vec<Vertex>) {
    let mut old_to_new = vec![Vertex::MAX; g.n()];
    for (new, &old) in subset.iter().enumerate() {
        assert!(
            old_to_new[old as usize] == Vertex::MAX,
            "duplicate vertex {old} in subset"
        );
        old_to_new[old as usize] = new as Vertex;
    }
    let mut edges = Vec::new();
    for (new_u, &old_u) in subset.iter().enumerate() {
        for &old_v in g.neighbors(old_u) {
            let new_v = old_to_new[old_v as usize];
            if new_v != Vertex::MAX && (new_u as Vertex) < new_v {
                edges.push((new_u as Vertex, new_v));
            }
        }
    }
    (CsrGraph::from_edges(subset.len(), &edges), subset.to_vec())
}

/// Number of edges of `g` with both endpoints in `subset`
/// (`e(G[R])` in Proposition 2), without materializing the subgraph.
pub fn induced_edge_count(g: &CsrGraph, subset: &[Vertex]) -> usize {
    let mut in_set = vec![false; g.n()];
    for &v in subset {
        in_set[v as usize] = true;
    }
    let mut count = 0;
    for &u in subset {
        for &v in g.neighbors(u) {
            if u < v && in_set[v as usize] {
                count += 1;
            }
        }
    }
    count
}

/// Samples a uniformly random `t`-subset of the vertices of `g`.
///
/// # Panics
/// Panics if `t > n`.
pub fn random_vertex_subset<R: Rng>(g: &CsrGraph, t: usize, rng: &mut R) -> Vec<Vertex> {
    assert!(t <= g.n(), "subset size {t} exceeds n={}", g.n());
    let mut all: Vec<Vertex> = (0..g.n() as Vertex).collect();
    all.shuffle(rng);
    all.truncate(t);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn k4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn induced_triangle_from_k4() {
        let g = k4();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3);
        assert_eq!(map, vec![0, 1, 3]);
    }

    #[test]
    fn induced_count_matches_subgraph() {
        let g = k4();
        for subset in [vec![], vec![2], vec![0, 2], vec![1, 2, 3]] {
            let (sub, _) = induced_subgraph(&g, &subset);
            assert_eq!(sub.m(), induced_edge_count(&g, &subset));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_subset() {
        let _ = induced_subgraph(&k4(), &[1, 1]);
    }

    #[test]
    fn random_subset_size_and_uniqueness() {
        let g = k4();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let s = random_vertex_subset(&g, 3, &mut rng);
        assert_eq!(s.len(), 3);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }
}
