//! Identifier types shared across the workspace.
//!
//! The paper's graphs carry unique integer IDs from `[n]` (Section 1.1);
//! we use `u32` vertex ids (graphs of up to ~4·10⁹ vertices, far beyond
//! what the simulator will hold) and `usize` machine indices.

/// A vertex identifier. Vertices of an `n`-vertex graph are `0..n`.
///
/// The paper assigns vertices IDs from `[1, poly(n)]`; the lower-bound
/// constructions that need *random* IDs (Section 2.3) keep an explicit
/// permutation side table instead of widening this type.
pub type Vertex = u32;

/// Index of a machine, `0..k`.
pub type MachineIdx = usize;

/// An undirected edge `{u, v}` stored in canonical (min, max) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: Vertex,
    /// The larger endpoint.
    pub v: Vertex,
}

impl Edge {
    /// Creates a canonical edge from two endpoints (order-insensitive).
    ///
    /// # Panics
    /// Panics if `u == v`; the graphs in this workspace are simple.
    #[inline]
    pub fn new(u: Vertex, v: Vertex) -> Self {
        assert_ne!(u, v, "self-loops are not representable as Edge");
        if u < v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }

    /// Returns the endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: Vertex) -> Vertex {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Returns `true` if `x` is an endpoint of this edge.
    #[inline]
    pub fn contains(&self, x: Vertex) -> bool {
        x == self.u || x == self.v
    }
}

/// A triangle `{a, b, c}` stored with `a < b < c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triangle {
    /// Smallest vertex.
    pub a: Vertex,
    /// Middle vertex.
    pub b: Vertex,
    /// Largest vertex.
    pub c: Vertex,
}

impl Triangle {
    /// Creates a canonical triangle from three distinct vertices.
    ///
    /// # Panics
    /// Panics if the vertices are not pairwise distinct.
    #[inline]
    pub fn new(x: Vertex, y: Vertex, z: Vertex) -> Self {
        let mut t = [x, y, z];
        t.sort_unstable();
        assert!(
            t[0] != t[1] && t[1] != t[2],
            "triangle vertices must be distinct"
        );
        Triangle {
            a: t[0],
            b: t[1],
            c: t[2],
        }
    }

    /// The three edges of the triangle, in canonical order.
    #[inline]
    pub fn edges(&self) -> [Edge; 3] {
        [
            Edge::new(self.a, self.b),
            Edge::new(self.a, self.c),
            Edge::new(self.b, self.c),
        ]
    }

    /// Returns `true` if `e` is one of the triangle's edges.
    #[inline]
    pub fn contains_edge(&self, e: Edge) -> bool {
        self.edges().contains(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonical() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        let e = Edge::new(7, 3);
        assert_eq!((e.u, e.v), (3, 7));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(4, 4);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(1, 9);
        assert_eq!(e.other(1), 9);
        assert_eq!(e.other(9), 1);
        assert!(e.contains(1) && e.contains(9) && !e.contains(5));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_rejects_non_endpoint() {
        let _ = Edge::new(1, 9).other(2);
    }

    #[test]
    fn triangle_is_canonical() {
        let t = Triangle::new(9, 1, 4);
        assert_eq!((t.a, t.b, t.c), (1, 4, 9));
        assert_eq!(t, Triangle::new(4, 9, 1));
    }

    #[test]
    fn triangle_edges() {
        let t = Triangle::new(3, 1, 2);
        assert_eq!(
            t.edges(),
            [Edge::new(1, 2), Edge::new(1, 3), Edge::new(2, 3)]
        );
        assert!(t.contains_edge(Edge::new(2, 3)));
        assert!(!t.contains_edge(Edge::new(1, 4)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn triangle_rejects_degenerate() {
        let _ = Triangle::new(1, 1, 2);
    }
}
