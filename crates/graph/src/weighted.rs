//! Weighted undirected graphs (CSR + parallel weight array).
//!
//! Used by the MST application (Section 1.3 discusses the `Ω~(n/k²)` MST
//! lower bound via the General Lower Bound Theorem on complete graphs with
//! random edge weights; `km-mst` provides the matching upper bound).

use crate::error::GraphError;
use crate::ids::{Edge, Vertex};

/// An immutable simple undirected graph with `f64` edge weights.
///
/// Weights are guaranteed **finite** (construction rejects NaN/±∞ with
/// [`GraphError::NonFiniteWeight`]), so consumers may order them with
/// `f64::total_cmp` and sum them without poisoning checks. They are
/// stored once per adjacency entry, aligned with the neighbor array.
/// Duplicate edges keep the *minimum* weight (the natural semantics for
/// MST inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    offsets: Vec<usize>,
    neighbors: Vec<Vertex>,
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// Builds a weighted graph from parallel edge and weight slices.
    ///
    /// # Errors
    /// [`GraphError::NonFiniteWeight`] if any weight is NaN or ±∞ —
    /// weights typically arrive from user or deserialized input, so this
    /// is an error, not a panic (the same policy as
    /// `km_core::NetConfig::validate` and `balance::BalanceError`).
    ///
    /// # Panics
    /// Panics if slice lengths differ or endpoints are out of range
    /// (programmer errors at the call site).
    pub fn from_weighted_edges(
        n: usize,
        edges: &[(Vertex, Vertex)],
        weights: &[f64],
    ) -> Result<Self, GraphError> {
        assert_eq!(edges.len(), weights.len(), "edges/weights length mismatch");
        let mut clean: Vec<(Vertex, Vertex, f64)> = Vec::with_capacity(edges.len());
        for (&(u, v), &w) in edges.iter().zip(weights) {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for n={n}"
            );
            if !w.is_finite() {
                return Err(GraphError::NonFiniteWeight { u, v, w });
            }
            if u != v {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                clean.push((a, b, w));
            }
        }
        // Sort by endpoints then weight so dedup keeps the minimum weight
        // (total_cmp is a genuine total order on the now-finite weights).
        clean.sort_unstable_by(|x, y| (x.0, x.1).cmp(&(y.0, y.1)).then(x.2.total_cmp(&y.2)));
        clean.dedup_by_key(|e| (e.0, e.1));

        let mut deg = vec![0usize; n];
        for &(u, v, _) in &clean {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as Vertex; acc];
        let mut wts = vec![0f64; acc];
        for &(u, v, w) in &clean {
            neighbors[cursor[u as usize]] = v;
            wts[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            wts[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // Co-sort each adjacency window by neighbor id.
        for v in 0..n {
            let lo = offsets[v];
            let hi = offsets[v + 1];
            let mut idx: Vec<usize> = (lo..hi).collect();
            idx.sort_unstable_by_key(|&i| neighbors[i]);
            let nb: Vec<Vertex> = idx.iter().map(|&i| neighbors[i]).collect();
            let ww: Vec<f64> = idx.iter().map(|&i| wts[i]).collect();
            neighbors[lo..hi].copy_from_slice(&nb);
            wts[lo..hi].copy_from_slice(&ww);
        }
        Ok(WeightedGraph {
            offsets,
            neighbors,
            weights: wts,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights aligned with [`Self::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: Vertex) -> &[f64] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weight of edge `{u,v}` if present.
    pub fn weight(&self, u: Vertex, v: Vertex) -> Option<f64> {
        let pos = self.neighbors(u).binary_search(&v).ok()?;
        Some(self.neighbor_weights(u)[pos])
    }

    /// Iterator over `(edge, weight)` with each edge reported once.
    pub fn weighted_edges(&self) -> impl Iterator<Item = (Edge, f64)> + '_ {
        (0..self.n()).flat_map(move |u| {
            let u = u as Vertex;
            self.neighbors(u)
                .iter()
                .zip(self.neighbor_weights(u))
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &w)| (Edge { u, v }, w))
        })
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.weighted_edges().map(|(_, w)| w).sum()
    }

    /// Drops the weights, keeping the topology.
    pub fn to_unweighted(&self) -> crate::csr::CsrGraph {
        let pairs: Vec<(Vertex, Vertex)> = self.weighted_edges().map(|(e, _)| (e.u, e.v)).collect();
        crate::csr::CsrGraph::from_edges(self.n(), &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_weights() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1), (1, 2)], &[1.5, 2.5]).unwrap();
        assert_eq!(g.weight(0, 1), Some(1.5));
        assert_eq!(g.weight(1, 0), Some(1.5));
        assert_eq!(g.weight(0, 2), None);
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn duplicate_keeps_minimum() {
        let g = WeightedGraph::from_weighted_edges(2, &[(0, 1), (1, 0), (0, 1)], &[3.0, 1.0, 2.0])
            .unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.weight(0, 1), Some(1.0));
    }

    #[test]
    fn rejects_non_finite_weights_as_errors_not_panics() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err =
                WeightedGraph::from_weighted_edges(3, &[(0, 1), (1, 2)], &[1.0, bad]).unwrap_err();
            assert!(
                matches!(err, GraphError::NonFiniteWeight { u: 1, v: 2, .. }),
                "{err}"
            );
        }
    }

    proptest! {
        /// Symmetry: weight(u,v) == weight(v,u); edge count matches topology.
        #[test]
        fn weight_symmetry(
            edges in proptest::collection::vec(((0u32..20, 0u32..20), 0.0f64..100.0), 0..100)
        ) {
            let (pairs, ws): (Vec<_>, Vec<_>) = edges.into_iter().unzip();
            let g = WeightedGraph::from_weighted_edges(20, &pairs, &ws).unwrap();
            for (e, w) in g.weighted_edges() {
                prop_assert_eq!(g.weight(e.u, e.v), Some(w));
                prop_assert_eq!(g.weight(e.v, e.u), Some(w));
            }
            prop_assert_eq!(g.to_unweighted().m(), g.m());
        }
    }
}
