//! Chung–Lu random graphs with a prescribed expected degree sequence.
//!
//! Power-law graphs are the motivating workload for the paper's systems
//! (web graphs, social networks, Section 1); they stress the light/heavy
//! vertex split of the PageRank algorithm and the proxy assignment rule of
//! the triangle algorithm via their skewed degree distributions.

use crate::csr::CsrGraph;
use crate::ids::Vertex;
use rand::Rng;

/// Expected-degree weights for a power law with exponent `gamma > 1`:
/// `w_i ∝ (i + 1)^(-1/(gamma-1))`, scaled so the average weight is
/// `avg_degree`.
///
/// # Panics
/// Panics unless `gamma > 1` and `avg_degree > 0`.
pub fn power_law_weights(n: usize, gamma: f64, avg_degree: f64) -> Vec<f64> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(avg_degree > 0.0, "average degree must be positive");
    let alpha = 1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let sum: f64 = w.iter().sum();
    if sum > 0.0 {
        let scale = avg_degree * n as f64 / sum;
        for x in &mut w {
            *x *= scale;
        }
    }
    w
}

/// Samples a Chung–Lu graph: edge `{i,j}` present independently with
/// probability `min(1, w_i w_j / Σw)`.
///
/// `O(n²)` pair scan — intended for the simulator's laptop-scale inputs
/// (n up to a few thousand), where clarity beats the asymptotically faster
/// bucketed samplers.
///
/// # Panics
/// Panics if any weight is negative or non-finite.
pub fn chung_lu<R: Rng>(weights: &[f64], rng: &mut R) -> CsrGraph {
    let n = weights.len();
    for &w in weights {
        assert!(
            w.is_finite() && w >= 0.0,
            "weights must be finite and non-negative"
        );
    }
    let total: f64 = weights.iter().sum();
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    if total > 0.0 {
        for i in 0..n {
            if weights[i] == 0.0 {
                continue;
            }
            for j in (i + 1)..n {
                let p = (weights[i] * weights[j] / total).min(1.0);
                if p > 0.0 && rng.gen_bool(p) {
                    edges.push((i as Vertex, j as Vertex));
                }
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn weights_scale_to_average() {
        let w = power_law_weights(100, 2.5, 8.0);
        let avg = w.iter().sum::<f64>() / w.len() as f64;
        assert!((avg - 8.0).abs() < 1e-9);
        // Monotone decreasing.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn expected_total_degree_close() {
        let n = 300;
        let w = power_law_weights(n, 2.5, 6.0);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = chung_lu(&w, &mut rng);
        let expected_m = 6.0 * n as f64 / 2.0;
        // Generous tolerance: the min(1,·) clamp biases slightly downward.
        assert!(
            (g.m() as f64) > 0.4 * expected_m && (g.m() as f64) < 1.8 * expected_m,
            "m={} expected≈{expected_m}",
            g.m()
        );
    }

    #[test]
    fn skewed_degrees() {
        let w = power_law_weights(500, 2.1, 4.0);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = chung_lu(&w, &mut rng);
        let stats = crate::properties::degree_stats(&g);
        // Head vertex should far exceed the mean.
        assert!(stats.max as f64 > 3.0 * stats.mean);
    }

    #[test]
    fn zero_weights_no_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = chung_lu(&[0.0; 10], &mut rng);
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = chung_lu(&[1.0, -2.0], &mut rng);
    }
}
