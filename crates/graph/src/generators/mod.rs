//! Graph generators used by the paper's lower and upper bounds.
//!
//! * [`gnp()`](gnp()) / [`gnm()`](gnm()) — Erdős–Rényi. Theorem 3's triangle lower bound
//!   samples from `G(n, 1/2)`.
//! * [`chung_lu()`](chung_lu()) — power-law expected-degree graphs; realistic skewed
//!   workloads for the PageRank and triangle algorithms.
//! * [`classic`] — stars (the PageRank congestion worst case discussed in
//!   Section 3.1), paths, cycles, cliques, complete bipartite graphs, and
//!   complete graphs with random weights (the MST lower-bound family of
//!   Section 1.3, footnote 6).
//! * [`lower_bound_h`] — the directed graph `H` of Figure 1 used by the
//!   PageRank lower bound (Theorem 2).

pub mod chung_lu;
pub mod classic;
pub mod gnm;
pub mod gnp;
pub mod lower_bound_h;

pub use chung_lu::{chung_lu, power_law_weights};
pub use classic::{
    complete, complete_bipartite, complete_weighted_random, cycle, grid, path, star,
};
pub use gnm::gnm;
pub use gnp::gnp;
pub use lower_bound_h::LowerBoundGraph;
