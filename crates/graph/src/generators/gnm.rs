//! Erdős–Rényi `G(n, m)`: a uniformly random simple graph with exactly
//! `m` edges.

use super::gnp::unflatten;
use crate::csr::CsrGraph;
use crate::ids::Vertex;
use rand::Rng;
use std::collections::HashSet;

/// Samples a uniformly random simple graph with `n` vertices and exactly
/// `m` edges.
///
/// Uses rejection sampling while the graph is sparse and Floyd-style
/// sampling over flat pair indices, so it stays efficient even when `m`
/// approaches `C(n,2)`.
///
/// # Panics
/// Panics if `m > C(n,2)`.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let total: u64 = (n as u64) * (n as u64).saturating_sub(1) / 2;
    assert!((m as u64) <= total, "m={m} exceeds C({n},2)={total}");
    // Floyd's algorithm: for j in total-m..total, pick t in [0, j]; insert t
    // unless already chosen, else insert j. Yields a uniform m-subset of
    // pair indices with exactly m insertions.
    let mut chosen: HashSet<u64> = HashSet::with_capacity(m * 2);
    for j in (total - m as u64)..total {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let edges: Vec<(Vertex, Vertex)> = chosen.into_iter().map(|idx| unflatten(idx, n)).collect();
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_edge_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for &(n, m) in &[(10, 0), (10, 45), (30, 100), (5, 10)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), m, "n={n} m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_impossible_m() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = gnm(4, 7, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = gnm(40, 200, &mut ChaCha8Rng::seed_from_u64(11));
        let g2 = gnm(40, 200, &mut ChaCha8Rng::seed_from_u64(11));
        assert_eq!(g1, g2);
    }

    #[test]
    fn near_complete_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = gnm(20, 189, &mut rng); // C(20,2) - 1
        assert_eq!(g.m(), 189);
    }
}
