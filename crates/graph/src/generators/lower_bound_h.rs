//! The PageRank lower-bound graph `H` of Figure 1 (Section 2.3).
//!
//! `H` has `n = 4q + 1` vertices split into four groups of size `q = m/4`
//! plus a sink `w`:
//!
//! ```text
//!   x_i  ⟷  u_i  →  t_i  →  v_i  →  w        (i = 0 .. q-1)
//! ```
//!
//! The edge between `x_i` and `u_i` is oriented by a fair coin flip `b_i`:
//! `b_i = 0` gives `u_i → x_i`, `b_i = 1` gives `x_i → u_i`. Lemma 4 shows
//! the PageRank of `v_i` then separates by a constant factor, so any correct
//! algorithm must effectively learn the whole bit vector — the engine of the
//! `Ω~(n/k²)` lower bound (Theorem 2).
//!
//! The paper additionally assigns *random IDs* from `[1, poly(n)]` to
//! obfuscate vertex positions. We reproduce this with a uniformly random
//! permutation of `[n]` ([`LowerBoundGraph::with_random_ids`]): what the
//! argument needs is that a vertex's ID reveals nothing about its index `i`,
//! which a random permutation provides. (Substitution documented in
//! DESIGN.md.)

use crate::digraph::DiGraph;
use crate::ids::Vertex;
use rand::seq::SliceRandom;
use rand::Rng;

/// Role of a vertex of `H` (see Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `x_i`: endpoint of the coin-flip edge.
    X(usize),
    /// `u_i`: other endpoint of the coin-flip edge.
    U(usize),
    /// `t_i`: middle of the path.
    T(usize),
    /// `v_i`: the vertex whose PageRank encodes `b_i`.
    V(usize),
    /// `w`: the common sink.
    W,
}

/// The instantiated lower-bound graph: topology plus the secret bit vector.
#[derive(Debug, Clone)]
pub struct LowerBoundGraph {
    /// The directed graph `H` (in canonical vertex numbering).
    pub graph: DiGraph,
    /// The secret orientation bits `b_0 .. b_{q-1}`.
    pub bits: Vec<bool>,
    /// Group size `q = (n-1)/4`.
    pub quarter: usize,
}

impl LowerBoundGraph {
    /// Builds `H` with the given bit vector. The number of vertices is
    /// `4·bits.len() + 1`.
    ///
    /// Canonical numbering: `x_i = i`, `u_i = q+i`, `t_i = 2q+i`,
    /// `v_i = 3q+i`, `w = 4q`.
    pub fn new(bits: Vec<bool>) -> Self {
        let q = bits.len();
        let n = 4 * q + 1;
        let mut arcs: Vec<(Vertex, Vertex)> = Vec::with_capacity(4 * q);
        for (i, &bit) in bits.iter().enumerate() {
            let (x, u, t, v) = Self::role_ids(q, i);
            let w = (4 * q) as Vertex;
            arcs.push((u, t));
            arcs.push((t, v));
            arcs.push((v, w));
            if bit {
                arcs.push((x, u));
            } else {
                arcs.push((u, x));
            }
        }
        LowerBoundGraph {
            graph: DiGraph::from_arcs(n, &arcs),
            bits,
            quarter: q,
        }
    }

    /// Builds `H` on (approximately) `n` vertices with fair-coin bits.
    ///
    /// `n` is rounded down to the nearest value of the form `4q + 1`.
    ///
    /// # Panics
    /// Panics if `n < 5`.
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        assert!(n >= 5, "H needs at least 5 vertices (q >= 1)");
        let q = (n - 1) / 4;
        let bits: Vec<bool> = (0..q).map(|_| rng.gen_bool(0.5)).collect();
        Self::new(bits)
    }

    fn role_ids(q: usize, i: usize) -> (Vertex, Vertex, Vertex, Vertex) {
        (
            i as Vertex,
            (q + i) as Vertex,
            (2 * q + i) as Vertex,
            (3 * q + i) as Vertex,
        )
    }

    /// Number of vertices `n = 4q + 1`.
    pub fn n(&self) -> usize {
        4 * self.quarter + 1
    }

    /// The role of vertex `v` in canonical numbering.
    pub fn role(&self, v: Vertex) -> Role {
        let q = self.quarter;
        let v = v as usize;
        match v / q.max(1) {
            _ if v == 4 * q => Role::W,
            0 => Role::X(v),
            1 => Role::U(v - q),
            2 => Role::T(v - 2 * q),
            _ => Role::V(v - 3 * q),
        }
    }

    /// Vertex id of `v_i` (canonical numbering).
    pub fn v_vertex(&self, i: usize) -> Vertex {
        (3 * self.quarter + i) as Vertex
    }

    /// Vertex id of `x_i` (canonical numbering).
    pub fn x_vertex(&self, i: usize) -> Vertex {
        i as Vertex
    }

    /// Vertex id of `u_i` (canonical numbering).
    pub fn u_vertex(&self, i: usize) -> Vertex {
        (self.quarter + i) as Vertex
    }

    /// Vertex id of `t_i` (canonical numbering).
    pub fn t_vertex(&self, i: usize) -> Vertex {
        (2 * self.quarter + i) as Vertex
    }

    /// Vertex id of the sink `w`.
    pub fn w_vertex(&self) -> Vertex {
        (4 * self.quarter) as Vertex
    }

    /// Applies a uniformly random relabeling, returning the relabeled graph
    /// and the permutation `canonical id -> public id`.
    ///
    /// This realizes the paper's random-ID assignment: an observer of the
    /// relabeled graph cannot infer the index `i` of a vertex from its id.
    pub fn with_random_ids<R: Rng>(&self, rng: &mut R) -> (DiGraph, Vec<Vertex>) {
        let n = self.n();
        let mut perm: Vec<Vertex> = (0..n as Vertex).collect();
        perm.shuffle(rng);
        let arcs: Vec<(Vertex, Vertex)> = self
            .graph
            .arcs()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]))
            .collect();
        (DiGraph::from_arcs(n, &arcs), perm)
    }

    /// Exact PageRank of `v_i` (path-sum / Monte-Carlo semantics of \[20\]):
    /// the value Lemma 4 separates.
    ///
    /// * `b_i = 0`:  `ε(1 + (1-ε) + (1-ε)²/2) / n`
    /// * `b_i = 1`:  `ε(1 + (1-ε) + (1-ε)² + (1-ε)³) / n`
    pub fn exact_pagerank_v(&self, i: usize, eps: f64) -> f64 {
        let n = self.n() as f64;
        let d = 1.0 - eps;
        if self.bits[i] {
            eps * (1.0 + d + d * d + d * d * d) / n
        } else {
            eps * (1.0 + d + d * d / 2.0) / n
        }
    }

    /// Exact PageRank a `v` vertex *would* have under orientation `bit`
    /// (the decoding thresholds of the lower-bound argument).
    pub fn pagerank_v_for_bit(&self, eps: f64, bit: bool) -> f64 {
        let n = self.n() as f64;
        let d = 1.0 - eps;
        if bit {
            eps * (1.0 + d + d * d + d * d * d) / n
        } else {
            eps * (1.0 + d + d * d / 2.0) / n
        }
    }

    /// The paper's stated Lemma 4 value for `b_i = 0`:
    /// `ε(2.5 − 2ε + ε²/2)/n` (an algebraic rewriting of the exact value).
    pub fn lemma4_value_bit0(n: usize, eps: f64) -> f64 {
        eps * (2.5 - 2.0 * eps + eps * eps / 2.0) / n as f64
    }

    /// The paper's stated Lemma 4 lower bound for `b_i = 1`:
    /// `ε(3 − 3ε + ε²)/n`.
    pub fn lemma4_bound_bit1(n: usize, eps: f64) -> f64 {
        eps * (3.0 - 3.0 * eps + eps * eps) / n as f64
    }

    /// Exact PageRank (path-sum semantics) of *every* vertex, in canonical
    /// numbering — a closed-form oracle for testing the iterative and
    /// distributed solvers on `H`.
    pub fn exact_pagerank(&self, eps: f64) -> Vec<f64> {
        let n = self.n();
        let nf = n as f64;
        let d = 1.0 - eps;
        let q = self.quarter;
        let mut pr = vec![0.0; n];
        let mut w_acc = 1.0; // path weight sum arriving at w
        for i in 0..q {
            let (x, u, t, v) = Self::role_ids(q, i);
            let (px, pu, pt, pv);
            if self.bits[i] {
                // x -> u -> t -> v -> w; u,t,v have out-degree 1.
                px = 1.0;
                pu = 1.0 + d;
                pt = 1.0 + d + d * d;
                pv = 1.0 + d + d * d + d * d * d;
            } else {
                // u -> {x, t}; t -> v -> w; u has out-degree 2.
                pu = 1.0;
                px = 1.0 + d / 2.0;
                pt = 1.0 + d / 2.0;
                pv = 1.0 + d + d * d / 2.0;
            }
            pr[x as usize] = eps * px / nf;
            pr[u as usize] = eps * pu / nf;
            pr[t as usize] = eps * pt / nf;
            pr[v as usize] = eps * pv / nf;
            w_acc += d * pv;
        }
        pr[4 * q] = eps * w_acc / nf;
        pr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn topology_matches_figure1() {
        let h = LowerBoundGraph::new(vec![false, true, false]);
        let g = &h.graph;
        assert_eq!(h.n(), 13);
        assert_eq!(g.m(), 12); // m = n - 1
                               // Chain u_i -> t_i -> v_i -> w for all i.
        for i in 0..3 {
            assert!(g.has_arc(h.u_vertex(i), h.t_vertex(i)));
            assert!(g.has_arc(h.t_vertex(i), h.v_vertex(i)));
            assert!(g.has_arc(h.v_vertex(i), h.w_vertex()));
        }
        // Bit-oriented edges.
        assert!(g.has_arc(h.u_vertex(0), h.x_vertex(0))); // b_0 = 0
        assert!(g.has_arc(h.x_vertex(1), h.u_vertex(1))); // b_1 = 1
        assert!(g.has_arc(h.u_vertex(2), h.x_vertex(2))); // b_2 = 0
        assert!(g.is_weakly_connected());
    }

    #[test]
    fn roles_partition_vertices() {
        let h = LowerBoundGraph::new(vec![true; 4]);
        assert_eq!(h.role(0), Role::X(0));
        assert_eq!(h.role(4), Role::U(0));
        assert_eq!(h.role(9), Role::T(1));
        assert_eq!(h.role(15), Role::V(3));
        assert_eq!(h.role(16), Role::W);
    }

    #[test]
    fn lemma4_constant_factor_separation() {
        // For any eps < 1 there is a constant-factor gap between the two
        // cases; the factor depends on eps (Lemma 4) and equals
        // 1 + (d²/2 + d³)/(1 + d + d²/2) with d = 1 - eps.
        for eps in [0.1, 0.3, 0.5, 0.85] {
            let h = LowerBoundGraph::new(vec![false, true]);
            let pr0 = h.exact_pagerank_v(0, eps);
            let pr1 = h.exact_pagerank_v(1, eps);
            let d = 1.0 - eps;
            let expected_gap = eps * (d * d / 2.0 + d * d * d) / h.n() as f64;
            assert!(
                (pr1 - pr0 - expected_gap).abs() < 1e-12,
                "eps={eps}: gap {} != analytic {expected_gap}",
                pr1 - pr0
            );
            assert!(pr1 > pr0, "eps={eps}: separation must be strict");
            // Paper's closed forms: bit0 value is exact, bit1 is a lower bound.
            let n = h.n();
            assert!((pr0 - LowerBoundGraph::lemma4_value_bit0(n, eps)).abs() < 1e-12);
            assert!(pr1 >= LowerBoundGraph::lemma4_bound_bit1(n, eps) - 1e-12);
        }
    }

    #[test]
    fn exact_vector_consistent_with_v_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let h = LowerBoundGraph::random(41, &mut rng);
        let eps = 0.3;
        let pr = h.exact_pagerank(eps);
        for i in 0..h.quarter {
            assert!((pr[h.v_vertex(i) as usize] - h.exact_pagerank_v(i, eps)).abs() < 1e-12);
        }
        // Path-sum semantics: total mass at most 1 (dangling leaks), at least eps.
        let total: f64 = pr.iter().sum();
        assert!((0.2..=1.0 + 1e-9).contains(&total));
    }

    #[test]
    fn random_ids_preserve_structure() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let h = LowerBoundGraph::random(21, &mut rng);
        let (g2, perm) = h.with_random_ids(&mut rng);
        assert_eq!(g2.m(), h.graph.m());
        // The permuted image of each arc exists.
        for (u, v) in h.graph.arcs() {
            assert!(g2.has_arc(perm[u as usize], perm[v as usize]));
        }
    }

    #[test]
    fn rounds_down_to_4q_plus_1() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let h = LowerBoundGraph::random(23, &mut rng);
        assert_eq!(h.n(), 21); // q = 5
    }
}
