//! Deterministic graph families.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::ids::Vertex;
use crate::weighted::WeightedGraph;
use rand::Rng;

/// The complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as Vertex, v as Vertex));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// A star: vertex `0` is the hub joined to `1..n`.
///
/// Section 3.1 uses star-like topologies as the congestion worst case that
/// motivates sending token *counts* instead of individual walks.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// A simple path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// A cycle on `n ≥ 3` vertices.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
    edges.push((n as Vertex - 1, 0));
    CsrGraph::from_edges(n, &edges)
}

/// An `r × c` grid; vertex `(i,j)` is `i*c + j`.
pub fn grid(r: usize, c: usize) -> CsrGraph {
    let n = r * c;
    let mut edges = Vec::with_capacity(2 * n);
    for i in 0..r {
        for j in 0..c {
            let v = (i * c + j) as Vertex;
            if j + 1 < c {
                edges.push((v, v + 1));
            }
            if i + 1 < r {
                edges.push((v, v + c as Vertex));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// The complete bipartite graph `K_{a,b}`; the left side is `0..a`.
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let n = a + b;
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in a..n {
            edges.push((u as Vertex, v as Vertex));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// `K_n` with i.i.d. `Uniform(0,1)` edge weights — the MST lower-bound
/// family of Section 1.3 (footnote 6: "The lower bound graph can be a
/// complete graph with random edge weights").
///
/// # Errors
/// Propagates [`GraphError::NonFiniteWeight`] from the weighted-graph
/// constructor — the error-not-panic policy shared with
/// [`WeightedGraph::from_weighted_edges`] (a `Uniform(0,1)` draw is
/// always finite, but callers route the `Result` rather than asserting
/// a property of the RNG at every call site).
pub fn complete_weighted_random<R: Rng>(
    n: usize,
    rng: &mut R,
) -> Result<WeightedGraph, GraphError> {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    let mut weights = Vec::with_capacity(edges.capacity());
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as Vertex, v as Vertex));
            weights.push(rng.gen_range(0.0..1.0));
        }
    }
    WeightedGraph::from_weighted_edges(n, &edges, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn star_degrees() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.degree(5), 1);
        assert_eq!(g.m(), 9);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert!(cycle(5).vertices().all(|v| cycle(5).degree(v) == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        let _ = cycle(2);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(g.has_edge(0, 1) && g.has_edge(0, 4) && !g.has_edge(3, 4));
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn weighted_complete() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = complete_weighted_random(8, &mut rng).unwrap();
        assert_eq!(g.m(), 28);
        for (_, w) in g.weighted_edges() {
            assert!((0.0..1.0).contains(&w));
        }
    }
}
