//! Erdős–Rényi `G(n, p)` via geometric edge skipping.
//!
//! Runs in `O(n + m)` expected time rather than `O(n²)` Bernoulli trials
//! (the skip-sampling technique of Batagelj & Brandes), which matters for
//! the sparse sweeps in the experiment harness.

use crate::csr::CsrGraph;
use crate::ids::Vertex;
use rand::Rng;

/// Samples `G(n, p)`: each of the `C(n,2)` edges present independently
/// with probability `p`.
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
    if n == 0 || p == 0.0 {
        return CsrGraph::from_edges(n, &[]);
    }
    if p >= 1.0 {
        return super::classic::complete(n);
    }

    // Enumerate pairs (u,v), u<v, as a flat index and skip geometrically.
    let total: u64 = (n as u64) * (n as u64 - 1) / 2;
    let expected = (total as f64 * p) as usize;
    let mut edges: Vec<(Vertex, Vertex)> = Vec::with_capacity(expected + 16);
    let log1p = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        // Geometric(p) skip: floor(ln U / ln(1-p)).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log1p).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        edges.push(unflatten(idx, n));
        idx += 1;
    }
    CsrGraph::from_edges(n, &edges)
}

/// Maps a flat pair index in `[0, C(n,2))` to the pair `(u, v)`, `u < v`,
/// in row-major order: row `u` holds pairs `(u, u+1) .. (u, n-1)`.
/// Shared with [`super::gnm`] and the chunked drivers in [`crate::stream`].
///
/// `O(1)`: row `u` starts at `offset(u) = u·(2n − u − 1)/2`, so the row
/// of `idx` comes from the quadratic formula, with an integer correction
/// step for `f64` rounding (exact up to `C(n,2) < 2⁵³`, i.e. any
/// `n < ~10⁸`). A linear row walk here costs `O(n)` per edge — `O(n·m)`
/// per generated graph — which is what made sparse generation at
/// `n ≥ 10⁶` intractable.
pub(crate) fn unflatten(idx: u64, n: usize) -> (Vertex, Vertex) {
    let n = n as u64;
    let offset = |u: u64| u * (2 * n - u - 1) / 2;
    let half = n as f64 - 0.5;
    let disc = (half * half - 2.0 * idx as f64).max(0.0);
    let mut u = (half - disc.sqrt()).max(0.0) as u64;
    while u > 0 && offset(u) > idx {
        u -= 1;
    }
    while u + 1 < n && offset(u + 1) <= idx {
        u += 1;
    }
    (u as Vertex, (u + 1 + (idx - offset(u))) as Vertex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn unflatten_enumerates_all_pairs() {
        let n = 7;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total as u64 {
            let (u, v) = unflatten(idx, n);
            assert!(u < v && (v as usize) < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn unflatten_closed_form_survives_rounding_at_scale() {
        // Row boundaries are where the f64 quadratic estimate can land
        // one row off; check both sides of many boundaries at large n.
        for n in [1_000_000usize, 10_000_001] {
            let nn = n as u64;
            let offset = |u: u64| u * (2 * nn - u - 1) / 2;
            let total = nn * (nn - 1) / 2;
            for u in [0u64, 1, 2, nn / 3, nn / 2, nn - 3, nn - 2] {
                let start = offset(u);
                assert_eq!(unflatten(start, n), (u as Vertex, (u + 1) as Vertex));
                if start > 0 {
                    let (pu, pv) = unflatten(start - 1, n);
                    assert_eq!((pu as u64, pv as u64), (u - 1, nn - 1));
                }
            }
            let (lu, lv) = unflatten(total - 1, n);
            assert_eq!((lu as u64, lv as u64), (nn - 2, nn - 1));
        }
    }

    #[test]
    fn extreme_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
        assert_eq!(gnp(0, 0.5, &mut rng).n(), 0);
    }

    #[test]
    fn edge_count_concentrates() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 400;
        let p = 0.1;
        let g = gnp(n, p, &mut rng);
        let expected = (n * (n - 1) / 2) as f64 * p;
        // 5 standard deviations of slack.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.m() as f64 - expected).abs() < 5.0 * sd,
            "m={} expected≈{expected}",
            g.m()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = gnp(50, 0.3, &mut ChaCha8Rng::seed_from_u64(9));
        let g2 = gnp(50, 0.3, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn dense_half_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = gnp(100, 0.5, &mut rng);
        let expected = 2475.0; // C(100,2)/2
        assert!((g.m() as f64 - expected).abs() < 250.0);
    }
}
