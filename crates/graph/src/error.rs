//! Graph-construction errors.
//!
//! Policy (shared with `km_core::NetConfig::validate` and
//! `partition::balance::BalanceError`): conditions reachable from user or
//! deserialized *input* are `Result`s, not panics; only programmer errors
//! at call sites (index out of range, mismatched slice lengths) stay
//! `assert!`s.

use crate::ids::Vertex;

/// Why a graph could not be constructed from the given input.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge weight was NaN or ±∞. Weighted-graph invariants (total
    /// ordering via `f64::total_cmp`, summable forest weights) require
    /// finite weights, so the constructor rejects the input instead of
    /// letting a NaN poison comparisons deep inside an algorithm.
    NonFiniteWeight {
        /// First endpoint of the offending edge.
        u: Vertex,
        /// Second endpoint of the offending edge.
        v: Vertex,
        /// The rejected weight (NaN or ±∞).
        w: f64,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NonFiniteWeight { u, v, w } => {
                write!(f, "edge ({u},{v}) has non-finite weight {w}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_edge() {
        let e = GraphError::NonFiniteWeight {
            u: 3,
            v: 7,
            w: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("(3,7)") && s.contains("non-finite"), "{s}");
    }
}
