//! # km-graph
//!
//! Graph substrate for the k-machine model reproduction of
//! *On the Distributed Complexity of Large-Scale Graph Computations*
//! (Pandurangan, Robinson, Scquizzato; SPAA 2018).
//!
//! This crate provides:
//!
//! * compact CSR representations for undirected ([`CsrGraph`]), directed
//!   ([`DiGraph`]) and weighted ([`WeightedGraph`]) graphs, using `u32`
//!   vertex ids throughout;
//! * the graph generators used by the paper's lower and upper bounds:
//!   Erdős–Rényi [`generators::gnp()`](generators::gnp()) / [`generators::gnm()`](generators::gnm()) (Theorem 3 uses
//!   `G(n,1/2)`), Chung–Lu power-law graphs, classic families (stars are the
//!   paper's congestion worst case for PageRank), and the Figure-1
//!   lower-bound graph [`generators::lower_bound_h::LowerBoundGraph`];
//! * the input partition models of Section 1.1: the random vertex partition
//!   ([`partition::rvp`]) that all results assume, the random edge partition
//!   ([`partition::rep`]) of footnote 3, and balance diagnostics
//!   ([`partition::balance`]);
//! * the per-machine graph-state layer ([`dist`]): the flat CSR-backed
//!   [`LocalGraph`] every k-machine algorithm runs on, built for all `k`
//!   machines in one fused pass by [`DistGraphBuilder`];
//! * streaming / out-of-core ingestion ([`stream`]): chunked generator
//!   drivers ([`EdgeStream`]) and a [`StreamingDistBuilder`] that routes
//!   bounded [`EdgeChunk`]s straight into the per-machine locals —
//!   byte-identical to the in-memory path without ever materializing the
//!   global CSR, with an optional disk-spill mode ([`SpillConfig`]).
//!
//! All randomized constructions take explicit seeds and are deterministic
//! given the seed, so distributed executions built on top are replayable.

pub mod builder;
pub mod csr;
pub mod digraph;
pub mod dist;
pub mod error;
pub mod generators;
pub mod ids;
pub mod partition;
pub mod properties;
pub mod stream;
pub mod subgraph;
pub mod weighted;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use digraph::DiGraph;
pub use dist::{DistGraph, DistGraphBuilder, LocalGraph};
pub use error::GraphError;
pub use ids::{Edge, MachineIdx, Triangle, Vertex};
pub use partition::{Partition, PartitionModel};
pub use stream::{
    ChungLuStream, CompleteWeightedStream, EdgeChunk, EdgeStream, GnmStream, GnpStream,
    SpillConfig, StreamError, StreamingDistBuilder, VecStream,
};
pub use weighted::WeightedGraph;
