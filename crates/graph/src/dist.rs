//! The per-machine graph-state layer: flat CSR-backed local storage for
//! every k-machine algorithm.
//!
//! **Paper mapping (Section 1.1).** Every result in the paper assumes the
//! *random vertex partition*: each vertex, with its incident edges, is
//! homed at one of the `k` machines, so machine `i`'s input is the
//! subgraph "its vertices plus their adjacency lists". Lemma 4.1 of
//! Klauck et al. (arXiv:1311.6209, quoted in the proof of Theorem 5)
//! bounds that input's size by `O~(m/k + Δ)` w.h.p. — the per-machine
//! input shape is a first-class object of the model, and [`LocalGraph`]
//! is its one shared implementation: a hosted-vertex list, a global↔local
//! index, flat out-adjacency slices (plus aligned weights for weighted
//! graphs), and — for digraphs — the precomputed receiver side of
//! cross-partition traffic ([`LocalGraph::host_targets`]).
//!
//! **Fused construction.** [`DistGraphBuilder`] materializes all `k`
//! locals in **one pass** over the global CSR arrays instead of `k`
//! independent member scans: a single sweep over `0..n` appends each
//! vertex's adjacency slice to its home machine's flat arrays (sizes are
//! precomputed, so nothing reallocates), and the global→local index is
//! one shared `Arc<[u32]>` rather than `k` hash maps. The resulting
//! [`DistGraph`] also records the per-machine edge loads, wiring the
//! `O~(m/k + Δ)` balance lemma into the existing
//! [`partition::balance`](crate::partition::balance) diagnostics via
//! [`DistGraph::edge_balance`].
//!
//! [`replicated_scan_reference`] preserves the pre-`DistGraph` ingestion
//! pattern (per-machine `HashMap` vertex index + `Vec<Vec<_>>` adjacency,
//! built machine by machine) as a measurable artifact so `perfsnap` and
//! the `graph_dist` bench can keep reporting the fused-build speedup.

use crate::csr::CsrGraph;
use crate::digraph::DiGraph;
use crate::ids::{Edge, MachineIdx, Vertex};
use crate::partition::balance::LoadStats;
use crate::partition::Partition;
use crate::weighted::WeightedGraph;
use std::sync::Arc;

/// One machine's local graph state under the random vertex partition:
/// the hosted vertices, their adjacency in flat CSR form, and the shared
/// global↔local index.
///
/// Local vertex indices `j ∈ 0..hosted()` correspond to the hosted
/// vertices in ascending global-id order (the order of
/// [`Partition::members`]); adjacency slices inherit the global CSR's
/// sorted order. For directed builds the adjacency is the *out*-edges
/// (what RVP gives the home machine) and [`Self::host_targets`] holds
/// the precomputed receiver-side map `u → hosted out-neighbors of u`.
/// Byte-for-byte equality over all stored arrays — the invariant the
/// streaming builder ([`crate::stream::StreamingDistBuilder`]) is tested
/// against. Weights are finite by construction, so `f64` equality is a
/// genuine equivalence here.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalGraph {
    // Fields are `pub(crate)` so the streaming builder in
    // `crate::stream` can fill the same representation directly.
    pub(crate) me: MachineIdx,
    pub(crate) n: usize,
    pub(crate) part: Arc<Partition>,
    /// Shared across all locals: `local_of[v]` is `v`'s index within its
    /// home machine's hosted-vertex list.
    pub(crate) local_of: Arc<[u32]>,
    pub(crate) offsets: Vec<usize>,
    pub(crate) neighbors: Vec<Vertex>,
    /// Aligned with `neighbors`; empty unless built from a weighted graph.
    pub(crate) weights: Vec<f64>,
    pub(crate) weighted: bool,
    /// Sorted external sources with hosted out-neighbors (directed builds).
    pub(crate) host_src: Vec<Vertex>,
    pub(crate) host_offsets: Vec<usize>,
    pub(crate) host_tgt: Vec<u32>,
}

impl LocalGraph {
    /// The machine this local state belongs to.
    #[inline]
    pub fn machine(&self) -> MachineIdx {
        self.me
    }

    /// Number of vertices of the *global* graph.
    #[inline]
    pub fn global_n(&self) -> usize {
        self.n
    }

    /// Number of hosted vertices.
    #[inline]
    pub fn hosted(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The hosted vertices, ascending (`j`-th entry has local index `j`).
    #[inline]
    pub fn vertices(&self) -> &[Vertex] {
        self.part.members(self.me)
    }

    /// Global id of the hosted vertex with local index `j`.
    ///
    /// # Panics
    /// Panics if `j >= hosted()`.
    #[inline]
    pub fn vertex(&self, j: usize) -> Vertex {
        self.vertices()[j]
    }

    /// Local index of `v`, or `None` if `v` is not hosted here.
    #[inline]
    pub fn local(&self, v: Vertex) -> Option<usize> {
        if self.part.home(v) == self.me {
            Some(self.local_of[v as usize] as usize)
        } else {
            None
        }
    }

    /// Sorted (out-)adjacency of the hosted vertex with local index `j`.
    #[inline]
    pub fn neighbors(&self, j: usize) -> &[Vertex] {
        &self.neighbors[self.offsets[j]..self.offsets[j + 1]]
    }

    /// Edge weights aligned with [`Self::neighbors`].
    ///
    /// # Panics
    /// Panics if this local was not built from a weighted graph.
    #[inline]
    pub fn neighbor_weights(&self, j: usize) -> &[f64] {
        assert!(self.weighted, "local graph built without weights");
        &self.weights[self.offsets[j]..self.offsets[j + 1]]
    }

    /// Whether this local carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Home machine of any global vertex (the shared hash/partition map —
    /// "if a machine knows a vertex ID, it also knows where it is hashed
    /// to", Section 1.1).
    #[inline]
    pub fn home(&self, v: Vertex) -> MachineIdx {
        self.part.home(v)
    }

    /// The shared partition.
    #[inline]
    pub fn part(&self) -> &Arc<Partition> {
        &self.part
    }

    /// Local indices of the hosted out-neighbors of `u`, or `None` if no
    /// out-neighbor of `u` lives here. Only populated by directed builds;
    /// this is the receiver side of heavy cross-partition traffic
    /// (lines 31–36 of Algorithm 1).
    #[inline]
    pub fn host_targets(&self, u: Vertex) -> Option<&[u32]> {
        let i = self.host_src.binary_search(&u).ok()?;
        Some(&self.host_tgt[self.host_offsets[i]..self.host_offsets[i + 1]])
    }

    /// Total adjacency endpoints stored here — machine `i`'s RVP input
    /// size, the `O~(m/k + Δ)` quantity of Klauck et al.'s Lemma 4.1.
    #[inline]
    pub fn edge_endpoints(&self) -> usize {
        self.neighbors.len()
    }

    /// Iterator over `(vertex, neighbors)` pairs in local-index order.
    pub fn iter(&self) -> impl Iterator<Item = (Vertex, &[Vertex])> + '_ {
        self.vertices()
            .iter()
            .enumerate()
            .map(move |(j, &v)| (v, self.neighbors(j)))
    }
}

/// All `k` [`LocalGraph`]s of one distributed input, plus the balance
/// diagnostics recorded during the fused build.
#[derive(Debug, Clone, PartialEq)]
pub struct DistGraph {
    locals: Vec<LocalGraph>,
    edge_loads: Vec<usize>,
    /// Precomputed at build time so the accessors are total functions:
    /// `Partition` guarantees `k >= 1`, and storing the validated stats
    /// keeps that guarantee in the type instead of re-proving it with an
    /// `expect` on every call.
    vertex_stats: LoadStats,
    edge_stats: LoadStats,
}

impl DistGraph {
    /// Assembles a distributed graph, computing the balance stats once.
    /// Total: the empty-`k` arm is unreachable (`Partition` asserts
    /// `k >= 1`), and `split_first().unwrap_or` keeps it panic-free.
    pub(crate) fn assemble(locals: Vec<LocalGraph>, edge_loads: Vec<usize>) -> Self {
        let vertex_loads: Vec<usize> = locals.iter().map(|l| l.vertices().len()).collect();
        let (&vf, vr) = vertex_loads.split_first().unwrap_or((&0, &[]));
        let (&ef, er) = edge_loads.split_first().unwrap_or((&0, &[]));
        let vertex_stats = LoadStats::from_split(vf, vr);
        let edge_stats = LoadStats::from_split(ef, er);
        DistGraph {
            locals,
            edge_loads,
            vertex_stats,
            edge_stats,
        }
    }
    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.locals.len()
    }

    /// The per-machine locals, indexed by machine.
    #[inline]
    pub fn locals(&self) -> &[LocalGraph] {
        &self.locals
    }

    /// Consumes the distributed graph, yielding the per-machine locals.
    #[inline]
    pub fn into_locals(self) -> Vec<LocalGraph> {
        self.locals
    }

    /// Per-machine edge loads recorded during the build: the total
    /// (out-)degree of each machine's hosted vertices — full degree for
    /// undirected/weighted builds, out-degree for directed builds (the
    /// stored adjacency; the in-edge-derived `host_targets` index is not
    /// counted).
    #[inline]
    pub fn edge_loads(&self) -> &[usize] {
        &self.edge_loads
    }

    /// Vertex-load statistics (the `Θ~(n/k)` claim of Section 1.1),
    /// computed once at build time — no `expect`, no recomputation.
    pub fn vertex_balance(&self) -> LoadStats {
        self.vertex_stats
    }

    /// Edge-load statistics (the `O~(m/k + Δ)` input bound of Klauck et
    /// al.'s Lemma 4.1) over [`Self::edge_loads`] — no second scan of the
    /// global graph. For directed builds this is an *out-degree* load
    /// (see `edge_loads`), not the undirected total degree.
    pub fn edge_balance(&self) -> LoadStats {
        self.edge_stats
    }
}

/// Builds all `k` [`LocalGraph`]s of a partitioned input in one fused
/// pass over the global graph.
#[derive(Debug, Clone, Copy)]
pub struct DistGraphBuilder<'a> {
    part: &'a Arc<Partition>,
}

impl<'a> DistGraphBuilder<'a> {
    /// A builder distributing over `part`'s machines.
    pub fn new(part: &'a Arc<Partition>) -> Self {
        DistGraphBuilder { part }
    }

    /// Empty per-machine shells plus the shared global→local index
    /// (one `Arc<[u32]>` for all machines, not `k` hash maps). Shared
    /// with the streaming builder in [`crate::stream`].
    pub(crate) fn shells(&self, n: usize) -> Vec<LocalGraph> {
        let part = self.part;
        let k = part.k();
        let mut local_of = vec![0u32; n];
        let mut counts = vec![0u32; k];
        for (v, slot) in local_of.iter_mut().enumerate() {
            let h = part.home(v as Vertex);
            *slot = counts[h];
            counts[h] += 1;
        }
        let local_of: Arc<[u32]> = local_of.into();
        (0..k)
            .map(|i| LocalGraph {
                me: i,
                n,
                part: Arc::clone(part),
                local_of: Arc::clone(&local_of),
                offsets: vec![0],
                neighbors: Vec::new(),
                weights: Vec::new(),
                weighted: false,
                host_src: Vec::new(),
                host_offsets: Vec::new(),
                host_tgt: Vec::new(),
            })
            .collect()
    }

    /// Distributes an undirected graph: machine `i` receives its hosted
    /// vertices with their full adjacency lists.
    ///
    /// # Panics
    /// Panics if `g.n() != part.n()`.
    pub fn undirected(&self, g: &CsrGraph) -> DistGraph {
        assert_eq!(g.n(), self.part.n(), "partition size mismatch");
        let mut locals = self.shells(g.n());
        let edge_loads = self.presize(&mut locals, |v| g.degree(v));
        for v in g.vertices() {
            let l = &mut locals[self.part.home(v)];
            l.neighbors.extend_from_slice(g.neighbors(v));
            l.offsets.push(l.neighbors.len());
        }
        DistGraph::assemble(locals, edge_loads)
    }

    /// Distributes a weighted graph: adjacency plus aligned weights.
    ///
    /// # Panics
    /// Panics if `g.n() != part.n()`.
    pub fn weighted(&self, g: &WeightedGraph) -> DistGraph {
        assert_eq!(g.n(), self.part.n(), "partition size mismatch");
        let mut locals = self.shells(g.n());
        let edge_loads = self.presize(&mut locals, |v| g.degree(v));
        for (i, l) in locals.iter_mut().enumerate() {
            l.weighted = true;
            l.weights.reserve(edge_loads[i]);
        }
        for v in 0..g.n() as Vertex {
            let l = &mut locals[self.part.home(v)];
            l.neighbors.extend_from_slice(g.neighbors(v));
            l.weights.extend_from_slice(g.neighbor_weights(v));
            l.offsets.push(l.neighbors.len());
        }
        DistGraph::assemble(locals, edge_loads)
    }

    /// Distributes a digraph: machine `i` receives its hosted vertices
    /// with their *out*-adjacency (what RVP grants the home machine) plus
    /// the precomputed [`LocalGraph::host_targets`] receiver map derived
    /// from the hosted vertices' in-edges.
    ///
    /// # Panics
    /// Panics if `g.n() != part.n()`.
    pub fn directed(&self, g: &DiGraph) -> DistGraph {
        assert_eq!(g.n(), self.part.n(), "partition size mismatch");
        let k = self.part.k();
        let mut locals = self.shells(g.n());
        let edge_loads = self.presize(&mut locals, |v| g.out_degree(v));
        // `(external source, hosted local target)` pairs per machine.
        let mut pairs: Vec<Vec<(Vertex, u32)>> = vec![Vec::new(); k];
        for v in g.vertices() {
            let h = self.part.home(v);
            let l = &mut locals[h];
            l.neighbors.extend_from_slice(g.out_neighbors(v));
            l.offsets.push(l.neighbors.len());
            let j = l.local_of[v as usize];
            for &u in g.in_neighbors(v) {
                pairs[h].push((u, j));
            }
        }
        for (l, mut p) in locals.iter_mut().zip(pairs) {
            // Group by source; within a source, targets stay in ascending
            // local-index (= ascending hosted vertex id) order.
            p.sort_unstable();
            for (u, j) in p {
                if l.host_src.last() != Some(&u) {
                    l.host_src.push(u);
                    l.host_offsets.push(l.host_tgt.len());
                }
                l.host_tgt.push(j);
            }
            l.host_offsets.push(l.host_tgt.len());
        }
        DistGraph::assemble(locals, edge_loads)
    }

    /// Computes per-machine edge loads and reserves each shell's flat
    /// arrays so the fill sweep never reallocates.
    fn presize(
        &self,
        locals: &mut [LocalGraph],
        degree_of: impl Fn(Vertex) -> usize,
    ) -> Vec<usize> {
        let part = self.part;
        let mut edge_loads = vec![0usize; part.k()];
        for v in 0..part.n() as Vertex {
            edge_loads[part.home(v)] += degree_of(v);
        }
        for (i, l) in locals.iter_mut().enumerate() {
            l.offsets.reserve(part.members(i).len());
            l.neighbors.reserve(edge_loads[i]);
        }
        edge_loads
    }
}

/// A flat sorted-adjacency view over an arbitrary edge set — the shared
/// helper behind the subgraph enumerators (triangles, open triads), which
/// each used to build their own `HashMap<Vertex, Vec<Vertex>>` copy.
///
/// Vertices are the edge endpoints in ascending order; adjacency slices
/// are sorted. Lookup is a binary search over the touched vertices only,
/// so the view stays proportional to the edge set, not to `n`.
#[derive(Debug, Clone, Default)]
pub struct EdgeListAdjacency {
    keys: Vec<Vertex>,
    offsets: Vec<usize>,
    neighbors: Vec<Vertex>,
}

impl EdgeListAdjacency {
    /// Builds the view from simple undirected edges (duplicates collapse).
    pub fn from_edges<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        let mut pairs: Vec<(Vertex, Vertex)> = Vec::new();
        for e in edges {
            pairs.push((e.u, e.v));
            pairs.push((e.v, e.u));
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut keys = Vec::new();
        let mut offsets = vec![0usize];
        let mut neighbors = Vec::with_capacity(pairs.len());
        for (u, v) in pairs {
            if keys.last() != Some(&u) {
                if !keys.is_empty() {
                    offsets.push(neighbors.len());
                }
                keys.push(u);
            }
            neighbors.push(v);
        }
        offsets.push(neighbors.len());
        if keys.is_empty() {
            offsets = vec![0];
        }
        EdgeListAdjacency {
            keys,
            offsets,
            neighbors,
        }
    }

    /// The touched vertices, ascending.
    #[inline]
    pub fn vertices(&self) -> &[Vertex] {
        &self.keys
    }

    /// Sorted neighbors of `v` within the edge set (empty if untouched).
    #[inline]
    pub fn neighbors_of(&self, v: Vertex) -> &[Vertex] {
        match self.keys.binary_search(&v) {
            Ok(i) => &self.neighbors[self.offsets[i]..self.offsets[i + 1]],
            Err(_) => &[],
        }
    }
}

/// The pre-`DistGraph` ingestion path, preserved as a measurable
/// artifact: `k` independent member scans, each allocating a
/// `HashMap` vertex index and a `Vec<Vec<_>>` adjacency — the pattern
/// every algorithm crate used to hand-roll. Returns the total stored
/// endpoints as an optimization barrier; `perfsnap` and the
/// `graph_dist` bench time it against [`DistGraphBuilder::undirected`]
/// on identical inputs.
pub fn replicated_scan_reference(g: &CsrGraph, part: &Partition) -> usize {
    use std::collections::HashMap;
    assert_eq!(g.n(), part.n(), "partition size mismatch");
    let mut total = 0usize;
    for i in 0..part.k() {
        let vertices: Vec<Vertex> = part.members(i).to_vec();
        let index: HashMap<Vertex, usize> =
            vertices.iter().enumerate().map(|(j, &v)| (v, j)).collect();
        let adjacency: Vec<Vec<Vertex>> =
            vertices.iter().map(|&v| g.neighbors(v).to_vec()).collect();
        total += adjacency.iter().map(Vec::len).sum::<usize>();
        std::hint::black_box(&index);
        std::hint::black_box(&adjacency);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn star_dist(k: usize) -> DistGraph {
        let g = classic::star(10);
        let part = Arc::new(Partition::by_hash(10, k, 3));
        DistGraphBuilder::new(&part).undirected(&g)
    }

    #[test]
    fn locals_cover_vertices_and_endpoints() {
        let d = star_dist(4);
        let hosted: usize = d.locals().iter().map(LocalGraph::hosted).sum();
        assert_eq!(hosted, 10);
        let endpoints: usize = d.locals().iter().map(LocalGraph::edge_endpoints).sum();
        assert_eq!(endpoints, 2 * 9);
        assert_eq!(d.edge_loads().iter().sum::<usize>(), 2 * 9);
    }

    #[test]
    fn local_index_roundtrips() {
        let d = star_dist(3);
        for l in d.locals() {
            for (j, &v) in l.vertices().iter().enumerate() {
                assert_eq!(l.local(v), Some(j));
                assert_eq!(l.vertex(j), v);
            }
            // Vertices hosted elsewhere resolve to None.
            for v in 0..10 {
                if l.home(v) != l.machine() {
                    assert_eq!(l.local(v), None);
                }
            }
        }
    }

    #[test]
    fn adjacency_matches_global_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = gnp(60, 0.2, &mut rng);
        let part = Arc::new(Partition::by_hash(60, 7, 1));
        let d = DistGraphBuilder::new(&part).undirected(&g);
        for l in d.locals() {
            for (v, ns) in l.iter() {
                assert_eq!(ns, g.neighbors(v));
            }
        }
    }

    #[test]
    fn weighted_build_aligns_weights() {
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1), (1, 2), (2, 3), (0, 3)],
            &[1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let part = Arc::new(Partition::from_assignment(2, vec![0, 1, 0, 1]));
        let d = DistGraphBuilder::new(&part).weighted(&g);
        for l in d.locals() {
            assert!(l.is_weighted());
            for (j, &v) in l.vertices().iter().enumerate() {
                assert_eq!(l.neighbors(j), g.neighbors(v));
                assert_eq!(l.neighbor_weights(j), g.neighbor_weights(v));
            }
        }
    }

    #[test]
    fn directed_build_out_edges_and_host_targets() {
        // 0 -> 1, 0 -> 2, 3 -> 0, 1 -> 2
        let g = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (3, 0), (1, 2)]);
        let part = Arc::new(Partition::from_assignment(2, vec![0, 1, 1, 0]));
        let d = DistGraphBuilder::new(&part).directed(&g);
        let m0 = &d.locals()[0];
        assert_eq!(m0.vertices(), &[0, 3]);
        assert_eq!(m0.neighbors(0), &[1, 2]); // out-edges of 0
        assert_eq!(m0.neighbors(1), &[0]); // out-edges of 3
                                           // Machine 0 hosts 0 (local 0): its only in-neighbor is 3.
        assert_eq!(m0.host_targets(3), Some(&[0u32][..]));
        assert_eq!(m0.host_targets(1), None);
        // Machine 1 hosts 1 (local 0) and 2 (local 1): sources 0 and 1.
        let m1 = &d.locals()[1];
        assert_eq!(m1.host_targets(0), Some(&[0u32, 1][..]));
        assert_eq!(m1.host_targets(1), Some(&[1u32][..]));
        assert_eq!(m1.host_targets(2), None);
    }

    #[test]
    fn balance_stats_match_partition_diagnostics() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = gnp(200, 0.1, &mut rng);
        let part = Arc::new(Partition::by_hash(200, 8, 2));
        let d = DistGraphBuilder::new(&part).undirected(&g);
        let want_v = crate::partition::balance::vertex_balance(&part);
        let want_e = crate::partition::balance::edge_balance(&g, &part).unwrap();
        assert_eq!(d.vertex_balance(), want_v);
        assert_eq!(d.edge_balance(), want_e);
    }

    #[test]
    fn fused_and_replicated_scans_store_the_same_endpoints() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = gnp(120, 0.1, &mut rng);
        let part = Arc::new(Partition::by_hash(120, 16, 4));
        let d = DistGraphBuilder::new(&part).undirected(&g);
        let fused: usize = d.locals().iter().map(LocalGraph::edge_endpoints).sum();
        assert_eq!(fused, replicated_scan_reference(&g, &part));
    }

    #[test]
    fn empty_graph_and_single_machine() {
        let g = CsrGraph::from_edges(0, &[]);
        let part = Arc::new(Partition::from_assignment(3, vec![]));
        let d = DistGraphBuilder::new(&part).undirected(&g);
        assert_eq!(d.k(), 3);
        for l in d.locals() {
            assert_eq!(l.hosted(), 0);
            assert_eq!(l.edge_endpoints(), 0);
        }
        let g1 = classic::complete(5);
        let part1 = Arc::new(Partition::round_robin(5, 1));
        let d1 = DistGraphBuilder::new(&part1).undirected(&g1);
        assert_eq!(d1.locals()[0].hosted(), 5);
    }

    #[test]
    #[should_panic(expected = "partition size mismatch")]
    fn rejects_mismatched_partition() {
        let g = classic::path(4);
        let part = Arc::new(Partition::by_hash(5, 2, 1));
        let _ = DistGraphBuilder::new(&part).undirected(&g);
    }

    #[test]
    fn edge_list_adjacency_sorted_and_complete() {
        let edges = [Edge::new(5, 2), Edge::new(2, 9), Edge::new(5, 9)];
        let adj = EdgeListAdjacency::from_edges(edges);
        assert_eq!(adj.vertices(), &[2, 5, 9]);
        assert_eq!(adj.neighbors_of(2), &[5, 9]);
        assert_eq!(adj.neighbors_of(5), &[2, 9]);
        assert_eq!(adj.neighbors_of(9), &[2, 5]);
        assert_eq!(adj.neighbors_of(7), &[] as &[Vertex]);
        let empty = EdgeListAdjacency::from_edges([]);
        assert_eq!(empty.vertices(), &[] as &[Vertex]);
        assert_eq!(empty.neighbors_of(0), &[] as &[Vertex]);
    }
}
