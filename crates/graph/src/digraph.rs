//! Directed graphs in CSR form, with both out- and in-adjacency.
//!
//! PageRank (Section 3.1) walks *out*-edges; the lower-bound graph `H`
//! (Figure 1) is directed and weakly connected. In the random vertex
//! partition the home machine of a vertex knows its out-edges (Section 1.1),
//! so [`DiGraph::out_neighbors`] is the primary access path; the in-CSR is
//! kept for analysis (e.g. closed-form PageRank on `H`).

use crate::ids::Vertex;

/// An immutable simple directed graph in CSR form (out- and in-adjacency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<usize>,
    out_neighbors: Vec<Vertex>,
    in_offsets: Vec<usize>,
    in_neighbors: Vec<Vertex>,
}

impl DiGraph {
    /// Builds a digraph with `n` vertices from directed `(src, dst)` arcs.
    ///
    /// Self-loops are dropped and parallel arcs deduplicated.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_arcs(n: usize, arcs: &[(Vertex, Vertex)]) -> Self {
        let mut clean: Vec<(Vertex, Vertex)> = Vec::with_capacity(arcs.len());
        for &(u, v) in arcs {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "arc ({u},{v}) out of range for n={n}"
            );
            if u != v {
                clean.push((u, v));
            }
        }
        clean.sort_unstable();
        clean.dedup();

        let build = |n: usize, pairs: &[(Vertex, Vertex)]| {
            let mut deg = vec![0usize; n];
            for &(u, _) in pairs {
                deg[u as usize] += 1;
            }
            let mut offsets = Vec::with_capacity(n + 1);
            let mut acc = 0;
            offsets.push(0);
            for d in &deg {
                acc += d;
                offsets.push(acc);
            }
            let mut cursor = offsets.clone();
            let mut nbrs = vec![0 as Vertex; acc];
            for &(u, v) in pairs {
                nbrs[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
            }
            for v in 0..n {
                nbrs[offsets[v]..offsets[v + 1]].sort_unstable();
            }
            (offsets, nbrs)
        };

        let (out_offsets, out_neighbors) = build(n, &clean);
        let reversed: Vec<(Vertex, Vertex)> = clean.iter().map(|&(u, v)| (v, u)).collect();
        let (in_offsets, in_neighbors) = build(n, &reversed);
        DiGraph {
            out_offsets,
            out_neighbors,
            in_offsets,
            in_neighbors,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed arcs.
    #[inline]
    pub fn m(&self) -> usize {
        self.out_neighbors.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Sorted out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.out_neighbors[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Sorted in-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.in_neighbors[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Whether arc `u → v` is present.
    #[inline]
    pub fn has_arc(&self, u: Vertex, v: Vertex) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.n() as Vertex
    }

    /// Iterator over all arcs as `(src, dst)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        (0..self.n()).flat_map(move |u| {
            let u = u as Vertex;
            self.out_neighbors(u).iter().map(move |&v| (u, v))
        })
    }

    /// The underlying undirected graph (arc directions forgotten).
    pub fn to_undirected(&self) -> crate::csr::CsrGraph {
        let pairs: Vec<(Vertex, Vertex)> = self.arcs().collect();
        crate::csr::CsrGraph::from_edges(self.n(), &pairs)
    }

    /// Whether the digraph is weakly connected (ignores directions;
    /// the empty graph is considered connected).
    pub fn is_weakly_connected(&self) -> bool {
        crate::properties::is_connected(&self.to_undirected())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degrees_and_arcs() {
        // 0 -> 1 -> 2, 0 -> 2
        let g = DiGraph::from_arcs(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
    }

    #[test]
    fn dedup_and_loops() {
        let g = DiGraph::from_arcs(2, &[(0, 1), (0, 1), (1, 1)]);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn weak_connectivity() {
        let g = DiGraph::from_arcs(3, &[(0, 1), (2, 1)]);
        assert!(g.is_weakly_connected());
        let g2 = DiGraph::from_arcs(3, &[(0, 1)]);
        assert!(!g2.is_weakly_connected());
    }

    #[test]
    fn undirected_projection() {
        let g = DiGraph::from_arcs(3, &[(0, 1), (1, 0), (1, 2)]);
        let u = g.to_undirected();
        assert_eq!(u.m(), 2); // {0,1} collapses
    }

    proptest! {
        /// In/out CSR views are transposes of each other.
        #[test]
        fn transpose_consistency(arcs in proptest::collection::vec((0u32..25, 0u32..25), 0..150)) {
            let g = DiGraph::from_arcs(25, &arcs);
            let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
            let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
            prop_assert_eq!(out_sum, g.m());
            prop_assert_eq!(in_sum, g.m());
            for (u, v) in g.arcs() {
                prop_assert!(g.in_neighbors(v).contains(&u));
            }
        }
    }
}
