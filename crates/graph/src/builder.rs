//! Incremental construction of graphs.

use crate::csr::CsrGraph;
use crate::digraph::DiGraph;
use crate::ids::Vertex;
use crate::weighted::WeightedGraph;

/// An incremental edge-list builder for simple graphs.
///
/// Generators accumulate edges here and finalize into CSR form once; the
/// builder tolerates duplicates and self-loops (CSR construction cleans
/// them), so generator code stays simple.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
    weights: Vec<f64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Creates a builder with edge capacity preallocated.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds an undirected edge (or a directed arc if building a digraph).
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds a weighted undirected edge.
    pub fn add_weighted_edge(&mut self, u: Vertex, v: Vertex, w: f64) -> &mut Self {
        self.edges.push((u, v));
        self.weights.push(w);
        self
    }

    /// Finalizes into an undirected CSR graph.
    pub fn build_undirected(&self) -> CsrGraph {
        CsrGraph::from_edges(self.n, &self.edges)
    }

    /// Finalizes into a digraph, treating each added edge as an arc.
    pub fn build_directed(&self) -> DiGraph {
        DiGraph::from_arcs(self.n, &self.edges)
    }

    /// Finalizes into a weighted undirected graph.
    ///
    /// # Errors
    /// [`crate::error::GraphError::NonFiniteWeight`] if any accumulated
    /// weight is NaN or ±∞.
    ///
    /// # Panics
    /// Panics if any edge was added without a weight.
    pub fn build_weighted(&self) -> Result<WeightedGraph, crate::error::GraphError> {
        assert_eq!(
            self.edges.len(),
            self.weights.len(),
            "all edges must carry weights for a weighted build"
        );
        WeightedGraph::from_weighted_edges(self.n, &self.edges, &self.weights)
    }

    /// The raw edge list accumulated so far.
    pub fn edges(&self) -> &[(Vertex, Vertex)] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_undirected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build_undirected();
        assert_eq!(g.m(), 2);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn builds_directed() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 0);
        let g = b.build_directed();
        assert_eq!(g.m(), 2);
        assert!(g.has_arc(0, 1) && g.has_arc(1, 0));
    }

    #[test]
    fn builds_weighted() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.5).add_weighted_edge(1, 2, 0.5);
        let g = b.build_weighted().unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.weight(0, 1), Some(2.5));
        b.add_weighted_edge(0, 2, f64::NAN);
        assert!(b.build_weighted().is_err());
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn weighted_build_requires_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let _ = b.build_weighted();
    }
}
