//! Balance diagnostics for partitions.
//!
//! Section 1.1: under RVP "each machine is the home machine of `Θ~(n/k)`
//! vertices with high probability". These statistics make that claim (and
//! the corresponding edge balance used in Lemma 4.1 of Klauck et al.)
//! measurable; the `RVP` experiment in EXPERIMENTS.md sweeps them.
//!
//! Invalid inputs are reported as [`BalanceError`]s, not panics — the
//! same error-not-panic policy as `NetConfig::validate` in `km-core`.

use crate::csr::CsrGraph;
use crate::partition::Partition;

/// Invalid input to a balance diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceError {
    /// An empty load vector has no statistics.
    NoMachines,
    /// Graph and partition disagree on the vertex count.
    SizeMismatch {
        /// Vertices in the graph.
        graph_n: usize,
        /// Vertices in the partition.
        partition_n: usize,
    },
}

impl std::fmt::Display for BalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalanceError::NoMachines => write!(f, "no machines: empty load vector"),
            BalanceError::SizeMismatch {
                graph_n,
                partition_n,
            } => write!(
                f,
                "partition size mismatch: graph has {graph_n} vertices, \
                 partition covers {partition_n}"
            ),
        }
    }
}

impl std::error::Error for BalanceError {}

/// Load statistics across machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Largest per-machine load.
    pub max: usize,
    /// Smallest per-machine load.
    pub min: usize,
    /// Mean load.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfectly balanced.
    pub imbalance: f64,
}

impl LoadStats {
    /// Computes stats from raw per-machine loads.
    ///
    /// Returns [`BalanceError::NoMachines`] for an empty slice.
    pub fn from_loads(loads: &[usize]) -> Result<Self, BalanceError> {
        match loads.split_first() {
            Some((&first, rest)) => Ok(Self::from_split(first, rest)),
            None => Err(BalanceError::NoMachines),
        }
    }

    /// Computes stats from a non-empty load vector given as
    /// `first` + `rest` — the `k >= 1` guarantee lives in the signature,
    /// so callers that hold a [`Partition`] (which asserts `k >= 1` at
    /// construction) get an infallible path with no `expect`.
    pub fn from_split(first: usize, rest: &[usize]) -> Self {
        let mut max = first;
        let mut min = first;
        let mut sum = first;
        for &l in rest {
            max = max.max(l);
            min = min.min(l);
            sum += l;
        }
        let mean = sum as f64 / (rest.len() + 1) as f64;
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        LoadStats {
            max,
            min,
            mean,
            imbalance,
        }
    }
}

/// Vertex-load statistics of a partition. Infallible: [`Partition`]
/// guarantees `k >= 1`, so the empty-load arm is unreachable and the
/// total [`LoadStats::from_split`] path needs no `expect`.
pub fn vertex_balance(part: &Partition) -> LoadStats {
    let loads = part.loads();
    let (&first, rest) = loads.split_first().unwrap_or((&0, &[]));
    LoadStats::from_split(first, rest)
}

/// Edge-load statistics: machine `i`'s load is the total degree of its
/// hosted vertices (the size of its RVP input, `O~(m/k + Δ)` w.h.p. per
/// Lemma 4.1 of Klauck et al., quoted in the proof of Theorem 5).
///
/// Returns [`BalanceError::SizeMismatch`] if `g` and `part` disagree on
/// the vertex count.
pub fn edge_balance(g: &CsrGraph, part: &Partition) -> Result<LoadStats, BalanceError> {
    if g.n() != part.n() {
        return Err(BalanceError::SizeMismatch {
            graph_n: g.n(),
            partition_n: part.n(),
        });
    }
    let mut loads = vec![0usize; part.k()];
    for v in g.vertices() {
        loads[part.home(v)] += g.degree(v);
    }
    LoadStats::from_loads(&loads)
}

/// Verifies the `Θ~(n/k)` RVP balance claim: max load within
/// `factor · (n/k + slack)` where slack covers small-n noise.
pub fn is_vertex_balanced(part: &Partition, factor: f64) -> bool {
    let ideal = part.n() as f64 / part.k() as f64;
    let slack = (part.n() as f64).ln().max(1.0) * ideal.sqrt().max(1.0);
    (vertex_balance(part).max as f64) <= factor * ideal + factor * slack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic::star, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stats_basics() {
        let s = LoadStats::from_loads(&[4, 6, 5]).unwrap();
        assert_eq!(s.max, 6);
        assert_eq!(s.min, 4);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.imbalance - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_loads_are_an_error_not_a_panic() {
        assert_eq!(LoadStats::from_loads(&[]), Err(BalanceError::NoMachines));
    }

    #[test]
    fn from_split_agrees_with_from_loads() {
        for loads in [vec![7], vec![4, 6, 5], vec![0, 0], vec![3, 0, 9, 1]] {
            let (&first, rest) = loads.split_first().unwrap();
            assert_eq!(
                LoadStats::from_split(first, rest),
                LoadStats::from_loads(&loads).unwrap()
            );
        }
    }

    #[test]
    fn size_mismatch_is_an_error_not_a_panic() {
        let g = star(10);
        let p = Partition::by_hash(12, 3, 1);
        assert_eq!(
            edge_balance(&g, &p),
            Err(BalanceError::SizeMismatch {
                graph_n: 10,
                partition_n: 12
            })
        );
        // Errors render a readable message.
        let msg = BalanceError::NoMachines.to_string();
        assert!(msg.contains("no machines"));
    }

    #[test]
    fn rvp_vertex_balance_holds() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for k in [2, 8, 32] {
            let p = Partition::random_vertex(5000, k, &mut rng);
            assert!(is_vertex_balanced(&p, 2.0), "k={k}");
        }
    }

    #[test]
    fn star_edge_load_concentrates_at_hub_machine() {
        let g = star(1000);
        let p = Partition::by_hash(1000, 10, 3);
        let s = edge_balance(&g, &p).unwrap();
        // Hub machine holds ~n-1 endpoints, others ~n/k.
        assert!(s.max >= 999);
        assert!(s.imbalance > 2.0);
    }

    #[test]
    fn gnp_edge_load_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = gnp(800, 0.05, &mut rng);
        let p = Partition::random_vertex(800, 8, &mut rng);
        let s = edge_balance(&g, &p).unwrap();
        assert!(s.imbalance < 1.5, "imbalance={}", s.imbalance);
    }
}
