//! Balance diagnostics for partitions.
//!
//! Section 1.1: under RVP "each machine is the home machine of `Θ~(n/k)`
//! vertices with high probability". These statistics make that claim (and
//! the corresponding edge balance used in Lemma 4.1 of Klauck et al.)
//! measurable; the `RVP` experiment in EXPERIMENTS.md sweeps them.

use crate::csr::CsrGraph;
use crate::partition::Partition;

/// Load statistics across machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Largest per-machine load.
    pub max: usize,
    /// Smallest per-machine load.
    pub min: usize,
    /// Mean load.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfectly balanced.
    pub imbalance: f64,
}

impl LoadStats {
    /// Computes stats from raw per-machine loads.
    pub fn from_loads(loads: &[usize]) -> Self {
        assert!(!loads.is_empty(), "no machines");
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        LoadStats {
            max,
            min,
            mean,
            imbalance,
        }
    }
}

/// Vertex-load statistics of a partition.
pub fn vertex_balance(part: &Partition) -> LoadStats {
    LoadStats::from_loads(&part.loads())
}

/// Edge-load statistics: machine `i`'s load is the total degree of its
/// hosted vertices (the size of its RVP input, `O~(m/k + Δ)` w.h.p. per
/// Lemma 4.1 of Klauck et al., quoted in the proof of Theorem 5).
pub fn edge_balance(g: &CsrGraph, part: &Partition) -> LoadStats {
    assert_eq!(g.n(), part.n(), "partition size mismatch");
    let mut loads = vec![0usize; part.k()];
    for v in g.vertices() {
        loads[part.home(v)] += g.degree(v);
    }
    LoadStats::from_loads(&loads)
}

/// Verifies the `Θ~(n/k)` RVP balance claim: max load within
/// `factor · (n/k + slack)` where slack covers small-n noise.
pub fn is_vertex_balanced(part: &Partition, factor: f64) -> bool {
    let ideal = part.n() as f64 / part.k() as f64;
    let slack = (part.n() as f64).ln().max(1.0) * ideal.sqrt().max(1.0);
    (vertex_balance(part).max as f64) <= factor * ideal + factor * slack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic::star, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stats_basics() {
        let s = LoadStats::from_loads(&[4, 6, 5]);
        assert_eq!(s.max, 6);
        assert_eq!(s.min, 4);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.imbalance - 1.2).abs() < 1e-12);
    }

    #[test]
    fn rvp_vertex_balance_holds() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for k in [2, 8, 32] {
            let p = Partition::random_vertex(5000, k, &mut rng);
            assert!(is_vertex_balanced(&p, 2.0), "k={k}");
        }
    }

    #[test]
    fn star_edge_load_concentrates_at_hub_machine() {
        let g = star(1000);
        let p = Partition::by_hash(1000, 10, 3);
        let s = edge_balance(&g, &p);
        // Hub machine holds ~n-1 endpoints, others ~n/k.
        assert!(s.max >= 999);
        assert!(s.imbalance > 2.0);
    }

    #[test]
    fn gnp_edge_load_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = gnp(800, 0.05, &mut rng);
        let p = Partition::random_vertex(800, 8, &mut rng);
        let s = edge_balance(&g, &p);
        assert!(s.imbalance < 1.5, "imbalance={}", s.imbalance);
    }
}
