//! Random-vertex-partition helpers: distributing a concrete graph.
//!
//! Under RVP the home machine of `v` learns `v`'s full incident edge list
//! (for digraphs: the out-edges; Section 1.1). The materialization of that
//! local knowledge is the [`crate::dist`] layer — [`distribute_undirected`]
//! and [`distribute_directed`] are thin convenience wrappers over
//! [`DistGraphBuilder`] for callers that want just the locals; algorithms
//! should use the builder directly to also get the balance diagnostics.

use crate::csr::CsrGraph;
use crate::digraph::DiGraph;
use crate::dist::{DistGraphBuilder, LocalGraph};
use crate::ids::{Edge, MachineIdx};
use crate::partition::Partition;
use std::sync::Arc;

/// Splits an undirected graph per the partition: machine `i` receives its
/// vertices with their full adjacency lists.
pub fn distribute_undirected(g: &CsrGraph, part: &Arc<Partition>) -> Vec<LocalGraph> {
    DistGraphBuilder::new(part).undirected(g).into_locals()
}

/// Splits a digraph per the partition: machine `i` receives its vertices
/// with their out-adjacency lists.
pub fn distribute_directed(g: &DiGraph, part: &Arc<Partition>) -> Vec<LocalGraph> {
    DistGraphBuilder::new(part).directed(g).into_locals()
}

/// The set of undirected edges *known* to machine `i` under RVP (an edge is
/// known if either endpoint is homed there). Used by the lower-bound
/// validators to quantify "initial knowledge".
pub fn known_edges(g: &CsrGraph, part: &Partition, machine: MachineIdx) -> Vec<Edge> {
    let mut out = Vec::new();
    for e in g.edges() {
        if part.home(e.u) == machine || part.home(e.v) == machine {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::star;

    #[test]
    fn locals_cover_graph_exactly_once() {
        let g = star(8);
        let part = Arc::new(Partition::by_hash(8, 3, 7));
        let locals = distribute_undirected(&g, &part);
        let total_vertices: usize = locals.iter().map(LocalGraph::hosted).sum();
        assert_eq!(total_vertices, 8);
        let total_endpoints: usize = locals.iter().map(LocalGraph::edge_endpoints).sum();
        assert_eq!(total_endpoints, 2 * g.m());
    }

    #[test]
    fn directed_locals_hold_out_edges() {
        let g = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (3, 0)]);
        let part = Arc::new(Partition::from_assignment(2, vec![0, 1, 1, 0]));
        let locals = distribute_directed(&g, &part);
        let m0 = &locals[0];
        assert_eq!(m0.vertices(), &[0, 3]);
        assert_eq!(m0.neighbors(0), &[1, 2]);
        assert_eq!(m0.neighbors(1), &[0]);
        assert_eq!(locals[1].edge_endpoints(), 0);
    }

    #[test]
    fn known_edges_union_is_edge_set() {
        let g = star(10);
        let part = Partition::by_hash(10, 4, 1);
        let mut union: Vec<Edge> = (0..4).flat_map(|i| known_edges(&g, &part, i)).collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(union.len(), g.m());
    }
}
