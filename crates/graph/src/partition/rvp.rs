//! Random-vertex-partition helpers: distributing a concrete graph.
//!
//! Under RVP the home machine of `v` learns `v`'s full incident edge list
//! (for digraphs: the out-edges; Section 1.1). These helpers materialize
//! exactly that local knowledge, which is what the simulator hands to each
//! machine as its input `p_i`.

use crate::csr::CsrGraph;
use crate::digraph::DiGraph;
use crate::ids::{Edge, MachineIdx, Vertex};
use crate::partition::Partition;

/// The local input of one machine under RVP: its vertices and, for each,
/// the incident (out-)edges.
#[derive(Debug, Clone, Default)]
pub struct LocalGraph {
    /// Vertices homed at this machine, ascending.
    pub vertices: Vec<Vertex>,
    /// `adjacency[i]` = neighbors (or out-neighbors) of `vertices[i]`.
    pub adjacency: Vec<Vec<Vertex>>,
}

impl LocalGraph {
    /// Total number of incident edge endpoints stored here.
    pub fn edge_endpoints(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Iterator over `(v, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Vertex, &[Vertex])> + '_ {
        self.vertices
            .iter()
            .zip(&self.adjacency)
            .map(|(&v, ns)| (v, ns.as_slice()))
    }
}

/// Splits an undirected graph per the partition: machine `i` receives its
/// vertices with their full adjacency lists.
pub fn distribute_undirected(g: &CsrGraph, part: &Partition) -> Vec<LocalGraph> {
    assert_eq!(g.n(), part.n(), "partition size mismatch");
    let mut locals = vec![LocalGraph::default(); part.k()];
    for (i, local) in locals.iter_mut().enumerate() {
        for &v in part.members(i) {
            local.vertices.push(v);
            local.adjacency.push(g.neighbors(v).to_vec());
        }
    }
    locals
}

/// Splits a digraph per the partition: machine `i` receives its vertices
/// with their out-adjacency lists.
pub fn distribute_directed(g: &DiGraph, part: &Partition) -> Vec<LocalGraph> {
    assert_eq!(g.n(), part.n(), "partition size mismatch");
    let mut locals = vec![LocalGraph::default(); part.k()];
    for (i, local) in locals.iter_mut().enumerate() {
        for &v in part.members(i) {
            local.vertices.push(v);
            local.adjacency.push(g.out_neighbors(v).to_vec());
        }
    }
    locals
}

/// The set of undirected edges *known* to machine `i` under RVP (an edge is
/// known if either endpoint is homed there). Used by the lower-bound
/// validators to quantify "initial knowledge".
pub fn known_edges(g: &CsrGraph, part: &Partition, machine: MachineIdx) -> Vec<Edge> {
    let mut out = Vec::new();
    for e in g.edges() {
        if part.home(e.u) == machine || part.home(e.v) == machine {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::star;

    #[test]
    fn locals_cover_graph_exactly_once() {
        let g = star(8);
        let part = Partition::by_hash(8, 3, 7);
        let locals = distribute_undirected(&g, &part);
        let total_vertices: usize = locals.iter().map(|l| l.vertices.len()).sum();
        assert_eq!(total_vertices, 8);
        let total_endpoints: usize = locals.iter().map(|l| l.edge_endpoints()).sum();
        assert_eq!(total_endpoints, 2 * g.m());
    }

    #[test]
    fn directed_locals_hold_out_edges() {
        let g = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (3, 0)]);
        let part = Partition::from_assignment(2, vec![0, 1, 1, 0]);
        let locals = distribute_directed(&g, &part);
        let m0 = &locals[0];
        assert_eq!(m0.vertices, vec![0, 3]);
        assert_eq!(m0.adjacency[0], vec![1, 2]);
        assert_eq!(m0.adjacency[1], vec![0]);
        assert_eq!(locals[1].edge_endpoints(), 0);
    }

    #[test]
    fn known_edges_union_is_edge_set() {
        let g = star(10);
        let part = Partition::by_hash(10, 4, 1);
        let mut union: Vec<Edge> = (0..4).flat_map(|i| known_edges(&g, &part, i)).collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(union.len(), g.m());
    }
}
