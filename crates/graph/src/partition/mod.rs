//! Input partitions of Section 1.1.
//!
//! All of the paper's results assume the **random vertex partition (RVP)**:
//! each vertex (with its incident edges) is assigned independently and
//! uniformly at random to one of the `k` machines. Real systems implement
//! this by hashing vertex ids, which [`Partition::by_hash`] reproduces.
//! The **random edge partition (REP)** of footnote 3 lives in [`rep`];
//! balance diagnostics (the `Θ~(n/k)` claim) in [`balance`].

pub mod balance;
pub mod rep;
pub mod rvp;

use crate::ids::{MachineIdx, Vertex};
use rand::Rng;

pub use rep::EdgePartition;

/// How a partition was produced (recorded for experiment provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionModel {
    /// Independent uniform assignment per vertex (the paper's RVP).
    RandomVertex,
    /// Deterministic hash of the vertex id (how Pregel/Giraph realize RVP).
    Hashed,
    /// Round-robin: vertex `v` to machine `v mod k` (adversarially balanced).
    RoundRobin,
    /// Arbitrary explicit assignment.
    Explicit,
}

/// A vertex partition: the home machine of every vertex, plus the inverse
/// (member lists per machine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    k: usize,
    home: Vec<MachineIdx>,
    members: Vec<Vec<Vertex>>,
    model: PartitionModel,
}

impl Partition {
    /// Wraps an explicit assignment `vertex -> machine`.
    ///
    /// # Panics
    /// Panics if `k == 0` or any machine index is `>= k`.
    pub fn from_assignment(k: usize, home: Vec<MachineIdx>) -> Self {
        Self::build(k, home, PartitionModel::Explicit)
    }

    fn build(k: usize, home: Vec<MachineIdx>, model: PartitionModel) -> Self {
        assert!(k > 0, "need at least one machine");
        let mut members = vec![Vec::new(); k];
        for (v, &m) in home.iter().enumerate() {
            assert!(m < k, "machine index {m} out of range for k={k}");
            members[m].push(v as Vertex);
        }
        Partition {
            k,
            home,
            members,
            model,
        }
    }

    /// RVP: independent uniform assignment (Section 1.1).
    pub fn random_vertex<R: Rng>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "need at least one machine");
        let home = (0..n).map(|_| rng.gen_range(0..k)).collect();
        Self::build(k, home, PartitionModel::RandomVertex)
    }

    /// Hash-based RVP: `home(v) = hash(seed, v) mod k`.
    ///
    /// Deterministic given the seed, so *every machine can evaluate it
    /// locally* — the property the paper exploits ("if a machine knows a
    /// vertex ID, it also knows where it is hashed to").
    pub fn by_hash(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one machine");
        let home = (0..n)
            .map(|v| {
                (splitmix64(seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15)) % k as u64) as usize
            })
            .collect();
        Self::build(k, home, PartitionModel::Hashed)
    }

    /// Round-robin `v mod k`: a perfectly balanced adversary-friendly
    /// baseline used to contrast with RVP in the balance experiments.
    pub fn round_robin(n: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one machine");
        let home = (0..n).map(|v| v % k).collect();
        Self::build(k, home, PartitionModel::RoundRobin)
    }

    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.home.len()
    }

    /// Home machine of `v`.
    #[inline]
    pub fn home(&self, v: Vertex) -> MachineIdx {
        self.home[v as usize]
    }

    /// The vertices hosted by machine `i`, in increasing id order.
    #[inline]
    pub fn members(&self, i: MachineIdx) -> &[Vertex] {
        &self.members[i]
    }

    /// Vertices per machine.
    pub fn loads(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }

    /// The provenance of this partition.
    pub fn model(&self) -> PartitionModel {
        self.model
    }

    /// Full assignment slice (`vertex -> machine`).
    pub fn assignment(&self) -> &[MachineIdx] {
        &self.home
    }
}

/// SplitMix64 — the tiny deterministic mixer used for hash partitions and
/// proxy assignment. Public so experiments can reproduce machine choices.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn explicit_assignment_roundtrip() {
        let p = Partition::from_assignment(3, vec![0, 1, 2, 0, 1]);
        assert_eq!(p.k(), 3);
        assert_eq!(p.n(), 5);
        assert_eq!(p.home(3), 0);
        assert_eq!(p.members(0), &[0, 3]);
        assert_eq!(p.loads(), vec![2, 2, 1]);
        assert_eq!(p.model(), PartitionModel::Explicit);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_machine() {
        let _ = Partition::from_assignment(2, vec![0, 2]);
    }

    #[test]
    fn members_partition_vertex_set() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = Partition::random_vertex(100, 7, &mut rng);
        let mut all: Vec<Vertex> = (0..7).flat_map(|i| p.members(i).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn hash_partition_deterministic() {
        let p1 = Partition::by_hash(50, 5, 99);
        let p2 = Partition::by_hash(50, 5, 99);
        assert_eq!(p1.assignment(), p2.assignment());
        let p3 = Partition::by_hash(50, 5, 100);
        assert_ne!(p1.assignment(), p3.assignment());
    }

    #[test]
    fn round_robin_is_balanced() {
        let p = Partition::round_robin(10, 3);
        assert_eq!(p.loads(), vec![4, 3, 3]);
    }

    #[test]
    fn rvp_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = Partition::random_vertex(10_000, 10, &mut rng);
        for &l in &p.loads() {
            // Expect ~1000 per machine; Chernoff keeps us within 20%.
            assert!((800..1200).contains(&l), "load {l}");
        }
    }
}
