//! The random edge partition (REP) of footnote 3 and its conversion to RVP.
//!
//! Under REP each *edge* goes to a uniformly random machine. Footnote 3
//! notes one can transform between REP and RVP in `O~(m/k² + n/k)` rounds;
//! [`conversion_rounds`] measures the cost of the direct routing strategy
//! (every edge is sent to the home machines of its endpoints) under the
//! per-link bandwidth constraint, which realizes exactly that bound.

use crate::csr::CsrGraph;
use crate::ids::{Edge, MachineIdx};
use crate::partition::Partition;
use rand::Rng;

/// A random edge partition: each edge of the graph owned by one machine.
#[derive(Debug, Clone)]
pub struct EdgePartition {
    k: usize,
    edges: Vec<Edge>,
    owner: Vec<MachineIdx>,
}

impl EdgePartition {
    /// Assigns every edge of `g` to a uniformly random machine.
    pub fn random<R: Rng>(g: &CsrGraph, k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "need at least one machine");
        let edges: Vec<Edge> = g.edges().collect();
        let owner = edges.iter().map(|_| rng.gen_range(0..k)).collect();
        EdgePartition { k, edges, owner }
    }

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.k
    }

    /// All edges with their owners.
    pub fn iter(&self) -> impl Iterator<Item = (Edge, MachineIdx)> + '_ {
        self.edges.iter().copied().zip(self.owner.iter().copied())
    }

    /// Edges owned by machine `i`.
    pub fn owned_by(&self, i: MachineIdx) -> Vec<Edge> {
        self.iter()
            .filter(|&(_, o)| o == i)
            .map(|(e, _)| e)
            .collect()
    }

    /// Edges per machine.
    pub fn loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.k];
        for &o in &self.owner {
            loads[o] += 1;
        }
        loads
    }
}

/// Rounds to convert this REP instance into the RVP instance `target`
/// by direct routing: the owner of each edge sends it to the home machines
/// of both endpoints; each ordered machine pair forwards at most `B` bits
/// per round. An edge message carries two vertex ids (`2·ceil(log2 n)`
/// bits).
///
/// Matches footnote 3's `O~(m/k² + n/k)` (the `n/k` term is the per-machine
/// vertex announcement, included here as one id per hosted vertex).
pub fn conversion_rounds(rep: &EdgePartition, target: &Partition, bandwidth_bits: u64) -> u64 {
    assert_eq!(rep.k(), target.k(), "machine count mismatch");
    let k = rep.k();
    let id_bits = 64 - (target.n().max(2) as u64 - 1).leading_zeros() as u64;
    let edge_bits = 2 * id_bits;
    // Load on each ordered link (src, dst), in bits.
    let mut link_bits = vec![0u64; k * k];
    for (e, owner) in rep.iter() {
        for &endpoint in &[e.u, e.v] {
            let home = target.home(endpoint);
            if home != owner {
                link_bits[owner * k + home] += edge_bits;
            }
        }
    }
    link_bits
        .iter()
        .map(|&bits| bits.div_ceil(bandwidth_bits))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_edge_owned_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = gnp(60, 0.2, &mut rng);
        let rep = EdgePartition::random(&g, 5, &mut rng);
        let total: usize = rep.loads().iter().sum();
        assert_eq!(total, g.m());
        let union: usize = (0..5).map(|i| rep.owned_by(i).len()).sum();
        assert_eq!(union, g.m());
    }

    #[test]
    fn rep_loads_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = gnp(200, 0.3, &mut rng);
        let rep = EdgePartition::random(&g, 4, &mut rng);
        let loads = rep.loads();
        let ideal = g.m() as f64 / 4.0;
        for &l in &loads {
            assert!((l as f64) > 0.7 * ideal && (l as f64) < 1.3 * ideal);
        }
    }

    #[test]
    fn conversion_scales_inverse_quadratically_in_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = gnp(300, 0.3, &mut rng);
        let b = 64;
        let mut prev = u64::MAX;
        for k in [2usize, 4, 8, 16] {
            let rep = EdgePartition::random(&g, k, &mut rng);
            let rvp = Partition::random_vertex(g.n(), k, &mut rng);
            let rounds = conversion_rounds(&rep, &rvp, b);
            assert!(rounds <= prev, "rounds should not increase with k");
            prev = rounds;
        }
    }

    #[test]
    fn conversion_zero_when_colocated() {
        // Single machine: nothing crosses a link.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = gnp(30, 0.5, &mut rng);
        let rep = EdgePartition::random(&g, 1, &mut rng);
        let rvp = Partition::round_robin(g.n(), 1);
        assert_eq!(conversion_rounds(&rep, &rvp, 32), 0);
    }
}
