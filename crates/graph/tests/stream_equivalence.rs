//! Property tests for the streaming-ingestion contract
//! (`km_graph::stream`): a [`StreamingDistBuilder`] build is *exactly*
//! equal — every stored array, every offset, every weight — to the
//! in-memory [`DistGraphBuilder`] path over the same input, across
//! partition models, graph types, chunk sizes, and spill on/off; and the
//! chunked generator drivers replay the one-shot generators' RNG streams
//! bit-identically.

use km_graph::dist::DistGraphBuilder;
use km_graph::generators::{chung_lu, classic, gnm, gnp, power_law_weights};
use km_graph::stream::{
    ChungLuStream, CompleteWeightedStream, EdgeChunk, EdgeStream, GnmStream, GnpStream,
    SpillConfig, StreamingDistBuilder, VecStream,
};
use km_graph::{CsrGraph, DiGraph, DistGraph, Partition, Vertex, WeightedGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// One partition per model family, driven by a sampled selector.
fn make_partition(n: usize, k: usize, model: u8, seed: u64) -> Arc<Partition> {
    Arc::new(match model % 3 {
        0 => Partition::random_vertex(n, k, &mut ChaCha8Rng::seed_from_u64(seed)),
        1 => Partition::by_hash(n, k, seed),
        _ => Partition::round_robin(n, k),
    })
}

/// Builds via the streaming path, optionally through the disk-spill mode.
fn stream_build<S: EdgeStream>(
    part: &Arc<Partition>,
    stream: &mut S,
    spill: bool,
    mode: u8,
) -> DistGraph {
    let mut b = StreamingDistBuilder::new(part);
    if spill {
        b = b.spill(SpillConfig {
            dir: None,
            buffer_edges: 16, // tiny buffer to force real run-file traffic
        });
    }
    match mode {
        0 => b.undirected(stream).unwrap(),
        1 => b.weighted(stream).unwrap(),
        _ => b.directed(stream).unwrap(),
    }
}

fn drain(s: &mut impl EdgeStream) -> (Vec<(Vertex, Vertex)>, Vec<f64>) {
    let mut chunk = EdgeChunk::default();
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    while s.next_chunk(&mut chunk) {
        edges.extend_from_slice(chunk.edges());
        weights.extend_from_slice(chunk.weights());
    }
    (edges, weights)
}

proptest! {
    /// Arbitrary edge soup (duplicates, self-loops, both orientations):
    /// streaming == in-memory for undirected builds, across all partition
    /// models, chunk sizes, and spill settings.
    #[test]
    fn undirected_streaming_equals_in_memory(
        params in (2usize..40, 1usize..6, 0u8..6, 0u64..1000),
        raw_edges in collection::vec((0u32..40, 0u32..40), 0..120),
        chunk_size in 1usize..50,
    ) {
        let (n, k, model, seed) = params;
        let edges: Vec<(Vertex, Vertex)> =
            raw_edges.iter().map(|&(u, v)| (u % n as u32, v % n as u32)).collect();
        let part = make_partition(n, k, model, seed);
        let g = CsrGraph::from_edges(n, &edges);
        let want = DistGraphBuilder::new(&part).undirected(&g);
        for spill in [false, true] {
            let mut s = VecStream::new(n, edges.clone(), chunk_size);
            let got = stream_build(&part, &mut s, spill, 0);
            prop_assert_eq!(&got, &want, "spill={}", spill);
        }
    }

    /// Weighted builds: duplicate edges keep the minimum weight exactly
    /// like `WeightedGraph::from_weighted_edges`; weights arrays equal
    /// bit-for-bit.
    #[test]
    fn weighted_streaming_equals_in_memory(
        params in (2usize..30, 1usize..5, 0u8..6, 0u64..1000),
        raw in collection::vec((0u32..30, 0u32..30, 0.0f64..10.0), 0..90),
        chunk_size in 1usize..40,
    ) {
        let (n, k, model, seed) = params;
        let mut edges: Vec<(Vertex, Vertex)> = Vec::with_capacity(raw.len());
        let mut weights: Vec<f64> = Vec::with_capacity(raw.len());
        for &(u, v, w) in &raw {
            edges.push((u % n as u32, v % n as u32));
            weights.push(w);
        }
        // The one-shot constructor rejects self-loops? No — it keeps the
        // same drop-self-loop rule as CsrGraph, so messy input is fine.
        let part = make_partition(n, k, model, seed);
        let g = WeightedGraph::from_weighted_edges(n, &edges, &weights).unwrap();
        let want = DistGraphBuilder::new(&part).weighted(&g);
        for spill in [false, true] {
            let mut s = VecStream::weighted(n, edges.clone(), weights.clone(), chunk_size);
            let got = stream_build(&part, &mut s, spill, 1);
            prop_assert_eq!(&got, &want, "spill={}", spill);
        }
    }

    /// Directed builds: out-adjacency and the receiver-side
    /// `host_targets` index both match the in-memory path.
    #[test]
    fn directed_streaming_equals_in_memory(
        params in (2usize..30, 1usize..5, 0u8..6, 0u64..1000),
        raw_arcs in collection::vec((0u32..30, 0u32..30), 0..90),
        chunk_size in 1usize..40,
    ) {
        let (n, k, model, seed) = params;
        let arcs: Vec<(Vertex, Vertex)> =
            raw_arcs.iter().map(|&(u, v)| (u % n as u32, v % n as u32)).collect();
        let part = make_partition(n, k, model, seed);
        let g = DiGraph::from_arcs(n, &arcs);
        let want = DistGraphBuilder::new(&part).directed(&g);
        for spill in [false, true] {
            let mut s = VecStream::new(n, arcs.clone(), chunk_size);
            let got = stream_build(&part, &mut s, spill, 2);
            prop_assert_eq!(&got, &want, "spill={}", spill);
        }
    }

    /// `GnpStream` replays the exact one-shot RNG stream: the streamed
    /// edge sequence equals the one-shot graph's canonical edge order,
    /// for any chunk size, and a distributed build from the stream equals
    /// distributing the one-shot graph.
    #[test]
    fn gnp_stream_matches_one_shot(
        params in (2usize..60, 1usize..5, 0u8..6),
        p_millis in 0u32..=1000,
        seed in 0u64..1000,
        chunk_size in 1usize..80,
    ) {
        let (n, k, model) = params;
        let p = p_millis as f64 / 1000.0;
        let g = gnp(n, p, &mut ChaCha8Rng::seed_from_u64(seed));
        let mut s = GnpStream::<ChaCha8Rng>::new(n, p, seed, chunk_size);
        let (edges, _) = drain(&mut s);
        let want_seq: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
        prop_assert_eq!(&edges, &want_seq);
        let part = make_partition(n, k, model, seed ^ 0x9e37);
        let want = DistGraphBuilder::new(&part).undirected(&g);
        s.reset();
        let got = StreamingDistBuilder::new(&part).undirected(&mut s).unwrap();
        prop_assert_eq!(got, want);
    }

    /// `GnmStream` samples the identical edge *set* (the one-shot form's
    /// emission order is HashSet-iteration order, so sets — and the built
    /// graphs — are compared, not sequences).
    #[test]
    fn gnm_stream_matches_one_shot(
        params in (2usize..40, 1usize..5, 0u8..6),
        m_frac in 0u32..=100,
        seed in 0u64..1000,
        chunk_size in 1usize..60,
    ) {
        let (n, k, model) = params;
        let total = n * (n - 1) / 2;
        let m = (total as u64 * m_frac as u64 / 100) as usize;
        let g = gnm(n, m, &mut ChaCha8Rng::seed_from_u64(seed));
        let mut s = GnmStream::<ChaCha8Rng>::new(n, m, seed, chunk_size);
        let (edges, _) = drain(&mut s);
        prop_assert_eq!(edges.len(), m);
        prop_assert_eq!(&CsrGraph::from_edges(n, &edges), &g);
        let part = make_partition(n, k, model, seed ^ 0x51f);
        let want = DistGraphBuilder::new(&part).undirected(&g);
        s.reset();
        let got = StreamingDistBuilder::new(&part).undirected(&mut s).unwrap();
        prop_assert_eq!(got, want);
    }

    /// `ChungLuStream` replays the pair-scan `gen_bool` draws exactly,
    /// including skipped zero-weight rows.
    #[test]
    fn chung_lu_stream_matches_one_shot(
        n in 2usize..50,
        gamma_tenths in 15u32..40,
        seed in 0u64..1000,
        chunk_size in 1usize..60,
    ) {
        let mut w = power_law_weights(n, gamma_tenths as f64 / 10.0, 3.0);
        // Zero out a couple of rows to exercise the no-draw skip.
        w[seed as usize % n] = 0.0;
        w[(seed as usize / 7) % n] = 0.0;
        let g = chung_lu(&w, &mut ChaCha8Rng::seed_from_u64(seed));
        let mut s = ChungLuStream::<ChaCha8Rng>::new(w, seed, chunk_size);
        let (edges, _) = drain(&mut s);
        let want_seq: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
        prop_assert_eq!(edges, want_seq);
    }

    /// `CompleteWeightedStream` replays the one-shot `Uniform(0,1)` draw
    /// sequence; a weighted streaming build equals distributing the
    /// one-shot weighted graph (bit-identical weights).
    #[test]
    fn complete_weighted_stream_matches_one_shot(
        params in (2usize..25, 1usize..5, 0u8..6),
        seed in 0u64..1000,
        chunk_size in 1usize..40,
    ) {
        let (n, k, model) = params;
        let g = classic::complete_weighted_random(n, &mut ChaCha8Rng::seed_from_u64(seed))
            .unwrap();
        let part = make_partition(n, k, model, seed ^ 0xabcd);
        let want = DistGraphBuilder::new(&part).weighted(&g);
        for spill in [false, true] {
            let mut s = CompleteWeightedStream::<ChaCha8Rng>::new(n, seed, chunk_size);
            let got = stream_build(&part, &mut s, spill, 1);
            prop_assert_eq!(&got, &want, "spill={}", spill);
        }
    }

    /// Chunk size never changes the result: all chunkings of the same
    /// stream build the identical DistGraph.
    #[test]
    fn chunk_size_is_irrelevant(
        params in (2usize..30, 1usize..5, 0u8..6, 0u64..1000),
        raw_edges in collection::vec((0u32..30, 0u32..30), 1..60),
    ) {
        let (n, k, model, seed) = params;
        let edges: Vec<(Vertex, Vertex)> =
            raw_edges.iter().map(|&(u, v)| (u % n as u32, v % n as u32)).collect();
        let part = make_partition(n, k, model, seed);
        let mut s1 = VecStream::new(n, edges.clone(), 1);
        let first = StreamingDistBuilder::new(&part).undirected(&mut s1).unwrap();
        for chunk_size in [2, 7, edges.len().max(1), 1000] {
            let mut s = VecStream::new(n, edges.clone(), chunk_size);
            let got = StreamingDistBuilder::new(&part).undirected(&mut s).unwrap();
            prop_assert_eq!(&got, &first, "chunk_size={}", chunk_size);
        }
    }
}

/// CI memory-cap guard: build `G(n = 10⁶, E[deg] = 4)` through the
/// streaming path alone. The workflow runs this under `ulimit -v` sized
/// from the streaming path's measured footprint — far below what
/// materializing the one-shot edge list + global CSR at this scale
/// needs — so it fails if streaming ever regresses into building a
/// global graph. Ignored by default (seconds, not proptest-milliseconds);
/// run with `cargo test -p km-graph --test stream_equivalence -- --ignored`.
#[test]
#[ignore = "CI memory-cap guard; run explicitly with -- --ignored"]
fn streaming_smoke_one_million() {
    let n = 1_000_000usize;
    let p = 4.0 / (n - 1) as f64;
    let part = Arc::new(Partition::by_hash(n, 8, 5));
    let mut s = GnpStream::<ChaCha8Rng>::new(n, p, 42, 1 << 16);
    let d = StreamingDistBuilder::new(&part)
        .undirected(&mut s)
        .expect("generator edges are in range");
    let m = d.edge_loads().iter().sum::<usize>() / 2;
    // E[m] = C(n,2)·p ≈ 2·10⁶; 5σ is ~±7k, so this window is generous.
    assert!(
        (1_950_000..=2_050_000).contains(&m),
        "m = {m} far from expected 2e6"
    );
    assert_eq!(d.k(), 8);
}
