//! Property tests for the `km_graph::dist` layer: the union of all
//! `LocalGraph`s must reconstruct the global graph exactly — every edge
//! endpoint conserved, nothing duplicated — across partition models and
//! undirected / directed / weighted inputs.

use km_graph::dist::{DistGraph, DistGraphBuilder, LocalGraph};
use km_graph::partition::PartitionModel;
use km_graph::{CsrGraph, DiGraph, Partition, Vertex, WeightedGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const N: usize = 30;

/// Builds a partition of the requested model from a test-chosen selector.
fn partition(model: u8, n: usize, k: usize, seed: u64) -> Arc<Partition> {
    let part = match model % 3 {
        0 => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Partition::random_vertex(n, k, &mut rng)
        }
        1 => Partition::by_hash(n, k, seed),
        _ => Partition::round_robin(n, k),
    };
    Arc::new(part)
}

/// Every hosted vertex appears on exactly one machine, in partition order,
/// and the recorded edge loads match the stored endpoints.
fn check_shell(d: &DistGraph, part: &Partition) {
    let mut hosted_total = 0;
    for (i, l) in d.locals().iter().enumerate() {
        assert_eq!(l.machine(), i);
        assert_eq!(l.vertices(), part.members(i));
        assert_eq!(l.hosted(), part.members(i).len());
        assert_eq!(l.edge_endpoints(), d.edge_loads()[i]);
        for (j, &v) in l.vertices().iter().enumerate() {
            assert_eq!(l.local(v), Some(j));
        }
        hosted_total += l.hosted();
    }
    assert_eq!(hosted_total, part.n());
}

/// All `(v, neighbor)` pairs stored across machines, in sorted order.
fn union_pairs(d: &DistGraph) -> Vec<(Vertex, Vertex)> {
    let mut pairs: Vec<(Vertex, Vertex)> = d
        .locals()
        .iter()
        .flat_map(|l| l.iter().flat_map(|(v, ns)| ns.iter().map(move |&w| (v, w))))
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    /// Undirected: the union of local adjacency equals the global CSR
    /// exactly (each endpoint once — conservation and no duplication).
    #[test]
    fn undirected_reconstructs_exactly(
        edges in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..150),
        k in 1usize..9,
        model in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let g = CsrGraph::from_edges(N, &edges);
        let part = partition(model, N, k, seed);
        let d = DistGraphBuilder::new(&part).undirected(&g);
        check_shell(&d, &part);
        let mut want: Vec<(Vertex, Vertex)> = g
            .vertices()
            .flat_map(|v| g.neighbors(v).iter().map(move |&w| (v, w)))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(union_pairs(&d), want);
        // Balance stats agree with the partition-level diagnostics.
        let want_e = km_graph::partition::balance::edge_balance(&g, &part).unwrap();
        prop_assert_eq!(d.edge_balance(), want_e);
    }

    /// Directed: the union of local out-adjacency equals the arc set, and
    /// `host_targets` is exactly the receiver side of every arc.
    #[test]
    fn directed_reconstructs_exactly(
        arcs in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..150),
        k in 1usize..9,
        model in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let g = DiGraph::from_arcs(N, &arcs);
        let part = partition(model, N, k, seed);
        let d = DistGraphBuilder::new(&part).directed(&g);
        check_shell(&d, &part);
        let mut want: Vec<(Vertex, Vertex)> = g.arcs().collect();
        want.sort_unstable();
        prop_assert_eq!(union_pairs(&d), want);
        // host_targets: for every arc u -> v, v's home machine must list
        // v's local index under source u...
        let mut host_pairs = 0usize;
        for (u, v) in g.arcs() {
            let l = &d.locals()[part.home(v)];
            let j = l.local(v).unwrap() as u32;
            let targets = l.host_targets(u).expect("arc receiver must be indexed");
            prop_assert!(targets.contains(&j), "arc ({u},{v}) missing from host_targets");
        }
        // ...and nothing else is listed (total entries == arc count).
        for l in d.locals() {
            for v in 0..N as Vertex {
                if let Some(ts) = l.host_targets(v) {
                    host_pairs += ts.len();
                    // Each listed target really is an out-neighbor of v.
                    for &j in ts {
                        let w = l.vertex(j as usize);
                        prop_assert!(g.has_arc(v, w));
                    }
                }
            }
        }
        prop_assert_eq!(host_pairs, g.m());
    }

    /// Weighted: adjacency and weights reconstruct the global weighted
    /// graph exactly.
    #[test]
    fn weighted_reconstructs_exactly(
        edges in proptest::collection::vec(((0u32..N as u32, 0u32..N as u32), 0.0f64..10.0), 0..120),
        k in 1usize..9,
        model in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let (pairs, ws): (Vec<_>, Vec<_>) = edges.into_iter().unzip();
        let g = WeightedGraph::from_weighted_edges(N, &pairs, &ws).unwrap();
        let part = partition(model, N, k, seed);
        let d = DistGraphBuilder::new(&part).weighted(&g);
        check_shell(&d, &part);
        let mut got: Vec<(Vertex, Vertex, f64)> = d
            .locals()
            .iter()
            .flat_map(|l: &LocalGraph| {
                l.vertices().iter().enumerate().flat_map(move |(j, &v)| {
                    l.neighbors(j)
                        .iter()
                        .zip(l.neighbor_weights(j))
                        .map(move |(&w, &wt)| (v, w, wt))
                })
            })
            .collect();
        got.sort_unstable_by_key(|a| (a.0, a.1));
        let mut want: Vec<(Vertex, Vertex, f64)> = (0..g.n() as Vertex)
            .flat_map(|v| {
                g.neighbors(v)
                    .iter()
                    .zip(g.neighbor_weights(v))
                    .map(move |(&w, &wt)| (v, w, wt))
            })
            .collect();
        want.sort_unstable_by_key(|a| (a.0, a.1));
        prop_assert_eq!(got, want);
    }
}

#[test]
fn partition_models_cover_all_three() {
    // The selector really exercises all three models.
    assert_eq!(partition(0, 10, 2, 1).model(), PartitionModel::RandomVertex);
    assert_eq!(partition(1, 10, 2, 1).model(), PartitionModel::Hashed);
    assert_eq!(partition(2, 10, 2, 1).model(), PartitionModel::RoundRobin);
}
