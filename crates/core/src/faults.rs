//! Deterministic, seeded fault injection for the distributed engine.
//!
//! A [`FaultPlan`] describes an adversary acting at the *frame
//! boundary* of [`crate::DistributedEngine`]: every physical frame
//! transmission on a directed link may be dropped, duplicated,
//! bit-corrupted, or delayed, and one machine may crash at the start
//! of a chosen round. Since the engine batches each (link, round)'s
//! messages into one frame, the rates are per *batch* frame — one
//! dropped fate now takes out every message the batch carried, and one
//! retransmission replays them all — so a given rate hits fewer,
//! bigger targets than under the old one-frame-per-message wire.
//! Decisions are pure functions of `(seed, src, dst, attempt)` — the
//! same plan against the same schedule of physical sends injects the
//! same faults, so chaos tests are replayable.
//!
//! The plan deliberately lives *outside* [`crate::NetConfig`]: faults
//! perturb the physical wire, not the logical protocol, and the
//! engine-equivalence contract (`RunOutcome` bit-identical across
//! engines, config echo included) must keep holding while faults are
//! active. Plumb a plan through [`crate::Runner::faults`] or the
//! [`FAULTS_ENV`] environment knob.
//!
//! What the recovery machinery guarantees under a plan with no crash:
//! drop/duplicate/corrupt/delay at any rate changes only the
//! [`crate::WireReport`] retransmission counters, never the logical
//! [`crate::Metrics`] or protocol output. A crash yields a typed
//! [`crate::EngineError::MachineLost`] within the coordinator's
//! barrier timeout — never a hang and never a poisoned panic.

use crate::error::EngineError;
use crate::rng::splitmix64;

/// Environment variable holding a fault spec (see
/// [`FaultPlan::parse`]), read once per [`crate::Runner`] run. Unset or
/// empty means no injected faults.
pub const FAULTS_ENV: &str = "KM_FAULTS";

/// Crash one machine at the start of one round: the worker stops
/// participating (no sends, no barrier reports) exactly when
/// `Cmd::Round { round }` arrives, emulating a process that died
/// between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The machine that dies.
    pub machine: usize,
    /// The round (0-based iteration index) at whose start it dies.
    pub round: u64,
}

/// What the adversary does to one physical frame transmission.
/// Produced by [`FaultPlan::fate`]; the fields are independent draws,
/// with drop taking precedence (a dropped frame's duplicate/corrupt/
/// delay draws are moot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameFate {
    /// The frame never reaches the channel.
    pub drop: bool,
    /// An identical second copy is sent right behind the first.
    pub duplicate: bool,
    /// The frame is held back and sent on a later pump of the link.
    pub delay: bool,
    /// Flip this bit index (into the frame's bytes, LSB-first) in the
    /// transmitted copy.
    pub corrupt_bit: Option<u64>,
}

impl FrameFate {
    /// A fate that leaves the frame untouched.
    pub fn clean() -> Self {
        Self::default()
    }
}

/// A seeded description of wire faults to inject. All probabilities
/// are per physical transmission and lie in `[0, 1]`; the default plan
/// injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the decision hash chains.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is sent twice.
    pub duplicate: f64,
    /// Probability one bit of a frame is flipped in transit.
    pub corrupt: f64,
    /// Probability a frame is delayed to a later pump.
    pub delay: f64,
    /// Crash one machine at one round.
    pub crash: Option<CrashSpec>,
    /// Coordinator round-barrier timeout in milliseconds; `0` means
    /// the engine default. A machine silent past this becomes
    /// [`EngineError::MachineLost`]. Crash tests set it low so the
    /// typed failure surfaces in milliseconds, not seconds.
    pub barrier_timeout_ms: u64,
}

/// Domain-separation constants so each decision draws from its own
/// hash stream (arbitrary odd constants).
const DOM_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const DOM_DUP: u64 = 0xC2B2_AE3D_27D4_EB4F;
const DOM_CORRUPT: u64 = 0x1656_67B1_9E37_79F9;
const DOM_DELAY: u64 = 0x2545_F491_4F6C_DD1D;

/// `true` with probability `p`, judged from hash `h`.
fn chance(h: u64, p: f64) -> bool {
    // 53 uniform bits → [0, 1); strict `<` so p = 0 never fires and
    // p = 1 always does.
    p > 0.0 && ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

impl FaultPlan {
    /// A plan seeded for the decision streams but injecting nothing
    /// until rates are set.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Does this plan ever touch a frame? The engine skips the
    /// retention/fault machinery entirely when not (the zero-overhead
    /// fast path).
    pub fn any(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.corrupt > 0.0
            || self.delay > 0.0
            || self.crash.is_some()
    }

    /// Does `machine` crash at the start of `round` under this plan?
    pub fn crashes(&self, machine: usize, round: u64) -> bool {
        self.crash == Some(CrashSpec { machine, round })
    }

    fn key(&self, domain: u64, src: usize, dst: usize, attempt: u64) -> u64 {
        let mut h = splitmix64(self.seed ^ domain);
        h = splitmix64(h ^ src as u64);
        h = splitmix64(h ^ dst as u64);
        splitmix64(h ^ attempt)
    }

    /// The adversary's decision for the `attempt`-th physical frame
    /// transmission on the directed link `src → dst` (a per-link
    /// counter the engine increments for every frame it pushes,
    /// including retransmissions and NACKs). `frame_bits` sizes the
    /// corruption draw. Pure: same plan + same key → same fate.
    pub fn fate(&self, src: usize, dst: usize, attempt: u64, frame_bits: u64) -> FrameFate {
        let corrupt_h = self.key(DOM_CORRUPT, src, dst, attempt);
        FrameFate {
            drop: chance(self.key(DOM_DROP, src, dst, attempt), self.drop),
            duplicate: chance(self.key(DOM_DUP, src, dst, attempt), self.duplicate),
            delay: chance(self.key(DOM_DELAY, src, dst, attempt), self.delay),
            corrupt_bit: (chance(corrupt_h, self.corrupt) && frame_bits > 0)
                .then(|| splitmix64(corrupt_h) % frame_bits),
        }
    }

    /// Parses a `KM_FAULTS`-style spec: comma-separated `key=value`
    /// tokens, e.g. `drop=0.05,dup=0.02,corrupt=0.01,seed=7,crash=3@12`.
    ///
    /// | key       | value                                  |
    /// |-----------|----------------------------------------|
    /// | `seed`    | `u64`                                  |
    /// | `drop`    | probability in `[0, 1]`                |
    /// | `dup`     | probability in `[0, 1]`                |
    /// | `corrupt` | probability in `[0, 1]`                |
    /// | `delay`   | probability in `[0, 1]`                |
    /// | `crash`   | `<machine>@<round>` (both integers)    |
    /// | `timeout` | barrier timeout in ms (`u64`, 0 = default) |
    ///
    /// Whitespace around tokens is ignored; an empty spec is the
    /// no-fault plan.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] naming the offending token for
    /// any unknown key, unparsable value, or out-of-range probability.
    pub fn parse(spec: &str) -> Result<Self, EngineError> {
        fn bad(token: &str, why: &str) -> EngineError {
            EngineError::InvalidConfig {
                reason: format!("{FAULTS_ENV}: bad token {token:?}: {why}"),
            }
        }
        fn prob(token: &str, value: &str) -> Result<f64, EngineError> {
            let p: f64 = value.parse().map_err(|_| bad(token, "expected a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(bad(token, "probability must be in [0, 1]"));
            }
            Ok(p)
        }
        let mut plan = Self::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                if spec.trim().is_empty() {
                    continue; // wholly empty spec = no faults
                }
                return Err(bad(token, "empty token"));
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| bad(token, "expected key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(token, "expected an unsigned integer seed"))?;
                }
                "timeout" => {
                    plan.barrier_timeout_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(token, "expected a timeout in milliseconds"))?;
                }
                "drop" => plan.drop = prob(token, value.trim())?,
                "dup" => plan.duplicate = prob(token, value.trim())?,
                "corrupt" => plan.corrupt = prob(token, value.trim())?,
                "delay" => plan.delay = prob(token, value.trim())?,
                "crash" => {
                    let (machine, round) = value
                        .trim()
                        .split_once('@')
                        .ok_or_else(|| bad(token, "expected <machine>@<round>"))?;
                    plan.crash = Some(CrashSpec {
                        machine: machine
                            .parse()
                            .map_err(|_| bad(token, "machine must be an unsigned integer"))?,
                        round: round
                            .parse()
                            .map_err(|_| bad(token, "round must be an unsigned integer"))?,
                    });
                }
                _ => {
                    return Err(bad(
                        token,
                        "unknown key (expected drop|dup|corrupt|delay|seed|crash|timeout)",
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Reads [`FAULTS_ENV`]. Unset or empty → `Ok(None)`.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] when the variable is set but
    /// malformed, exactly as [`FaultPlan::parse`] reports it.
    pub fn from_env() -> Result<Option<Self>, EngineError> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.any());
        for attempt in 0..200 {
            assert_eq!(plan.fate(0, 1, attempt, 100), FrameFate::clean());
        }
        assert!(!plan.crashes(0, 0));
    }

    #[test]
    fn fates_are_deterministic_and_link_local() {
        let plan = FaultPlan {
            seed: 42,
            drop: 0.3,
            duplicate: 0.3,
            corrupt: 0.3,
            delay: 0.3,
            ..FaultPlan::default()
        };
        let a: Vec<_> = (0..100).map(|i| plan.fate(2, 5, i, 128)).collect();
        let b: Vec<_> = (0..100).map(|i| plan.fate(2, 5, i, 128)).collect();
        assert_eq!(a, b, "same key, same fate");
        let c: Vec<_> = (0..100).map(|i| plan.fate(5, 2, i, 128)).collect();
        assert_ne!(a, c, "direction is part of the key");
        assert!(a.iter().any(|f| f.drop), "p=0.3 over 100 draws must fire");
        assert!(a.iter().any(|f| !f.drop));
        assert!(a.iter().any(|f| f.corrupt_bit.is_some()));
        assert!(a.iter().flat_map(|f| f.corrupt_bit).all(|b| b < 128));
    }

    #[test]
    fn extreme_rates_always_and_never_fire() {
        let always = FaultPlan {
            drop: 1.0,
            ..FaultPlan::seeded(9)
        };
        let never = FaultPlan::seeded(9);
        for i in 0..50 {
            assert!(always.fate(0, 1, i, 64).drop);
            assert!(!never.fate(0, 1, i, 64).drop);
        }
    }

    #[test]
    fn crash_matches_exactly_one_machine_round() {
        let plan = FaultPlan {
            crash: Some(CrashSpec {
                machine: 3,
                round: 7,
            }),
            ..FaultPlan::default()
        };
        assert!(plan.any());
        assert!(plan.crashes(3, 7));
        assert!(!plan.crashes(3, 8));
        assert!(!plan.crashes(2, 7));
    }

    #[test]
    fn parse_roundtrips_a_full_spec() {
        let plan = FaultPlan::parse(
            "drop=0.1, dup=0.05,corrupt=0.01,delay=0.2,seed=42,crash=3@17,timeout=250",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop, 0.1);
        assert_eq!(plan.duplicate, 0.05);
        assert_eq!(plan.corrupt, 0.01);
        assert_eq!(plan.delay, 0.2);
        assert_eq!(
            plan.crash,
            Some(CrashSpec {
                machine: 3,
                round: 17
            })
        );
        assert_eq!(plan.barrier_timeout_ms, 250);
        assert!(plan.any());
    }

    #[test]
    fn parse_empty_spec_is_no_faults() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse("   ").unwrap(), FaultPlan::default());
    }

    /// One malformed spec per failure mode; every error must name the
    /// offending token (the satellite contract mirroring the
    /// `KM_ENGINE` fix).
    #[test]
    fn parse_errors_name_the_bad_token() {
        for (spec, needle) in [
            ("dorp=0.1", "dorp=0.1"),
            ("drop", "drop"),
            ("drop=abc", "drop=abc"),
            ("drop=1.5", "drop=1.5"),
            ("drop=-0.1", "drop=-0.1"),
            ("drop=NaN", "drop=NaN"),
            ("seed=x", "seed=x"),
            ("seed=-1", "seed=-1"),
            ("crash=3", "crash=3"),
            ("crash=a@2", "crash=a@2"),
            ("crash=3@b", "crash=3@b"),
            ("timeout=fast", "timeout=fast"),
            ("drop=0.1,,dup=0.1", "empty token"),
        ] {
            match FaultPlan::parse(spec) {
                Err(EngineError::InvalidConfig { reason }) => assert!(
                    reason.contains(needle) && reason.contains(FAULTS_ENV),
                    "error for {spec:?} must name the bad token, got: {reason}"
                ),
                other => panic!("spec {spec:?} must fail with InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn from_env_is_exercised_via_runner() {
        // `from_env` reads process-global state, so its behavior under a
        // set variable is covered by the runner's env tests (which
        // serialize env mutation); here we only pin the unset path.
        if std::env::var(FAULTS_ENV).is_err() {
            assert_eq!(FaultPlan::from_env(), Ok(None));
        }
    }
}
