//! Routing toolbox: Lemma 13, proxies, and two-hop (Valiant) routing.
//!
//! **Lemma 13** (the workhorse of both upper bounds): if every machine is
//! the source (or destination) of `O(x)` messages whose destinations
//! (sources) are i.i.d. uniform, then *direct* routing over the complete
//! machine network delivers everything in `O((x log x)/k)` rounds w.h.p.
//!
//! When destinations are *not* uniform (e.g. all of a high-degree vertex's
//! traffic aims at its home machine), the paper's algorithms first
//! randomize: **randomized proxy computation** (Section 1.3) assigns each
//! object (edge, vertex, token batch) a uniformly random proxy machine
//! that does the work on its behalf. [`proxy_of`] provides the shared
//! deterministic proxy map; [`Routed`] implements the two-hop pattern
//! (source → random relay → destination) for raw traffic.

use crate::codec::{BitReader, BitWriter, CodecError, WireCodec};
use crate::message::{Envelope, Outbox, WireSize};
use crate::rng::{keyed_hash, splitmix64};
use crate::MachineIdx;
use rand::Rng;

/// Upper-bound shape of Lemma 13: `(x log₂ x)/k` rounds (a constant-free
/// reference curve for the L13 experiment).
pub fn lemma13_bound(x: f64, k: usize) -> f64 {
    if x <= 1.0 {
        return 0.0;
    }
    x * x.log2() / k as f64
}

/// The deterministic proxy machine of an object identified by `key`,
/// under the shared public random seed: uniform over machines, and every
/// machine computes the same answer locally — no coordination needed.
#[inline]
pub fn proxy_of(shared_seed: u64, key: u64, k: usize) -> MachineIdx {
    (keyed_hash(shared_seed, key) % k as u64) as MachineIdx
}

/// [`proxy_of`] re-salted per protocol phase: proxy duty for long-lived
/// objects (component labels, vertex groups) is reshuffled every phase so
/// no machine stays the proxy of a heavy object for the whole run. Used
/// by the sketch-connectivity label service (`km-mst`).
#[inline]
pub fn phase_proxy_of(shared_seed: u64, phase: u64, key: u64, k: usize) -> MachineIdx {
    proxy_of(
        splitmix64(shared_seed ^ phase.wrapping_mul(0xA24B_AED4_963E_E407)),
        key,
        k,
    )
}

/// Flush-barrier bookkeeping for multi-stage phase protocols.
///
/// The pattern (used by `BoruvkaMst` and the sketch-connectivity label
/// service in `km-mst`): on entering a stage, a machine sends the stage's
/// payload messages and then **broadcasts a flush** carrying small
/// counters. Links are FIFO, so once a machine has collected `k − 1`
/// flushes of the current parity, every payload message of the stage has
/// been delivered to it — a full barrier without global coordination.
/// Messages of the *next* stage can arrive one stage early (the sender
/// advanced first); callers park them and replay at the flip. Drift can
/// never exceed one stage, because advancing twice would require the
/// slow machine's own flush in between.
///
/// `PhaseBarrier` tracks the parity, the flush count, and the
/// element-wise sum of the flush counters; [`PhaseBarrier::ready`] says
/// when the barrier is complete and [`PhaseBarrier::flip`] returns the
/// aggregated counters and re-arms for the next stage.
#[derive(Debug, Clone)]
pub struct PhaseBarrier<const C: usize> {
    parity: bool,
    flushes: usize,
    agg: [u64; C],
}

impl<const C: usize> Default for PhaseBarrier<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const C: usize> PhaseBarrier<C> {
    /// A fresh barrier at parity `false` with zeroed counters.
    pub fn new() -> Self {
        PhaseBarrier {
            parity: false,
            flushes: 0,
            agg: [0; C],
        }
    }

    /// The current stage parity; outgoing messages (including flushes)
    /// must be tagged with it, and an incoming message whose parity
    /// differs belongs to the next stage (park it, replay after `flip`).
    #[inline]
    pub fn parity(&self) -> bool {
        self.parity
    }

    /// Absorbs one received flush carrying `counts`.
    pub fn absorb(&mut self, counts: [u64; C]) {
        self.flushes += 1;
        for (a, c) in self.agg.iter_mut().zip(counts) {
            *a += c;
        }
    }

    /// Whether all `k − 1` peer flushes of the current stage are in.
    #[inline]
    pub fn ready(&self, k: usize) -> bool {
        self.flushes == k - 1
    }

    /// Completes the stage: returns the aggregated peer counters and
    /// re-arms the barrier with flipped parity.
    pub fn flip(&mut self) -> [u64; C] {
        let agg = std::mem::replace(&mut self.agg, [0; C]);
        self.flushes = 0;
        self.parity = !self.parity;
        agg
    }
}

/// A message travelling via at most one random relay (Valiant routing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routed<M> {
    /// The machine that originally sent the message.
    pub origin: MachineIdx,
    /// The final destination.
    pub target: MachineIdx,
    /// The payload.
    pub inner: M,
}

impl<M: WireSize> WireSize for Routed<M> {
    fn bits(&self) -> u64 {
        // Two machine indices (16 bits each supports k ≤ 65536) + payload.
        32 + self.inner.bits()
    }
}

impl<M: WireCodec> WireCodec for Routed<M> {
    fn encode(&self, w: &mut BitWriter) {
        w.put(self.origin as u64, 16);
        w.put(self.target as u64, 16);
        self.inner.encode(w);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let origin = r.take(16)? as MachineIdx;
        let target = r.take(16)? as MachineIdx;
        let inner = M::decode(r)?;
        Ok(Routed {
            origin,
            target,
            inner,
        })
    }
}

/// Sends `msg` to `target` via a uniformly random relay machine. Use when
/// the *destination* distribution is adversarial; the relay hop makes both
/// legs uniform so Lemma 13 applies to each.
pub fn send_via_random_relay<M, R: Rng>(
    out: &mut Outbox<Routed<M>>,
    rng: &mut R,
    k: usize,
    origin: MachineIdx,
    target: MachineIdx,
    inner: M,
) {
    let relay = rng.gen_range(0..k);
    out.send(
        relay,
        Routed {
            origin,
            target,
            inner,
        },
    );
}

/// One round of relay processing: forwards messages not yet at their
/// target and returns those that have arrived (as `(origin, payload)`).
///
/// Consumes the inbox — forwarded envelopes and arrived payloads are
/// *moved*, never cloned, so relaying large payloads costs nothing
/// beyond the send itself (hence no `M: Clone` bound). The inbox is left
/// empty; capture `inbox.is_empty()` beforehand if a protocol's
/// termination logic needs to know whether mail arrived this round.
pub fn relay_round<M>(
    me: MachineIdx,
    inbox: &mut Vec<Envelope<Routed<M>>>,
    out: &mut Outbox<Routed<M>>,
) -> Vec<(MachineIdx, M)> {
    let mut arrived = Vec::new();
    for env in inbox.drain(..) {
        if env.msg.target == me {
            arrived.push((env.msg.origin, env.msg.inner));
        } else {
            out.send(env.msg.target, env.msg);
        }
    }
    arrived
}

/// Test/benchmark protocol for Lemma 13: every machine sends `x` unit
/// messages to uniformly random destinations in round 0 (direct routing);
/// the run's round count is the empirical left side of the lemma.
#[derive(Debug)]
pub struct UniformScatter {
    /// Messages each machine originates.
    pub x: usize,
    /// Messages received (for conservation checks).
    pub received: usize,
}

impl UniformScatter {
    /// A scatter source of `x` messages.
    pub fn new(x: usize) -> Self {
        UniformScatter { x, received: 0 }
    }
}

/// A fixed-size scatter payload standing in for an `O(log n)`-bit token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterToken;

impl WireSize for ScatterToken {
    fn bits(&self) -> u64 {
        16
    }
}

impl WireCodec for ScatterToken {
    fn encode(&self, w: &mut BitWriter) {
        w.put(0, 16); // the token carries no content, only its 16-bit cost
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        r.take(16)?;
        Ok(ScatterToken)
    }
}

impl crate::protocol::Protocol for UniformScatter {
    type Msg = ScatterToken;

    fn round(
        &mut self,
        ctx: &mut crate::protocol::RoundCtx<'_>,
        inbox: &mut Vec<Envelope<ScatterToken>>,
        out: &mut Outbox<ScatterToken>,
    ) -> crate::protocol::Status {
        self.received += inbox.len();
        if ctx.round == 0 {
            for _ in 0..self.x {
                let dst = ctx.rng.gen_range(0..ctx.k);
                if dst == ctx.me {
                    self.received += 1; // local delivery, free
                } else {
                    out.send(dst, ScatterToken);
                }
            }
            return crate::protocol::Status::Active;
        }
        crate::protocol::Status::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::protocol::{Protocol, RoundCtx, Status};
    use crate::runner::Runner;

    #[test]
    fn proxy_is_deterministic_and_uniform() {
        let k = 8;
        let mut counts = vec![0usize; k];
        for key in 0..8000u64 {
            let p = proxy_of(42, key, k);
            assert_eq!(p, proxy_of(42, key, k));
            counts[p] += 1;
        }
        for &c in &counts {
            assert!((c as f64) > 700.0 && (c as f64) < 1300.0, "count {c}");
        }
    }

    #[test]
    fn phase_proxy_reshuffles_between_phases() {
        let k = 16;
        // Deterministic per (seed, phase, key)…
        assert_eq!(phase_proxy_of(7, 3, 42, k), phase_proxy_of(7, 3, 42, k));
        // …but the map differs between phases for at least some keys.
        let moved = (0..1000u64)
            .filter(|&key| phase_proxy_of(7, 0, key, k) != phase_proxy_of(7, 1, key, k))
            .count();
        assert!(moved > 500, "only {moved}/1000 keys moved");
        // Still roughly uniform within a phase.
        let mut counts = vec![0usize; k];
        for key in 0..8000u64 {
            counts[phase_proxy_of(7, 5, key, k)] += 1;
        }
        for &c in &counts {
            assert!(c > 300 && c < 700, "count {c}");
        }
    }

    #[test]
    fn phase_barrier_aggregates_and_flips() {
        let mut b: PhaseBarrier<2> = PhaseBarrier::new();
        assert!(!b.parity());
        assert!(b.ready(1), "k = 1 needs no peer flushes");
        b.absorb([3, 1]);
        assert!(!b.ready(3));
        b.absorb([4, 0]);
        assert!(b.ready(3));
        assert_eq!(b.flip(), [7, 1]);
        // Re-armed: counters cleared, parity flipped.
        assert!(b.parity());
        assert!(!b.ready(3));
        b.absorb([1, 1]);
        b.absorb([1, 1]);
        assert_eq!(b.flip(), [2, 2]);
        assert!(!b.parity());
    }

    #[test]
    fn lemma13_bound_shape() {
        assert_eq!(lemma13_bound(1.0, 10), 0.0);
        assert!(lemma13_bound(1024.0, 16) > lemma13_bound(1024.0, 32));
        assert!((lemma13_bound(1024.0, 16) - 1024.0 * 10.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn scatter_conserves_messages() {
        let k = 6;
        let x = 50;
        let cfg = NetConfig::with_bandwidth(k, 64, 11);
        let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(x)).collect();
        let report = Runner::new(cfg).run(machines).unwrap();
        let total: usize = report.machines.iter().map(|m| m.received).sum();
        assert_eq!(total, k * x);
    }

    #[test]
    fn scatter_rounds_scale_with_x_over_k() {
        // Fixing k and doubling x should roughly double the rounds.
        let k = 8;
        let run = |x: usize| {
            let cfg = NetConfig::with_bandwidth(k, 16, 5); // 1 token/link/round
            let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(x)).collect();
            Runner::new(cfg).run(machines).unwrap().metrics.rounds
        };
        let r1 = run(200);
        let r2 = run(400);
        assert!(r2 as f64 > 1.5 * r1 as f64, "r1={r1} r2={r2}");
        assert!((r2 as f64) < 3.0 * r1 as f64, "r1={r1} r2={r2}");
    }

    /// Two-hop routing: all machines target machine 0, but the relay hop
    /// spreads the load; arrivals carry the true origin.
    struct Funnel {
        x: usize,
        arrived: Vec<(MachineIdx, u32)>,
    }

    impl Protocol for Funnel {
        type Msg = Routed<u32>;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Envelope<Routed<u32>>>,
            out: &mut Outbox<Routed<u32>>,
        ) -> Status {
            let had_mail = !inbox.is_empty();
            let mut got = relay_round(ctx.me, inbox, out);
            self.arrived.append(&mut got);
            if ctx.round == 0 && ctx.me != 0 {
                for i in 0..self.x {
                    send_via_random_relay(out, ctx.rng, ctx.k, ctx.me, 0, i as u32);
                }
                return Status::Active;
            }
            if !had_mail && ctx.round > 0 {
                Status::Done
            } else {
                Status::Active
            }
        }
    }

    #[test]
    fn two_hop_routing_delivers_everything_with_origins() {
        let k = 5;
        let x = 20;
        let cfg = NetConfig::with_bandwidth(k, 1024, 3);
        let machines: Vec<Funnel> = (0..k)
            .map(|_| Funnel {
                x,
                arrived: Vec::new(),
            })
            .collect();
        let report = Runner::new(cfg).run(machines).unwrap();
        let arrived = &report.machines[0].arrived;
        assert_eq!(arrived.len(), (k - 1) * x);
        for src in 1..k {
            assert_eq!(arrived.iter().filter(|(o, _)| *o == src).count(), x);
        }
        // Nothing leaks to other machines.
        for m in &report.machines[1..] {
            assert!(m.arrived.is_empty());
        }
    }

    proptest::proptest! {
        #[test]
        fn routed_scatter_tokens_roundtrip_the_wire(
            origin in 0usize..1 << 16,
            target in 0usize..1 << 16,
            payload in 0u64..=u64::MAX,
        ) {
            crate::assert_roundtrip(&Routed { origin, target, inner: ScatterToken });
            crate::assert_roundtrip(&Routed { origin, target, inner: payload });
            crate::assert_roundtrip(&ScatterToken);
        }
    }
}
