//! Routing toolbox: Lemma 13, proxies, and two-hop (Valiant) routing.
//!
//! **Lemma 13** (the workhorse of both upper bounds): if every machine is
//! the source (or destination) of `O(x)` messages whose destinations
//! (sources) are i.i.d. uniform, then *direct* routing over the complete
//! machine network delivers everything in `O((x log x)/k)` rounds w.h.p.
//!
//! When destinations are *not* uniform (e.g. all of a high-degree vertex's
//! traffic aims at its home machine), the paper's algorithms first
//! randomize: **randomized proxy computation** (Section 1.3) assigns each
//! object (edge, vertex, token batch) a uniformly random proxy machine
//! that does the work on its behalf. [`proxy_of`] provides the shared
//! deterministic proxy map; [`Routed`] implements the two-hop pattern
//! (source → random relay → destination) for raw traffic.

use crate::message::{Envelope, Outbox, WireSize};
use crate::rng::keyed_hash;
use crate::MachineIdx;
use rand::Rng;

/// Upper-bound shape of Lemma 13: `(x log₂ x)/k` rounds (a constant-free
/// reference curve for the L13 experiment).
pub fn lemma13_bound(x: f64, k: usize) -> f64 {
    if x <= 1.0 {
        return 0.0;
    }
    x * x.log2() / k as f64
}

/// The deterministic proxy machine of an object identified by `key`,
/// under the shared public random seed: uniform over machines, and every
/// machine computes the same answer locally — no coordination needed.
#[inline]
pub fn proxy_of(shared_seed: u64, key: u64, k: usize) -> MachineIdx {
    (keyed_hash(shared_seed, key) % k as u64) as MachineIdx
}

/// A message travelling via at most one random relay (Valiant routing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routed<M> {
    /// The machine that originally sent the message.
    pub origin: MachineIdx,
    /// The final destination.
    pub target: MachineIdx,
    /// The payload.
    pub inner: M,
}

impl<M: WireSize> WireSize for Routed<M> {
    fn bits(&self) -> u64 {
        // Two machine indices (16 bits each supports k ≤ 65536) + payload.
        32 + self.inner.bits()
    }
}

/// Sends `msg` to `target` via a uniformly random relay machine. Use when
/// the *destination* distribution is adversarial; the relay hop makes both
/// legs uniform so Lemma 13 applies to each.
pub fn send_via_random_relay<M, R: Rng>(
    out: &mut Outbox<Routed<M>>,
    rng: &mut R,
    k: usize,
    origin: MachineIdx,
    target: MachineIdx,
    inner: M,
) {
    let relay = rng.gen_range(0..k);
    out.send(
        relay,
        Routed {
            origin,
            target,
            inner,
        },
    );
}

/// One round of relay processing: forwards messages not yet at their
/// target and returns those that have arrived (as `(origin, payload)`).
///
/// Consumes the inbox — forwarded envelopes and arrived payloads are
/// *moved*, never cloned, so relaying large payloads costs nothing
/// beyond the send itself (hence no `M: Clone` bound). The inbox is left
/// empty; capture `inbox.is_empty()` beforehand if a protocol's
/// termination logic needs to know whether mail arrived this round.
pub fn relay_round<M>(
    me: MachineIdx,
    inbox: &mut Vec<Envelope<Routed<M>>>,
    out: &mut Outbox<Routed<M>>,
) -> Vec<(MachineIdx, M)> {
    let mut arrived = Vec::new();
    for env in inbox.drain(..) {
        if env.msg.target == me {
            arrived.push((env.msg.origin, env.msg.inner));
        } else {
            out.send(env.msg.target, env.msg);
        }
    }
    arrived
}

/// Test/benchmark protocol for Lemma 13: every machine sends `x` unit
/// messages to uniformly random destinations in round 0 (direct routing);
/// the run's round count is the empirical left side of the lemma.
#[derive(Debug)]
pub struct UniformScatter {
    /// Messages each machine originates.
    pub x: usize,
    /// Messages received (for conservation checks).
    pub received: usize,
}

impl UniformScatter {
    /// A scatter source of `x` messages.
    pub fn new(x: usize) -> Self {
        UniformScatter { x, received: 0 }
    }
}

/// A fixed-size scatter payload standing in for an `O(log n)`-bit token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterToken;

impl WireSize for ScatterToken {
    fn bits(&self) -> u64 {
        16
    }
}

impl crate::protocol::Protocol for UniformScatter {
    type Msg = ScatterToken;

    fn round(
        &mut self,
        ctx: &mut crate::protocol::RoundCtx<'_>,
        inbox: &mut Vec<Envelope<ScatterToken>>,
        out: &mut Outbox<ScatterToken>,
    ) -> crate::protocol::Status {
        self.received += inbox.len();
        if ctx.round == 0 {
            for _ in 0..self.x {
                let dst = ctx.rng.gen_range(0..ctx.k);
                if dst == ctx.me {
                    self.received += 1; // local delivery, free
                } else {
                    out.send(dst, ScatterToken);
                }
            }
            return crate::protocol::Status::Active;
        }
        crate::protocol::Status::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::protocol::{Protocol, RoundCtx, Status};
    use crate::runner::Runner;

    #[test]
    fn proxy_is_deterministic_and_uniform() {
        let k = 8;
        let mut counts = vec![0usize; k];
        for key in 0..8000u64 {
            let p = proxy_of(42, key, k);
            assert_eq!(p, proxy_of(42, key, k));
            counts[p] += 1;
        }
        for &c in &counts {
            assert!((c as f64) > 700.0 && (c as f64) < 1300.0, "count {c}");
        }
    }

    #[test]
    fn lemma13_bound_shape() {
        assert_eq!(lemma13_bound(1.0, 10), 0.0);
        assert!(lemma13_bound(1024.0, 16) > lemma13_bound(1024.0, 32));
        assert!((lemma13_bound(1024.0, 16) - 1024.0 * 10.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn scatter_conserves_messages() {
        let k = 6;
        let x = 50;
        let cfg = NetConfig::with_bandwidth(k, 64, 11);
        let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(x)).collect();
        let report = Runner::new(cfg).run(machines).unwrap();
        let total: usize = report.machines.iter().map(|m| m.received).sum();
        assert_eq!(total, k * x);
    }

    #[test]
    fn scatter_rounds_scale_with_x_over_k() {
        // Fixing k and doubling x should roughly double the rounds.
        let k = 8;
        let run = |x: usize| {
            let cfg = NetConfig::with_bandwidth(k, 16, 5); // 1 token/link/round
            let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(x)).collect();
            Runner::new(cfg).run(machines).unwrap().metrics.rounds
        };
        let r1 = run(200);
        let r2 = run(400);
        assert!(r2 as f64 > 1.5 * r1 as f64, "r1={r1} r2={r2}");
        assert!((r2 as f64) < 3.0 * r1 as f64, "r1={r1} r2={r2}");
    }

    /// Two-hop routing: all machines target machine 0, but the relay hop
    /// spreads the load; arrivals carry the true origin.
    struct Funnel {
        x: usize,
        arrived: Vec<(MachineIdx, u32)>,
    }

    impl Protocol for Funnel {
        type Msg = Routed<u32>;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Envelope<Routed<u32>>>,
            out: &mut Outbox<Routed<u32>>,
        ) -> Status {
            let had_mail = !inbox.is_empty();
            let mut got = relay_round(ctx.me, inbox, out);
            self.arrived.append(&mut got);
            if ctx.round == 0 && ctx.me != 0 {
                for i in 0..self.x {
                    send_via_random_relay(out, ctx.rng, ctx.k, ctx.me, 0, i as u32);
                }
                return Status::Active;
            }
            if !had_mail && ctx.round > 0 {
                Status::Done
            } else {
                Status::Active
            }
        }
    }

    #[test]
    fn two_hop_routing_delivers_everything_with_origins() {
        let k = 5;
        let x = 20;
        let cfg = NetConfig::with_bandwidth(k, 1024, 3);
        let machines: Vec<Funnel> = (0..k)
            .map(|_| Funnel {
                x,
                arrived: Vec::new(),
            })
            .collect();
        let report = Runner::new(cfg).run(machines).unwrap();
        let arrived = &report.machines[0].arrived;
        assert_eq!(arrived.len(), (k - 1) * x);
        for src in 1..k {
            assert_eq!(arrived.iter().filter(|(o, _)| *o == src).count(), x);
        }
        // Nothing leaks to other machines.
        for m in &report.machines[1..] {
            assert!(m.arrived.is_empty());
        }
    }
}
