//! The [`Protocol`] trait: what one machine runs.

use crate::message::{Envelope, Outbox, WireSize};
use crate::MachineIdx;
use rand_chacha::ChaCha8Rng;

/// What a machine reports at the end of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The machine has (or may have) more work to do.
    Active,
    /// The machine is quiescent: it sent nothing this round and will send
    /// nothing more unless a new message arrives. The run terminates when
    /// every machine is `Done` and all links are drained.
    Done,
}

/// Per-round execution context handed to [`Protocol::round`].
pub struct RoundCtx<'a> {
    /// Current round number (starting at 0).
    pub round: u64,
    /// This machine's index.
    pub me: MachineIdx,
    /// Number of machines.
    pub k: usize,
    /// Per-link bandwidth in bits (protocols may pack messages up to this).
    pub bandwidth_bits: u64,
    /// The shared public random seed (the paper's public random string
    /// `R`): identical on every machine.
    pub shared_seed: u64,
    /// This machine's private randomness (deterministic per
    /// `(config.seed, me)` — runs are replayable).
    pub rng: &'a mut ChaCha8Rng,
}

/// A distributed algorithm in the k-machine model, from the point of view
/// of a single machine.
///
/// The engine calls [`Protocol::round`] once per synchronous round with the
/// messages delivered this round; the implementation performs arbitrary
/// (free) local computation and stages outgoing messages. Each message `M`
/// reports its logical size via [`WireSize`] and is delivered once every
/// preceding byte of the FIFO link has been paid for at `B` bits/round.
pub trait Protocol: Send {
    /// The message type exchanged by this protocol.
    type Msg: WireSize + Send;

    /// Executes one round. `inbox` holds the messages delivered at the
    /// start of this round, grouped by sender in increasing machine order
    /// (FIFO within a sender).
    ///
    /// The inbox is handed over `&mut` so protocols that forward or store
    /// payloads can `drain(..)` and *move* them instead of cloning (see
    /// [`crate::router::relay_round`]). The engine clears and reuses the
    /// buffer after the round, so leaving messages behind is fine and
    /// mutation never affects delivery semantics.
    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<Self::Msg>>,
        out: &mut Outbox<Self::Msg>,
    ) -> Status;
}

#[cfg(test)]
mod tests {
    use super::*;

    // A protocol usable as a trait object check: echoes each message back.
    struct Echo;
    impl Protocol for Echo {
        type Msg = u32;
        fn round(
            &mut self,
            _ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Envelope<u32>>,
            out: &mut Outbox<u32>,
        ) -> Status {
            for env in inbox.iter() {
                out.send(env.src, env.msg);
            }
            if inbox.is_empty() {
                Status::Done
            } else {
                Status::Active
            }
        }
    }

    #[test]
    fn protocol_is_object_safe_enough_for_generics() {
        // Compile-time check: generic instantiation works.
        fn takes<P: Protocol>(_p: P) {}
        takes(Echo);
    }
}
