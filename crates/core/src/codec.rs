//! Bit-exact message serialization for the distributed engine.
//!
//! [`WireSize`] declares how many bits a message *logically* occupies;
//! [`WireCodec`] makes that claim executable: `encode` must write
//! **exactly** `bits()` bits (clamped ≥ 1, like the engine's bandwidth
//! accounting), and `decode` must reconstruct the message from them.
//! [`WireCodec::encode_frame`] packs the bits into a self-checking
//! byte frame of exactly `⌈bits/8⌉` payload bytes behind a header
//! carrying the length, the payload bit count, a per-link sequence
//! number, a frame kind, and a CRC-32 (see [`FRAME_HEADER_BYTES`]) —
//! so a `WireSize` implementation that under- or over-counts its own
//! encoding fails loudly the first time the distributed engine ships
//! it, and a frame corrupted in transit is *detected* (and NACKed for
//! retransmission) rather than silently mis-decoded.
//!
//! The distributed engine itself never frames messages one at a time:
//! [`encode_batch_frame_into`] packs everything a (link, round) pair
//! queued behind a *single* header — a message-count varint, then
//! per-message `(bit-length varint, payload bits)` records back to
//! back — and [`decode_batch`] replays them in order, each through a
//! borrowed [`BitReader::sub`] window straight out of the received
//! frame (no per-message copies). That amortizes the 21-byte header
//! and CRC over the whole batch while keeping loss detection and
//! retransmission (one sequence number per batch) intact.
//!
//! # Decoding variable-width fields
//!
//! Protocol messages size their id fields with [`crate::id_bits`]`(n)`,
//! but a decoder has no `n`. Instead of widening every frame with an
//! explicit width, decoders recover variable widths *arithmetically*
//! from [`BitReader::remaining`]: the frame header carries the exact
//! logical bit count, fixed-width fields are subtracted, and whatever
//! remains determines the id width (each message type documents its
//! layout). This keeps wire frames exactly as large as the theory
//! charges for them.
//!
//! Bits are packed LSB-first within each byte; multi-field messages are
//! concatenated in field order with no padding. Unused trailing bits of
//! the last payload byte are zero.

use crate::message::{Raw, WireSize};
use std::fmt;

/// Why a frame could not be decoded.
///
/// [`CodecError::Checksum`] (and header-shape errors from
/// [`split_frame`]) are the *detection layer* of the distributed
/// engine's fault tolerance: a frame that was bit-flipped or truncated
/// in transit fails its CRC and is discarded and retransmitted rather
/// than decoded into garbage. The remaining variants, surfacing from a
/// frame whose checksum *passed*, indicate a codec/`WireSize` bug —
/// not a runtime condition a protocol should handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The decoder asked for more bits than the frame holds.
    OutOfBits {
        /// Bits requested by the failing read.
        needed: u64,
        /// Bits left in the frame.
        remaining: u64,
    },
    /// Decoding finished with bits left over.
    Trailing {
        /// Undecoded bits at the end of the frame.
        remaining: u64,
    },
    /// A field held a value no encoder produces (bad tag, impossible
    /// width, inconsistent length).
    Invalid {
        /// Which field or invariant was violated.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The byte frame itself is malformed (header/length mismatch).
    Frame {
        /// What was wrong with the frame.
        reason: String,
    },
    /// The frame's CRC32 does not match its contents — the frame was
    /// corrupted in transit (or by fault injection) and must not be
    /// decoded.
    Checksum {
        /// CRC32 the header carries.
        expected: u32,
        /// CRC32 computed over the received bytes.
        found: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::OutOfBits { needed, remaining } => {
                write!(f, "decoder needs {needed} bits but only {remaining} remain")
            }
            CodecError::Trailing { remaining } => {
                write!(f, "{remaining} undecoded bits left in frame")
            }
            CodecError::Invalid { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            CodecError::Frame { reason } => write!(f, "malformed frame: {reason}"),
            CodecError::Checksum { expected, found } => write!(
                f,
                "frame checksum mismatch: header says {expected:#010x}, contents hash to \
                 {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Accumulates bits LSB-first into a byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    len_bits: u64,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value` (LSB-first).
    ///
    /// # Panics
    /// If `width > 64` or `value` has bits above `width` set — an encoder
    /// writing a value that does not fit its declared field is exactly
    /// the dishonesty this layer exists to catch.
    pub fn put(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "field width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut v = value;
        let mut w = width;
        while w > 0 {
            let bit_off = (self.len_bits % 8) as u32;
            if bit_off == 0 {
                self.buf.push(0);
            }
            let take = (8 - bit_off).min(w);
            let mask = (1u64 << take) - 1;
            // lint: allow(panic) — a byte was pushed in the branch above when bit_off == 0
            *self.buf.last_mut().expect("pushed above") |= ((v & mask) as u8) << bit_off;
            v >>= take;
            self.len_bits += u64::from(take);
            w -= take;
        }
    }

    /// Appends `value` as an LEB128 varint: 8-bit groups of 7 value
    /// bits plus a continuation flag, least-significant group first.
    /// Costs `8·⌈bits(value)/7⌉` bits (8 for values below 128), which
    /// is what makes batch frame records cheap for the small messages
    /// the k-machine model traffics in.
    pub fn put_varint(&mut self, value: u64) {
        let mut v = value;
        loop {
            let group = v & 0x7F;
            v >>= 7;
            if v == 0 {
                self.put(group, 8);
                return;
            }
            self.put(group | 0x80, 8);
        }
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.len_bits
    }

    /// Resets to empty, keeping the allocation — the reuse hook behind
    /// the engine's per-link scratch buffers.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.len_bits = 0;
    }

    /// The packed bytes so far (`⌈bit_len/8⌉` of them, trailing bits
    /// zero) without consuming the writer.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The packed bytes (`⌈bit_len/8⌉` of them, trailing bits zero).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bits [`BitWriter::put_varint`] spends on `value` (a whole number of
/// 8-bit groups). Lets senders and tests predict batch payload sizes
/// without encoding.
pub fn varint_bits(value: u64) -> u64 {
    let groups = (64 - u64::from((value | 1).leading_zeros())).div_ceil(7);
    8 * groups
}

/// Reads bits LSB-first from a byte slice with an exact bit length.
///
/// A reader is a *window* `[pos, end)` over the backing bytes:
/// [`BitReader::new`] opens one over a whole payload, and
/// [`BitReader::sub`] splits off a child window covering the next `n`
/// bits — at any bit offset, no byte alignment — which is how batch
/// frames are decoded zero-copy: each batched message gets a borrowed
/// sub-reader over its exact record, and greedy decoders that size
/// trailing fields from [`BitReader::remaining`] see the record
/// boundary, not the batch's.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
    end: u64,
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes` holding exactly `len_bits` bits.
    ///
    /// # Errors
    /// [`CodecError::Frame`] if `bytes.len() != ⌈len_bits/8⌉`.
    pub fn new(bytes: &'a [u8], len_bits: u64) -> Result<Self, CodecError> {
        let want = len_bits.div_ceil(8);
        if bytes.len() as u64 != want {
            return Err(CodecError::Frame {
                reason: format!(
                    "payload is {} bytes but {len_bits} bits need {want}",
                    bytes.len()
                ),
            });
        }
        Ok(BitReader {
            bytes,
            pos: 0,
            end: len_bits,
        })
    }

    /// Splits off a sub-reader over the next `len_bits` bits (borrowing
    /// the same bytes — no copy) and advances this reader past them.
    ///
    /// # Errors
    /// [`CodecError::OutOfBits`] if fewer than `len_bits` bits remain.
    pub fn sub(&mut self, len_bits: u64) -> Result<BitReader<'a>, CodecError> {
        if len_bits > self.remaining() {
            return Err(CodecError::OutOfBits {
                needed: len_bits,
                remaining: self.remaining(),
            });
        }
        let child = BitReader {
            bytes: self.bytes,
            pos: self.pos,
            end: self.pos + len_bits,
        };
        self.pos += len_bits;
        Ok(child)
    }

    /// Reads an LEB128 varint written by [`BitWriter::put_varint`].
    ///
    /// # Errors
    /// [`CodecError::OutOfBits`] if the frame ends mid-varint;
    /// [`CodecError::Invalid`] if the value overflows a `u64`.
    pub fn take_varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let group = self.take(8)?;
            let low = group & 0x7F;
            if shift > 63 || (shift == 63 && low > 1) {
                return Err(CodecError::Invalid {
                    what: "varint overflows u64",
                    value: low,
                });
            }
            v |= low << shift;
            if group & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads the next `width` bits as an LSB-first value.
    ///
    /// # Errors
    /// [`CodecError::OutOfBits`] if fewer than `width` bits remain.
    pub fn take(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64, "field width {width} > 64");
        if u64::from(width) > self.remaining() {
            return Err(CodecError::OutOfBits {
                needed: u64::from(width),
                remaining: self.remaining(),
            });
        }
        let mut v: u64 = 0;
        let mut got: u32 = 0;
        while got < width {
            let byte = self.bytes[(self.pos / 8) as usize];
            let bit_off = (self.pos % 8) as u32;
            let take = (8 - bit_off).min(width - got);
            let mask = ((1u16 << take) - 1) as u8;
            v |= u64::from((byte >> bit_off) & mask) << got;
            self.pos += u64::from(take);
            got += take;
        }
        Ok(v)
    }

    /// Bits not yet consumed. Decoders use this to size trailing
    /// variable-width (id) fields — see the module docs.
    pub fn remaining(&self) -> u64 {
        self.end - self.pos
    }

    /// Asserts every bit was consumed.
    ///
    /// # Errors
    /// [`CodecError::Trailing`] if bits remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Byte-frame layout: a 21-byte header followed by `payload_len`
/// payload bytes.
///
/// | bytes  | field          | meaning                                      |
/// |--------|----------------|----------------------------------------------|
/// | 0..4   | `payload_len`  | `u32` LE, payload byte count                 |
/// | 4..12  | `bits`         | `u64` LE, exact payload bit count            |
/// | 12..16 | `seq`          | `u32` LE, per-link sequence number           |
/// | 16     | `kind`         | [`FRAME_KIND_DATA`], [`FRAME_KIND_NACK`], or [`FRAME_KIND_BATCH`] |
/// | 17..21 | `crc32`        | `u32` LE over bytes `0..17` + payload        |
///
/// `payload_len == ⌈bits/8⌉` always; both are carried so a receiver
/// can validate the frame against the sender's size claim. For a DATA
/// frame `bits` is the single message's logical [`WireSize`]; for a
/// BATCH frame it is the total batch payload bit length (count varint
/// plus all records — see [`encode_batch_frame_into`] for the layout).
/// The sequence number counts DATA/BATCH frames per directed link from
/// 0 over the whole run, letting receivers detect loss (a gap),
/// discard duplicates, and reorder delayed frames; the CRC turns any
/// in-flight bit corruption into a typed [`CodecError::Checksum`]
/// instead of a silent mis-decode.
pub const FRAME_HEADER_BYTES: usize = 21;

/// Header byte count covered by the CRC (everything before the CRC
/// field itself).
const FRAME_CRC_OFFSET: usize = 17;

/// `kind` byte of a frame carrying a protocol message payload.
pub const FRAME_KIND_DATA: u8 = 0;

/// `kind` byte of a retransmit-request control frame; its 4-byte
/// payload is the first sequence number the receiver is still missing
/// (see [`encode_nack_frame`]).
pub const FRAME_KIND_NACK: u8 = 1;

/// `kind` byte of a frame batching every message a (link, round) pair
/// queued behind one header (see [`encode_batch_frame_into`]). This is
/// the only data kind the distributed engine ships; per-message DATA
/// frames remain for callers that frame a single message directly.
pub const FRAME_KIND_BATCH: u8 = 2;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup
/// table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) over the concatenation of `parts`. Taking slices
/// avoids materializing `header ++ payload` just to hash it.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = !0u32;
    for part in parts {
        for &b in *part {
            c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// A validated view into a frame: header fields parsed, lengths
/// cross-checked, CRC verified. Produced by [`split_frame`]; holding a
/// `FrameView` is proof the frame arrived intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// The payload bytes (`⌈bits/8⌉` of them).
    pub payload: &'a [u8],
    /// The sender's logical bit count for the payload.
    pub bits: u64,
    /// Per-link sequence number.
    pub seq: u32,
    /// [`FRAME_KIND_DATA`] or [`FRAME_KIND_NACK`].
    pub kind: u8,
}

/// Assembles a frame from its parts into `frame` (cleared first),
/// computing the CRC. The buffer-reuse primitive behind every
/// `*_into` encoder: a caller that keeps the `Vec` around pays one
/// allocation for the lifetime of the link, not one per frame.
fn build_frame_into(payload: &[u8], bits: u64, seq: u32, kind: u8, frame: &mut Vec<u8>) {
    debug_assert_eq!(payload.len() as u64, bits.div_ceil(8));
    frame.clear();
    frame.reserve(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&bits.to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.push(kind);
    let crc = crc32(&[frame.as_slice(), payload]);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
}

/// Assembles a frame from its parts, computing the CRC.
fn build_frame(payload: &[u8], bits: u64, seq: u32, kind: u8) -> Vec<u8> {
    let mut frame = Vec::new();
    build_frame_into(payload, bits, seq, kind, &mut frame);
    frame
}

/// Builds a retransmit-request (NACK) control frame: "re-send every
/// DATA frame on this link with `seq >= from_seq`". `seq` is the
/// sender's NACK ordinal — it has no protocol meaning (retransmits are
/// idempotent) but keeps every physical frame distinct for fault
/// injection and tracing.
pub fn encode_nack_frame(from_seq: u32, seq: u32) -> Vec<u8> {
    build_frame(&from_seq.to_le_bytes(), 32, seq, FRAME_KIND_NACK)
}

/// Extracts the `from_seq` a NACK frame asks to retransmit from.
///
/// # Errors
/// [`CodecError::Frame`] if the view is not a well-formed NACK.
pub fn decode_nack(view: &FrameView<'_>) -> Result<u32, CodecError> {
    if view.kind != FRAME_KIND_NACK {
        return Err(CodecError::Frame {
            reason: format!("expected a NACK frame, got kind {}", view.kind),
        });
    }
    if view.payload.len() != 4 || view.bits != 32 {
        return Err(CodecError::Frame {
            reason: format!(
                "NACK payload is {} bytes / {} bits, expected 4 / 32",
                view.payload.len(),
                view.bits
            ),
        });
    }
    Ok(u32::from_le_bytes(
        // lint: allow(panic) — payload length is checked to be exactly 4 just above
        view.payload.try_into().expect("4 bytes"),
    ))
}

/// Decodes a validated DATA payload as a `T`, consuming every bit.
///
/// # Errors
/// Any [`CodecError`] the decoder raises.
pub fn decode_payload<T: WireCodec>(view: &FrameView<'_>) -> Result<T, CodecError> {
    let mut r = BitReader::new(view.payload, view.bits)?;
    let msg = T::decode(&mut r)?;
    r.finish()?;
    Ok(msg)
}

/// Per-batch byte accounting returned by [`encode_batch_frame_into`],
/// folded into the engine's [`crate::WireReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Exact payload bits written: the count varint plus every
    /// `(bit-length varint, message bits)` record.
    pub payload_bits: u64,
    /// `Σ ⌈bitsᵢ/8⌉` over the batched messages — the payload bytes the
    /// same messages would have occupied framed one per message, kept
    /// so batching can be compared against per-message framing without
    /// re-deriving message sizes.
    pub solo_payload_bytes: u64,
}

/// Encodes `msgs` into one BATCH frame: after the standard header
/// ([`FRAME_HEADER_BYTES`], with `bits` = total batch payload bits),
/// the payload is a message-count varint followed by one record per
/// message — its logical bit-length as a varint, then its
/// [`WireCodec::encode`] bits — packed back to back with no padding
/// between records.
///
/// `scratch` and `frame` are caller-owned reusable buffers (cleared
/// here): the distributed engine keeps one of each per worker, so a
/// whole round of sends allocates nothing on the encode side beyond
/// the frame the channel takes ownership of.
///
/// # Panics
/// If `msgs` is empty (the engine never ships an empty batch — an
/// inactive link simply sends no frame) or if any message's `encode`
/// disagrees with its [`WireSize::bits`] claim.
pub fn encode_batch_frame_into<M: WireCodec>(
    msgs: &[M],
    seq: u32,
    scratch: &mut BitWriter,
    frame: &mut Vec<u8>,
) -> BatchStats {
    assert!(
        !msgs.is_empty(),
        "a batch frame carries at least one message"
    );
    scratch.clear();
    scratch.put_varint(msgs.len() as u64);
    let mut solo_payload_bytes = 0u64;
    for msg in msgs {
        let claimed = msg.bits().max(1);
        solo_payload_bytes += claimed.div_ceil(8);
        scratch.put_varint(claimed);
        let before = scratch.bit_len();
        msg.encode(scratch);
        assert_eq!(
            scratch.bit_len() - before,
            claimed,
            "WireCodec/WireSize mismatch for {}: encoded {} bits, claims {claimed}",
            std::any::type_name::<M>(),
            scratch.bit_len() - before,
        );
    }
    let payload_bits = scratch.bit_len();
    build_frame_into(scratch.bytes(), payload_bits, seq, FRAME_KIND_BATCH, frame);
    BatchStats {
        payload_bits,
        solo_payload_bytes,
    }
}

/// Decodes a validated BATCH frame, invoking `sink(message,
/// logical_bits)` for each record in order. Each message decodes
/// straight out of the frame's payload through a borrowed sub-reader
/// ([`BitReader::sub`]) — no intermediate per-message buffer — and
/// must consume its record exactly. Returns the message count.
///
/// # Errors
/// [`CodecError::Frame`] if the view is not a BATCH frame;
/// [`CodecError::Invalid`] on a zero or impossible count or record
/// length; any [`CodecError`] a message decoder raises.
pub fn decode_batch<M: WireCodec>(
    view: &FrameView<'_>,
    mut sink: impl FnMut(M, u64),
) -> Result<u64, CodecError> {
    if view.kind != FRAME_KIND_BATCH {
        return Err(CodecError::Frame {
            reason: format!("expected a BATCH frame, got kind {}", view.kind),
        });
    }
    let mut r = BitReader::new(view.payload, view.bits)?;
    let count = r.take_varint()?;
    // Every record is ≥ 9 bits (an 8-bit length varint plus ≥ 1
    // payload bit), so a count beyond the remaining bits is
    // unconditionally bogus; zero-message batches are never encoded.
    if count == 0 || count > r.remaining() {
        return Err(CodecError::Invalid {
            what: "batch message count",
            value: count,
        });
    }
    for _ in 0..count {
        let bits = r.take_varint()?;
        if bits == 0 {
            return Err(CodecError::Invalid {
                what: "batched message bit length",
                value: 0,
            });
        }
        let mut record = r.sub(bits)?;
        let msg = M::decode(&mut record)?;
        record.finish()?;
        sink(msg, bits);
    }
    r.finish()?;
    Ok(count)
}

/// Serialization contract for messages that cross the distributed
/// engine's byte channels.
///
/// `encode` must write exactly `self.bits().max(1)` bits and `decode`
/// must invert it; [`WireCodec::encode_frame`] asserts the former at
/// runtime for every shipped message. Compound decoders may rely on
/// [`BitReader::remaining`] to infer trailing variable-width fields,
/// which makes some impls (notably [`Raw`] and `Vec<T>`) *greedy*: they
/// consume the whole rest of the frame and therefore must be the last
/// field of an enclosing message.
pub trait WireCodec: WireSize + Sized {
    /// Appends this message's bits to `w` (exactly `bits().max(1)` of
    /// them).
    fn encode(&self, w: &mut BitWriter);

    /// Reconstructs a message from its bits.
    ///
    /// # Errors
    /// Any [`CodecError`] on a frame no encoder produces.
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError>;

    /// Encodes into a checksummed byte frame with sequence number 0
    /// (see [`FRAME_HEADER_BYTES`] for the layout). Callers outside the
    /// distributed engine's per-link send path — tests, benchmarks,
    /// size probes — don't track sequence numbers, so 0 is the neutral
    /// default.
    ///
    /// # Panics
    /// If `encode` wrote a different number of bits than
    /// [`WireSize::bits`] claims — the wire-validation teeth of the
    /// distributed engine.
    fn encode_frame(&self) -> Vec<u8> {
        self.encode_frame_seq(0)
    }

    /// Encodes into a checksummed DATA frame carrying per-link
    /// sequence number `seq`.
    ///
    /// # Panics
    /// If `encode` wrote a different number of bits than
    /// [`WireSize::bits`] claims.
    fn encode_frame_seq(&self, seq: u32) -> Vec<u8> {
        let mut frame = Vec::new();
        self.encode_frame_into(seq, &mut frame);
        frame
    }

    /// [`WireCodec::encode_frame_seq`] into a caller-owned buffer
    /// (cleared first) — the buffer-reuse form for callers framing
    /// many messages that don't want one fresh `Vec` per frame.
    ///
    /// # Panics
    /// If `encode` wrote a different number of bits than
    /// [`WireSize::bits`] claims.
    fn encode_frame_into(&self, seq: u32, frame: &mut Vec<u8>) {
        let claimed = self.bits().max(1);
        let mut w = BitWriter::new();
        self.encode(&mut w);
        assert_eq!(
            w.bit_len(),
            claimed,
            "WireCodec/WireSize mismatch for {}: encoded {} bits, claims {}",
            std::any::type_name::<Self>(),
            w.bit_len(),
            claimed
        );
        build_frame_into(&w.into_bytes(), claimed, seq, FRAME_KIND_DATA, frame);
    }

    /// Parses a DATA frame produced by [`WireCodec::encode_frame`],
    /// returning the message and its logical bit count.
    ///
    /// # Errors
    /// Any [`CodecError`] on a malformed, corrupted, or non-DATA frame.
    fn decode_frame(frame: &[u8]) -> Result<(Self, u64), CodecError> {
        let view = split_frame(frame)?;
        if view.kind != FRAME_KIND_DATA {
            return Err(CodecError::Frame {
                reason: format!("expected a DATA frame, got kind {}", view.kind),
            });
        }
        Ok((decode_payload::<Self>(&view)?, view.bits))
    }
}

/// Parses and validates a frame: header shape, length consistency,
/// known kind, and CRC. Every single-bit flip anywhere in the frame is
/// guaranteed to surface as an error here (CRC-32 detects all 1-bit
/// errors), so a [`FrameView`] never exposes corrupted bytes.
///
/// # Errors
/// [`CodecError::Frame`] on truncation, length/bit-count mismatch, or
/// an unknown kind; [`CodecError::Checksum`] when the CRC disagrees
/// with the contents.
pub fn split_frame(frame: &[u8]) -> Result<FrameView<'_>, CodecError> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(CodecError::Frame {
            reason: format!(
                "{} bytes is shorter than the {FRAME_HEADER_BYTES}-byte header",
                frame.len()
            ),
        });
    }
    // lint: allow(panic) — fixed-width subslice of a frame whose length was checked above
    let payload_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
    // lint: allow(panic) — fixed-width subslice of a frame whose length was checked above
    let bits = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
    // lint: allow(panic) — fixed-width subslice of a frame whose length was checked above
    let seq = u32::from_le_bytes(frame[12..16].try_into().expect("4 bytes"));
    let kind = frame[16];
    let expected = u32::from_le_bytes(
        frame[FRAME_CRC_OFFSET..FRAME_HEADER_BYTES]
            .try_into()
            // lint: allow(panic) — fixed-width subslice of a frame whose length was checked above
            .expect("4 bytes"),
    );
    let payload = &frame[FRAME_HEADER_BYTES..];
    if payload.len() != payload_len {
        return Err(CodecError::Frame {
            reason: format!(
                "header claims {payload_len} payload bytes, got {}",
                payload.len()
            ),
        });
    }
    if payload_len as u64 != bits.div_ceil(8) || bits == 0 {
        return Err(CodecError::Frame {
            reason: format!("{bits} logical bits inconsistent with {payload_len} payload bytes"),
        });
    }
    if kind != FRAME_KIND_DATA && kind != FRAME_KIND_NACK && kind != FRAME_KIND_BATCH {
        return Err(CodecError::Frame {
            reason: format!("unknown frame kind {kind}"),
        });
    }
    let found = crc32(&[&frame[..FRAME_CRC_OFFSET], payload]);
    if found != expected {
        return Err(CodecError::Checksum { expected, found });
    }
    Ok(FrameView {
        payload,
        bits,
        seq,
        kind,
    })
}

/// Test helper: asserts that encode → frame → decode is the identity for
/// `value` and that the frame is exactly `⌈bits/8⌉` payload bytes plus
/// the header. Every crate defining a [`WireCodec`] uses this in its
/// round-trip proptests, so the check lives here rather than being
/// copied into each one.
///
/// # Panics
/// If any part of the round trip disagrees with the `WireSize` claim.
pub fn assert_roundtrip<T: WireCodec + PartialEq + fmt::Debug>(value: &T) {
    let frame = value.encode_frame();
    assert_eq!(
        frame.len(),
        FRAME_HEADER_BYTES + value.bits().max(1).div_ceil(8) as usize,
        "frame length must match the WireSize claim for {value:?}"
    );
    // lint: allow(panic) — assert_roundtrip is a test-assertion helper; failing loud is its job
    let (back, bits) = T::decode_frame(&frame).expect("decode");
    assert_eq!(&back, value, "decode(encode(v)) != v");
    assert_eq!(bits, value.bits().max(1), "frame bit count for {value:?}");
}

impl WireCodec for () {
    fn encode(&self, w: &mut BitWriter) {
        w.put(0, 1);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        r.take(1)?;
        Ok(())
    }
}

impl WireCodec for bool {
    fn encode(&self, w: &mut BitWriter) {
        w.put(u64::from(*self), 1);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(1)? != 0)
    }
}

macro_rules! int_codec {
    ($($t:ty => $w:expr),* $(,)?) => {$(
        impl WireCodec for $t {
            fn encode(&self, w: &mut BitWriter) {
                w.put(*self as u64, $w);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
                Ok(r.take($w)? as $t)
            }
        }
    )*};
}
int_codec!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

impl WireCodec for i32 {
    fn encode(&self, w: &mut BitWriter) {
        w.put(u64::from(*self as u32), 32);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(32)? as u32 as i32)
    }
}

impl WireCodec for i64 {
    fn encode(&self, w: &mut BitWriter) {
        w.put(*self as u64, 64);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(64)? as i64)
    }
}

impl WireCodec for f64 {
    fn encode(&self, w: &mut BitWriter) {
        w.put(self.to_bits(), 64);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(r.take(64)?))
    }
}

/// Greedy: a `Raw` consumes every remaining bit (its `WireSize` is
/// `8·len`, or 1 for the empty payload), so it must be the last field
/// of an enclosing message.
impl WireCodec for Raw {
    fn encode(&self, w: &mut BitWriter) {
        if self.0.is_empty() {
            w.put(0, 1);
            return;
        }
        for &b in self.0.iter() {
            w.put(u64::from(b), 8);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let remaining = r.remaining();
        if remaining == 1 {
            r.take(1)?;
            return Ok(Raw::from_vec(Vec::new()));
        }
        if !remaining.is_multiple_of(8) {
            return Err(CodecError::Invalid {
                what: "Raw bit length (not a whole number of bytes)",
                value: remaining,
            });
        }
        let mut v = Vec::with_capacity((remaining / 8) as usize);
        for _ in 0..remaining / 8 {
            v.push(r.take(8)? as u8);
        }
        Ok(Raw::from_vec(v))
    }
}

/// Field order `A` then `B`; `A` must be self-delimiting (fixed width).
impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, w: &mut BitWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// 32-bit length prefix then elements, matching its `WireSize`.
impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, w: &mut BitWriter) {
        w.put(self.len() as u64, 32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let len = r.take(32)?;
        // Every element encoding is ≥ 1 bit, so a length beyond the
        // remaining bits is unconditionally bogus (and would OOM).
        if len > r.remaining() {
            return Err(CodecError::Invalid {
                what: "Vec length exceeds remaining bits",
                value: len,
            });
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: T) {
        assert_roundtrip(&value);
    }

    #[test]
    fn bit_writer_reader_inverse_on_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xFFFF_FFFF_FFFF_FFFF, 64);
        w.put(0, 1);
        w.put(0x2A, 7);
        assert_eq!(w.bit_len(), 75);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 10);
        let mut r = BitReader::new(&bytes, 75).unwrap();
        assert_eq!(r.take(3).unwrap(), 0b101);
        assert_eq!(r.take(64).unwrap(), u64::MAX);
        assert_eq!(r.take(1).unwrap(), 0);
        assert_eq!(r.remaining(), 7);
        assert_eq!(r.take(7).unwrap(), 0x2A);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_overreads_and_trailing_bits() {
        let bytes = [0u8; 2];
        let mut r = BitReader::new(&bytes, 10).unwrap();
        r.take(4).unwrap();
        assert!(matches!(
            r.take(7),
            Err(CodecError::OutOfBits {
                needed: 7,
                remaining: 6
            })
        ));
        assert!(matches!(
            r.finish(),
            Err(CodecError::Trailing { remaining: 6 })
        ));
        assert!(BitReader::new(&bytes, 17).is_err(), "length mismatch");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn writer_rejects_oversized_values() {
        BitWriter::new().put(4, 2);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0xABu8);
        roundtrip(0xDEADu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-7i32);
        roundtrip(i64::MIN);
        roundtrip(-0.0f64);
        roundtrip(std::f64::consts::PI);
        roundtrip(Raw::from_vec(vec![]));
        roundtrip(Raw::from_vec(vec![1, 2, 3, 255]));
        roundtrip((0xAAu8, 0x55AAu16));
        roundtrip(vec![1u16, 2, 3]);
        roundtrip(Vec::<u32>::new());
    }

    #[test]
    fn frame_validation_catches_corruption() {
        let frame = 0x1234_5678u32.encode_frame();
        // Truncated payload.
        assert!(u32::decode_frame(&frame[..frame.len() - 1]).is_err());
        // Header shorter than 21 bytes.
        assert!(u32::decode_frame(&frame[..4]).is_err());
        // Lying bit count.
        let mut bad = frame.clone();
        bad[4] = 7; // 7 bits can't need 4 payload bytes
        assert!(u32::decode_frame(&bad).is_err());
        // A payload flip that keeps every length consistent is caught
        // by the CRC specifically.
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        assert!(matches!(
            u32::decode_frame(&bad),
            Err(CodecError::Checksum { .. })
        ));
        // Unknown kind byte (recomputing the CRC so only the kind is
        // wrong).
        let mut bad = frame.clone();
        bad[16] = 9;
        let crc = crc32(&[&bad[..17], &bad[FRAME_HEADER_BYTES..]]);
        bad[17..21].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            u32::decode_frame(&bad),
            Err(CodecError::Frame { .. })
        ));
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        // Split points don't matter.
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn frames_carry_their_sequence_number() {
        let frame = 0xABCDu16.encode_frame_seq(4242);
        let view = split_frame(&frame).unwrap();
        assert_eq!(view.seq, 4242);
        assert_eq!(view.kind, FRAME_KIND_DATA);
        assert_eq!(view.bits, 16);
        assert_eq!(decode_payload::<u16>(&view).unwrap(), 0xABCD);
        // encode_frame is encode_frame_seq at seq 0.
        assert_eq!(split_frame(&0xABCDu16.encode_frame()).unwrap().seq, 0);
    }

    #[test]
    fn nack_frames_roundtrip_and_reject_kind_confusion() {
        let nack = encode_nack_frame(17, 3);
        assert_eq!(nack.len(), FRAME_HEADER_BYTES + 4);
        let view = split_frame(&nack).unwrap();
        assert_eq!(view.kind, FRAME_KIND_NACK);
        assert_eq!(view.seq, 3);
        assert_eq!(decode_nack(&view).unwrap(), 17);
        // A NACK is not a DATA frame and vice versa.
        assert!(matches!(
            u32::decode_frame(&nack),
            Err(CodecError::Frame { .. })
        ));
        let data_frame = 0u32.encode_frame();
        let data = split_frame(&data_frame).unwrap();
        assert!(matches!(decode_nack(&data), Err(CodecError::Frame { .. })));
    }

    #[test]
    fn varints_roundtrip_and_size_as_claimed() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut w = BitWriter::new();
            w.put_varint(v);
            assert_eq!(w.bit_len(), varint_bits(v), "width claim for {v}");
            let len = w.bit_len();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes, len).unwrap();
            assert_eq!(r.take_varint().unwrap(), v);
            r.finish().unwrap();
        }
        assert_eq!(varint_bits(0), 8);
        assert_eq!(varint_bits(127), 8);
        assert_eq!(varint_bits(128), 16);
        assert_eq!(varint_bits(u64::MAX), 80);
    }

    #[test]
    fn varint_decoding_rejects_overflow_and_truncation() {
        // Ten groups all-continuing, then one more: > 64 bits of value.
        let mut w = BitWriter::new();
        for _ in 0..10 {
            w.put(0xFF, 8);
        }
        w.put(0x01, 8);
        let len = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, len).unwrap();
        assert!(matches!(r.take_varint(), Err(CodecError::Invalid { .. })));
        // A continuation group at the end of the frame.
        let mut w = BitWriter::new();
        w.put(0x80, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, 8).unwrap();
        assert!(matches!(r.take_varint(), Err(CodecError::OutOfBits { .. })));
    }

    #[test]
    fn sub_readers_window_unaligned_records() {
        // 3 bits, then a 7-bit record, then 6 bits — none byte-aligned.
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0x55, 7);
        w.put(0x2A, 6);
        let len = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, len).unwrap();
        assert_eq!(r.take(3).unwrap(), 0b101);
        let mut record = r.sub(7).unwrap();
        assert_eq!(record.remaining(), 7, "a sub-reader sees only its window");
        assert_eq!(record.take(7).unwrap(), 0x55);
        record.finish().unwrap();
        assert_eq!(r.remaining(), 6, "the parent advanced past the window");
        assert_eq!(r.take(6).unwrap(), 0x2A);
        r.finish().unwrap();
        // Oversized windows are refused.
        let mut r = BitReader::new(&bytes, len).unwrap();
        assert!(matches!(r.sub(len + 1), Err(CodecError::OutOfBits { .. })));
    }

    #[test]
    fn batch_frames_roundtrip_with_exact_accounting() {
        // Mixed sizes: empty Raw (1-bit clamp), small, and multi-byte.
        let msgs = vec![
            Raw::from_vec(vec![]),
            Raw::from_vec(vec![7]),
            Raw::from_vec(vec![1, 2, 3, 4, 5]),
        ];
        let mut scratch = BitWriter::new();
        let mut frame = Vec::new();
        let stats = encode_batch_frame_into(&msgs, 42, &mut scratch, &mut frame);
        // count(8) + [8+1] + [8+8] + [8+40] bits.
        assert_eq!(stats.payload_bits, 8 + 9 + 16 + 48);
        assert_eq!(stats.solo_payload_bytes, 1 + 1 + 5);
        let view = split_frame(&frame).unwrap();
        assert_eq!(view.kind, FRAME_KIND_BATCH);
        assert_eq!(view.seq, 42);
        assert_eq!(view.bits, stats.payload_bits);
        assert_eq!(view.payload.len() as u64, stats.payload_bits.div_ceil(8));
        let mut got = Vec::new();
        let n = decode_batch::<Raw>(&view, |msg, bits| got.push((msg, bits))).unwrap();
        assert_eq!(n, 3);
        assert_eq!(
            got,
            vec![
                (Raw::from_vec(vec![]), 1),
                (Raw::from_vec(vec![7]), 8),
                (Raw::from_vec(vec![1, 2, 3, 4, 5]), 40),
            ]
        );
        // Buffer reuse: a second batch through the same scratch/frame
        // pair is self-contained.
        let stats2 = encode_batch_frame_into(&msgs[..1], 43, &mut scratch, &mut frame);
        assert_eq!(stats2.payload_bits, 8 + 9);
        let view = split_frame(&frame).unwrap();
        assert_eq!(view.seq, 43);
        assert_eq!(
            decode_batch::<Raw>(&view, |_, _| ()).unwrap(),
            1,
            "stale bytes from the previous batch must not leak"
        );
    }

    #[test]
    fn batch_decoding_rejects_malformed_batches() {
        let msgs = vec![0xAAu8, 0xBB];
        let mut scratch = BitWriter::new();
        let mut frame = Vec::new();
        encode_batch_frame_into(&msgs, 0, &mut scratch, &mut frame);
        let view = split_frame(&frame).unwrap();
        // Kind confusion: a batch is not a DATA frame and vice versa.
        assert!(matches!(
            u8::decode_frame(&frame),
            Err(CodecError::Frame { .. })
        ));
        assert!(matches!(
            decode_batch::<u8>(&split_frame(&0xAAu8.encode_frame()).unwrap(), |_, _| ()),
            Err(CodecError::Frame { .. })
        ));
        // A count the payload cannot possibly hold.
        let mut w = BitWriter::new();
        w.put_varint(100);
        let bits = w.bit_len();
        let bad = build_frame(w.bytes(), bits, 0, FRAME_KIND_BATCH);
        assert!(matches!(
            decode_batch::<u8>(&split_frame(&bad).unwrap(), |_, _| ()),
            Err(CodecError::Invalid { .. })
        ));
        // A record length that overruns the batch.
        let mut w = BitWriter::new();
        w.put_varint(1);
        w.put_varint(64);
        w.put(0, 8);
        let bits = w.bit_len();
        let bad = build_frame(w.bytes(), bits, 0, FRAME_KIND_BATCH);
        assert!(matches!(
            decode_batch::<u8>(&split_frame(&bad).unwrap(), |_, _| ()),
            Err(CodecError::OutOfBits { .. })
        ));
        // The engine never ships an empty batch.
        let _ = view;
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn empty_batches_are_refused_at_the_encoder() {
        let mut scratch = BitWriter::new();
        let mut frame = Vec::new();
        encode_batch_frame_into::<u8>(&[], 0, &mut scratch, &mut frame);
    }

    #[test]
    fn encode_frame_into_reuses_its_buffer() {
        let mut frame = vec![0xFF; 64]; // stale garbage to overwrite
        0xDEAD_BEEFu32.encode_frame_into(7, &mut frame);
        assert_eq!(frame, 0xDEAD_BEEFu32.encode_frame_seq(7));
    }

    #[test]
    fn vec_rejects_bogus_length() {
        // A frame claiming 2^32-1 elements in 32 bits of payload.
        let mut w = BitWriter::new();
        w.put(u32::MAX as u64, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, 32).unwrap();
        assert!(matches!(
            Vec::<u8>::decode(&mut r),
            Err(CodecError::Invalid { .. })
        ));
    }

    proptest! {
        #[test]
        fn u64_fields_roundtrip_any_width(v in 0u64..=u64::MAX, cut in 0u32..64) {
            // Writing the low `width` bits then reading them back is the
            // identity for every width.
            let width = cut + 1;
            let masked = if width == 64 { v } else { v & ((1 << width) - 1) };
            let mut w = BitWriter::new();
            w.put(masked, width);
            w.put(0b1, 1); // misalign the tail
            let len = w.bit_len();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes, len).unwrap();
            prop_assert_eq!(r.take(width).unwrap(), masked);
            prop_assert_eq!(r.take(1).unwrap(), 1);
            r.finish().unwrap();
        }

        #[test]
        fn raw_roundtrips(bytes in collection::vec(0u8..=255, 0..40)) {
            roundtrip(Raw::from_vec(bytes));
        }

        #[test]
        fn vecs_roundtrip(v in collection::vec(0u64..=u64::MAX, 0..20)) {
            roundtrip(v);
        }

        // The CRC detection guarantee behind the self-healing wire:
        // flip ANY single bit anywhere in a frame (header or payload)
        // and decoding must fail — never silently return a message.
        #[test]
        fn any_single_bit_flip_is_detected(
            v in collection::vec(0u64..=u64::MAX, 0..12),
            seq in 0u32..=u32::MAX,
            flip in 0usize..10_000,
        ) {
            let frame = v.encode_frame_seq(seq);
            let bit = flip % (frame.len() * 8);
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                Vec::<u64>::decode_frame(&bad).is_err(),
                "bit {bit} flipped in a {}-byte frame decoded silently",
                frame.len()
            );
            // The pristine frame still decodes (the flip test isn't
            // vacuous) and carries its seq.
            let view = split_frame(&frame).unwrap();
            prop_assert_eq!(view.seq, seq);
            prop_assert_eq!(decode_payload::<Vec<u64>>(&view).unwrap(), v);
        }

        // Satellite contract: batch round-trips over random message
        // mixes — counts, sizes (including the empty-payload clamp),
        // and contents all survive, zero-copy, in order.
        #[test]
        fn batches_roundtrip_any_message_mix(
            payloads in collection::vec(collection::vec(0u8..=255, 0..40), 1..30),
            seq in 0u32..=u32::MAX,
        ) {
            let msgs: Vec<Raw> = payloads.iter().cloned().map(Raw::from_vec).collect();
            let mut scratch = BitWriter::new();
            let mut frame = Vec::new();
            let stats = encode_batch_frame_into(&msgs, seq, &mut scratch, &mut frame);
            let view = split_frame(&frame).unwrap();
            prop_assert_eq!(view.seq, seq);
            prop_assert_eq!(view.bits, stats.payload_bits);
            let mut got = Vec::new();
            let n = decode_batch::<Raw>(&view, |msg, bits| got.push((msg, bits))).unwrap();
            prop_assert_eq!(n as usize, msgs.len());
            for ((back, bits), msg) in got.iter().zip(&msgs) {
                prop_assert_eq!(back, msg);
                prop_assert_eq!(*bits, msg.bits().max(1));
            }
        }

        // Satellite contract: flip ANY single bit anywhere in a batch
        // frame — header, count, a record length, or any message's
        // payload — and the frame is rejected, never partially
        // absorbed.
        #[test]
        fn any_single_bit_flip_in_a_batch_is_detected(
            payloads in collection::vec(collection::vec(0u8..=255, 0..12), 1..10),
            seq in 0u32..=u32::MAX,
            flip in 0usize..10_000,
        ) {
            let msgs: Vec<Raw> = payloads.iter().cloned().map(Raw::from_vec).collect();
            let mut scratch = BitWriter::new();
            let mut frame = Vec::new();
            encode_batch_frame_into(&msgs, seq, &mut scratch, &mut frame);
            let bit = flip % (frame.len() * 8);
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut sunk = 0u64;
            let rejected = match split_frame(&bad) {
                Err(_) => true,
                Ok(view) => decode_batch::<Raw>(&view, |_, _| sunk += 1).is_err(),
            };
            prop_assert!(
                rejected,
                "bit {bit} flipped in a {}-byte batch frame decoded silently",
                frame.len()
            );
            prop_assert_eq!(sunk, 0, "a corrupted batch must not leak messages");
        }

        #[test]
        fn nack_single_bit_flips_are_detected(
            from in 0u32..=u32::MAX,
            seq in 0u32..=u32::MAX,
            flip in 0usize..10_000,
        ) {
            let frame = encode_nack_frame(from, seq);
            let bit = flip % (frame.len() * 8);
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                split_frame(&bad).is_err(),
                "bit {bit} flipped in a NACK frame passed validation"
            );
        }
    }
}
