//! Bit-exact message serialization for the distributed engine.
//!
//! [`WireSize`] declares how many bits a message *logically* occupies;
//! [`WireCodec`] makes that claim executable: `encode` must write
//! **exactly** `bits()` bits (clamped ≥ 1, like the engine's bandwidth
//! accounting), and `decode` must reconstruct the message from them.
//! [`WireCodec::encode_frame`] packs the bits into a length-prefixed
//! byte frame of exactly `⌈bits/8⌉` payload bytes, asserting the
//! size claim on every message that crosses a link — so a `WireSize`
//! implementation that under- or over-counts its own encoding fails
//! loudly the first time the distributed engine ships it.
//!
//! # Decoding variable-width fields
//!
//! Protocol messages size their id fields with [`crate::id_bits`]`(n)`,
//! but a decoder has no `n`. Instead of widening every frame with an
//! explicit width, decoders recover variable widths *arithmetically*
//! from [`BitReader::remaining`]: the frame header carries the exact
//! logical bit count, fixed-width fields are subtracted, and whatever
//! remains determines the id width (each message type documents its
//! layout). This keeps wire frames exactly as large as the theory
//! charges for them.
//!
//! Bits are packed LSB-first within each byte; multi-field messages are
//! concatenated in field order with no padding. Unused trailing bits of
//! the last payload byte are zero.

use crate::message::{Raw, WireSize};
use std::fmt;

/// Why a frame could not be decoded. Frames are produced by
/// [`WireCodec::encode`] in the same process, so any of these indicates
/// a codec/`WireSize` bug (or a corrupted frame), not a runtime
/// condition a protocol should handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The decoder asked for more bits than the frame holds.
    OutOfBits {
        /// Bits requested by the failing read.
        needed: u64,
        /// Bits left in the frame.
        remaining: u64,
    },
    /// Decoding finished with bits left over.
    Trailing {
        /// Undecoded bits at the end of the frame.
        remaining: u64,
    },
    /// A field held a value no encoder produces (bad tag, impossible
    /// width, inconsistent length).
    Invalid {
        /// Which field or invariant was violated.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The byte frame itself is malformed (header/length mismatch).
    Frame {
        /// What was wrong with the frame.
        reason: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::OutOfBits { needed, remaining } => {
                write!(f, "decoder needs {needed} bits but only {remaining} remain")
            }
            CodecError::Trailing { remaining } => {
                write!(f, "{remaining} undecoded bits left in frame")
            }
            CodecError::Invalid { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            CodecError::Frame { reason } => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Accumulates bits LSB-first into a byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    len_bits: u64,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value` (LSB-first).
    ///
    /// # Panics
    /// If `width > 64` or `value` has bits above `width` set — an encoder
    /// writing a value that does not fit its declared field is exactly
    /// the dishonesty this layer exists to catch.
    pub fn put(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "field width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut v = value;
        let mut w = width;
        while w > 0 {
            let bit_off = (self.len_bits % 8) as u32;
            if bit_off == 0 {
                self.buf.push(0);
            }
            let take = (8 - bit_off).min(w);
            let mask = (1u64 << take) - 1;
            *self.buf.last_mut().expect("pushed above") |= ((v & mask) as u8) << bit_off;
            v >>= take;
            self.len_bits += u64::from(take);
            w -= take;
        }
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.len_bits
    }

    /// The packed bytes (`⌈bit_len/8⌉` of them, trailing bits zero).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits LSB-first from a byte slice with an exact bit length.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
    len_bits: u64,
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes` holding exactly `len_bits` bits.
    ///
    /// # Errors
    /// [`CodecError::Frame`] if `bytes.len() != ⌈len_bits/8⌉`.
    pub fn new(bytes: &'a [u8], len_bits: u64) -> Result<Self, CodecError> {
        let want = len_bits.div_ceil(8);
        if bytes.len() as u64 != want {
            return Err(CodecError::Frame {
                reason: format!(
                    "payload is {} bytes but {len_bits} bits need {want}",
                    bytes.len()
                ),
            });
        }
        Ok(BitReader {
            bytes,
            pos: 0,
            len_bits,
        })
    }

    /// Reads the next `width` bits as an LSB-first value.
    ///
    /// # Errors
    /// [`CodecError::OutOfBits`] if fewer than `width` bits remain.
    pub fn take(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64, "field width {width} > 64");
        if u64::from(width) > self.remaining() {
            return Err(CodecError::OutOfBits {
                needed: u64::from(width),
                remaining: self.remaining(),
            });
        }
        let mut v: u64 = 0;
        let mut got: u32 = 0;
        while got < width {
            let byte = self.bytes[(self.pos / 8) as usize];
            let bit_off = (self.pos % 8) as u32;
            let take = (8 - bit_off).min(width - got);
            let mask = ((1u16 << take) - 1) as u8;
            v |= u64::from((byte >> bit_off) & mask) << got;
            self.pos += u64::from(take);
            got += take;
        }
        Ok(v)
    }

    /// Bits not yet consumed. Decoders use this to size trailing
    /// variable-width (id) fields — see the module docs.
    pub fn remaining(&self) -> u64 {
        self.len_bits - self.pos
    }

    /// Asserts every bit was consumed.
    ///
    /// # Errors
    /// [`CodecError::Trailing`] if bits remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Byte-frame layout: a 12-byte header (`payload_len: u32 LE`,
/// `logical_bits: u64 LE`) followed by `payload_len` payload bytes.
/// `payload_len == ⌈logical_bits/8⌉` always; both are carried so a
/// receiver can validate the frame against the sender's size claim.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Serialization contract for messages that cross the distributed
/// engine's byte channels.
///
/// `encode` must write exactly `self.bits().max(1)` bits and `decode`
/// must invert it; [`WireCodec::encode_frame`] asserts the former at
/// runtime for every shipped message. Compound decoders may rely on
/// [`BitReader::remaining`] to infer trailing variable-width fields,
/// which makes some impls (notably [`Raw`] and `Vec<T>`) *greedy*: they
/// consume the whole rest of the frame and therefore must be the last
/// field of an enclosing message.
pub trait WireCodec: WireSize + Sized {
    /// Appends this message's bits to `w` (exactly `bits().max(1)` of
    /// them).
    fn encode(&self, w: &mut BitWriter);

    /// Reconstructs a message from its bits.
    ///
    /// # Errors
    /// Any [`CodecError`] on a frame no encoder produces.
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError>;

    /// Encodes into a length-prefixed byte frame (see
    /// [`FRAME_HEADER_BYTES`]).
    ///
    /// # Panics
    /// If `encode` wrote a different number of bits than
    /// [`WireSize::bits`] claims — the wire-validation teeth of the
    /// distributed engine.
    fn encode_frame(&self) -> Vec<u8> {
        let claimed = self.bits().max(1);
        let mut w = BitWriter::new();
        self.encode(&mut w);
        assert_eq!(
            w.bit_len(),
            claimed,
            "WireCodec/WireSize mismatch for {}: encoded {} bits, claims {}",
            std::any::type_name::<Self>(),
            w.bit_len(),
            claimed
        );
        let payload = w.into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&claimed.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Parses a frame produced by [`WireCodec::encode_frame`], returning
    /// the message and its logical bit count.
    ///
    /// # Errors
    /// Any [`CodecError`] on a malformed frame.
    fn decode_frame(frame: &[u8]) -> Result<(Self, u64), CodecError> {
        let (payload, bits) = split_frame(frame)?;
        let mut r = BitReader::new(payload, bits)?;
        let msg = Self::decode(&mut r)?;
        r.finish()?;
        Ok((msg, bits))
    }
}

/// Splits a frame into `(payload, logical_bits)`, validating the header.
///
/// # Errors
/// [`CodecError::Frame`] on truncation or a length/bit-count mismatch.
pub fn split_frame(frame: &[u8]) -> Result<(&[u8], u64), CodecError> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(CodecError::Frame {
            reason: format!("{} bytes is shorter than the header", frame.len()),
        });
    }
    let payload_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
    let bits = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
    let payload = &frame[FRAME_HEADER_BYTES..];
    if payload.len() != payload_len {
        return Err(CodecError::Frame {
            reason: format!(
                "header claims {payload_len} payload bytes, got {}",
                payload.len()
            ),
        });
    }
    if payload_len as u64 != bits.div_ceil(8) || bits == 0 {
        return Err(CodecError::Frame {
            reason: format!("{bits} logical bits inconsistent with {payload_len} payload bytes"),
        });
    }
    Ok((payload, bits))
}

/// Test helper: asserts that encode → frame → decode is the identity for
/// `value` and that the frame is exactly `⌈bits/8⌉` payload bytes plus
/// the header. Every crate defining a [`WireCodec`] uses this in its
/// round-trip proptests, so the check lives here rather than being
/// copied into each one.
///
/// # Panics
/// If any part of the round trip disagrees with the `WireSize` claim.
pub fn assert_roundtrip<T: WireCodec + PartialEq + fmt::Debug>(value: &T) {
    let frame = value.encode_frame();
    assert_eq!(
        frame.len(),
        FRAME_HEADER_BYTES + value.bits().max(1).div_ceil(8) as usize,
        "frame length must match the WireSize claim for {value:?}"
    );
    let (back, bits) = T::decode_frame(&frame).expect("decode");
    assert_eq!(&back, value, "decode(encode(v)) != v");
    assert_eq!(bits, value.bits().max(1), "frame bit count for {value:?}");
}

impl WireCodec for () {
    fn encode(&self, w: &mut BitWriter) {
        w.put(0, 1);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        r.take(1)?;
        Ok(())
    }
}

impl WireCodec for bool {
    fn encode(&self, w: &mut BitWriter) {
        w.put(u64::from(*self), 1);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(1)? != 0)
    }
}

macro_rules! int_codec {
    ($($t:ty => $w:expr),* $(,)?) => {$(
        impl WireCodec for $t {
            fn encode(&self, w: &mut BitWriter) {
                w.put(*self as u64, $w);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
                Ok(r.take($w)? as $t)
            }
        }
    )*};
}
int_codec!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

impl WireCodec for i32 {
    fn encode(&self, w: &mut BitWriter) {
        w.put(u64::from(*self as u32), 32);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(32)? as u32 as i32)
    }
}

impl WireCodec for i64 {
    fn encode(&self, w: &mut BitWriter) {
        w.put(*self as u64, 64);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(64)? as i64)
    }
}

impl WireCodec for f64 {
    fn encode(&self, w: &mut BitWriter) {
        w.put(self.to_bits(), 64);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(r.take(64)?))
    }
}

/// Greedy: a `Raw` consumes every remaining bit (its `WireSize` is
/// `8·len`, or 1 for the empty payload), so it must be the last field
/// of an enclosing message.
impl WireCodec for Raw {
    fn encode(&self, w: &mut BitWriter) {
        if self.0.is_empty() {
            w.put(0, 1);
            return;
        }
        for &b in self.0.iter() {
            w.put(u64::from(b), 8);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let remaining = r.remaining();
        if remaining == 1 {
            r.take(1)?;
            return Ok(Raw::from_vec(Vec::new()));
        }
        if !remaining.is_multiple_of(8) {
            return Err(CodecError::Invalid {
                what: "Raw bit length (not a whole number of bytes)",
                value: remaining,
            });
        }
        let mut v = Vec::with_capacity((remaining / 8) as usize);
        for _ in 0..remaining / 8 {
            v.push(r.take(8)? as u8);
        }
        Ok(Raw::from_vec(v))
    }
}

/// Field order `A` then `B`; `A` must be self-delimiting (fixed width).
impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, w: &mut BitWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// 32-bit length prefix then elements, matching its `WireSize`.
impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, w: &mut BitWriter) {
        w.put(self.len() as u64, 32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let len = r.take(32)?;
        // Every element encoding is ≥ 1 bit, so a length beyond the
        // remaining bits is unconditionally bogus (and would OOM).
        if len > r.remaining() {
            return Err(CodecError::Invalid {
                what: "Vec length exceeds remaining bits",
                value: len,
            });
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: T) {
        assert_roundtrip(&value);
    }

    #[test]
    fn bit_writer_reader_inverse_on_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xFFFF_FFFF_FFFF_FFFF, 64);
        w.put(0, 1);
        w.put(0x2A, 7);
        assert_eq!(w.bit_len(), 75);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 10);
        let mut r = BitReader::new(&bytes, 75).unwrap();
        assert_eq!(r.take(3).unwrap(), 0b101);
        assert_eq!(r.take(64).unwrap(), u64::MAX);
        assert_eq!(r.take(1).unwrap(), 0);
        assert_eq!(r.remaining(), 7);
        assert_eq!(r.take(7).unwrap(), 0x2A);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_overreads_and_trailing_bits() {
        let bytes = [0u8; 2];
        let mut r = BitReader::new(&bytes, 10).unwrap();
        r.take(4).unwrap();
        assert!(matches!(
            r.take(7),
            Err(CodecError::OutOfBits {
                needed: 7,
                remaining: 6
            })
        ));
        assert!(matches!(
            r.finish(),
            Err(CodecError::Trailing { remaining: 6 })
        ));
        assert!(BitReader::new(&bytes, 17).is_err(), "length mismatch");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn writer_rejects_oversized_values() {
        BitWriter::new().put(4, 2);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0xABu8);
        roundtrip(0xDEADu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-7i32);
        roundtrip(i64::MIN);
        roundtrip(-0.0f64);
        roundtrip(std::f64::consts::PI);
        roundtrip(Raw::from_vec(vec![]));
        roundtrip(Raw::from_vec(vec![1, 2, 3, 255]));
        roundtrip((0xAAu8, 0x55AAu16));
        roundtrip(vec![1u16, 2, 3]);
        roundtrip(Vec::<u32>::new());
    }

    #[test]
    fn frame_validation_catches_corruption() {
        let frame = 0x1234_5678u32.encode_frame();
        // Truncated payload.
        assert!(u32::decode_frame(&frame[..frame.len() - 1]).is_err());
        // Header shorter than 12 bytes.
        assert!(u32::decode_frame(&frame[..4]).is_err());
        // Lying bit count.
        let mut bad = frame.clone();
        bad[4] = 7; // 7 bits can't need 4 payload bytes
        assert!(u32::decode_frame(&bad).is_err());
    }

    #[test]
    fn vec_rejects_bogus_length() {
        // A frame claiming 2^32-1 elements in 32 bits of payload.
        let mut w = BitWriter::new();
        w.put(u32::MAX as u64, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes, 32).unwrap();
        assert!(matches!(
            Vec::<u8>::decode(&mut r),
            Err(CodecError::Invalid { .. })
        ));
    }

    proptest! {
        #[test]
        fn u64_fields_roundtrip_any_width(v in 0u64..=u64::MAX, cut in 0u32..64) {
            // Writing the low `width` bits then reading them back is the
            // identity for every width.
            let width = cut + 1;
            let masked = if width == 64 { v } else { v & ((1 << width) - 1) };
            let mut w = BitWriter::new();
            w.put(masked, width);
            w.put(0b1, 1); // misalign the tail
            let len = w.bit_len();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes, len).unwrap();
            prop_assert_eq!(r.take(width).unwrap(), masked);
            prop_assert_eq!(r.take(1).unwrap(), 1);
            r.finish().unwrap();
        }

        #[test]
        fn raw_roundtrips(bytes in collection::vec(0u8..=255, 0..40)) {
            roundtrip(Raw::from_vec(bytes));
        }

        #[test]
        fn vecs_roundtrip(v in collection::vec(0u64..=u64::MAX, 0..20)) {
            roundtrip(v);
        }
    }
}
