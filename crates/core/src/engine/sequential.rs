//! The deterministic single-threaded reference engine.

use crate::config::NetConfig;
use crate::engine::{quiescent, Network};
use crate::error::EngineError;
use crate::message::{Envelope, Outbox};
use crate::metrics::RunReport;
use crate::protocol::{Protocol, RoundCtx, Status};
use crate::rng;

/// Runs a protocol instance per machine to quiescence, single-threaded.
///
/// Given the same [`NetConfig`] (including seed) and initial machine
/// states, every run produces the same transcript, metrics, and outputs.
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialEngine;

impl SequentialEngine {
    /// Executes `machines` under `config`.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if the config fails
    /// [`NetConfig::validate`] or `machines.len() != config.k`;
    /// [`EngineError::RoundLimitExceeded`] if the safety valve fires.
    pub fn run<P: Protocol>(
        config: NetConfig,
        mut machines: Vec<P>,
    ) -> Result<RunReport<P>, EngineError> {
        config.validate()?;
        if machines.len() != config.k {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "one protocol instance per machine: got {} for k = {}",
                    machines.len(),
                    config.k
                ),
            });
        }
        let k = config.k;
        let mut net: Network<P::Msg> = Network::new(k);
        let mut rngs: Vec<_> = (0..k).map(|i| rng::machine_rng(config.seed, i)).collect();
        let shared = rng::shared_seed(config.seed);
        let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = (0..k).map(|_| Vec::new()).collect();
        let mut statuses = vec![Status::Active; k];
        let mut outbox = Outbox::new(k);
        let mut iterations: u64 = 0;
        let mut comm_rounds: u64 = 0;

        loop {
            for (i, machine) in machines.iter_mut().enumerate() {
                let mut ctx = RoundCtx {
                    round: iterations,
                    me: i,
                    k,
                    bandwidth_bits: config.bandwidth_bits,
                    shared_seed: shared,
                    rng: &mut rngs[i],
                };
                statuses[i] = machine.round(&mut ctx, &mut inboxes[i], &mut outbox);
                for (dst, msg) in outbox.drain() {
                    net.stage(i, dst, msg);
                }
            }
            for ib in &mut inboxes {
                ib.clear();
            }
            if net.deliver(config.bandwidth_bits, &mut inboxes) {
                comm_rounds += 1;
            }
            iterations += 1;
            if quiescent(&statuses, &net, &inboxes) {
                break;
            }
            if iterations >= config.max_rounds {
                return Err(EngineError::RoundLimitExceeded {
                    limit: config.max_rounds,
                    active_machines: statuses.iter().filter(|s| **s == Status::Active).count(),
                    queued_msgs: net.queued(),
                    queued_bits: net.queued_bits(),
                });
            }
        }
        net.finalize();
        net.metrics.rounds = comm_rounds;
        Ok(RunReport {
            machines,
            metrics: net.metrics,
            wire: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireSize;
    use crate::Envelope as Env;

    /// Each machine sends `count` unit messages to machine 0, then stops.
    struct Flood {
        count: u64,
        received: u64,
    }

    #[derive(Clone)]
    struct Unit;
    impl WireSize for Unit {
        fn bits(&self) -> u64 {
            8
        }
    }

    impl Protocol for Flood {
        type Msg = Unit;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Env<Unit>>,
            out: &mut crate::message::Outbox<Unit>,
        ) -> Status {
            self.received += inbox.len() as u64;
            if ctx.round == 0 && ctx.me != 0 {
                for _ in 0..self.count {
                    out.send(0, Unit);
                }
                return Status::Active;
            }
            Status::Done
        }
    }

    #[test]
    fn flood_round_count_matches_bandwidth() {
        // 3 senders each send 16 messages of 8 bits to machine 0 over their
        // own links; B = 32 bits/round ⇒ 4 messages/round ⇒ 4 comm rounds.
        let cfg = NetConfig::with_bandwidth(4, 32, 1);
        let machines: Vec<Flood> = (0..4)
            .map(|_| Flood {
                count: 16,
                received: 0,
            })
            .collect();
        let report = SequentialEngine::run(cfg, machines).unwrap();
        assert_eq!(report.metrics.rounds, 4);
        assert_eq!(report.machines[0].received, 48);
        assert_eq!(report.metrics.total_msgs(), 48);
        assert_eq!(report.metrics.recv_bits[0], 48 * 8);
        assert_eq!(report.metrics.max_link_bits, 128);
    }

    /// Ping-pong between two machines, `hops` times.
    struct PingPong {
        hops: u64,
        seen: u64,
    }

    impl Protocol for PingPong {
        type Msg = u64;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Env<u64>>,
            out: &mut crate::message::Outbox<u64>,
        ) -> Status {
            if ctx.round == 0 && ctx.me == 0 {
                out.send(1, 1);
                return Status::Active;
            }
            for env in inbox {
                self.seen = env.msg;
                if env.msg < self.hops {
                    out.send(env.src, env.msg + 1);
                    return Status::Active;
                }
            }
            Status::Done
        }
    }

    #[test]
    fn ping_pong_counts_rounds() {
        let cfg = NetConfig::with_bandwidth(2, 64, 0);
        let report = SequentialEngine::run(
            cfg,
            vec![PingPong { hops: 6, seen: 0 }, PingPong { hops: 6, seen: 0 }],
        )
        .unwrap();
        // 6 messages cross the link, one per round.
        assert_eq!(report.metrics.rounds, 6);
        assert_eq!(report.metrics.total_msgs(), 6);
    }

    /// A protocol that never terminates.
    #[derive(Debug)]
    struct Chatter;
    impl Protocol for Chatter {
        type Msg = u8;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            _inbox: &mut Vec<Env<u8>>,
            out: &mut crate::message::Outbox<u8>,
        ) -> Status {
            out.send((ctx.me + 1) % ctx.k, 1);
            Status::Active
        }
    }

    #[test]
    fn round_limit_fires() {
        let cfg = NetConfig::with_bandwidth(3, 64, 0).max_rounds(10);
        let err = SequentialEngine::run(cfg, vec![Chatter, Chatter, Chatter]).unwrap_err();
        match err {
            EngineError::RoundLimitExceeded {
                limit,
                active_machines,
                ..
            } => {
                assert_eq!(limit, 10);
                assert_eq!(active_machines, 3);
            }
            other => panic!("expected RoundLimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn machine_count_mismatch_is_an_error() {
        let cfg = NetConfig::with_bandwidth(3, 64, 0);
        let err = SequentialEngine::run(cfg, vec![Chatter, Chatter]).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    }

    /// Self-sends are free and delivered next round.
    struct SelfTalk {
        got: bool,
    }
    impl Protocol for SelfTalk {
        type Msg = u64;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Env<u64>>,
            out: &mut crate::message::Outbox<u64>,
        ) -> Status {
            if ctx.round == 0 {
                out.send(ctx.me, 42);
                return Status::Active;
            }
            if inbox.iter().any(|e| e.msg == 42 && e.src == ctx.me) {
                self.got = true;
            }
            Status::Done
        }
    }

    #[test]
    fn self_sends_are_free() {
        let cfg = NetConfig::with_bandwidth(2, 8, 0);
        let report =
            SequentialEngine::run(cfg, vec![SelfTalk { got: false }, SelfTalk { got: false }])
                .unwrap();
        assert!(report.machines[0].got && report.machines[1].got);
        assert_eq!(report.metrics.total_msgs(), 0);
        assert_eq!(report.metrics.rounds, 0); // no link traffic at all
    }

    #[test]
    fn immediate_quiescence() {
        struct Idle;
        impl Protocol for Idle {
            type Msg = u8;
            fn round(
                &mut self,
                _ctx: &mut RoundCtx<'_>,
                _inbox: &mut Vec<Env<u8>>,
                _out: &mut crate::message::Outbox<u8>,
            ) -> Status {
                Status::Done
            }
        }
        let report =
            SequentialEngine::run(NetConfig::with_bandwidth(3, 8, 0), vec![Idle, Idle, Idle])
                .unwrap();
        assert_eq!(report.metrics.rounds, 0);
    }
}
