//! The message-passing engine: one OS thread per machine, real byte
//! channels per ordered link.
//!
//! Where [`super::SequentialEngine`] and [`super::ParallelEngine`]
//! simulate the network in process (messages move as in-memory values
//! and never serialize), this engine actually *ships bytes*: every
//! link message is encoded by [`WireCodec`] into a length-prefixed
//! frame, pushed through that ordered pair's bounded byte channel, and
//! decoded on receipt into the destination's per-source FIFO
//! [`Link`] — the same bandwidth-limited structure the other engines
//! use — before the per-round budget releases it. A [`WireReport`]
//! records what the frames measured against the logical [`WireSize`]
//! bits.
//!
//! # Round anatomy (coordinator barriers)
//!
//! The caller's thread coordinates; worker `i` owns machine `i`:
//!
//! 1. `Round` — every worker runs [`Protocol::round`] on its locally
//!    held inbox, then encodes and sends its staged messages
//!    (self-sends bypass serialization and stay local, free — the same
//!    drain-and-move semantics as the other engines). It answers
//!    `Sent`.
//! 2. The coordinator collects all `Sent`s, then issues `Deliver`. The
//!    channel operations on this path establish the happens-before
//!    edges that make every round-`r` frame visible to its receiver's
//!    drain — no frame can straggle into a later round.
//! 3. Each worker drains its incoming channels into per-source links,
//!    runs the same sorted active-source, budget-limited delivery walk
//!    as the in-process engines' `Network::deliver` (its slice of it,
//!    preserving the
//!    sparse-delivery invariant: only links with queued traffic are
//!    visited, counted in [`crate::Metrics::link_visits`]), and reports
//!    its status and local queue depths.
//! 4. The coordinator aggregates: quiescence and the round limit are
//!    checked exactly as in the sequential engine, so error cases are
//!    bit-identical too.
//!
//! Bounded channels mean a sender can hit a full link mid-round; it
//! then drains its *own* incoming channels while retrying. Every
//! blocked or barrier-waiting worker keeps draining, so the wait-for
//! graph never contains a cycle of non-draining threads and the round
//! always completes — this is what lets the channels stay bounded
//! without a per-round capacity proportional to the traffic.
//!
//! # Bit-identity
//!
//! [`Metrics`] are accounted from the *logical* sizes (sender side at
//! staging, receiver side from the sizes carried in frame headers),
//! and the per-link FIFO/budget structure is byte-for-byte the
//! sequential engine's — so outputs, metrics, RNG streams, and even
//! error payloads are bit-identical across all three engines (enforced
//! by `tests/engine_equivalence.rs` and `tests/engine_fuzz.rs`). The
//! measured frame bytes appear only in the separate [`WireReport`].

use crate::codec::{WireCodec, FRAME_HEADER_BYTES};
use crate::config::NetConfig;
use crate::error::EngineError;
use crate::link::Link;
use crate::message::{Envelope, Outbox, WireSize};
use crate::metrics::{Metrics, RunReport, WireReport};
use crate::protocol::{Protocol, RoundCtx, Status};
use crate::rng;
use crate::MachineIdx;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};

/// Frames a link channel buffers before senders feel backpressure.
/// Small enough that heavy rounds actually exercise the drain-while-
/// blocked path (stress-tested in `tests/` at k = 64).
const LINK_CHANNEL_FRAMES: usize = 32;

enum Cmd {
    /// Run one protocol round and send the staged frames.
    Round { round: u64 },
    /// All peers have sent; drain, deliver under the budget, report.
    Deliver,
    /// Ship the final state back and exit.
    Finish,
}

/// Per-round worker report after its delivery phase.
struct RoundDone {
    status: Status,
    /// Whether any of this worker's incoming links moved ≥ 1 bit.
    any_link_bits: bool,
    /// Messages queued locally (links + self-queue) after delivery.
    queued_msgs: usize,
    /// Undelivered link bits queued locally after delivery.
    queued_bits: u64,
    inbox_empty: bool,
}

/// Everything a worker accumulated, shipped back on `Finish`.
struct FinalState<P> {
    proto: P,
    sent_msgs: u64,
    sent_bits: u64,
    recv_msgs: u64,
    recv_bits: u64,
    link_visits: u64,
    /// `(messages, bits)` totals per incoming link, indexed by source.
    link_totals: Vec<(u64, u64)>,
    frames: u64,
    frame_bytes: u64,
    payload_bytes: u64,
}

enum Resp<P> {
    Sent,
    Round(RoundDone),
    Final(Box<FinalState<P>>),
}

/// Machine `i`'s slice of the network: its incoming links, self-queue,
/// and active-source index — the per-destination state
/// [`super::Network`] keeps centrally, kept here by the owning worker.
struct Inlinks<M> {
    me: MachineIdx,
    /// Incoming links indexed by source (`links[me]` unused).
    links: Vec<Link<M>>,
    /// Decoded-free self-sends waiting for this round's delivery.
    self_queue: Vec<Envelope<M>>,
    /// Sorted sources with queued traffic (contains `me` iff the
    /// self-queue is non-empty) — the sparse-delivery index.
    active: Vec<MachineIdx>,
    queued_msgs: usize,
    queued_bits: u64,
    recv_msgs: u64,
    recv_bits: u64,
    link_visits: u64,
}

impl<M: WireSize> Inlinks<M> {
    fn new(k: usize, me: MachineIdx) -> Self {
        let mut links = Vec::with_capacity(k);
        links.resize_with(k, Link::default);
        Inlinks {
            me,
            links,
            self_queue: Vec::new(),
            active: Vec::new(),
            queued_msgs: 0,
            queued_bits: 0,
            recv_msgs: 0,
            recv_bits: 0,
            link_visits: 0,
        }
    }

    fn activate(&mut self, src: MachineIdx) {
        let pos = self
            .active
            .binary_search(&src)
            .expect_err("activated twice without draining");
        self.active.insert(pos, src);
    }

    /// A self-send: free, no serialization, delivered this round.
    fn stage_self(&mut self, msg: M) {
        self.queued_msgs += 1;
        if self.self_queue.is_empty() {
            self.activate(self.me);
        }
        self.self_queue.push(Envelope { src: self.me, msg });
    }

    /// A decoded frame from `src` enters that link's FIFO. `bits` is
    /// the logical size from the frame header; `push_sized` cross-checks
    /// it against the decoded message's own claim in debug builds.
    fn absorb(&mut self, src: MachineIdx, msg: M, bits: u64) {
        if self.links[src].is_empty() {
            self.activate(src);
        }
        self.links[src].push_sized(Envelope { src, msg }, bits);
        self.queued_msgs += 1;
        self.queued_bits += bits;
    }

    /// This machine's slice of [`super::Network::deliver`]: walk the
    /// sorted active sources, release up to `budget` bits per link,
    /// account received sizes from the staged (header) sizes. Returns
    /// whether any link moved bits.
    fn deliver(&mut self, budget: u64, inbox: &mut Vec<Envelope<M>>) -> bool {
        let mut any = false;
        let mut sources = std::mem::take(&mut self.active);
        sources.retain(|&src| {
            if src == self.me {
                self.queued_msgs -= self.self_queue.len();
                inbox.append(&mut self.self_queue);
                return false; // self-queues always drain fully
            }
            self.link_visits += 1;
            let link = &mut self.links[src];
            let d = link.deliver(budget, inbox);
            if d.bits_used > 0 {
                any = true;
            }
            self.recv_msgs += d.msgs;
            self.recv_bits += d.msg_bits;
            self.queued_msgs -= d.msgs as usize;
            self.queued_bits -= d.msg_bits;
            !link.is_empty()
        });
        self.active = sources;
        any
    }
}

/// Drains every incoming channel into the local links, decoding frames
/// on receipt.
fn drain_incoming<M: WireCodec>(rxs: &[Option<Receiver<Vec<u8>>>], inl: &mut Inlinks<M>) {
    for (src, rx) in rxs.iter().enumerate() {
        let Some(rx) = rx else { continue };
        // A disconnected peer already sent everything it ever will;
        // either way the loop ends once all visible frames are in.
        while let Ok(frame) = rx.try_recv() {
            let (msg, bits) = M::decode_frame(&frame).unwrap_or_else(|e| {
                panic!(
                    "machine {}: undecodable frame from machine {src}: {e}",
                    inl.me
                )
            });
            inl.absorb(src, msg, bits);
        }
    }
}

/// The message-passing engine: `k` worker threads, `k·(k−1)` bounded
/// byte channels, a round-barrier coordinator. Transcript-identical to
/// [`super::SequentialEngine`]; additionally measures real frame sizes
/// into a [`WireReport`].
#[derive(Debug, Default, Clone, Copy)]
pub struct DistributedEngine;

impl DistributedEngine {
    /// Executes `machines` under `config`; semantics identical to
    /// [`super::SequentialEngine::run`], plus a populated
    /// [`RunReport::wire`].
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if the config fails
    /// [`NetConfig::validate`] or `machines.len() != config.k`;
    /// [`EngineError::RoundLimitExceeded`] if the safety valve fires
    /// (with the same payload as the sequential engine).
    pub fn run<P>(config: NetConfig, machines: Vec<P>) -> Result<RunReport<P>, EngineError>
    where
        P: Protocol,
        P::Msg: WireCodec,
    {
        config.validate()?;
        if machines.len() != config.k {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "one protocol instance per machine: got {} for k = {}",
                    machines.len(),
                    config.k
                ),
            });
        }
        let k = config.k;
        let shared = rng::shared_seed(config.seed);

        // Byte channels for every ordered pair (the diagonal stays
        // local). Built as k×k option matrices, then each worker moves
        // out its outgoing row and incoming column.
        let mut frame_txs: Vec<Option<Sender<Vec<u8>>>> = Vec::with_capacity(k * k);
        let mut frame_rxs: Vec<Option<Receiver<Vec<u8>>>> = Vec::with_capacity(k * k);
        for src in 0..k {
            for dst in 0..k {
                if src == dst {
                    frame_txs.push(None);
                    frame_rxs.push(None);
                } else {
                    let (tx, rx) = bounded::<Vec<u8>>(LINK_CHANNEL_FRAMES);
                    frame_txs.push(Some(tx));
                    frame_rxs.push(Some(rx));
                }
            }
        }

        crossbeam::thread::scope(|scope| {
            let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(k);
            let mut resp_rxs: Vec<Receiver<Resp<P>>> = Vec::with_capacity(k);
            // Workers in reverse so each can drain its row/column off
            // the tails of the matrices by index arithmetic.
            let mut worker_txs = frame_txs;
            let mut worker_rxs = frame_rxs;
            let mut spawns = Vec::with_capacity(k);
            for me in (0..k).rev() {
                // Outgoing row `me`: txs[me*k ..][dst]; incoming column
                // `me`: rxs[src*k + me].
                let out_txs: Vec<Option<Sender<Vec<u8>>>> =
                    worker_txs.drain(me * k..(me + 1) * k).collect();
                let mut in_rxs: Vec<Option<Receiver<Vec<u8>>>> = Vec::with_capacity(k);
                for src in 0..k {
                    in_rxs.push(worker_rxs[src * k + me].take());
                }
                spawns.push((me, out_txs, in_rxs));
            }
            spawns.reverse();

            for ((me, out_txs, in_rxs), proto) in spawns.into_iter().zip(machines) {
                let (cmd_tx, cmd_rx) = bounded::<Cmd>(1);
                let (resp_tx, resp_rx) = bounded::<Resp<P>>(1);
                cmd_txs.push(cmd_tx);
                resp_rxs.push(resp_rx);
                scope.spawn(move |_| {
                    run_worker(
                        config, me, shared, proto, out_txs, in_rxs, &cmd_rx, &resp_tx,
                    )
                });
            }

            // Coordinator: same control flow, quiescence test, and
            // round-limit ordering as the sequential engine's loop.
            let mut statuses = vec![Status::Active; k];
            let mut iterations: u64 = 0;
            let mut comm_rounds: u64 = 0;
            let result = loop {
                for tx in &cmd_txs {
                    tx.send(Cmd::Round { round: iterations })
                        .expect("worker alive");
                }
                for rx in &resp_rxs {
                    match rx.recv().expect("worker alive") {
                        Resp::Sent => {}
                        _ => unreachable!("Round is answered by Sent first"),
                    }
                }
                for tx in &cmd_txs {
                    tx.send(Cmd::Deliver).expect("worker alive");
                }
                let mut any = false;
                let mut queued_msgs = 0usize;
                let mut queued_bits = 0u64;
                let mut inboxes_empty = true;
                for (i, rx) in resp_rxs.iter().enumerate() {
                    match rx.recv().expect("worker alive") {
                        Resp::Round(r) => {
                            statuses[i] = r.status;
                            any |= r.any_link_bits;
                            queued_msgs += r.queued_msgs;
                            queued_bits += r.queued_bits;
                            inboxes_empty &= r.inbox_empty;
                        }
                        _ => unreachable!("Deliver is answered by Round"),
                    }
                }
                if any {
                    comm_rounds += 1;
                }
                iterations += 1;
                if statuses.iter().all(|s| *s == Status::Done) && queued_msgs == 0 && inboxes_empty
                {
                    break Ok(());
                }
                if iterations >= config.max_rounds {
                    break Err(EngineError::RoundLimitExceeded {
                        limit: config.max_rounds,
                        active_machines: statuses.iter().filter(|s| **s == Status::Active).count(),
                        queued_msgs,
                        queued_bits,
                    });
                }
            };

            // Collect final states (always, even on error, to join).
            let mut finals: Vec<FinalState<P>> = Vec::with_capacity(k);
            for tx in &cmd_txs {
                tx.send(Cmd::Finish).expect("worker alive");
            }
            for rx in &resp_rxs {
                match rx.recv().expect("worker alive") {
                    Resp::Final(f) => finals.push(*f),
                    _ => unreachable!("Finish yields Final"),
                }
            }
            result.map(|_| assemble(k, comm_rounds, finals))
        })
        .expect("worker thread panicked")
    }
}

/// Merges the per-worker slices into the run report; field-for-field
/// the same aggregation the central `Network` performs.
fn assemble<P>(k: usize, comm_rounds: u64, finals: Vec<FinalState<P>>) -> RunReport<P> {
    let mut metrics = Metrics::new(k);
    metrics.rounds = comm_rounds;
    let mut wire = WireReport {
        frames: 0,
        frame_bytes: 0,
        payload_bytes: 0,
        logical_bits: 0,
    };
    let mut machines = Vec::with_capacity(k);
    for (i, f) in finals.into_iter().enumerate() {
        metrics.sent_msgs[i] = f.sent_msgs;
        metrics.sent_bits[i] = f.sent_bits;
        metrics.recv_msgs[i] = f.recv_msgs;
        metrics.recv_bits[i] = f.recv_bits;
        metrics.link_visits += f.link_visits;
        metrics.max_link_bits = metrics.max_link_bits.max(
            f.link_totals
                .iter()
                .map(|&(_, bits)| bits)
                .max()
                .unwrap_or(0),
        );
        wire.frames += f.frames;
        wire.frame_bytes += f.frame_bytes;
        wire.payload_bytes += f.payload_bytes;
        wire.logical_bits += f.sent_bits;
        machines.push(f.proto);
    }
    RunReport {
        machines,
        metrics,
        wire: Some(wire),
    }
}

/// The worker loop for machine `me`.
#[allow(clippy::too_many_arguments)]
fn run_worker<P>(
    config: NetConfig,
    me: MachineIdx,
    shared: u64,
    mut proto: P,
    out_txs: Vec<Option<Sender<Vec<u8>>>>,
    in_rxs: Vec<Option<Receiver<Vec<u8>>>>,
    cmd_rx: &Receiver<Cmd>,
    resp_tx: &Sender<Resp<P>>,
) where
    P: Protocol,
    P::Msg: WireCodec,
{
    let k = config.k;
    let mut rng = rng::machine_rng(config.seed, me);
    let mut inl: Inlinks<P::Msg> = Inlinks::new(k, me);
    let mut inbox: Vec<Envelope<P::Msg>> = Vec::new();
    let mut outbox: Outbox<P::Msg> = Outbox::new(k);
    let (mut sent_msgs, mut sent_bits) = (0u64, 0u64);
    let (mut frames, mut frame_bytes, mut payload_bytes) = (0u64, 0u64, 0u64);

    loop {
        match cmd_rx.recv().expect("coordinator alive") {
            Cmd::Round { round } => {
                let mut ctx = RoundCtx {
                    round,
                    me,
                    k,
                    bandwidth_bits: config.bandwidth_bits,
                    shared_seed: shared,
                    rng: &mut rng,
                };
                let status = proto.round(&mut ctx, &mut inbox, &mut outbox);
                inbox.clear();
                for (dst, msg) in outbox.drain() {
                    if dst == me {
                        inl.stage_self(msg);
                        continue;
                    }
                    // Sender-side accounting uses the logical size, as
                    // at `Network::stage`; the frame is the real bytes.
                    let bits = msg.bits().max(1);
                    sent_msgs += 1;
                    sent_bits += bits;
                    let frame = msg.encode_frame();
                    frames += 1;
                    frame_bytes += frame.len() as u64;
                    payload_bytes += (frame.len() - FRAME_HEADER_BYTES) as u64;
                    let tx = out_txs[dst].as_ref().expect("no self channel");
                    let mut pending = frame;
                    loop {
                        match tx.try_send(pending) {
                            Ok(()) => break,
                            Err(TrySendError::Full(back)) => {
                                // Backpressure: drain our own incoming
                                // channels so the system always makes
                                // progress, then retry.
                                pending = back;
                                drain_incoming(&in_rxs, &mut inl);
                                std::thread::yield_now();
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                panic!("machine {me}: peer {dst} hung up mid-round")
                            }
                        }
                    }
                }
                resp_tx.send(Resp::Sent).expect("coordinator alive");
                // Barrier: keep draining until every peer has finished
                // sending (the coordinator's Deliver certifies it).
                loop {
                    match cmd_rx.try_recv() {
                        Ok(Cmd::Deliver) => break,
                        Ok(_) => unreachable!("only Deliver follows Sent"),
                        Err(TryRecvError::Empty) => {
                            drain_incoming(&in_rxs, &mut inl);
                            std::thread::yield_now();
                        }
                        Err(TryRecvError::Disconnected) => panic!("coordinator hung up"),
                    }
                }
                drain_incoming(&in_rxs, &mut inl);
                let any_link_bits = inl.deliver(config.bandwidth_bits, &mut inbox);
                resp_tx
                    .send(Resp::Round(RoundDone {
                        status,
                        any_link_bits,
                        queued_msgs: inl.queued_msgs,
                        queued_bits: inl.queued_bits,
                        inbox_empty: inbox.is_empty(),
                    }))
                    .expect("coordinator alive");
            }
            Cmd::Deliver => unreachable!("Deliver only follows a Round"),
            Cmd::Finish => break,
        }
    }
    resp_tx
        .send(Resp::Final(Box::new(FinalState {
            proto,
            sent_msgs,
            sent_bits,
            recv_msgs: inl.recv_msgs,
            recv_bits: inl.recv_bits,
            link_visits: inl.link_visits,
            link_totals: inl.links.iter().map(Link::totals).collect(),
            frames,
            frame_bytes,
            payload_bytes,
        })))
        .expect("coordinator alive");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SequentialEngine;
    use rand::Rng;

    /// Random traffic with self-sends and oversized messages.
    struct Gossip {
        log: Vec<(usize, u32)>,
    }

    impl Protocol for Gossip {
        type Msg = u32;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Envelope<u32>>,
            out: &mut Outbox<u32>,
        ) -> Status {
            for env in inbox {
                self.log.push((env.src, env.msg));
            }
            if ctx.round < 4 {
                for _ in 0..ctx.rng.gen_range(0..5) {
                    let dst = ctx.rng.gen_range(0..ctx.k);
                    out.send(dst, ctx.rng.gen::<u32>());
                }
                Status::Active
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn distributed_matches_sequential_transcript() {
        let mk = || {
            (0..7)
                .map(|_| Gossip { log: Vec::new() })
                .collect::<Vec<_>>()
        };
        // B = 40 bits < one 44-bit... (32-bit messages) — small enough
        // that messages span rounds, exercising partial delivery.
        let cfg = NetConfig::with_bandwidth(7, 40, 2024);
        let seq = SequentialEngine::run(cfg, mk()).unwrap();
        let dist = DistributedEngine::run(cfg, mk()).unwrap();
        assert_eq!(seq.metrics, dist.metrics);
        for (s, d) in seq.machines.iter().zip(&dist.machines) {
            assert_eq!(s.log, d.log);
        }
        assert!(seq.wire.is_none(), "in-process engines never serialize");
        let wire = dist.wire.expect("distributed run measures frames");
        assert_eq!(wire.logical_bits, dist.metrics.total_bits());
        assert_eq!(wire.frames, dist.metrics.total_msgs());
        // Every frame: 12-byte header + ⌈32/8⌉ = 4 payload bytes.
        assert_eq!(wire.frame_bytes, wire.frames * 16);
        assert_eq!(wire.payload_bytes, wire.frames * 4);
        assert_eq!(wire.padding_bits(), 0, "u32 payloads are byte-aligned");
        assert!(wire.wire_vs_logical() > 1.0);
    }

    #[test]
    fn round_limit_error_is_bit_identical_too() {
        #[derive(Debug)]
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u8;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                _inbox: &mut Vec<Envelope<u8>>,
                out: &mut Outbox<u8>,
            ) -> Status {
                // Overfeed the link so queues build up.
                out.send((ctx.me + 1) % ctx.k, 1);
                out.send((ctx.me + 1) % ctx.k, 2);
                Status::Active
            }
        }
        let cfg = NetConfig::with_bandwidth(4, 8, 0).max_rounds(6);
        let seq = SequentialEngine::run(cfg, vec![Chatter, Chatter, Chatter, Chatter]).unwrap_err();
        let dist =
            DistributedEngine::run(cfg, vec![Chatter, Chatter, Chatter, Chatter]).unwrap_err();
        assert_eq!(seq, dist, "error payloads must agree field-for-field");
    }

    #[test]
    fn single_machine_runs_without_links() {
        struct Solo {
            echoes: u32,
        }
        impl Protocol for Solo {
            type Msg = u64;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                inbox: &mut Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) -> Status {
                self.echoes += inbox.len() as u32;
                if ctx.round < 3 {
                    out.send(0, ctx.round); // self-send
                    Status::Active
                } else {
                    Status::Done
                }
            }
        }
        let report =
            DistributedEngine::run(NetConfig::with_bandwidth(1, 8, 5), vec![Solo { echoes: 0 }])
                .unwrap();
        assert_eq!(report.machines[0].echoes, 3);
        assert_eq!(report.metrics.rounds, 0, "self-sends are free");
        let wire = report.wire.unwrap();
        assert_eq!(wire.frames, 0, "nothing ever crossed a channel");
    }

    /// Messages larger than the channel capacity in one round: the
    /// backpressure drain path must not deadlock or reorder.
    #[test]
    fn channel_backpressure_preserves_fifo() {
        struct Blast {
            got: Vec<u32>,
        }
        impl Protocol for Blast {
            type Msg = u32;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                inbox: &mut Vec<Envelope<u32>>,
                out: &mut Outbox<u32>,
            ) -> Status {
                for env in inbox.iter() {
                    self.got.push(env.msg);
                }
                if ctx.round == 0 {
                    // 4× the channel capacity, pairwise all-to-all.
                    for seq in 0..(4 * LINK_CHANNEL_FRAMES as u32) {
                        for dst in 0..ctx.k {
                            if dst != ctx.me {
                                out.send(dst, seq);
                            }
                        }
                    }
                    Status::Active
                } else {
                    Status::Done
                }
            }
        }
        let k = 4;
        let cfg = NetConfig::with_bandwidth(k, 1 << 20, 3);
        let mk = || {
            (0..k)
                .map(|_| Blast { got: Vec::new() })
                .collect::<Vec<_>>()
        };
        let seq = SequentialEngine::run(cfg, mk()).unwrap();
        let dist = DistributedEngine::run(cfg, mk()).unwrap();
        assert_eq!(seq.metrics, dist.metrics);
        for (s, d) in seq.machines.iter().zip(&dist.machines) {
            assert_eq!(
                s.got, d.got,
                "per-link FIFO order must survive backpressure"
            );
        }
    }
}
