//! The message-passing engine: one OS thread per machine, real byte
//! channels per ordered link, and a self-healing wire.
//!
//! Where [`super::SequentialEngine`] and [`super::ParallelEngine`]
//! simulate the network in process (messages move as in-memory values
//! and never serialize), this engine actually *ships bytes*: each
//! round, everything a machine queued for one destination is encoded
//! by [`crate::codec::encode_batch_frame_into`] into a *single*
//! checksummed, sequence-numbered batch frame, pushed through that
//! ordered pair's bounded byte channel, and decoded on receipt —
//! zero-copy, each message through a borrowed sub-reader over the
//! frame buffer — into the destination's per-source FIFO [`Link`], the
//! same bandwidth-limited structure the other engines use, before the
//! per-round budget releases it. Batching amortizes the 21-byte
//! self-healing header over every message a (link, round) pair
//! carries; a [`WireReport`] records what the frames measured against
//! the logical [`WireSize`] bits.
//!
//! # Round anatomy (coordinator barriers)
//!
//! The caller's thread coordinates; worker `i` owns machine `i`:
//!
//! 1. `Round` — every worker runs [`Protocol::round`] on its locally
//!    held inbox, then ships one batch frame per destination it queued
//!    messages for (self-sends bypass serialization and stay local,
//!    free — the same drain-and-move semantics as the other engines).
//!    It answers `Sent`, carrying its cumulative per-destination batch
//!    counts.
//! 2. The coordinator collects all `Sent`s, transposes the count
//!    matrix, and issues each worker a `Deliver` carrying exactly how
//!    many batch frames it is owed per source.
//! 3. Each worker drains its incoming channels until every owed frame
//!    has been absorbed (see the failure model below for how loss is
//!    repaired), then runs the same sorted active-source,
//!    budget-limited delivery walk as the in-process engines'
//!    `Network::deliver` (its slice of it, preserving the
//!    sparse-delivery invariant: only links with queued traffic are
//!    visited, counted in [`crate::Metrics::link_visits`]), and
//!    reports its status and local queue depths.
//! 4. The coordinator aggregates: quiescence and the round limit are
//!    checked exactly as in the sequential engine, so error cases are
//!    bit-identical too.
//!
//! Bounded channels mean a sender can hit a full link mid-round; the
//! overflow waits in a local per-destination queue that every blocked
//! or barrier-waiting worker keeps pumping while draining its own
//! incoming channels, so the wait-for graph never contains a cycle of
//! non-draining threads and the round always completes.
//!
//! # Failure model
//!
//! The wire tolerates a seeded adversary ([`FaultPlan`]) that drops,
//! duplicates, bit-corrupts, and delays individual frames, and may
//! crash one machine at a round boundary:
//!
//! - **Detection.** Every frame carries a CRC-32 (over the whole
//!   batch) and a per-link sequence number — one per *batch*, which
//!   makes retention buffers and completeness counts smaller, not
//!   larger, than under per-message framing
//!   ([`crate::codec::FRAME_HEADER_BYTES`]). A corrupted frame fails
//!   its checksum and is discarded whole; a missing frame is a
//!   sequence gap against the `Deliver` counts; a duplicated or stale
//!   frame has `seq <` the next expected and is dropped without
//!   touching the logical transcript.
//! - **Recovery.** A receiver still owed frames sends paced NACK
//!   control frames naming the first missing sequence number; the
//!   sender retains the current round's batch frames and retransmits
//!   from that point (retention resets every round — the barrier
//!   proves the previous round was fully absorbed), replaying every
//!   message the lost batch contained exactly once. Out-of-order
//!   arrivals wait in a reorder buffer (as raw validated frames,
//!   decoded only when their gap fills) so links stay FIFO. Recovery
//!   traffic is accounted in [`WireReport::retransmit_frames`] /
//!   [`WireReport::nack_frames`], never in [`Metrics`] — under any
//!   crash-free fault mix the run's `RunOutcome` stays bit-identical
//!   to the sequential engine's.
//! - **Crashes and hangs.** The coordinator waits out a barrier
//!   timeout ([`FaultPlan::barrier_timeout_ms`], default
//!   [`DEFAULT_BARRIER_TIMEOUT_MS`]) and converts silence into
//!   [`EngineError::MachineLost`]. A worker panic (usually the
//!   protocol's own `round`) is caught, reported, and surfaces as
//!   [`EngineError::WorkerPanicked`]. Either way the coordinator
//!   aborts every surviving worker and joins all threads — no orphan
//!   threads, no hung caller, no poisoned panic.
//!
//! Out of scope: recovering the *work* of a crashed machine
//! (checkpoint/restart, state handoff). A crash fails the run with a
//! typed error; it never silently degrades the computation.
//!
//! # Bit-identity
//!
//! [`Metrics`] are accounted from the *logical* sizes (sender side at
//! staging, receiver side from the sizes carried in frame headers, in
//! sequence order exactly once), and the per-link FIFO/budget
//! structure is byte-for-byte the sequential engine's — so outputs,
//! metrics, RNG streams, and even error payloads are bit-identical
//! across all three engines (enforced by `tests/engine_equivalence.rs`,
//! `tests/engine_fuzz.rs`, and under fault injection by
//! `tests/chaos_matrix.rs`). The measured frame bytes appear only in
//! the separate [`WireReport`].

use crate::codec::{
    decode_batch, decode_nack, decode_payload, encode_batch_frame_into, split_frame, BitWriter,
    FrameView, WireCodec, FRAME_HEADER_BYTES, FRAME_KIND_BATCH, FRAME_KIND_NACK,
};
use crate::config::NetConfig;
use crate::error::EngineError;
use crate::faults::FaultPlan;
use crate::link::Link;
use crate::message::{Envelope, Outbox, WireSize};
use crate::metrics::{Metrics, RunReport, WireReport};
use crate::protocol::{Protocol, RoundCtx, Status};
use crate::rng;
use crate::MachineIdx;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use crossbeam::utils::Backoff;
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Frames a link channel buffers before senders feel backpressure.
/// Since the wire batches each (link, round) into a single frame, a
/// channel only ever holds that batch plus recovery traffic (NACKs,
/// retransmits, fault-injected duplicates) — so this is sized small
/// enough that a recovery storm still exercises the drain-while-
/// blocked path (stress-tested in `tests/` at k = 64 and by the chaos
/// matrix), not for bulk data.
const LINK_CHANNEL_FRAMES: usize = 4;

/// Default coordinator barrier timeout (milliseconds): how long a
/// machine may stay silent at a round barrier before the run fails
/// with [`EngineError::MachineLost`]. Generous because a legitimate
/// protocol round may compute for a while; fault tests lower it via
/// [`FaultPlan::barrier_timeout_ms`] and slow CI can raise it through
/// [`BARRIER_TIMEOUT_ENV`].
pub const DEFAULT_BARRIER_TIMEOUT_MS: u64 = 10_000;

/// Environment override for the barrier timeout: a positive integer of
/// milliseconds. Parsed hard, like `KM_FAULTS` — a malformed or zero
/// value fails the run with [`EngineError::InvalidConfig`] instead of
/// being silently ignored. A [`FaultPlan::barrier_timeout_ms`] set by
/// the caller still wins over the environment.
pub const BARRIER_TIMEOUT_ENV: &str = "KM_BARRIER_TIMEOUT_MS";

/// Resolves the effective barrier timeout: explicit plan value, then
/// [`BARRIER_TIMEOUT_ENV`], then [`DEFAULT_BARRIER_TIMEOUT_MS`].
fn barrier_timeout(plan: &FaultPlan) -> Result<Duration, EngineError> {
    let env = std::env::var(BARRIER_TIMEOUT_ENV).ok();
    barrier_timeout_from(plan, env.as_deref())
}

/// [`barrier_timeout`] with the environment value passed in, so the
/// parse rules are testable without planting process-global state.
fn barrier_timeout_from(plan: &FaultPlan, env: Option<&str>) -> Result<Duration, EngineError> {
    if plan.barrier_timeout_ms > 0 {
        return Ok(Duration::from_millis(plan.barrier_timeout_ms));
    }
    match env {
        None => Ok(Duration::from_millis(DEFAULT_BARRIER_TIMEOUT_MS)),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Duration::from_millis(ms)),
            Ok(_) => Err(EngineError::InvalidConfig {
                reason: format!("{BARRIER_TIMEOUT_ENV} must be a positive number of milliseconds"),
            }),
            Err(_) => Err(EngineError::InvalidConfig {
                reason: format!(
                    "{BARRIER_TIMEOUT_ENV}: expected a positive number of milliseconds, got {raw:?}"
                ),
            }),
        },
    }
}

/// Idle receive polls between NACK rounds while a worker is owed
/// frames — paces retransmit requests so a lossy link is repaired
/// without flooding the reverse direction.
const NACK_IDLE_POLLS: u32 = 16;

enum Cmd {
    /// Run one protocol round and send the staged frames.
    Round { round: u64 },
    /// All peers have reported; `expected[src]` is the cumulative
    /// frame count owed from each source — drain until whole, deliver
    /// under the budget, report.
    Deliver { expected: Box<[u32]> },
    /// Ship the final state back and exit.
    Finish,
    /// Teardown after a failure: exit immediately, no final state.
    Abort,
}

/// Per-round worker report after its delivery phase.
struct RoundDone {
    status: Status,
    /// Whether any of this worker's incoming links moved ≥ 1 bit.
    any_link_bits: bool,
    /// Messages queued locally (links + self-queue) after delivery.
    queued_msgs: usize,
    /// Undelivered link bits queued locally after delivery.
    queued_bits: u64,
    inbox_empty: bool,
}

/// Everything a worker accumulated, shipped back on `Finish`.
struct FinalState<P> {
    proto: P,
    sent_msgs: u64,
    sent_bits: u64,
    recv_msgs: u64,
    recv_bits: u64,
    link_visits: u64,
    /// `(messages, bits)` totals per incoming link, indexed by source.
    link_totals: Vec<(u64, u64)>,
    wire: WireCounters,
}

enum Resp<P> {
    /// Round compute + staging done; cumulative frames staged per
    /// destination (the coordinator transposes these into `Deliver`).
    Sent {
        counts: Box<[u32]>,
    },
    Round(RoundDone),
    Final(Box<FinalState<P>>),
    /// The worker's thread panicked; sent best-effort from the panic
    /// handler so the coordinator can type the failure.
    Panicked {
        message: String,
    },
}

/// Per-worker slice of the [`WireReport`].
#[derive(Default)]
struct WireCounters {
    frames: u64,
    messages: u64,
    frame_bytes: u64,
    payload_bytes: u64,
    payload_bits: u64,
    msg_payload_bytes: u64,
    retransmit_frames: u64,
    retransmit_bytes: u64,
    nack_frames: u64,
    nack_bytes: u64,
}

/// Machine `i`'s slice of the network: its incoming links, self-queue,
/// and active-source index — the per-destination state
/// [`super::Network`] keeps centrally, kept here by the owning worker.
struct Inlinks<M> {
    me: MachineIdx,
    /// Incoming links indexed by source (`links[me]` unused).
    links: Vec<Link<M>>,
    /// Decoded-free self-sends waiting for this round's delivery.
    self_queue: Vec<Envelope<M>>,
    /// Sorted sources with queued traffic (contains `me` iff the
    /// self-queue is non-empty) — the sparse-delivery index.
    active: Vec<MachineIdx>,
    queued_msgs: usize,
    queued_bits: u64,
    recv_msgs: u64,
    recv_bits: u64,
    link_visits: u64,
}

impl<M: WireSize> Inlinks<M> {
    fn new(k: usize, me: MachineIdx) -> Self {
        let mut links = Vec::with_capacity(k);
        links.resize_with(k, Link::default);
        Inlinks {
            me,
            links,
            self_queue: Vec::new(),
            active: Vec::new(),
            queued_msgs: 0,
            queued_bits: 0,
            recv_msgs: 0,
            recv_bits: 0,
            link_visits: 0,
        }
    }

    fn activate(&mut self, src: MachineIdx) {
        let pos = self
            .active
            .binary_search(&src)
            // lint: allow(panic) — data-structure invariant: callers only activate a source whose queue was empty
            .expect_err("activated twice without draining");
        self.active.insert(pos, src);
    }

    /// A self-send: free, no serialization, delivered this round.
    fn stage_self(&mut self, msg: M) {
        self.queued_msgs += 1;
        if self.self_queue.is_empty() {
            self.activate(self.me);
        }
        self.self_queue.push(Envelope { src: self.me, msg });
    }

    /// A decoded frame from `src` enters that link's FIFO. `bits` is
    /// the logical size from the frame header; `push_sized` cross-checks
    /// it against the decoded message's own claim in debug builds.
    fn absorb(&mut self, src: MachineIdx, msg: M, bits: u64) {
        if self.links[src].is_empty() {
            self.activate(src);
        }
        self.links[src].push_sized(Envelope { src, msg }, bits);
        self.queued_msgs += 1;
        self.queued_bits += bits;
    }

    /// This machine's slice of [`super::Network::deliver`]: walk the
    /// sorted active sources, release up to `budget` bits per link,
    /// account received sizes from the staged (header) sizes. Returns
    /// whether any link moved bits.
    fn deliver(&mut self, budget: u64, inbox: &mut Vec<Envelope<M>>) -> bool {
        let mut any = false;
        let mut sources = std::mem::take(&mut self.active);
        sources.retain(|&src| {
            if src == self.me {
                self.queued_msgs -= self.self_queue.len();
                inbox.append(&mut self.self_queue);
                return false; // self-queues always drain fully
            }
            self.link_visits += 1;
            let link = &mut self.links[src];
            let d = link.deliver(budget, inbox);
            if d.bits_used > 0 {
                any = true;
            }
            self.recv_msgs += d.msgs;
            self.recv_bits += d.msg_bits;
            self.queued_msgs -= d.msgs as usize;
            self.queued_bits -= d.msg_bits;
            !link.is_empty()
        });
        self.active = sources;
        any
    }
}

/// The sending half of a worker's wire: outgoing channels, per-link
/// sequence numbers, the current round's retention buffer (for
/// NACK-driven retransmits), overflow/delay queues, and the fault
/// adversary itself.
struct Outwire {
    me: MachineIdx,
    plan: FaultPlan,
    /// Whether the plan can touch frames; when `false` the retention
    /// and fault paths are skipped entirely (the zero-overhead path).
    faulty: bool,
    /// Outgoing channels by destination; `None` for self or a peer
    /// that hung up (crashed).
    txs: Vec<Option<Sender<Vec<u8>>>>,
    /// Next DATA sequence number per destination — cumulative over the
    /// whole run, so stale frames from earlier rounds can never alias
    /// fresh ones.
    seq_next: Vec<u32>,
    /// This round's staged frames per destination, kept for
    /// retransmission. Cleared at round start: the barrier proves the
    /// previous round was fully absorbed.
    retained: Vec<Vec<(u32, Vec<u8>)>>,
    /// Frames waiting for channel capacity (or fault-delayed), FIFO
    /// per destination.
    pending: Vec<VecDeque<Vec<u8>>>,
    /// Physical transmissions attempted per destination — the fault
    /// adversary's decision key, so every attempt draws a fresh fate.
    attempts: Vec<u64>,
    /// NACK ordinals per source being nagged.
    nacks_sent: Vec<u32>,
    counters: WireCounters,
}

impl Outwire {
    fn new(me: MachineIdx, k: usize, plan: FaultPlan, txs: Vec<Option<Sender<Vec<u8>>>>) -> Self {
        Outwire {
            me,
            plan,
            faulty: plan.any(),
            txs,
            seq_next: vec![0; k],
            retained: vec![Vec::new(); k],
            pending: (0..k).map(|_| VecDeque::new()).collect(),
            attempts: vec![0; k],
            nacks_sent: vec![0; k],
            counters: WireCounters::default(),
        }
    }

    /// Drops the previous round's retention — every retained frame was
    /// provably absorbed (the round barrier certifies it).
    fn start_round(&mut self) {
        if self.faulty {
            for r in &mut self.retained {
                r.clear();
            }
        }
    }

    /// Stages one round's queued messages for `dst` as a single batch
    /// frame: assigns the next sequence number, accounts the batch
    /// once (logical accounting is per *first framing*, not per
    /// physical copy — a fault-dropped first transmission still counts
    /// here, its retransmissions never do), retains it for NACKs when
    /// faults are live, and transmits. `scratch` is the worker's
    /// reusable bit buffer; the frame `Vec` is the one allocation per
    /// (link, round), owned by the channel from here on.
    fn stage_batch<M: WireCodec>(&mut self, dst: MachineIdx, msgs: &[M], scratch: &mut BitWriter) {
        let seq = self.seq_next[dst];
        self.seq_next[dst] += 1;
        let mut frame = Vec::new();
        let stats = encode_batch_frame_into(msgs, seq, scratch, &mut frame);
        self.counters.frames += 1;
        self.counters.messages += msgs.len() as u64;
        self.counters.frame_bytes += frame.len() as u64;
        self.counters.payload_bytes += (frame.len() - FRAME_HEADER_BYTES) as u64;
        self.counters.payload_bits += stats.payload_bits;
        self.counters.msg_payload_bytes += stats.solo_payload_bytes;
        if self.faulty {
            self.retained[dst].push((seq, frame.clone()));
        }
        self.transmit(dst, frame);
    }

    /// One physical transmission through the adversary: the frame may
    /// be dropped, duplicated, bit-flipped, or parked in the pending
    /// queue. Never blocks.
    fn transmit(&mut self, dst: MachineIdx, frame: Vec<u8>) {
        if self.txs[dst].is_none() {
            return; // peer hung up: the coordinator will type the failure
        }
        if !self.faulty {
            self.enqueue(dst, frame);
            return;
        }
        let fate = self
            .plan
            .fate(self.me, dst, self.attempts[dst], frame.len() as u64 * 8);
        self.attempts[dst] += 1;
        if fate.drop {
            return;
        }
        if fate.duplicate {
            self.counters.retransmit_frames += 1;
            self.counters.retransmit_bytes += frame.len() as u64;
            self.enqueue(dst, frame.clone());
        }
        let mut frame = frame;
        if let Some(bit) = fate.corrupt_bit {
            frame[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        if fate.delay {
            self.pending[dst].push_back(frame);
        } else {
            self.enqueue(dst, frame);
        }
    }

    /// Channel push with local overflow: a full channel parks the
    /// frame behind any already-pending ones (preserving per-link
    /// FIFO); a disconnected channel means the peer crashed and the
    /// link is void.
    fn enqueue(&mut self, dst: MachineIdx, frame: Vec<u8>) {
        if !self.pending[dst].is_empty() {
            self.pending[dst].push_back(frame);
            return;
        }
        let Some(tx) = self.txs[dst].as_ref() else {
            return;
        };
        match tx.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(frame)) => self.pending[dst].push_back(frame),
            Err(TrySendError::Disconnected(_)) => {
                self.txs[dst] = None;
                self.pending[dst].clear();
            }
        }
    }

    /// Pushes pending frames into channels as capacity frees up.
    fn pump(&mut self) {
        for dst in 0..self.txs.len() {
            while let Some(frame) = self.pending[dst].pop_front() {
                let Some(tx) = self.txs[dst].as_ref() else {
                    self.pending[dst].clear();
                    break;
                };
                match tx.try_send(frame) {
                    Ok(()) => {}
                    Err(TrySendError::Full(frame)) => {
                        self.pending[dst].push_front(frame);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.txs[dst] = None;
                        self.pending[dst].clear();
                        break;
                    }
                }
            }
        }
    }

    fn pending_empty(&self) -> bool {
        self.pending.iter().all(VecDeque::is_empty)
    }

    /// Services a retransmit request from `dst`: re-sends every
    /// retained frame with `seq >= from_seq`, each through the
    /// adversary again. A stale NACK (from a round already absorbed)
    /// at worst re-sends frames the receiver will discard as
    /// duplicates.
    fn handle_nack(&mut self, dst: MachineIdx, from_seq: u32) {
        let frames: Vec<Vec<u8>> = self.retained[dst]
            .iter()
            .filter(|(seq, _)| *seq >= from_seq)
            .map(|(_, frame)| frame.clone())
            .collect();
        for frame in frames {
            self.counters.retransmit_frames += 1;
            self.counters.retransmit_bytes += frame.len() as u64;
            self.transmit(dst, frame);
        }
    }

    /// Asks `src` to retransmit everything from `from_seq` on.
    fn send_nack(&mut self, src: MachineIdx, from_seq: u32) {
        let nack_seq = self.nacks_sent[src];
        self.nacks_sent[src] += 1;
        let frame = crate::codec::encode_nack_frame(from_seq, nack_seq);
        self.counters.nack_frames += 1;
        self.counters.nack_bytes += frame.len() as u64;
        self.transmit(src, frame);
    }

    /// Simulates this machine's death: closes every outgoing channel
    /// (peers see `Disconnected` and stop waiting on the wire).
    fn sever(&mut self) {
        for tx in &mut self.txs {
            *tx = None;
        }
        for q in &mut self.pending {
            q.clear();
        }
    }
}

/// The receiving half: incoming channels plus the per-source sequence
/// cursor and reorder buffer that turn an unreliable frame stream back
/// into the exact FIFO the logical model requires.
struct Inwire {
    /// Incoming channels by source; `None` for self or a hung-up peer.
    rxs: Vec<Option<Receiver<Vec<u8>>>>,
    /// Next expected batch sequence number per source (== batches
    /// absorbed, since sequence numbers are cumulative).
    expect: Vec<u32>,
    /// Out-of-order arrivals waiting for the gap to fill, per source —
    /// stored as the raw (already CRC-validated) frames, so the
    /// messages inside are only ever decoded once, in sequence order,
    /// straight out of the frame buffer.
    ooo: Vec<BTreeMap<u32, Vec<u8>>>,
}

impl Inwire {
    fn new(rxs: Vec<Option<Receiver<Vec<u8>>>>) -> Self {
        let k = rxs.len();
        Inwire {
            rxs,
            expect: vec![0; k],
            ooo: (0..k).map(|_| BTreeMap::new()).collect(),
        }
    }

    /// Has every source delivered all frames the coordinator says it
    /// staged?
    fn complete(&self, me: MachineIdx, expected: &[u32]) -> bool {
        self.expect
            .iter()
            .enumerate()
            .all(|(src, &got)| src == me || got >= expected[src])
    }
}

/// Absorbs every message of a validated in-sequence frame from `src`
/// into the local links, zero-copy: batch records decode through
/// borrowed sub-readers over the frame buffer itself. A CRC-valid
/// frame that fails to decode is a codec bug, not a wire fault — fail
/// loudly.
fn absorb_frame<M: WireCodec>(view: &FrameView<'_>, src: MachineIdx, inl: &mut Inlinks<M>) {
    if view.kind == FRAME_KIND_BATCH {
        decode_batch::<M>(view, |msg, bits| inl.absorb(src, msg, bits)).unwrap_or_else(|e| {
            // lint: allow(panic) — a CRC-valid frame that fails to decode is a codec bug, not a wire fault; fail loudly
            panic!(
                "machine {}: undecodable batch frame from machine {src}: {e}",
                inl.me
            )
        });
    } else {
        let msg: M = decode_payload(view).unwrap_or_else(|e| {
            // lint: allow(panic) — a CRC-valid frame that fails to decode is a codec bug, not a wire fault; fail loudly
            panic!(
                "machine {}: undecodable frame from machine {src}: {e}",
                inl.me
            )
        });
        inl.absorb(src, msg, view.bits);
    }
}

/// Drains every incoming channel: validates each frame (CRC + header),
/// discards corrupted and duplicate frames, services NACKs, buffers
/// out-of-order arrivals, and absorbs in-sequence batches into the
/// local links — in sequence order exactly once, which is what keeps
/// the logical transcript bit-identical under faults.
fn drain_incoming<M: WireCodec>(inw: &mut Inwire, out: &mut Outwire, inl: &mut Inlinks<M>) {
    for src in 0..inw.rxs.len() {
        let mut hung_up = false;
        {
            let Some(rx) = inw.rxs[src].as_ref() else {
                continue;
            };
            loop {
                let frame = match rx.try_recv() {
                    Ok(frame) => frame,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // Crashed peer; whatever it still owed will
                        // surface as a barrier timeout.
                        hung_up = true;
                        break;
                    }
                };
                let view = match split_frame(&frame) {
                    Ok(view) => view,
                    // Corrupted in transit: drop it. The sequence gap
                    // is repaired by NACK/retransmit.
                    Err(_) => continue,
                };
                if view.kind == FRAME_KIND_NACK {
                    let from = decode_nack(&view).unwrap_or_else(|e| {
                        // lint: allow(panic) — a CRC-valid NACK that fails to decode is a codec bug, not a wire fault
                        panic!("machine {}: malformed NACK from {src}: {e}", inl.me)
                    });
                    out.handle_nack(src, from);
                    continue;
                }
                if view.seq < inw.expect[src] {
                    continue; // duplicate or stale retransmission
                }
                if view.seq == inw.expect[src] {
                    absorb_frame(&view, src, inl);
                    inw.expect[src] += 1;
                    while let Some(buffered) = inw.ooo[src].remove(&inw.expect[src]) {
                        let v = split_frame(&buffered)
                            // lint: allow(panic) — buffer invariant: frames are CRC-validated before entering `ooo`
                            .expect("reorder buffer only holds validated frames");
                        absorb_frame(&v, src, inl);
                        inw.expect[src] += 1;
                    }
                } else {
                    let seq = view.seq;
                    inw.ooo[src].entry(seq).or_insert(frame);
                }
            }
        }
        if hung_up {
            inw.rxs[src] = None;
        }
    }
}

/// The message-passing engine: `k` worker threads, `k·(k−1)` bounded
/// byte channels, a round-barrier coordinator. Transcript-identical to
/// [`super::SequentialEngine`] — including under injected wire faults
/// (see the module docs' failure model); additionally measures real
/// frame sizes into a [`WireReport`].
#[derive(Debug, Default, Clone, Copy)]
pub struct DistributedEngine;

impl DistributedEngine {
    /// Executes `machines` under `config` on a reliable wire;
    /// semantics identical to [`super::SequentialEngine::run`], plus a
    /// populated [`RunReport::wire`].
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if the config fails
    /// [`NetConfig::validate`] or `machines.len() != config.k`;
    /// [`EngineError::RoundLimitExceeded`] if the safety valve fires
    /// (with the same payload as the sequential engine);
    /// [`EngineError::MachineLost`] / [`EngineError::WorkerPanicked`]
    /// if a worker stalls past the barrier timeout or panics.
    pub fn run<P>(config: NetConfig, machines: Vec<P>) -> Result<RunReport<P>, EngineError>
    where
        P: Protocol,
        P::Msg: WireCodec,
    {
        Self::run_with_faults(config, machines, None)
    }

    /// [`DistributedEngine::run`] under an adversarial wire: `faults`
    /// injects frame drops, duplicates, corruption, delays, and at
    /// most one machine crash (see [`FaultPlan`] and the module docs'
    /// failure model). `None` is the reliable wire.
    ///
    /// # Errors
    /// As [`DistributedEngine::run`]; additionally
    /// [`EngineError::InvalidConfig`] when the plan crashes a machine
    /// index `≥ k`, and [`EngineError::MachineLost`] for the planned
    /// crash itself.
    pub fn run_with_faults<P>(
        config: NetConfig,
        machines: Vec<P>,
        faults: Option<FaultPlan>,
    ) -> Result<RunReport<P>, EngineError>
    where
        P: Protocol,
        P::Msg: WireCodec,
    {
        config.validate()?;
        if machines.len() != config.k {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "one protocol instance per machine: got {} for k = {}",
                    machines.len(),
                    config.k
                ),
            });
        }
        let plan = faults.unwrap_or_default();
        if let Some(crash) = plan.crash {
            if crash.machine >= config.k {
                return Err(EngineError::InvalidConfig {
                    reason: format!(
                        "fault plan crashes machine {} but k = {}",
                        crash.machine, config.k
                    ),
                });
            }
        }
        let barrier = barrier_timeout(&plan)?;
        let k = config.k;
        let shared = rng::shared_seed(config.seed);

        // Byte channels for every ordered pair (the diagonal stays
        // local). Built as k×k option matrices, then each worker moves
        // out its outgoing row and incoming column.
        let mut frame_txs: Vec<Option<Sender<Vec<u8>>>> = Vec::with_capacity(k * k);
        let mut frame_rxs: Vec<Option<Receiver<Vec<u8>>>> = Vec::with_capacity(k * k);
        for src in 0..k {
            for dst in 0..k {
                if src == dst {
                    frame_txs.push(None);
                    frame_rxs.push(None);
                } else {
                    let (tx, rx) = bounded::<Vec<u8>>(LINK_CHANNEL_FRAMES);
                    frame_txs.push(Some(tx));
                    frame_rxs.push(Some(rx));
                }
            }
        }

        crossbeam::thread::scope(|scope| {
            let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(k);
            let mut resp_rxs: Vec<Receiver<Resp<P>>> = Vec::with_capacity(k);
            // Workers in reverse so each can drain its row/column off
            // the tails of the matrices by index arithmetic.
            let mut worker_txs = frame_txs;
            let mut worker_rxs = frame_rxs;
            let mut spawns = Vec::with_capacity(k);
            for me in (0..k).rev() {
                // Outgoing row `me`: txs[me*k ..][dst]; incoming column
                // `me`: rxs[src*k + me].
                let out_txs: Vec<Option<Sender<Vec<u8>>>> =
                    worker_txs.drain(me * k..(me + 1) * k).collect();
                let mut in_rxs: Vec<Option<Receiver<Vec<u8>>>> = Vec::with_capacity(k);
                for src in 0..k {
                    in_rxs.push(worker_rxs[src * k + me].take());
                }
                spawns.push((me, out_txs, in_rxs));
            }
            spawns.reverse();

            for ((me, out_txs, in_rxs), proto) in spawns.into_iter().zip(machines) {
                let (cmd_tx, cmd_rx) = bounded::<Cmd>(1);
                let (resp_tx, resp_rx) = bounded::<Resp<P>>(1);
                cmd_txs.push(cmd_tx);
                resp_rxs.push(resp_rx);
                scope.spawn(move |_| {
                    // Capture panics (typically the protocol's own
                    // `round`) so a worker death becomes a typed
                    // report instead of a poisoned join.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        run_worker(
                            config, me, shared, plan, proto, out_txs, in_rxs, &cmd_rx, &resp_tx,
                        )
                    }));
                    if let Err(payload) = result {
                        // `&*payload`: reborrow the *contents* — a bare
                        // `&payload` would unsize the Box itself into the
                        // `dyn Any` and every downcast would miss.
                        let _ = resp_tx.try_send(Resp::Panicked {
                            message: panic_message(&*payload),
                        });
                    }
                });
            }

            // Coordinator: same control flow, quiescence test, and
            // round-limit ordering as the sequential engine's loop —
            // plus barrier timeouts and typed failure propagation.
            let mut statuses = vec![Status::Active; k];
            let mut counts: Vec<Box<[u32]>> = vec![vec![0u32; k].into_boxed_slice(); k];
            let mut iterations: u64 = 0;
            let mut comm_rounds: u64 = 0;
            let result: Result<(), EngineError> = loop {
                let mut phase = || -> Result<bool, EngineError> {
                    for (i, tx) in cmd_txs.iter().enumerate() {
                        if tx.send(Cmd::Round { round: iterations }).is_err() {
                            return Err(worker_gone(&resp_rxs, i));
                        }
                    }
                    for (i, slot) in counts.iter_mut().enumerate() {
                        match await_resp(&resp_rxs, i, barrier, iterations)? {
                            Resp::Sent {
                                counts: sent_counts,
                            } => *slot = sent_counts,
                            // lint: allow(panic) — worker protocol invariant: Cmd::Round is always answered by Resp::Sent
                            _ => unreachable!("Round is answered by Sent first"),
                        }
                    }
                    for (i, tx) in cmd_txs.iter().enumerate() {
                        let expected: Box<[u32]> = (0..k).map(|src| counts[src][i]).collect();
                        if tx.send(Cmd::Deliver { expected }).is_err() {
                            return Err(worker_gone(&resp_rxs, i));
                        }
                    }
                    let mut any = false;
                    let mut queued_msgs = 0usize;
                    let mut queued_bits = 0u64;
                    let mut inboxes_empty = true;
                    for (i, status) in statuses.iter_mut().enumerate() {
                        match await_resp(&resp_rxs, i, barrier, iterations)? {
                            Resp::Round(r) => {
                                *status = r.status;
                                any |= r.any_link_bits;
                                queued_msgs += r.queued_msgs;
                                queued_bits += r.queued_bits;
                                inboxes_empty &= r.inbox_empty;
                            }
                            // lint: allow(panic) — worker protocol invariant: Cmd::Deliver is always answered by Resp::Round
                            _ => unreachable!("Deliver is answered by Round"),
                        }
                    }
                    if any {
                        comm_rounds += 1;
                    }
                    iterations += 1;
                    if statuses.iter().all(|s| *s == Status::Done)
                        && queued_msgs == 0
                        && inboxes_empty
                    {
                        return Ok(true);
                    }
                    if iterations >= config.max_rounds {
                        return Err(EngineError::RoundLimitExceeded {
                            limit: config.max_rounds,
                            active_machines: statuses
                                .iter()
                                .filter(|s| **s == Status::Active)
                                .count(),
                            queued_msgs,
                            queued_bits,
                        });
                    }
                    Ok(false)
                };
                match phase() {
                    Ok(true) => break Ok(()),
                    Ok(false) => {}
                    Err(e) => break Err(e),
                }
            };

            let result = result.and_then(|()| {
                // Collect final states; a worker can in principle die
                // even here, so the teardown path stays typed too.
                let mut finals: Vec<FinalState<P>> = Vec::with_capacity(k);
                for (i, tx) in cmd_txs.iter().enumerate() {
                    if tx.send(Cmd::Finish).is_err() {
                        return Err(worker_gone(&resp_rxs, i));
                    }
                }
                for i in 0..k {
                    match await_resp(&resp_rxs, i, barrier, iterations)? {
                        Resp::Final(f) => finals.push(*f),
                        // lint: allow(panic) — worker protocol invariant: Cmd::Finish is always answered by Resp::Final
                        _ => unreachable!("Finish yields Final"),
                    }
                }
                Ok(assemble(k, comm_rounds, finals))
            });
            if result.is_err() {
                // Graceful teardown: every surviving worker (including
                // a crash-simulating one) is polling for commands and
                // exits on Abort; channels of already-dead workers
                // just error. The scope below then joins every thread.
                for tx in &cmd_txs {
                    let _ = tx.send(Cmd::Abort);
                }
            }
            result
        })
        // lint: allow(panic) — unreachable: every worker body runs under catch_unwind, so the scope's Err arm is never produced
        .expect("scoped workers never propagate panics (caught in the worker)")
    }
}

/// Renders a caught panic payload for [`EngineError::WorkerPanicked`].
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Waits for machine `i`'s next response, converting panics, silent
/// exits, and barrier timeouts into typed errors. On a timeout the
/// other response channels are swept for a `Panicked` report first, so
/// a machine that hangs *because a peer died* blames the culprit, not
/// the victim.
fn await_resp<P>(
    resp_rxs: &[Receiver<Resp<P>>],
    i: usize,
    barrier: Duration,
    round: u64,
) -> Result<Resp<P>, EngineError> {
    match resp_rxs[i].recv_timeout(barrier) {
        Ok(Resp::Panicked { message }) => Err(EngineError::WorkerPanicked {
            machine: i,
            message,
        }),
        Ok(resp) => Ok(resp),
        Err(RecvTimeoutError::Disconnected) => Err(worker_gone(resp_rxs, i)),
        Err(RecvTimeoutError::Timeout) => {
            for (j, rx) in resp_rxs.iter().enumerate() {
                // The run is failing regardless; eating a pending
                // healthy response here is fine.
                if let Ok(Resp::Panicked { message }) = rx.try_recv() {
                    return Err(EngineError::WorkerPanicked {
                        machine: j,
                        message,
                    });
                }
            }
            Err(EngineError::MachineLost { machine: i, round })
        }
    }
}

/// Types the failure of a worker whose thread is already gone: prefer
/// its own panic report if one is queued, otherwise a placeholder.
fn worker_gone<P>(resp_rxs: &[Receiver<Resp<P>>], i: usize) -> EngineError {
    if let Ok(Resp::Panicked { message }) = resp_rxs[i].try_recv() {
        return EngineError::WorkerPanicked {
            machine: i,
            message,
        };
    }
    EngineError::WorkerPanicked {
        machine: i,
        message: "worker thread exited without reporting".to_string(),
    }
}

/// Merges the per-worker slices into the run report; field-for-field
/// the same aggregation the central `Network` performs.
fn assemble<P>(k: usize, comm_rounds: u64, finals: Vec<FinalState<P>>) -> RunReport<P> {
    let mut metrics = Metrics::new(k);
    metrics.rounds = comm_rounds;
    let mut wire = WireReport::default();
    let mut machines = Vec::with_capacity(k);
    for (i, f) in finals.into_iter().enumerate() {
        metrics.sent_msgs[i] = f.sent_msgs;
        metrics.sent_bits[i] = f.sent_bits;
        metrics.recv_msgs[i] = f.recv_msgs;
        metrics.recv_bits[i] = f.recv_bits;
        metrics.link_visits += f.link_visits;
        metrics.max_link_bits = metrics.max_link_bits.max(
            f.link_totals
                .iter()
                .map(|&(_, bits)| bits)
                .max()
                .unwrap_or(0),
        );
        wire.frames += f.wire.frames;
        wire.messages += f.wire.messages;
        wire.frame_bytes += f.wire.frame_bytes;
        wire.payload_bytes += f.wire.payload_bytes;
        wire.payload_bits += f.wire.payload_bits;
        wire.msg_payload_bytes += f.wire.msg_payload_bytes;
        wire.retransmit_frames += f.wire.retransmit_frames;
        wire.retransmit_bytes += f.wire.retransmit_bytes;
        wire.nack_frames += f.wire.nack_frames;
        wire.nack_bytes += f.wire.nack_bytes;
        wire.logical_bits += f.sent_bits;
        machines.push(f.proto);
    }
    RunReport {
        machines,
        metrics,
        wire: Some(wire),
    }
}

/// The worker loop for machine `me`.
#[allow(clippy::too_many_arguments)]
fn run_worker<P>(
    config: NetConfig,
    me: MachineIdx,
    shared: u64,
    plan: FaultPlan,
    mut proto: P,
    out_txs: Vec<Option<Sender<Vec<u8>>>>,
    in_rxs: Vec<Option<Receiver<Vec<u8>>>>,
    cmd_rx: &Receiver<Cmd>,
    resp_tx: &Sender<Resp<P>>,
) where
    P: Protocol,
    P::Msg: WireCodec,
{
    let k = config.k;
    let faulty = plan.any();
    let mut rng = rng::machine_rng(config.seed, me);
    let mut inl: Inlinks<P::Msg> = Inlinks::new(k, me);
    let mut inw = Inwire::new(in_rxs);
    let mut out = Outwire::new(me, k, plan, out_txs);
    let mut inbox: Vec<Envelope<P::Msg>> = Vec::new();
    let mut outbox: Outbox<P::Msg> = Outbox::new(k);
    // Pooled send-side buffers, reused across every round: one staging
    // `Vec` per destination collects the round's messages for that
    // link, and one scratch `BitWriter` serializes each batch — so the
    // encode path's only steady-state allocation is the frame the
    // channel takes ownership of, one per active link per round.
    let mut staged: Vec<Vec<P::Msg>> = (0..k).map(|_| Vec::new()).collect();
    let mut scratch = BitWriter::new();
    let (mut sent_msgs, mut sent_bits) = (0u64, 0u64);

    loop {
        // Between phases a worker must keep servicing the wire when
        // faults are live: a peer's delivery may hinge on our
        // retransmits even after our own round report went out.
        let cmd = if faulty {
            let backoff = Backoff::new();
            loop {
                match cmd_rx.try_recv() {
                    Ok(cmd) => break Some(cmd),
                    Err(TryRecvError::Empty) => {
                        drain_incoming(&mut inw, &mut out, &mut inl);
                        out.pump();
                        backoff.snooze();
                    }
                    Err(TryRecvError::Disconnected) => break None,
                }
            }
        } else {
            cmd_rx.recv().ok()
        };
        match cmd {
            Some(Cmd::Round { round }) => {
                if plan.crashes(me, round) {
                    // Simulated crash: close every channel (peers see
                    // a hung-up link, the coordinator a missed
                    // barrier) and only keep consuming commands so the
                    // final Abort can reach us for a clean join.
                    out.sever();
                    inw.rxs.clear();
                    loop {
                        match cmd_rx.recv() {
                            Ok(Cmd::Abort | Cmd::Finish) | Err(_) => return,
                            Ok(_) => {}
                        }
                    }
                }
                out.start_round();
                let mut ctx = RoundCtx {
                    round,
                    me,
                    k,
                    bandwidth_bits: config.bandwidth_bits,
                    shared_seed: shared,
                    rng: &mut rng,
                };
                let status = proto.round(&mut ctx, &mut inbox, &mut outbox);
                inbox.clear();
                for (dst, msg) in outbox.drain() {
                    if dst == me {
                        inl.stage_self(msg);
                        continue;
                    }
                    // Sender-side accounting uses the logical size, as
                    // at `Network::stage`; the frame is the real bytes.
                    sent_msgs += 1;
                    sent_bits += msg.bits().max(1);
                    staged[dst].push(msg);
                }
                // One batch frame per destination with queued traffic,
                // in destination order; per-link FIFO is the staging
                // order above.
                for (dst, batch) in staged.iter_mut().enumerate() {
                    if !batch.is_empty() {
                        out.stage_batch(dst, batch, &mut scratch);
                        batch.clear();
                    }
                }
                if faulty {
                    out.pump();
                } else {
                    // Reliable wire: flush everything before reporting,
                    // draining our own incoming channels against
                    // backpressure cycles — so the barrier proof "all
                    // Sent ⇒ all frames visible" holds with no NACK
                    // machinery in play.
                    let backoff = Backoff::new();
                    while !out.pending_empty() {
                        out.pump();
                        drain_incoming(&mut inw, &mut out, &mut inl);
                        backoff.snooze();
                    }
                }
                if resp_tx
                    .send(Resp::Sent {
                        counts: out.seq_next.clone().into_boxed_slice(),
                    })
                    .is_err()
                {
                    return;
                }
                // Barrier: keep servicing the wire until the
                // coordinator certifies every peer reported, then
                // drain until every owed frame is in.
                let expected = {
                    let backoff = Backoff::new();
                    loop {
                        match cmd_rx.try_recv() {
                            Ok(Cmd::Deliver { expected }) => break expected,
                            Ok(Cmd::Abort) => return,
                            // lint: allow(panic) — coordinator protocol invariant: the round state machine sends nothing else here
                            Ok(_) => unreachable!("only Deliver or Abort follows Sent"),
                            Err(TryRecvError::Empty) => {
                                drain_incoming(&mut inw, &mut out, &mut inl);
                                out.pump();
                                backoff.snooze();
                            }
                            Err(TryRecvError::Disconnected) => return,
                        }
                    }
                };
                let mut idle_polls: u32 = 0;
                let backoff = Backoff::new();
                loop {
                    drain_incoming(&mut inw, &mut out, &mut inl);
                    out.pump();
                    if inw.complete(me, &expected) {
                        break;
                    }
                    // Only an Abort can arrive here: the coordinator
                    // sends nothing else before our round report.
                    match cmd_rx.try_recv() {
                        Ok(Cmd::Abort) => return,
                        // lint: allow(panic) — coordinator protocol invariant: only Abort can preempt delivery
                        Ok(_) => unreachable!("only Abort can preempt delivery"),
                        Err(TryRecvError::Empty) => {}
                        Err(TryRecvError::Disconnected) => return,
                    }
                    idle_polls += 1;
                    if faulty && idle_polls.is_multiple_of(NACK_IDLE_POLLS) {
                        for src in 0..k {
                            if src != me && inw.expect[src] < expected[src] {
                                let from = inw.expect[src];
                                out.send_nack(src, from);
                            }
                        }
                    }
                    backoff.snooze();
                }
                let any_link_bits = inl.deliver(config.bandwidth_bits, &mut inbox);
                if resp_tx
                    .send(Resp::Round(RoundDone {
                        status,
                        any_link_bits,
                        queued_msgs: inl.queued_msgs,
                        queued_bits: inl.queued_bits,
                        inbox_empty: inbox.is_empty(),
                    }))
                    .is_err()
                {
                    return;
                }
            }
            // lint: allow(panic) — coordinator protocol invariant: Deliver is only ever sent after a Round
            Some(Cmd::Deliver { .. }) => unreachable!("Deliver only follows a Round"),
            Some(Cmd::Finish) => break,
            Some(Cmd::Abort) | None => return,
        }
    }
    let _ = resp_tx.send(Resp::Final(Box::new(FinalState {
        proto,
        sent_msgs,
        sent_bits,
        recv_msgs: inl.recv_msgs,
        recv_bits: inl.recv_bits,
        link_visits: inl.link_visits,
        link_totals: inl.links.iter().map(Link::totals).collect(),
        wire: out.counters,
    })));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SequentialEngine;
    use crate::faults::CrashSpec;
    use rand::Rng;

    /// Random traffic with self-sends and oversized messages.
    #[derive(Debug)]
    struct Gossip {
        log: Vec<(usize, u32)>,
    }

    impl Protocol for Gossip {
        type Msg = u32;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Envelope<u32>>,
            out: &mut Outbox<u32>,
        ) -> Status {
            for env in inbox {
                self.log.push((env.src, env.msg));
            }
            if ctx.round < 4 {
                for _ in 0..ctx.rng.gen_range(0..5) {
                    let dst = ctx.rng.gen_range(0..ctx.k);
                    out.send(dst, ctx.rng.gen::<u32>());
                }
                Status::Active
            } else {
                Status::Done
            }
        }
    }

    fn gossip_machines(k: usize) -> Vec<Gossip> {
        (0..k).map(|_| Gossip { log: Vec::new() }).collect()
    }

    #[test]
    fn distributed_matches_sequential_transcript() {
        // B = 40 bits < one 44-bit... (32-bit messages) — small enough
        // that messages span rounds, exercising partial delivery.
        let cfg = NetConfig::with_bandwidth(7, 40, 2024);
        let seq = SequentialEngine::run(cfg, gossip_machines(7)).unwrap();
        let dist = DistributedEngine::run(cfg, gossip_machines(7)).unwrap();
        assert_eq!(seq.metrics, dist.metrics);
        for (s, d) in seq.machines.iter().zip(&dist.machines) {
            assert_eq!(s.log, d.log);
        }
        assert!(seq.wire.is_none(), "in-process engines never serialize");
        let wire = dist.wire.expect("distributed run measures frames");
        assert_eq!(wire.logical_bits, dist.metrics.total_bits());
        assert_eq!(wire.messages, dist.metrics.total_msgs());
        assert!(
            wire.frames <= wire.messages,
            "batching can only merge frames, never split them"
        );
        // Each batch payload: an 8-bit count varint plus 5 bytes per
        // u32 message (8-bit length varint + 32 payload bits) — whole
        // bytes throughout, so padding is exactly zero.
        assert_eq!(wire.payload_bytes, wire.frames + 5 * wire.messages);
        assert_eq!(wire.frame_bytes, wire.frames * 21 + wire.payload_bytes);
        assert_eq!(wire.payload_bits, wire.payload_bytes * 8);
        assert_eq!(wire.record_bits(), (wire.frames + wire.messages) * 8);
        assert_eq!(wire.msg_payload_bytes, 4 * wire.messages);
        assert_eq!(
            wire.padding_bits(),
            0,
            "u32 batch payloads are byte-aligned"
        );
        assert!(wire.wire_vs_logical() > 1.0);
        assert!(wire.msgs_per_frame() >= 1.0);
        // A reliable wire never recovers anything.
        assert_eq!(wire.retransmit_frames, 0);
        assert_eq!(wire.retransmit_bytes, 0);
        assert_eq!(wire.nack_frames, 0);
        assert_eq!(wire.recovery_bytes(), 0);
    }

    #[test]
    fn faulty_wire_is_transcript_identical_and_accounts_recovery() {
        let cfg = NetConfig::with_bandwidth(6, 40, 77);
        let seq = SequentialEngine::run(cfg, gossip_machines(6)).unwrap();
        let plan = FaultPlan {
            seed: 5,
            drop: 0.25,
            duplicate: 0.2,
            corrupt: 0.2,
            delay: 0.25,
            ..FaultPlan::default()
        };
        let dist = DistributedEngine::run_with_faults(cfg, gossip_machines(6), Some(plan)).unwrap();
        assert_eq!(
            seq.metrics, dist.metrics,
            "drop/dup/corrupt/delay must not leak into logical metrics"
        );
        for (s, d) in seq.machines.iter().zip(&dist.machines) {
            assert_eq!(s.log, d.log);
        }
        let wire = dist.wire.unwrap();
        assert_eq!(
            wire.messages,
            dist.metrics.total_msgs(),
            "every logical message framed exactly once, still"
        );
        assert!(wire.frames <= wire.messages);
        assert!(
            wire.retransmit_frames > 0,
            "those rates over this traffic must trigger recovery"
        );
        assert!(wire.recovery_bytes() > 0);
    }

    /// Tentpole contract: one batch frame per (link, round) pair with
    /// queued traffic — counted deterministically with a ring protocol
    /// that sends exactly 3 messages to its successor every round.
    #[test]
    fn one_batch_frame_per_active_link_per_round() {
        #[derive(Debug)]
        struct Ring;
        impl Protocol for Ring {
            type Msg = u32;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                _inbox: &mut Vec<Envelope<u32>>,
                out: &mut Outbox<u32>,
            ) -> Status {
                if ctx.round < 5 {
                    for i in 0..3 {
                        out.send((ctx.me + 1) % ctx.k, i);
                    }
                    Status::Active
                } else {
                    Status::Done
                }
            }
        }
        let k = 6;
        let cfg = NetConfig::with_bandwidth(k, 1 << 12, 11);
        let report = DistributedEngine::run(cfg, (0..k).map(|_| Ring).collect()).unwrap();
        let wire = report.wire.unwrap();
        // 5 sending rounds × k active links, 3 messages each.
        assert_eq!(wire.frames, 5 * k as u64, "one frame per active link-round");
        assert_eq!(wire.messages, 3 * 5 * k as u64);
        assert!((wire.msgs_per_frame() - 3.0).abs() < 1e-12);
        // The batch amortizes the header: 21 bytes per 3 messages
        // instead of per 1.
        assert_eq!(wire.header_bits(), wire.frames * 21 * 8);
        assert!(wire.header_bits() < wire.solo_framing_bits(21) - wire.msg_payload_bytes * 8);
    }

    /// Satellite contract: a *batched* frame lost in transit is
    /// NACKed, retransmitted, and every message it contained is
    /// replayed exactly once — the transcript cannot tell.
    #[test]
    fn lost_batches_are_nacked_and_replayed_exactly_once() {
        let cfg = NetConfig::with_bandwidth(6, 40, 123);
        let seq = SequentialEngine::run(cfg, gossip_machines(6)).unwrap();
        let plan = FaultPlan {
            seed: 9,
            drop: 0.5,
            ..FaultPlan::default()
        };
        let dist = DistributedEngine::run_with_faults(cfg, gossip_machines(6), Some(plan)).unwrap();
        assert_eq!(
            seq.metrics, dist.metrics,
            "a replayed batch must deliver its messages exactly once"
        );
        for (s, d) in seq.machines.iter().zip(&dist.machines) {
            assert_eq!(s.log, d.log);
        }
        let wire = dist.wire.unwrap();
        assert!(
            wire.nack_frames > 0 && wire.retransmit_frames > 0,
            "a 50% drop rate must exercise NACK-driven batch replay \
             (nacks = {}, retransmits = {})",
            wire.nack_frames,
            wire.retransmit_frames
        );
    }

    /// Satellite contract: duplicated frames are deduplicated by
    /// sequence number — `link_visits` and the transcripts cannot tell
    /// the difference, while the duplicates show up as recovery
    /// traffic.
    #[test]
    fn duplicate_frames_are_invisible_to_the_transcript() {
        let cfg = NetConfig::with_bandwidth(5, 40, 99);
        let seq = SequentialEngine::run(cfg, gossip_machines(5)).unwrap();
        let plan = FaultPlan {
            seed: 1,
            duplicate: 1.0,
            ..FaultPlan::default()
        };
        let dist = DistributedEngine::run_with_faults(cfg, gossip_machines(5), Some(plan)).unwrap();
        assert_eq!(seq.metrics, dist.metrics);
        assert_eq!(
            seq.metrics.link_visits, dist.metrics.link_visits,
            "dedup must keep the sparse-delivery walk identical"
        );
        for (s, d) in seq.machines.iter().zip(&dist.machines) {
            assert_eq!(s.log, d.log);
        }
        let wire = dist.wire.unwrap();
        assert_eq!(
            wire.retransmit_frames, wire.frames,
            "every frame was duplicated exactly once"
        );
        assert_eq!(wire.nack_frames, 0, "nothing was ever missing");
    }

    #[test]
    fn planned_crash_is_a_typed_machine_lost() {
        let plan = FaultPlan {
            crash: Some(CrashSpec {
                machine: 2,
                round: 1,
            }),
            barrier_timeout_ms: 400,
            ..FaultPlan::default()
        };
        let err = DistributedEngine::run_with_faults(
            NetConfig::with_bandwidth(5, 40, 3),
            gossip_machines(5),
            Some(plan),
        )
        .unwrap_err();
        assert_eq!(
            err,
            EngineError::MachineLost {
                machine: 2,
                round: 1
            }
        );
    }

    #[test]
    fn crash_plan_for_a_machine_out_of_range_is_invalid() {
        let plan = FaultPlan {
            crash: Some(CrashSpec {
                machine: 9,
                round: 0,
            }),
            ..FaultPlan::default()
        };
        let err = DistributedEngine::run_with_faults(
            NetConfig::with_bandwidth(4, 40, 3),
            gossip_machines(4),
            Some(plan),
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::InvalidConfig { ref reason } if reason.contains('9')),
            "{err}"
        );
    }

    #[test]
    fn round_limit_error_is_bit_identical_too() {
        #[derive(Debug)]
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u8;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                _inbox: &mut Vec<Envelope<u8>>,
                out: &mut Outbox<u8>,
            ) -> Status {
                // Overfeed the link so queues build up.
                out.send((ctx.me + 1) % ctx.k, 1);
                out.send((ctx.me + 1) % ctx.k, 2);
                Status::Active
            }
        }
        let cfg = NetConfig::with_bandwidth(4, 8, 0).max_rounds(6);
        let seq = SequentialEngine::run(cfg, vec![Chatter, Chatter, Chatter, Chatter]).unwrap_err();
        let dist =
            DistributedEngine::run(cfg, vec![Chatter, Chatter, Chatter, Chatter]).unwrap_err();
        assert_eq!(seq, dist, "error payloads must agree field-for-field");
    }

    #[test]
    fn single_machine_runs_without_links() {
        struct Solo {
            echoes: u32,
        }
        impl Protocol for Solo {
            type Msg = u64;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                inbox: &mut Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) -> Status {
                self.echoes += inbox.len() as u32;
                if ctx.round < 3 {
                    out.send(0, ctx.round); // self-send
                    Status::Active
                } else {
                    Status::Done
                }
            }
        }
        let report =
            DistributedEngine::run(NetConfig::with_bandwidth(1, 8, 5), vec![Solo { echoes: 0 }])
                .unwrap();
        assert_eq!(report.machines[0].echoes, 3);
        assert_eq!(report.metrics.rounds, 0, "self-sends are free");
        let wire = report.wire.unwrap();
        assert_eq!(wire.frames, 0, "nothing ever crossed a channel");
    }

    /// A round fanning hundreds of messages to every peer: all of them
    /// ride one batch frame per link, and FIFO order survives end to
    /// end. (Channel backpressure itself is now exercised by the
    /// recovery traffic of the fault tests — a data round is a single
    /// frame per link.)
    #[test]
    fn channel_backpressure_preserves_fifo() {
        struct Blast {
            got: Vec<u32>,
        }
        impl Protocol for Blast {
            type Msg = u32;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                inbox: &mut Vec<Envelope<u32>>,
                out: &mut Outbox<u32>,
            ) -> Status {
                for env in inbox.iter() {
                    self.got.push(env.msg);
                }
                if ctx.round == 0 {
                    // Far beyond the old per-message channel capacity,
                    // pairwise all-to-all — one big batch per link.
                    for seq in 0..(32 * LINK_CHANNEL_FRAMES as u32) {
                        for dst in 0..ctx.k {
                            if dst != ctx.me {
                                out.send(dst, seq);
                            }
                        }
                    }
                    Status::Active
                } else {
                    Status::Done
                }
            }
        }
        let k = 4;
        let cfg = NetConfig::with_bandwidth(k, 1 << 20, 3);
        let mk = || {
            (0..k)
                .map(|_| Blast { got: Vec::new() })
                .collect::<Vec<_>>()
        };
        let seq = SequentialEngine::run(cfg, mk()).unwrap();
        let dist = DistributedEngine::run(cfg, mk()).unwrap();
        assert_eq!(seq.metrics, dist.metrics);
        for (s, d) in seq.machines.iter().zip(&dist.machines) {
            assert_eq!(
                s.got, d.got,
                "per-link FIFO order must survive backpressure"
            );
        }
    }

    #[test]
    fn barrier_timeout_env_is_parsed_hard_and_plan_wins() {
        // Exercised through `barrier_timeout_from` so no test ever
        // plants an invalid value in the process-global environment
        // (the same discipline as `EngineKind::from_env_value`).
        let plan = FaultPlan::default();
        assert_eq!(
            barrier_timeout_from(&plan, None).unwrap(),
            Duration::from_millis(DEFAULT_BARRIER_TIMEOUT_MS)
        );
        assert_eq!(
            barrier_timeout_from(&plan, Some("2500")).unwrap(),
            Duration::from_millis(2500)
        );
        // An explicit plan timeout always wins over the environment.
        let fast = FaultPlan {
            barrier_timeout_ms: 40,
            ..FaultPlan::default()
        };
        assert_eq!(
            barrier_timeout_from(&fast, Some("2500")).unwrap(),
            Duration::from_millis(40)
        );
        for bad in ["0", "-5", "soon", "10s", ""] {
            let err = barrier_timeout_from(&plan, Some(bad)).unwrap_err();
            match &err {
                EngineError::InvalidConfig { reason } => {
                    assert!(reason.contains(BARRIER_TIMEOUT_ENV), "{reason}");
                }
                other => panic!("expected InvalidConfig for {bad:?}, got {other:?}"),
            }
        }
    }
}
