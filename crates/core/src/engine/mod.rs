//! Execution engines.
//!
//! Both engines implement identical synchronous-round semantics:
//!
//! 1. every machine runs [`crate::Protocol::round`] on the messages delivered at
//!    the start of this round and stages outgoing messages;
//! 2. staged messages enter per-ordered-pair FIFO [`crate::link::Link`]s (self-sends
//!    bypass links: local hand-off is free, like local computation);
//! 3. each link releases up to `B` bits; released messages form the next
//!    round's inboxes, ordered by sender index;
//! 4. the run ends when every machine reports [`crate::Status::Done`] and all
//!    links and inboxes are empty (global quiescence), or errs when the
//!    round limit fires.
//!
//! [`SequentialEngine`] is the reference implementation;
//! [`ParallelEngine`] distributes step 1 across crossbeam scoped threads
//! and is transcript-identical (tested in `tests/engine_equivalence.rs`).

pub mod parallel;
pub mod sequential;

pub use crate::metrics::RunReport;
pub use parallel::ParallelEngine;
pub use sequential::SequentialEngine;

use crate::link::Link;
use crate::message::{Envelope, WireSize};
use crate::metrics::Metrics;
use crate::protocol::Status;
use crate::MachineIdx;

/// Shared network state: the `k × k` ordered link matrix plus free
/// self-delivery queues, with metrics accounting.
pub(crate) struct Network<M> {
    k: usize,
    /// Ordered links, indexed `src * k + dst` (diagonal unused).
    links: Vec<Link<M>>,
    /// Self-sends waiting for next round (no bandwidth charge).
    self_queues: Vec<Vec<Envelope<M>>>,
    pub(crate) metrics: Metrics,
}

impl<M: WireSize> Network<M> {
    pub(crate) fn new(k: usize) -> Self {
        let mut links = Vec::with_capacity(k * k);
        links.resize_with(k * k, Link::default);
        Network {
            k,
            links,
            self_queues: (0..k).map(|_| Vec::new()).collect(),
            metrics: Metrics::new(k),
        }
    }

    /// Stages one message. Link traffic is charged to the sender here
    /// (bits are counted when sent, received when delivered).
    pub(crate) fn stage(&mut self, src: MachineIdx, dst: MachineIdx, msg: M) {
        if src == dst {
            self.self_queues[src].push(Envelope { src, msg });
            return;
        }
        let bits = msg.bits().max(1);
        self.metrics.sent_msgs[src] += 1;
        self.metrics.sent_bits[src] += bits;
        self.links[src * self.k + dst].push(Envelope { src, msg });
    }

    /// Runs one delivery phase: every link releases up to `budget` bits.
    /// Returns `true` if any link transmitted at least one bit.
    pub(crate) fn deliver(&mut self, budget: u64, inboxes: &mut [Vec<Envelope<M>>]) -> bool {
        let mut any = false;
        for (dst, inbox) in inboxes.iter_mut().enumerate().take(self.k) {
            for src in 0..self.k {
                if src == dst {
                    inbox.append(&mut self.self_queues[dst]);
                    continue;
                }
                let before = inbox.len();
                let used = self.links[src * self.k + dst].deliver(budget, inbox);
                if used > 0 {
                    any = true;
                }
                // Charge received messages and bits from the same slice of
                // fully delivered messages, so recv_msgs and recv_bits can
                // never drift apart.
                let delivered = &inbox[before..];
                for env in delivered {
                    debug_assert_eq!(env.src, src);
                }
                self.metrics.recv_msgs[dst] += delivered.len() as u64;
                let bits: u64 = delivered.iter().map(|e| e.msg.bits().max(1)).sum();
                self.metrics.recv_bits[dst] += bits;
            }
        }
        any
    }

    /// Whether all links and self-queues are empty.
    pub(crate) fn is_drained(&self) -> bool {
        self.links.iter().all(Link::is_empty) && self.self_queues.iter().all(Vec::is_empty)
    }

    /// Number of queued (undelivered) messages.
    pub(crate) fn queued(&self) -> usize {
        self.links.iter().map(Link::queued).sum::<usize>()
            + self.self_queues.iter().map(Vec::len).sum::<usize>()
    }

    /// Finalizes the max-per-link statistic.
    pub(crate) fn finalize(&mut self) {
        self.metrics.max_link_bits = self.links.iter().map(|l| l.totals().1).max().unwrap_or(0);
    }
}

/// Outcome of the per-round termination check.
pub(crate) fn quiescent<M>(
    statuses: &[Status],
    net: &Network<M>,
    inboxes: &[Vec<Envelope<M>>],
) -> bool
where
    M: WireSize,
{
    statuses.iter().all(|s| *s == Status::Done)
        && net.is_drained()
        && inboxes.iter().all(Vec::is_empty)
}

#[cfg(test)]
mod tests {
    use crate::config::NetConfig;
    use crate::engine::SequentialEngine;
    use crate::message::{Envelope, Outbox};
    use crate::protocol::{Protocol, RoundCtx, Status};
    use rand::Rng;

    /// Random-size messages to random peers for a few rounds: exercises
    /// partial deliveries (messages larger than one round's budget) and
    /// multi-message rounds.
    struct Mesh {
        rounds: u64,
    }

    impl Protocol for Mesh {
        type Msg = Vec<u8>;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            _inbox: &[Envelope<Vec<u8>>],
            out: &mut Outbox<Vec<u8>>,
        ) -> Status {
            if ctx.round < self.rounds {
                for _ in 0..ctx.rng.gen_range(0..4) {
                    let dst = ctx.rng.gen_range(0..ctx.k);
                    let len = ctx.rng.gen_range(0..24);
                    out.send(dst, vec![0u8; len]);
                }
                Status::Active
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn drained_run_balances_sent_and_received_metrics() {
        // Small budget relative to message sizes forces messages to span
        // rounds, the case where recv accounting could drift from sent.
        let cfg = NetConfig::with_bandwidth(5, 48, 99);
        let machines: Vec<Mesh> = (0..5).map(|_| Mesh { rounds: 4 }).collect();
        let report = SequentialEngine::run(cfg, machines).unwrap();
        let m = &report.metrics;
        assert!(m.total_msgs() > 0, "the mesh must generate traffic");
        assert_eq!(
            m.sent_msgs.iter().sum::<u64>(),
            m.recv_msgs.iter().sum::<u64>(),
            "every sent message is received exactly once after a drain"
        );
        assert_eq!(
            m.sent_bits.iter().sum::<u64>(),
            m.recv_bits.iter().sum::<u64>(),
            "every sent bit is received exactly once after a drain"
        );
    }
}
