//! Execution engines.
//!
//! All three engines implement identical synchronous-round semantics:
//!
//! 1. every machine runs [`crate::Protocol::round`] on the messages delivered at
//!    the start of this round and stages outgoing messages;
//! 2. staged messages enter per-ordered-pair FIFO [`crate::link::Link`]s (self-sends
//!    bypass links: local hand-off is free, like local computation);
//! 3. each link releases up to `B` bits; released messages form the next
//!    round's inboxes, ordered by sender index;
//! 4. the run ends when every machine reports [`crate::Status::Done`] and all
//!    links and inboxes are empty (global quiescence), or errs when the
//!    round limit fires.
//!
//! [`SequentialEngine`] is the reference implementation;
//! [`ParallelEngine`] distributes step 1 across crossbeam scoped threads;
//! [`DistributedEngine`] goes further and runs one worker thread *per
//! machine*, serializing every link message into a byte frame over that
//! ordered pair's bounded channel (see `distributed.rs`). All three are
//! transcript-identical (tested in `tests/engine_equivalence.rs` and the
//! cross-engine fuzz matrix in `tests/engine_fuzz.rs`).
//!
//! # Sparse delivery
//!
//! The paper's algorithms spend most rounds with traffic on a small
//! fraction of the `k²` ordered links, so the delivery core is built to
//! cost **O(active traffic) per round, not O(k²)**:
//!
//! * `Network` keeps, per destination, a sorted *active-source index* —
//!   the sources (including the destination itself, for pending
//!   self-sends) with queued traffic. `Network::stage` inserts a source
//!   exactly when its link transitions empty → non-empty, and
//!   `Network::deliver` removes it when the link drains; a link with no
//!   queued traffic is never visited (every visit increments
//!   [`crate::Metrics::link_visits`], the observable this invariant is
//!   unit-tested against).
//! * Running `queued_msgs` / `queued_bits` counters — incremented at
//!   staging, decremented at delivery — make `Network::is_drained` and
//!   `Network::queued` O(1) instead of `k²` scans; the per-round
//!   quiescence check does no per-link work at all.
//! * Delivery-side accounting reuses the wire sizes cached in each
//!   [`Link`] at staging time ([`crate::link::Delivery`]), so
//!   [`crate::message::WireSize::bits`] runs exactly once per message.
//!
//! Ordering is unchanged from the dense loop: each destination's active
//! sources are walked in increasing machine order (the index is kept
//! sorted), so inboxes — and therefore transcripts, metrics, and RNG
//! streams — are bit-for-bit identical to the pre-index engine.

pub mod distributed;
pub mod parallel;
pub mod sequential;

pub use crate::metrics::{RunReport, WireReport};
pub use distributed::DistributedEngine;
pub use parallel::ParallelEngine;
pub use sequential::SequentialEngine;

use crate::link::Link;
use crate::message::{Envelope, WireSize};
use crate::metrics::Metrics;
use crate::protocol::Status;
use crate::MachineIdx;

/// Shared network state: the `k × k` ordered link matrix plus free
/// self-delivery queues, with metrics accounting and the active-source
/// index that keeps delivery O(active traffic).
pub(crate) struct Network<M> {
    k: usize,
    /// Ordered links, indexed `src * k + dst` (diagonal unused).
    links: Vec<Link<M>>,
    /// Self-sends waiting for next round (no bandwidth charge).
    self_queues: Vec<Vec<Envelope<M>>>,
    /// Per-destination sorted list of sources with queued traffic
    /// (`active[dst]` contains `dst` itself iff its self-queue is
    /// non-empty). Maintained by `stage` (empty → non-empty) and
    /// `deliver` (drained links drop out).
    active: Vec<Vec<MachineIdx>>,
    /// Messages queued anywhere (links + self-queues).
    queued_msgs: usize,
    /// Undelivered bits queued on links (self-sends are free).
    queued_bits: u64,
    pub(crate) metrics: Metrics,
}

impl<M: WireSize> Network<M> {
    pub(crate) fn new(k: usize) -> Self {
        let mut links = Vec::with_capacity(k * k);
        links.resize_with(k * k, Link::default);
        Network {
            k,
            links,
            self_queues: (0..k).map(|_| Vec::new()).collect(),
            active: (0..k).map(|_| Vec::new()).collect(),
            queued_msgs: 0,
            queued_bits: 0,
            metrics: Metrics::new(k),
        }
    }

    /// Marks `src` as having queued traffic towards `dst`. Only called on
    /// an empty → non-empty transition, so `src` is never already present.
    fn activate(&mut self, dst: MachineIdx, src: MachineIdx) {
        let list = &mut self.active[dst];
        let pos = list
            .binary_search(&src)
            // lint: allow(panic) — activate() fires only on the empty->non-empty transition, so src is absent
            .expect_err("activated twice without draining");
        list.insert(pos, src);
    }

    /// Stages one message. Link traffic is charged to the sender here
    /// (bits are counted when sent, received when delivered).
    pub(crate) fn stage(&mut self, src: MachineIdx, dst: MachineIdx, msg: M) {
        self.queued_msgs += 1;
        if src == dst {
            if self.self_queues[src].is_empty() {
                self.activate(src, src);
            }
            self.self_queues[src].push(Envelope { src, msg });
            return;
        }
        let bits = msg.bits().max(1);
        self.metrics.sent_msgs[src] += 1;
        self.metrics.sent_bits[src] += bits;
        self.queued_bits += bits;
        if self.links[src * self.k + dst].is_empty() {
            self.activate(dst, src);
        }
        self.links[src * self.k + dst].push_sized(Envelope { src, msg }, bits);
    }

    /// Runs one delivery phase: every *active* link releases up to
    /// `budget` bits; links with nothing queued are not visited. Returns
    /// `true` if any link transmitted at least one bit.
    pub(crate) fn deliver(&mut self, budget: u64, inboxes: &mut [Vec<Envelope<M>>]) -> bool {
        let mut any = false;
        for (dst, inbox) in inboxes.iter_mut().enumerate().take(self.k) {
            if self.active[dst].is_empty() {
                continue;
            }
            // Walk this destination's active sources in machine order
            // (the list is sorted), retaining only those still queued.
            let mut sources = std::mem::take(&mut self.active[dst]);
            sources.retain(|&src| {
                if src == dst {
                    self.queued_msgs -= self.self_queues[dst].len();
                    inbox.append(&mut self.self_queues[dst]);
                    return false; // self-queues always drain fully
                }
                self.metrics.link_visits += 1;
                let link = &mut self.links[src * self.k + dst];
                let d = link.deliver(budget, inbox);
                if d.bits_used > 0 {
                    any = true;
                }
                // Received counts come from the sizes cached at staging
                // time, so recv accounting can never drift from sent and
                // `WireSize::bits` is not re-called on delivery.
                self.metrics.recv_msgs[dst] += d.msgs;
                self.metrics.recv_bits[dst] += d.msg_bits;
                self.queued_msgs -= d.msgs as usize;
                self.queued_bits -= d.msg_bits;
                !link.is_empty()
            });
            self.active[dst] = sources;
        }
        any
    }

    /// Whether all links and self-queues are empty. O(1).
    pub(crate) fn is_drained(&self) -> bool {
        self.queued_msgs == 0
    }

    /// Number of queued (undelivered) messages. O(1).
    pub(crate) fn queued(&self) -> usize {
        self.queued_msgs
    }

    /// Undelivered bits still queued on links. O(1).
    pub(crate) fn queued_bits(&self) -> u64 {
        self.queued_bits
    }

    /// Links the active index currently tracks (with queued traffic).
    #[cfg(test)]
    fn active_links(&self) -> usize {
        self.active.iter().map(Vec::len).sum()
    }

    /// Finalizes the max-per-link statistic.
    pub(crate) fn finalize(&mut self) {
        self.metrics.max_link_bits = self.links.iter().map(|l| l.totals().1).max().unwrap_or(0);
    }
}

/// Outcome of the per-round termination check.
pub(crate) fn quiescent<M>(
    statuses: &[Status],
    net: &Network<M>,
    inboxes: &[Vec<Envelope<M>>],
) -> bool
where
    M: WireSize,
{
    statuses.iter().all(|s| *s == Status::Done)
        && net.is_drained()
        && inboxes.iter().all(Vec::is_empty)
}

#[cfg(test)]
mod tests {
    use super::Network;
    use crate::config::NetConfig;
    use crate::engine::SequentialEngine;
    use crate::message::{Envelope, Outbox};
    use crate::protocol::{Protocol, RoundCtx, Status};
    use rand::Rng;

    /// Random-size messages to random peers for a few rounds: exercises
    /// partial deliveries (messages larger than one round's budget) and
    /// multi-message rounds.
    struct Mesh {
        rounds: u64,
    }

    impl Protocol for Mesh {
        type Msg = Vec<u8>;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            _inbox: &mut Vec<Envelope<Vec<u8>>>,
            out: &mut Outbox<Vec<u8>>,
        ) -> Status {
            if ctx.round < self.rounds {
                for _ in 0..ctx.rng.gen_range(0..4) {
                    let dst = ctx.rng.gen_range(0..ctx.k);
                    let len = ctx.rng.gen_range(0..24);
                    out.send(dst, vec![0u8; len]);
                }
                Status::Active
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn drained_run_balances_sent_and_received_metrics() {
        // Small budget relative to message sizes forces messages to span
        // rounds, the case where recv accounting could drift from sent.
        let cfg = NetConfig::with_bandwidth(5, 48, 99);
        let machines: Vec<Mesh> = (0..5).map(|_| Mesh { rounds: 4 }).collect();
        let report = SequentialEngine::run(cfg, machines).unwrap();
        let m = &report.metrics;
        assert!(m.total_msgs() > 0, "the mesh must generate traffic");
        assert_eq!(
            m.sent_msgs.iter().sum::<u64>(),
            m.recv_msgs.iter().sum::<u64>(),
            "every sent message is received exactly once after a drain"
        );
        assert_eq!(
            m.sent_bits.iter().sum::<u64>(),
            m.recv_bits.iter().sum::<u64>(),
            "every sent bit is received exactly once after a drain"
        );
    }

    /// The sparse-delivery contract, observed through the active index
    /// and `Metrics::link_visits`: `deliver` touches exactly the links
    /// with queued traffic, never the other `k² − O(1)`.
    #[test]
    fn deliver_touches_only_active_links() {
        let k = 64;
        let mut net: Network<u32> = Network::new(k);
        let mut inboxes: Vec<Vec<Envelope<u32>>> = (0..k).map(|_| Vec::new()).collect();

        // Idle network: a delivery phase visits nothing.
        assert!(!net.deliver(64, &mut inboxes));
        assert_eq!(net.metrics.link_visits, 0);
        assert!(net.is_drained());

        // Three link messages on two links + one free self-send.
        net.stage(3, 7, 1);
        net.stage(5, 7, 2);
        net.stage(3, 7, 3);
        net.stage(9, 9, 4);
        assert_eq!(net.active_links(), 3, "two link sources + one self");
        assert_eq!(net.queued(), 4);
        assert_eq!(net.queued_bits(), 3 * 32);
        assert!(!net.is_drained());

        // One phase delivers everything and visits exactly the 2 active
        // links (self-queues are not links); the index empties.
        assert!(net.deliver(64, &mut inboxes));
        assert_eq!(net.metrics.link_visits, 2);
        assert_eq!(net.active_links(), 0);
        assert!(net.is_drained());
        assert_eq!(net.queued_bits(), 0);
        // Inbox 7 is ordered by sender index: 3's FIFO pair, then 5.
        let got: Vec<(usize, u32)> = inboxes[7].iter().map(|e| (e.src, e.msg)).collect();
        assert_eq!(got, vec![(3, 1), (3, 3), (5, 2)]);
        assert_eq!(inboxes[9].len(), 1);

        // Another idle phase still visits nothing.
        assert!(!net.deliver(64, &mut inboxes));
        assert_eq!(net.metrics.link_visits, 2);
    }

    /// A link whose message outlives one round's budget stays in the
    /// active index (and is re-visited) until fully delivered.
    #[test]
    fn partially_delivered_links_stay_active() {
        let k = 8;
        let mut net: Network<Vec<u8>> = Network::new(k);
        let mut inboxes: Vec<Vec<Envelope<Vec<u8>>>> = (0..k).map(|_| Vec::new()).collect();
        net.stage(1, 2, vec![0u8; 30]); // 32 + 240 bits at 100/round: 3 rounds
        for round in 0..2 {
            assert!(net.deliver(100, &mut inboxes));
            assert!(inboxes[2].is_empty(), "not yet complete at round {round}");
            assert_eq!(net.active_links(), 1);
            assert!(!net.is_drained());
        }
        assert!(net.deliver(100, &mut inboxes));
        assert_eq!(inboxes[2].len(), 1);
        assert_eq!(net.active_links(), 0);
        assert!(net.is_drained());
        assert_eq!(net.metrics.link_visits, 3);
    }

    /// A full sequential run on a ring at k = 32 performs O(rounds) link
    /// visits — not rounds·k².
    #[test]
    fn sparse_run_does_linear_work() {
        struct Ring {
            hops: u64,
        }
        impl Protocol for Ring {
            type Msg = u64;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                inbox: &mut Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) -> Status {
                if ctx.round == 0 {
                    if ctx.me == 0 {
                        out.send(1, self.hops);
                    }
                    return Status::Active;
                }
                for env in inbox.iter() {
                    if env.msg > 1 {
                        out.send((ctx.me + 1) % ctx.k, env.msg - 1);
                        return Status::Active;
                    }
                }
                Status::Done
            }
        }
        let k = 32;
        let hops = 100;
        let cfg = NetConfig::with_bandwidth(k, 64, 0);
        let machines: Vec<Ring> = (0..k).map(|_| Ring { hops }).collect();
        let report = SequentialEngine::run(cfg, machines).unwrap();
        assert_eq!(report.metrics.rounds, hops);
        // Exactly one link is active per round: one visit per hop.
        assert_eq!(report.metrics.link_visits, hops);
    }
}
