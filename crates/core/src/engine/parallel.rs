//! The thread-parallel engine (crossbeam scoped master/worker).
//!
//! Machines are partitioned into contiguous chunks, one worker thread per
//! chunk. Each round the master ships every machine its inbox, workers run
//! [`Protocol::round`] in parallel, and the master merges the returned
//! outboxes *in machine order* before running the same delivery phase as
//! the sequential engine — so transcripts, metrics, and RNG streams are
//! bit-for-bit identical to [`super::SequentialEngine`].

use crate::config::NetConfig;
use crate::engine::{quiescent, Network};
use crate::error::EngineError;
use crate::message::{Envelope, Outbox};
use crate::metrics::RunReport;
use crate::protocol::{Protocol, RoundCtx, Status};
use crate::rng;
use crate::MachineIdx;
use crossbeam::channel::{bounded, Receiver, Sender};

enum Cmd<M> {
    Round {
        round: u64,
        inboxes: Vec<Vec<Envelope<M>>>,
    },
    Stop,
}

enum Resp<P, M> {
    Round {
        /// Per-machine `(staged messages, status)`, in chunk order.
        results: Vec<(Vec<(MachineIdx, M)>, Status)>,
        /// The (cleared) inbox buffers handed out with `Cmd::Round`,
        /// returned so the master can reuse their capacity next round
        /// instead of allocating k fresh `Vec`s per round.
        buffers: Vec<Vec<Envelope<M>>>,
    },
    Final(Vec<P>),
}

/// A work-stealing-free, deterministic parallel engine.
#[derive(Debug, Clone, Copy)]
pub struct ParallelEngine {
    /// Number of worker threads (capped at `k`).
    pub threads: usize,
}

impl Default for ParallelEngine {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ParallelEngine { threads }
    }
}

impl ParallelEngine {
    /// An engine using all available cores.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelEngine {
            threads: threads.max(1),
        }
    }

    /// Executes `machines` under `config`; semantics identical to
    /// [`super::SequentialEngine::run`].
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if the config fails
    /// [`NetConfig::validate`] or `machines.len() != config.k`;
    /// [`EngineError::RoundLimitExceeded`] if the safety valve fires.
    pub fn run<P>(&self, config: NetConfig, machines: Vec<P>) -> Result<RunReport<P>, EngineError>
    where
        P: Protocol + Send,
        P::Msg: Send,
    {
        config.validate()?;
        if machines.len() != config.k {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "one protocol instance per machine: got {} for k = {}",
                    machines.len(),
                    config.k
                ),
            });
        }
        let k = config.k;
        let workers = self.threads.min(k).max(1);
        if workers == 1 {
            return super::SequentialEngine::run(config, machines);
        }
        let chunk = k.div_ceil(workers);
        let shared = rng::shared_seed(config.seed);

        // Partition machines into contiguous chunks with their RNGs.
        let mut chunks: Vec<Vec<P>> = Vec::with_capacity(workers);
        let mut bases: Vec<usize> = Vec::with_capacity(workers);
        {
            let mut rest = machines;
            let mut base = 0;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let tail = rest.split_off(take);
                bases.push(base);
                base += take;
                chunks.push(rest);
                rest = tail;
            }
        }
        let nchunks = chunks.len();

        crossbeam::thread::scope(|scope| {
            let mut cmd_txs: Vec<Sender<Cmd<P::Msg>>> = Vec::with_capacity(nchunks);
            let mut resp_rxs: Vec<Receiver<Resp<P, P::Msg>>> = Vec::with_capacity(nchunks);

            for (w, mut local) in chunks.into_iter().enumerate() {
                let base = bases[w];
                let (cmd_tx, cmd_rx) = bounded::<Cmd<P::Msg>>(1);
                let (resp_tx, resp_rx) = bounded::<Resp<P, P::Msg>>(1);
                cmd_txs.push(cmd_tx);
                resp_rxs.push(resp_rx);
                scope.spawn(move |_| {
                    let mut rngs: Vec<_> = (0..local.len())
                        .map(|j| rng::machine_rng(config.seed, base + j))
                        .collect();
                    let mut outbox = Outbox::new(k);
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Round { round, mut inboxes } => {
                                let mut results = Vec::with_capacity(local.len());
                                for (j, inbox) in inboxes.iter_mut().enumerate() {
                                    let mut ctx = RoundCtx {
                                        round,
                                        me: base + j,
                                        k,
                                        bandwidth_bits: config.bandwidth_bits,
                                        shared_seed: shared,
                                        rng: &mut rngs[j],
                                    };
                                    let status = local[j].round(&mut ctx, inbox, &mut outbox);
                                    results.push((outbox.drain().collect(), status));
                                    inbox.clear();
                                }
                                resp_tx
                                    .send(Resp::Round {
                                        results,
                                        buffers: inboxes,
                                    })
                                    // lint: allow(panic) — the master outlives workers: it only drops cmd/resp channels after collecting Final
                                    .expect("master alive");
                            }
                            Cmd::Stop => {
                                // lint: allow(panic) — the master outlives workers: it only drops cmd/resp channels after collecting Final
                                resp_tx.send(Resp::Final(local)).expect("master alive");
                                break;
                            }
                        }
                    }
                });
            }

            // Master loop: identical delivery semantics to the sequential engine.
            let mut net: Network<P::Msg> = Network::new(k);
            let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = (0..k).map(|_| Vec::new()).collect();
            let mut statuses = vec![Status::Active; k];
            let mut iterations: u64 = 0;
            let mut comm_rounds: u64 = 0;
            let result = loop {
                // Ship inboxes (moving them out), collect outboxes in order.
                let mut inbox_iter = std::mem::take(&mut inboxes).into_iter();
                for (w, tx) in cmd_txs.iter().enumerate() {
                    let take = if w + 1 < nchunks {
                        bases[w + 1] - bases[w]
                    } else {
                        k - bases[w]
                    };
                    let batch: Vec<_> = inbox_iter.by_ref().take(take).collect();
                    tx.send(Cmd::Round {
                        round: iterations,
                        inboxes: batch,
                    })
                    // lint: allow(panic) — a worker dies only if the protocol panicked, which propagates out of the scope anyway
                    .expect("worker alive");
                }
                // Workers answer in worker order with contiguous machine
                // chunks, so re-extending `inboxes` with the returned
                // (cleared) buffers restores machine order — and reuses
                // every buffer's capacity instead of allocating k fresh
                // `Vec`s per round.
                for (w, rx) in resp_rxs.iter().enumerate() {
                    // lint: allow(panic) — a worker dies only if the protocol panicked, which propagates out of the scope anyway
                    match rx.recv().expect("worker alive") {
                        Resp::Round { results, buffers } => {
                            for (j, (msgs, status)) in results.into_iter().enumerate() {
                                let me = bases[w] + j;
                                statuses[me] = status;
                                for (dst, msg) in msgs {
                                    net.stage(me, dst, msg);
                                }
                            }
                            inboxes.extend(buffers);
                        }
                        // lint: allow(panic) — worker protocol invariant: Final is only sent in response to Stop
                        Resp::Final(_) => unreachable!("workers only finalize on Stop"),
                    }
                }
                debug_assert_eq!(inboxes.len(), k);
                if net.deliver(config.bandwidth_bits, &mut inboxes) {
                    comm_rounds += 1;
                }
                iterations += 1;
                if quiescent(&statuses, &net, &inboxes) {
                    break Ok(());
                }
                if iterations >= config.max_rounds {
                    break Err(EngineError::RoundLimitExceeded {
                        limit: config.max_rounds,
                        active_machines: statuses.iter().filter(|s| **s == Status::Active).count(),
                        queued_msgs: net.queued(),
                        queued_bits: net.queued_bits(),
                    });
                }
            };

            // Collect machines back (always, even on error, to join cleanly).
            let mut final_machines: Vec<P> = Vec::with_capacity(k);
            for tx in &cmd_txs {
                // lint: allow(panic) — a worker dies only if the protocol panicked, which propagates out of the scope anyway
                tx.send(Cmd::Stop).expect("worker alive");
            }
            for rx in &resp_rxs {
                // lint: allow(panic) — a worker dies only if the protocol panicked, which propagates out of the scope anyway
                match rx.recv().expect("worker alive") {
                    Resp::Final(ms) => final_machines.extend(ms),
                    // lint: allow(panic) — worker protocol invariant: Stop is always answered by Final
                    Resp::Round { .. } => unreachable!("Stop yields Final"),
                }
            }
            result.map(|_| {
                net.finalize();
                net.metrics.rounds = comm_rounds;
                RunReport {
                    machines: final_machines,
                    metrics: net.metrics,
                    wire: None,
                }
            })
        })
        // lint: allow(panic) — deliberate propagation: a protocol panic in a worker resurfaces on the caller thread
        .expect("worker thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SequentialEngine;
    use rand::Rng;

    /// Every machine sends a random number of random-sized greetings to
    /// random peers for 3 rounds; outputs record everything received.
    struct Gossip {
        log: Vec<(usize, u32)>,
    }

    impl Protocol for Gossip {
        type Msg = u32;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Envelope<u32>>,
            out: &mut Outbox<u32>,
        ) -> Status {
            for env in inbox {
                self.log.push((env.src, env.msg));
            }
            if ctx.round < 3 {
                let count = ctx.rng.gen_range(0..4);
                for _ in 0..count {
                    let dst = ctx.rng.gen_range(0..ctx.k);
                    let val = ctx.rng.gen::<u32>();
                    out.send(dst, val);
                }
                Status::Active
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_transcript() {
        let mk = || {
            (0..9)
                .map(|_| Gossip { log: Vec::new() })
                .collect::<Vec<_>>()
        };
        let cfg = NetConfig::with_bandwidth(9, 48, 12345);
        let seq = SequentialEngine::run(cfg, mk()).unwrap();
        let par = ParallelEngine::with_threads(4).run(cfg, mk()).unwrap();
        assert_eq!(seq.metrics, par.metrics);
        for (s, p) in seq.machines.iter().zip(&par.machines) {
            assert_eq!(s.log, p.log);
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let cfg = NetConfig::with_bandwidth(3, 64, 7);
        let machines = (0..3).map(|_| Gossip { log: Vec::new() }).collect();
        let report = ParallelEngine::with_threads(1).run(cfg, machines).unwrap();
        assert_eq!(report.machines.len(), 3);
    }

    #[test]
    fn round_limit_error_propagates_and_joins() {
        #[derive(Debug)]
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u8;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                _inbox: &mut Vec<Envelope<u8>>,
                out: &mut Outbox<u8>,
            ) -> Status {
                out.send((ctx.me + 1) % ctx.k, 1);
                Status::Active
            }
        }
        let cfg = NetConfig::with_bandwidth(4, 8, 0).max_rounds(5);
        let err = ParallelEngine::with_threads(2)
            .run(cfg, vec![Chatter, Chatter, Chatter, Chatter])
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::RoundLimitExceeded { limit: 5, .. }
        ));
    }
}
