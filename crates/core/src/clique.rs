//! The congested clique as a special case (`k = n`).
//!
//! Corollary 1 transfers the triangle-enumeration lower bound to the
//! congested clique: `n` machines, one input vertex each, every machine
//! knowing its vertex's incident edges, `Θ(log n)`-bit links. This module
//! provides the conventional configuration and the identity
//! vertex-to-machine placement.

use crate::config::NetConfig;

/// A congested-clique configuration: `k = n` machines and the model's
/// conventional `B = Θ(log n)` link bandwidth (here `max(16, 2·⌈log₂ n⌉)`
/// bits, enough for a constant number of vertex ids per message).
pub fn clique_config(n: usize, seed: u64) -> NetConfig {
    let log = (n.max(2) as f64).log2().ceil() as u64;
    NetConfig {
        k: n,
        bandwidth_bits: (2 * log).max(16),
        max_rounds: 100_000_000,
        seed,
    }
}

/// In the congested clique, vertex `v` lives on machine `v`.
#[inline]
pub fn home_of_vertex(v: u32) -> usize {
    v as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shape() {
        let c = clique_config(1024, 9);
        assert_eq!(c.k, 1024);
        assert_eq!(c.bandwidth_bits, 20);
        let tiny = clique_config(4, 0);
        assert_eq!(tiny.bandwidth_bits, 16);
    }

    #[test]
    fn identity_placement() {
        assert_eq!(home_of_vertex(17), 17);
    }
}
