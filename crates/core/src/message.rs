//! Messages and logical bit-size accounting.
//!
//! The model charges links per *bit*, and the theory reasons about
//! `Θ(log n)`-bit ids and `O(polylog n)`-bit messages. Rather than
//! serializing and charging byte-aligned sizes, protocol message types
//! implement [`WireSize`] and declare the exact number of bits a real
//! encoding would use; the engine enforces the per-link budget on these
//! logical sizes. This keeps the measured round counts aligned with the
//! theorems instead of with encoding artifacts.

use crate::MachineIdx;
use std::sync::Arc;

/// Logical wire size of a message, in bits.
///
/// Implementations must return the same value every time for the same
/// message and must be `≥ 1` (the engine clamps to 1; "free" messages
/// would break the bandwidth accounting).
pub trait WireSize {
    /// Number of bits this message occupies on a link.
    fn bits(&self) -> u64;
}

/// Bits needed to address one of `n` distinct items: `⌈log₂ n⌉` (min 1).
///
/// This is the paper's `Θ(log n)` id cost; protocols size their vertex-id
/// fields with it.
#[inline]
pub fn id_bits(n: usize) -> u64 {
    let n = n.max(2) as u64;
    64 - (n - 1).leading_zeros() as u64
}

/// An opaque byte payload (for raw/byte-oriented protocols and tests);
/// its wire size is its exact byte length. Cloning is cheap (shared
/// refcounted buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Raw(pub Arc<[u8]>);

impl Raw {
    /// Wraps a byte vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Raw(v.into())
    }
}

impl WireSize for Raw {
    fn bits(&self) -> u64 {
        (self.0.len() as u64 * 8).max(1)
    }
}

impl WireSize for () {
    fn bits(&self) -> u64 {
        1
    }
}

impl WireSize for bool {
    fn bits(&self) -> u64 {
        1
    }
}

macro_rules! int_wire {
    ($($t:ty => $b:expr),*) => {
        $(impl WireSize for $t {
            fn bits(&self) -> u64 { $b }
        })*
    };
}
int_wire!(u8 => 8, u16 => 16, u32 => 32, u64 => 64, i32 => 32, i64 => 64, f64 => 64);

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn bits(&self) -> u64 {
        self.0.bits() + self.1.bits()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn bits(&self) -> u64 {
        // Length prefix (up to 2^32 elements) plus payload.
        32 + self.iter().map(WireSize::bits).sum::<u64>()
    }
}

/// A received message together with its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sending machine.
    pub src: MachineIdx,
    /// The payload.
    pub msg: M,
}

/// Per-round staging area for outgoing messages.
///
/// Self-sends (`dst == me`) are legal: they model a machine handing work to
/// itself (e.g. when it is its own proxy), are delivered next round, and
/// cost no bandwidth — consistent with local computation being free.
#[derive(Debug)]
pub struct Outbox<M> {
    k: usize,
    staged: Vec<(MachineIdx, M)>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox for a k-machine network, pre-sized for
    /// one message per peer (a broadcast) so the common staging patterns
    /// start without reallocation.
    pub fn new(k: usize) -> Self {
        Outbox {
            k,
            staged: Vec::with_capacity(k.saturating_sub(1)),
        }
    }

    /// Stages `msg` for delivery to `dst`.
    ///
    /// # Panics
    /// Panics if `dst >= k`.
    #[inline]
    pub fn send(&mut self, dst: MachineIdx, msg: M) {
        assert!(
            dst < self.k,
            "destination {dst} out of range for k={}",
            self.k
        );
        self.staged.push((dst, msg));
    }

    /// Stages `msg` for every machine except `me` (a broadcast).
    pub fn broadcast(&mut self, me: MachineIdx, msg: M)
    where
        M: Clone,
    {
        // One reservation up front: broadcast-heavy protocols (the
        // triangle baseline, PageRank fan-outs) otherwise reallocate
        // log(k) times per round.
        self.staged.reserve(self.k.saturating_sub(1));
        for dst in 0..self.k {
            if dst != me {
                self.staged.push((dst, msg.clone()));
            }
        }
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Drains the staged messages (used by the engines).
    pub fn drain(&mut self) -> std::vec::Drain<'_, (MachineIdx, M)> {
        self.staged.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_log2() {
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(().bits(), 1);
        assert_eq!(true.bits(), 1);
        assert_eq!(7u32.bits(), 32);
        assert_eq!((1u16, 2u8).bits(), 24);
        assert_eq!(vec![1u8, 2, 3].bits(), 32 + 24);
        assert_eq!(Raw::from_vec(vec![0; 4]).bits(), 32);
        assert_eq!(Raw::from_vec(vec![]).bits(), 1);
    }

    #[test]
    fn outbox_send_and_broadcast() {
        let mut out: Outbox<u32> = Outbox::new(4);
        out.send(2, 9);
        out.broadcast(1, 5);
        assert_eq!(out.len(), 4);
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs, vec![(2, 9), (0, 5), (2, 5), (3, 5)]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outbox_rejects_bad_destination() {
        let mut out: Outbox<u32> = Outbox::new(2);
        out.send(2, 1);
    }
}
