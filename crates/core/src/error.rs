//! Engine errors.

use std::fmt;

/// Why an execution could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The network configuration (or the machine vector handed to the
    /// engine) is unusable — e.g. `k = 0`, zero bandwidth, or a machine
    /// count that does not match `k`. Raised by [`crate::NetConfig::validate`]
    /// before any round executes.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The round-limit safety valve fired before global quiescence —
    /// almost always a protocol that never reaches `Status::Done`.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Machines still reporting `Active` when the limit fired.
        active_machines: usize,
        /// Messages still queued on links.
        queued_msgs: usize,
        /// Undelivered link bits behind those messages (self-sends are
        /// free and contribute nothing here).
        queued_bits: u64,
    },
    /// A machine stopped participating in the round barrier: the
    /// distributed engine's coordinator waited out its barrier timeout
    /// without hearing from it. Raised for injected crashes
    /// ([`crate::faults::FaultPlan`]) and for genuinely stalled workers —
    /// either way the engine tears down every surviving thread instead
    /// of hanging forever.
    MachineLost {
        /// The machine that went silent.
        machine: usize,
        /// The round (iteration index) whose barrier it missed.
        round: u64,
    },
    /// A worker thread of the distributed engine panicked (usually the
    /// protocol's own `round` code) or terminated without reporting. The
    /// engine captures the panic, joins every other thread, and returns
    /// this instead of poisoning the caller with a propagated panic.
    WorkerPanicked {
        /// The machine whose worker died.
        machine: usize,
        /// The panic payload (or a placeholder when it was not a string).
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            EngineError::RoundLimitExceeded {
                limit,
                active_machines,
                queued_msgs,
                queued_bits,
            } => write!(
                f,
                "round limit {limit} exceeded with {active_machines} active machine(s) \
                 and {queued_msgs} queued message(s) ({queued_bits} undelivered bits)"
            ),
            EngineError::MachineLost { machine, round } => write!(
                f,
                "machine {machine} missed the round-{round} barrier (crashed or stalled \
                 past the barrier timeout)"
            ),
            EngineError::WorkerPanicked { machine, message } => {
                write!(f, "worker thread of machine {machine} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::RoundLimitExceeded {
            limit: 5,
            active_machines: 2,
            queued_msgs: 7,
            queued_bits: 96,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('2') && s.contains('7') && s.contains("96"));
    }

    #[test]
    fn failure_variants_name_the_machine() {
        let e = EngineError::MachineLost {
            machine: 3,
            round: 17,
        };
        let s = e.to_string();
        assert!(s.contains("machine 3") && s.contains("round-17"), "{s}");
        let e = EngineError::WorkerPanicked {
            machine: 5,
            message: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("machine 5") && s.contains("index out of bounds"),
            "{s}"
        );
    }

    #[test]
    fn invalid_config_display_carries_reason() {
        let e = EngineError::InvalidConfig {
            reason: "need at least one machine (k = 0)".into(),
        };
        assert!(e.to_string().contains("at least one machine"));
    }
}
