//! Engine errors.

use std::fmt;

/// Why an execution could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The network configuration (or the machine vector handed to the
    /// engine) is unusable — e.g. `k = 0`, zero bandwidth, or a machine
    /// count that does not match `k`. Raised by [`crate::NetConfig::validate`]
    /// before any round executes.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The round-limit safety valve fired before global quiescence —
    /// almost always a protocol that never reaches `Status::Done`.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Machines still reporting `Active` when the limit fired.
        active_machines: usize,
        /// Messages still queued on links.
        queued_msgs: usize,
        /// Undelivered link bits behind those messages (self-sends are
        /// free and contribute nothing here).
        queued_bits: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            EngineError::RoundLimitExceeded {
                limit,
                active_machines,
                queued_msgs,
                queued_bits,
            } => write!(
                f,
                "round limit {limit} exceeded with {active_machines} active machine(s) \
                 and {queued_msgs} queued message(s) ({queued_bits} undelivered bits)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::RoundLimitExceeded {
            limit: 5,
            active_machines: 2,
            queued_msgs: 7,
            queued_bits: 96,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('2') && s.contains('7') && s.contains("96"));
    }

    #[test]
    fn invalid_config_display_carries_reason() {
        let e = EngineError::InvalidConfig {
            reason: "need at least one machine (k = 0)".into(),
        };
        assert!(e.to_string().contains("at least one machine"));
    }
}
