//! # km-core — the k-machine model, executable
//!
//! A faithful simulator of the **k-machine model** (a.k.a. the Big Data
//! model) of Klauck, Nanongkai, Pandurangan, and Robinson [SODA 2015], as
//! used by *On the Distributed Complexity of Large-Scale Graph
//! Computations* (SPAA 2018):
//!
//! * `k > 2` machines, pairwise interconnected by bidirectional
//!   point-to-point links;
//! * synchronous rounds; in each round every ordered link delivers at most
//!   `B` bits (`B = Θ(polylog n)` by default, [`NetConfig::polylog`]);
//! * local computation is free; the **round complexity** is the number of
//!   rounds until every machine is done and all links are drained.
//!
//! Algorithms implement the [`Protocol`] trait and are executed through
//! the [`Runner`] API: `Runner::new(cfg).engine(EngineKind::Auto)
//! .run(machines)` dispatches to one of **three transcript-identical
//! engines** — the deterministic [`engine::SequentialEngine`], the
//! thread-parallel [`engine::ParallelEngine`], or the message-passing
//! [`engine::DistributedEngine`] (one OS thread per machine, messages
//! serialized through per-link byte channels via [`WireCodec`]) — with
//! [`EngineKind::Auto`] choosing by machine count and honoring the
//! `KM_ENGINE` environment variable. Full algorithms implement
//! [`KmAlgorithm`] (build → run → extract) and run through the generic
//! [`run_algorithm`] driver, which returns a structured [`RunOutcome`].
//! Message sizes are *logical bit counts* via [`WireSize`], so
//! experiments can charge exactly the `Θ(log n)`-bit id costs the theory
//! uses; the distributed engine additionally reports *measured* frame
//! bytes in a [`WireReport`], exposing the gap between the accounting
//! model and bits that actually crossed a channel. Detailed transcript
//! statistics ([`Metrics`]) feed the lower-bound validators in
//! `km-lower`.
//!
//! The distributed engine additionally survives an unreliable wire: a
//! seeded [`FaultPlan`] (or the `KM_FAULTS` environment knob) injects
//! frame drops, duplicates, bit corruption, delays, and machine
//! crashes, and the engine's checksum + sequence-number + NACK
//! recovery layer keeps `RunOutcome`s bit-identical to the sequential
//! engine under everything short of a crash — which surfaces as a
//! typed [`EngineError::MachineLost`] instead of a hang (see
//! [`faults`]).
//!
//! The congested clique (`k = n`, one vertex per machine — Corollary 1)
//! is the special case provided by [`clique`]. The randomized-routing
//! toolbox of Lemma 13 and the proxy patterns of Section 1.3 live in
//! [`router`].

pub mod clique;
pub mod codec;
pub mod config;
pub mod engine;
pub mod error;
pub mod faults;
pub mod link;
pub mod message;
pub mod metrics;
pub mod protocol;
pub mod rng;
pub mod router;
pub mod runner;

pub use codec::{assert_roundtrip, BitReader, BitWriter, CodecError, WireCodec};
pub use config::NetConfig;
pub use engine::{DistributedEngine, ParallelEngine, RunReport, SequentialEngine};
pub use error::EngineError;
pub use faults::{CrashSpec, FaultPlan, FrameFate, FAULTS_ENV};
pub use message::{id_bits, Envelope, Outbox, Raw, WireSize};
pub use metrics::{Metrics, WireReport};
pub use protocol::{Protocol, RoundCtx, Status};
pub use runner::{run_algorithm, EngineKind, KmAlgorithm, RunOutcome, Runner};

/// Index of a machine, `0..k` (shared with `km-graph::MachineIdx`).
pub type MachineIdx = usize;
