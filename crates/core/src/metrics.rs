//! Transcript statistics of a k-machine execution.
//!
//! These are the quantities the paper's lower bounds constrain: the round
//! count (Theorems 2–5), the per-machine received bits (the transcript
//! `Π_i` whose entropy Theorem 1 bounds by `O(BkT)`, Lemma 3), and total
//! message counts (Corollary 2's message-complexity tradeoffs).

use serde::Serialize;

/// Aggregated statistics of one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Metrics {
    /// Rounds executed until global quiescence.
    pub rounds: u64,
    /// Per-machine count of messages sent (self-sends excluded).
    pub sent_msgs: Vec<u64>,
    /// Per-machine bits sent over links.
    pub sent_bits: Vec<u64>,
    /// Per-machine count of messages received over links.
    pub recv_msgs: Vec<u64>,
    /// Per-machine bits received over links — the size of the transcript
    /// `Π_i` in Theorem 1.
    pub recv_bits: Vec<u64>,
    /// Maximum bits ever pushed through a single ordered link.
    pub max_link_bits: u64,
    /// Link visits performed by the delivery loop over the whole run.
    /// The sparse delivery core only ever visits links with queued
    /// traffic, so this counts *active* link-rounds — not `k²` per round
    /// — and is the observable the O(active traffic) invariant is tested
    /// against (see `engine/mod.rs`).
    pub link_visits: u64,
}

impl Metrics {
    /// Fresh zeroed metrics for `k` machines.
    pub fn new(k: usize) -> Self {
        Metrics {
            rounds: 0,
            sent_msgs: vec![0; k],
            sent_bits: vec![0; k],
            recv_msgs: vec![0; k],
            recv_bits: vec![0; k],
            max_link_bits: 0,
            link_visits: 0,
        }
    }

    /// Total messages exchanged (sum over machines of sends).
    pub fn total_msgs(&self) -> u64 {
        self.sent_msgs.iter().sum()
    }

    /// Total bits exchanged.
    pub fn total_bits(&self) -> u64 {
        self.sent_bits.iter().sum()
    }

    /// The largest per-machine received-bit count: `max_i |Π_i|`. Theorem 1
    /// lower-bounds this by `IC − o(IC)` for hard inputs, and Lemma 3
    /// upper-bounds it by `(B+1)(k−1)T` — the bridge between information
    /// cost and round complexity.
    pub fn max_recv_bits(&self) -> u64 {
        self.recv_bits.iter().copied().max().unwrap_or(0)
    }

    /// The largest per-machine sent-bit count.
    pub fn max_sent_bits(&self) -> u64 {
        self.sent_bits.iter().copied().max().unwrap_or(0)
    }

    /// Theoretical floor on rounds implied by this transcript: some machine
    /// received `max_recv_bits()` over `k−1` links of `B` bits, so at least
    /// `⌈max_recv/((k−1)B)⌉` rounds were necessary for *any* schedule.
    pub fn round_floor(&self, bandwidth_bits: u64) -> u64 {
        let k = self.recv_bits.len() as u64;
        if k <= 1 {
            return 0;
        }
        self.max_recv_bits().div_ceil(bandwidth_bits * (k - 1))
    }
}

/// Measured byte-frame statistics from the distributed engine — what the
/// serialized traffic *actually* cost, next to what [`Metrics`] charges
/// logically. Only the distributed engine produces one (the in-process
/// engines never serialize); it is deliberately **excluded** from the
/// cross-engine bit-identity guarantee, which covers output, metrics,
/// and config.
///
/// Each frame batches every message a (link, round) pair queued (see
/// [`crate::codec::encode_batch_frame_into`]), so the logical/measured
/// gap has exactly three sources, all mechanical: each *batch* pays
/// one fixed header ([`crate::codec::FRAME_HEADER_BYTES`]: length, bit
/// count, sequence number, kind, CRC-32); each batch payload carries a
/// count varint plus a per-message bit-length varint (`record_bits`);
/// and each batch payload is padded to a whole byte (`⌈bits/8⌉`). The
/// message bits themselves equal `logical_bits` by construction — the
/// batch encoder asserts it per message — so `wire_vs_logical`
/// quantifies pure framing overhead, not any disagreement about
/// message content.
///
/// Under fault injection ([`crate::faults::FaultPlan`]) the recovery
/// layer's extra traffic lands in the `retransmit_*`/`nack_*`
/// counters — *never* in `frames`/`frame_bytes` (which keep counting
/// one frame per active link per round, preserving
/// `messages == Metrics::total_msgs()`) and never in the logical
/// [`Metrics`]. On a fault-free run all four are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct WireReport {
    /// Batch frames shipped over byte channels — one per (link, round)
    /// pair with queued traffic, *not* one per message.
    pub frames: u64,
    /// Logical link messages carried inside those frames; equals
    /// `Metrics::total_msgs()` of the same run.
    pub messages: u64,
    /// Total frame bytes including headers.
    pub frame_bytes: u64,
    /// Total payload bytes (frames minus headers).
    pub payload_bytes: u64,
    /// Exact payload bits before byte padding: message bits plus the
    /// count and bit-length varints of every batch.
    pub payload_bits: u64,
    /// `Σ ⌈bitsᵢ/8⌉` over all framed messages — the payload bytes the
    /// same traffic would occupy framed one message per frame. The
    /// baseline for the batching-vs-per-message comparisons in the
    /// wire benches.
    pub msg_payload_bytes: u64,
    /// Total logical bits ([`crate::WireSize`]) of the framed messages;
    /// equals `Metrics::total_bits()` of the same run.
    pub logical_bits: u64,
    /// Extra physical DATA transmissions beyond each frame's first:
    /// NACK-triggered retransmits and fault-injected duplicates.
    pub retransmit_frames: u64,
    /// Bytes behind `retransmit_frames`.
    pub retransmit_bytes: u64,
    /// Retransmit-request control frames sent by receivers.
    pub nack_frames: u64,
    /// Bytes behind `nack_frames`.
    pub nack_bytes: u64,
}

impl WireReport {
    /// Bits actually moved over the byte channels, headers included.
    pub fn measured_bits(&self) -> u64 {
        self.frame_bytes * 8
    }

    /// Bits spent on frame headers alone.
    pub fn header_bits(&self) -> u64 {
        (self.frame_bytes - self.payload_bytes) * 8
    }

    /// Bits spent on batch bookkeeping inside payloads: the
    /// message-count varint and per-message bit-length varints.
    pub fn record_bits(&self) -> u64 {
        self.payload_bits - self.logical_bits
    }

    /// Bits lost to byte-aligning each batch payload (`⌈bits/8⌉`
    /// padding) — at most 7 per frame.
    pub fn padding_bits(&self) -> u64 {
        self.payload_bytes * 8 - self.payload_bits
    }

    /// Average messages per batch frame (0.0 when nothing was sent) —
    /// the batching win in one number: the 21-byte header is amortized
    /// over this many messages.
    pub fn msgs_per_frame(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        self.messages as f64 / self.frames as f64
    }

    /// What the same traffic would have measured framed one message
    /// per frame with `header_bytes` of header each — the baseline the
    /// wire benches compare batching against (12 bytes for the PR 6
    /// header, [`crate::codec::FRAME_HEADER_BYTES`] for the PR 8
    /// self-healing one).
    pub fn solo_framing_bits(&self, header_bytes: u64) -> u64 {
        (self.msg_payload_bytes + header_bytes * self.messages) * 8
    }

    /// The headline ratio: measured frame bits over logical bits
    /// (`1.0` = the encoding is exactly as large as the theory charges;
    /// `0.0` when nothing was sent). Recovery traffic is excluded — it
    /// measures the adversary, not the encoding.
    pub fn wire_vs_logical(&self) -> f64 {
        if self.logical_bits == 0 {
            return 0.0;
        }
        self.measured_bits() as f64 / self.logical_bits as f64
    }

    /// Bytes the recovery layer spent on top of the logical traffic:
    /// retransmitted DATA plus NACK control frames. Zero on a
    /// fault-free wire.
    pub fn recovery_bytes(&self) -> u64 {
        self.retransmit_bytes + self.nack_bytes
    }
}

/// The result of a run: the final machine states plus metrics.
#[derive(Debug)]
pub struct RunReport<P> {
    /// Final protocol states, indexed by machine.
    pub machines: Vec<P>,
    /// Transcript statistics.
    pub metrics: Metrics,
    /// Measured byte-frame statistics — `Some` only for runs on the
    /// distributed engine (see [`WireReport`]).
    pub wire: Option<WireReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_maxima() {
        let mut m = Metrics::new(3);
        m.sent_msgs = vec![1, 2, 3];
        m.sent_bits = vec![10, 20, 30];
        m.recv_bits = vec![5, 50, 7];
        assert_eq!(m.total_msgs(), 6);
        assert_eq!(m.total_bits(), 60);
        assert_eq!(m.max_recv_bits(), 50);
        assert_eq!(m.max_sent_bits(), 30);
    }

    #[test]
    fn wire_report_arithmetic() {
        // 3 batch frames of 21-byte headers carrying 6 messages; 10
        // payload bytes holding 77 exact payload bits (3 of byte
        // padding), of which 75 are logical message bits (2 are
        // varint records).
        let w = WireReport {
            frames: 3,
            messages: 6,
            frame_bytes: 73,
            payload_bytes: 10,
            payload_bits: 77,
            msg_payload_bytes: 12,
            logical_bits: 75,
            retransmit_frames: 2,
            retransmit_bytes: 50,
            nack_frames: 1,
            nack_bytes: 25,
        };
        assert_eq!(w.measured_bits(), 73 * 8);
        assert_eq!(w.header_bits(), 63 * 8);
        assert_eq!(w.record_bits(), 2);
        assert_eq!(w.padding_bits(), 3);
        assert!((w.msgs_per_frame() - 2.0).abs() < 1e-12);
        assert!((w.wire_vs_logical() - (73.0 * 8.0) / 75.0).abs() < 1e-12);
        assert_eq!(w.recovery_bytes(), 75);
        // Per-message framing baselines: payload bytes plus one header
        // per message.
        assert_eq!(w.solo_framing_bits(12), (12 + 12 * 6) * 8);
        assert_eq!(w.solo_framing_bits(21), (12 + 21 * 6) * 8);
        let idle = WireReport::default();
        assert_eq!(idle.wire_vs_logical(), 0.0);
        assert_eq!(idle.msgs_per_frame(), 0.0);
        assert_eq!(idle.recovery_bytes(), 0);
    }

    #[test]
    fn round_floor_matches_lemma3() {
        let mut m = Metrics::new(5);
        m.recv_bits = vec![0, 0, 4000, 0, 0];
        // 4 links × 100 bits per round = 400 bits/round ⇒ 10 rounds.
        assert_eq!(m.round_floor(100), 10);
        assert_eq!(Metrics::new(1).round_floor(100), 0);
    }
}
