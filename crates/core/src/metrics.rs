//! Transcript statistics of a k-machine execution.
//!
//! These are the quantities the paper's lower bounds constrain: the round
//! count (Theorems 2–5), the per-machine received bits (the transcript
//! `Π_i` whose entropy Theorem 1 bounds by `O(BkT)`, Lemma 3), and total
//! message counts (Corollary 2's message-complexity tradeoffs).

use serde::Serialize;

/// Aggregated statistics of one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Metrics {
    /// Rounds executed until global quiescence.
    pub rounds: u64,
    /// Per-machine count of messages sent (self-sends excluded).
    pub sent_msgs: Vec<u64>,
    /// Per-machine bits sent over links.
    pub sent_bits: Vec<u64>,
    /// Per-machine count of messages received over links.
    pub recv_msgs: Vec<u64>,
    /// Per-machine bits received over links — the size of the transcript
    /// `Π_i` in Theorem 1.
    pub recv_bits: Vec<u64>,
    /// Maximum bits ever pushed through a single ordered link.
    pub max_link_bits: u64,
    /// Link visits performed by the delivery loop over the whole run.
    /// The sparse delivery core only ever visits links with queued
    /// traffic, so this counts *active* link-rounds — not `k²` per round
    /// — and is the observable the O(active traffic) invariant is tested
    /// against (see `engine/mod.rs`).
    pub link_visits: u64,
}

impl Metrics {
    /// Fresh zeroed metrics for `k` machines.
    pub fn new(k: usize) -> Self {
        Metrics {
            rounds: 0,
            sent_msgs: vec![0; k],
            sent_bits: vec![0; k],
            recv_msgs: vec![0; k],
            recv_bits: vec![0; k],
            max_link_bits: 0,
            link_visits: 0,
        }
    }

    /// Total messages exchanged (sum over machines of sends).
    pub fn total_msgs(&self) -> u64 {
        self.sent_msgs.iter().sum()
    }

    /// Total bits exchanged.
    pub fn total_bits(&self) -> u64 {
        self.sent_bits.iter().sum()
    }

    /// The largest per-machine received-bit count: `max_i |Π_i|`. Theorem 1
    /// lower-bounds this by `IC − o(IC)` for hard inputs, and Lemma 3
    /// upper-bounds it by `(B+1)(k−1)T` — the bridge between information
    /// cost and round complexity.
    pub fn max_recv_bits(&self) -> u64 {
        self.recv_bits.iter().copied().max().unwrap_or(0)
    }

    /// The largest per-machine sent-bit count.
    pub fn max_sent_bits(&self) -> u64 {
        self.sent_bits.iter().copied().max().unwrap_or(0)
    }

    /// Theoretical floor on rounds implied by this transcript: some machine
    /// received `max_recv_bits()` over `k−1` links of `B` bits, so at least
    /// `⌈max_recv/((k−1)B)⌉` rounds were necessary for *any* schedule.
    pub fn round_floor(&self, bandwidth_bits: u64) -> u64 {
        let k = self.recv_bits.len() as u64;
        if k <= 1 {
            return 0;
        }
        self.max_recv_bits().div_ceil(bandwidth_bits * (k - 1))
    }
}

/// Measured byte-frame statistics from the distributed engine — what the
/// serialized traffic *actually* cost, next to what [`Metrics`] charges
/// logically. Only the distributed engine produces one (the in-process
/// engines never serialize); it is deliberately **excluded** from the
/// cross-engine bit-identity guarantee, which covers output, metrics,
/// and config.
///
/// The logical/measured gap has exactly two sources, both mechanical:
/// every frame pays a fixed header
/// ([`crate::codec::FRAME_HEADER_BYTES`]: length, bit claim, sequence
/// number, kind, CRC-32), and every payload is padded to a whole byte
/// (`⌈bits/8⌉`). The *payload bits before padding* equal
/// `logical_bits` by construction —
/// [`crate::codec::WireCodec::encode_frame`] asserts it per message —
/// so `wire_vs_logical` quantifies pure framing overhead, not any
/// disagreement about message content.
///
/// Under fault injection ([`crate::faults::FaultPlan`]) the recovery
/// layer's extra traffic lands in the `retransmit_*`/`nack_*`
/// counters — *never* in `frames`/`frame_bytes` (which keep counting
/// one frame per logical link message, preserving
/// `frames == Metrics::total_msgs()`) and never in the logical
/// [`Metrics`]. On a fault-free run all four are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct WireReport {
    /// Frames shipped over byte channels (one per link message).
    pub frames: u64,
    /// Total frame bytes including headers.
    pub frame_bytes: u64,
    /// Total payload bytes (frames minus headers).
    pub payload_bytes: u64,
    /// Total logical bits ([`crate::WireSize`]) of the framed messages;
    /// equals `Metrics::total_bits()` of the same run.
    pub logical_bits: u64,
    /// Extra physical DATA transmissions beyond each frame's first:
    /// NACK-triggered retransmits and fault-injected duplicates.
    pub retransmit_frames: u64,
    /// Bytes behind `retransmit_frames`.
    pub retransmit_bytes: u64,
    /// Retransmit-request control frames sent by receivers.
    pub nack_frames: u64,
    /// Bytes behind `nack_frames`.
    pub nack_bytes: u64,
}

impl WireReport {
    /// Bits actually moved over the byte channels, headers included.
    pub fn measured_bits(&self) -> u64 {
        self.frame_bytes * 8
    }

    /// Bits spent on frame headers alone.
    pub fn header_bits(&self) -> u64 {
        (self.frame_bytes - self.payload_bytes) * 8
    }

    /// Bits lost to byte-aligning each payload (`⌈bits/8⌉` padding).
    pub fn padding_bits(&self) -> u64 {
        self.payload_bytes * 8 - self.logical_bits
    }

    /// The headline ratio: measured frame bits over logical bits
    /// (`1.0` = the encoding is exactly as large as the theory charges;
    /// `0.0` when nothing was sent). Recovery traffic is excluded — it
    /// measures the adversary, not the encoding.
    pub fn wire_vs_logical(&self) -> f64 {
        if self.logical_bits == 0 {
            return 0.0;
        }
        self.measured_bits() as f64 / self.logical_bits as f64
    }

    /// Bytes the recovery layer spent on top of the logical traffic:
    /// retransmitted DATA plus NACK control frames. Zero on a
    /// fault-free wire.
    pub fn recovery_bytes(&self) -> u64 {
        self.retransmit_bytes + self.nack_bytes
    }
}

/// The result of a run: the final machine states plus metrics.
#[derive(Debug)]
pub struct RunReport<P> {
    /// Final protocol states, indexed by machine.
    pub machines: Vec<P>,
    /// Transcript statistics.
    pub metrics: Metrics,
    /// Measured byte-frame statistics — `Some` only for runs on the
    /// distributed engine (see [`WireReport`]).
    pub wire: Option<WireReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_maxima() {
        let mut m = Metrics::new(3);
        m.sent_msgs = vec![1, 2, 3];
        m.sent_bits = vec![10, 20, 30];
        m.recv_bits = vec![5, 50, 7];
        assert_eq!(m.total_msgs(), 6);
        assert_eq!(m.total_bits(), 60);
        assert_eq!(m.max_recv_bits(), 50);
        assert_eq!(m.max_sent_bits(), 30);
    }

    #[test]
    fn wire_report_arithmetic() {
        // 3 frames of 21-byte headers; 10 payload bytes carrying 75
        // logical bits (5 bits of byte padding).
        let w = WireReport {
            frames: 3,
            frame_bytes: 73,
            payload_bytes: 10,
            logical_bits: 75,
            retransmit_frames: 2,
            retransmit_bytes: 50,
            nack_frames: 1,
            nack_bytes: 25,
        };
        assert_eq!(w.measured_bits(), 73 * 8);
        assert_eq!(w.header_bits(), 63 * 8);
        assert_eq!(w.padding_bits(), 5);
        assert!((w.wire_vs_logical() - (73.0 * 8.0) / 75.0).abs() < 1e-12);
        assert_eq!(w.recovery_bytes(), 75);
        let idle = WireReport::default();
        assert_eq!(idle.wire_vs_logical(), 0.0);
        assert_eq!(idle.recovery_bytes(), 0);
    }

    #[test]
    fn round_floor_matches_lemma3() {
        let mut m = Metrics::new(5);
        m.recv_bits = vec![0, 0, 4000, 0, 0];
        // 4 links × 100 bits per round = 400 bits/round ⇒ 10 rounds.
        assert_eq!(m.round_floor(100), 10);
        assert_eq!(Metrics::new(1).round_floor(100), 0);
    }
}
