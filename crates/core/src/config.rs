//! Network configuration for a k-machine execution.

use crate::error::EngineError;

/// Static parameters of a k-machine network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of machines `k` (the paper assumes `k > 2`, but the simulator
    /// accepts any `k ≥ 1` for testing).
    pub k: usize,
    /// Per-link bandwidth `B` in bits per round.
    pub bandwidth_bits: u64,
    /// Safety valve: abort with [`crate::EngineError::RoundLimitExceeded`]
    /// after this many rounds.
    pub max_rounds: u64,
    /// Global seed; machine `i`'s private RNG is derived from `(seed, i)`,
    /// and the shared public random string from `seed` alone.
    pub seed: u64,
}

impl NetConfig {
    /// A configuration with the model's default `B = Θ(polylog n)`
    /// bandwidth: `B = max(64, ⌈log₂ n⌉²)` bits per round, the convention
    /// used by all experiments in EXPERIMENTS.md.
    pub fn polylog(k: usize, n: usize, seed: u64) -> Self {
        let log = (n.max(2) as f64).log2().ceil() as u64;
        NetConfig {
            k,
            bandwidth_bits: (log * log).max(64),
            max_rounds: 100_000_000,
            seed,
        }
    }

    /// Explicit bandwidth.
    pub fn with_bandwidth(k: usize, bandwidth_bits: u64, seed: u64) -> Self {
        NetConfig {
            k,
            bandwidth_bits,
            max_rounds: 100_000_000,
            seed,
        }
    }

    /// Sets the round-limit safety valve.
    pub fn max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Validates the configuration, rejecting `k = 0`, zero bandwidth,
    /// and a zero round limit (which could never complete a run).
    ///
    /// The [`crate::Runner`] calls this before dispatching to an engine,
    /// so an unusable configuration surfaces as
    /// [`EngineError::InvalidConfig`] instead of deep inside a run.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.k == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "need at least one machine (k = 0)".into(),
            });
        }
        if self.bandwidth_bits == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "per-link bandwidth must be positive".into(),
            });
        }
        if self.max_rounds == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "max_rounds must be positive".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polylog_bandwidth_grows_with_n() {
        let c1 = NetConfig::polylog(8, 1 << 10, 0);
        let c2 = NetConfig::polylog(8, 1 << 20, 0);
        assert_eq!(c1.bandwidth_bits, 100);
        assert_eq!(c2.bandwidth_bits, 400);
        assert!(NetConfig::polylog(8, 4, 0).bandwidth_bits >= 64);
    }

    #[test]
    fn builder_chain() {
        let c = NetConfig::with_bandwidth(4, 128, 7).max_rounds(10);
        assert_eq!(
            (c.k, c.bandwidth_bits, c.max_rounds, c.seed),
            (4, 128, 10, 7)
        );
    }

    #[test]
    fn invalid_configs_are_rejected_with_reasons() {
        let err = NetConfig::with_bandwidth(0, 64, 0).validate().unwrap_err();
        assert!(err.to_string().contains("at least one machine"));
        let err = NetConfig::with_bandwidth(4, 0, 0).validate().unwrap_err();
        assert!(err.to_string().contains("bandwidth"));
        let err = NetConfig::with_bandwidth(4, 64, 0)
            .max_rounds(0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("max_rounds"));
        assert!(NetConfig::with_bandwidth(4, 64, 0).validate().is_ok());
    }
}
