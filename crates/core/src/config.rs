//! Network configuration for a k-machine execution.

/// Static parameters of a k-machine network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of machines `k` (the paper assumes `k > 2`, but the simulator
    /// accepts any `k ≥ 1` for testing).
    pub k: usize,
    /// Per-link bandwidth `B` in bits per round.
    pub bandwidth_bits: u64,
    /// Safety valve: abort with [`crate::EngineError::RoundLimitExceeded`]
    /// after this many rounds.
    pub max_rounds: u64,
    /// Global seed; machine `i`'s private RNG is derived from `(seed, i)`,
    /// and the shared public random string from `seed` alone.
    pub seed: u64,
}

impl NetConfig {
    /// A configuration with the model's default `B = Θ(polylog n)`
    /// bandwidth: `B = max(64, ⌈log₂ n⌉²)` bits per round, the convention
    /// used by all experiments in EXPERIMENTS.md.
    pub fn polylog(k: usize, n: usize, seed: u64) -> Self {
        let log = (n.max(2) as f64).log2().ceil() as u64;
        NetConfig {
            k,
            bandwidth_bits: (log * log).max(64),
            max_rounds: 100_000_000,
            seed,
        }
    }

    /// Explicit bandwidth.
    pub fn with_bandwidth(k: usize, bandwidth_bits: u64, seed: u64) -> Self {
        NetConfig {
            k,
            bandwidth_bits,
            max_rounds: 100_000_000,
            seed,
        }
    }

    /// Sets the round-limit safety valve.
    pub fn max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if `k == 0` or bandwidth is zero.
    pub fn validate(&self) {
        assert!(self.k >= 1, "need at least one machine");
        assert!(self.bandwidth_bits >= 1, "bandwidth must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polylog_bandwidth_grows_with_n() {
        let c1 = NetConfig::polylog(8, 1 << 10, 0);
        let c2 = NetConfig::polylog(8, 1 << 20, 0);
        assert_eq!(c1.bandwidth_bits, 100);
        assert_eq!(c2.bandwidth_bits, 400);
        assert!(NetConfig::polylog(8, 4, 0).bandwidth_bits >= 64);
    }

    #[test]
    fn builder_chain() {
        let c = NetConfig::with_bandwidth(4, 128, 7).max_rounds(10);
        assert_eq!(
            (c.k, c.bandwidth_bits, c.max_rounds, c.seed),
            (4, 128, 10, 7)
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_machines_invalid() {
        NetConfig::with_bandwidth(0, 64, 0).validate();
    }
}
