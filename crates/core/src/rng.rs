//! Deterministic randomness for replayable distributed executions.
//!
//! Each machine owns a private ChaCha8 stream derived from
//! `(config.seed, machine index)`; the shared *public random string* of
//! the model (known to all machines, e.g. the hash function `h` of the
//! triangle algorithm) is derived from the seed alone. Identical seeds
//! yield bit-identical transcripts on both engines.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 mixer — used to derive independent seeds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The private RNG of machine `i` under global seed `seed`.
pub fn machine_rng(seed: u64, machine: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(
        seed ^ (machine as u64).wrapping_mul(0xA24BAED4963EE407),
    ))
}

/// The shared public random seed (identical on all machines).
pub fn shared_seed(seed: u64) -> u64 {
    splitmix64(seed ^ 0x5851F42D4C957F2D)
}

/// Deterministic hash of a 64-bit key under a shared seed — the
/// "hash function known to all machines" the paper uses for vertex
/// placement, proxy choice, and color assignment.
#[inline]
pub fn keyed_hash(shared: u64, key: u64) -> u64 {
    splitmix64(shared ^ key.wrapping_mul(0x9E3779B97F4A7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn machine_rngs_are_deterministic_and_distinct() {
        let mut a1 = machine_rng(7, 0);
        let mut a2 = machine_rng(7, 0);
        let mut b = machine_rng(7, 1);
        let x1: u64 = a1.gen();
        let x2: u64 = a2.gen();
        let y: u64 = b.gen();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn shared_seed_is_stable() {
        assert_eq!(shared_seed(3), shared_seed(3));
        assert_ne!(shared_seed(3), shared_seed(4));
    }

    #[test]
    fn keyed_hash_spreads_keys() {
        let shared = shared_seed(1);
        let k = 16u64;
        let mut buckets = vec![0usize; k as usize];
        for key in 0..16_000u64 {
            buckets[(keyed_hash(shared, key) % k) as usize] += 1;
        }
        let ideal = 1000.0;
        for &b in &buckets {
            assert!(
                (b as f64) > 0.8 * ideal && (b as f64) < 1.2 * ideal,
                "bucket {b}"
            );
        }
    }
}
