//! A bandwidth-limited FIFO link between an ordered pair of machines.

use crate::message::{Envelope, WireSize};
use std::collections::VecDeque;

/// One direction of a point-to-point link.
///
/// Messages queue FIFO; [`Link::deliver`] releases messages worth up to `B`
/// bits per call. A message larger than `B` occupies the link for
/// `⌈bits/B⌉` consecutive rounds (partial progress is tracked, and unused
/// budget does *not* carry across rounds — links cannot "save up"
/// bandwidth, matching the synchronous model).
#[derive(Debug)]
pub struct Link<M> {
    queue: VecDeque<(Envelope<M>, u64)>,
    /// Bits of the front message already transmitted in previous rounds.
    front_progress: u64,
    /// Total bits ever enqueued (for metrics).
    total_bits: u64,
    /// Total messages ever enqueued.
    total_msgs: u64,
}

impl<M> Default for Link<M> {
    fn default() -> Self {
        Link {
            queue: VecDeque::new(),
            front_progress: 0,
            total_bits: 0,
            total_msgs: 0,
        }
    }
}

/// What one [`Link::deliver`] call accomplished: the bandwidth it
/// consumed (including partial progress on a message still in flight)
/// and the count/size of the messages it fully delivered. The sizes are
/// the ones cached at [`Link::push`] time, so delivery-side accounting
/// never re-calls [`WireSize::bits`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Bits of the budget consumed this call.
    pub bits_used: u64,
    /// Messages fully delivered this call.
    pub msgs: u64,
    /// Summed (cached) wire sizes of the fully delivered messages.
    pub msg_bits: u64,
}

impl<M: WireSize> Link<M> {
    /// Enqueues a message; its logical size is sampled once (clamped ≥ 1).
    pub fn push(&mut self, env: Envelope<M>) {
        let bits = env.msg.bits().max(1);
        self.push_sized(env, bits);
    }

    /// Enqueues a message whose (clamped) wire size the caller already
    /// computed — the engine's staging path uses this so
    /// [`WireSize::bits`] runs exactly once per message.
    pub fn push_sized(&mut self, env: Envelope<M>, bits: u64) {
        debug_assert_eq!(bits, env.msg.bits().max(1), "size must match the message");
        self.total_bits += bits;
        self.total_msgs += 1;
        self.queue.push_back((env, bits));
    }

    /// Delivers up to `budget` bits worth of queued messages, in FIFO
    /// order, appending them to `out`.
    pub fn deliver(&mut self, budget: u64, out: &mut Vec<Envelope<M>>) -> Delivery {
        let mut d = Delivery::default();
        let mut remaining = budget;
        while let Some((_, bits)) = self.queue.front() {
            let need = bits - self.front_progress;
            if need <= remaining {
                remaining -= need;
                self.front_progress = 0;
                // lint: allow(panic) — the while-let above proved the queue has a front
                let (env, bits) = self.queue.pop_front().expect("front exists");
                d.msgs += 1;
                d.msg_bits += bits;
                out.push(env);
            } else {
                self.front_progress += remaining;
                remaining = 0;
                break;
            }
        }
        d.bits_used = budget - remaining;
        d
    }

    /// Whether no message is queued or in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queued messages not yet fully delivered.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime totals `(messages, bits)` pushed through this link.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_msgs, self.total_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(bits_msg: Vec<u8>) -> Envelope<crate::message::Raw> {
        Envelope {
            src: 0,
            msg: crate::message::Raw::from_vec(bits_msg),
        }
    }

    #[test]
    fn small_messages_fit_one_round() {
        let mut link = Link::default();
        link.push(env(vec![0; 2])); // 16 bits
        link.push(env(vec![0; 2])); // 16 bits
        let mut out = Vec::new();
        let d = link.deliver(64, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(
            d,
            Delivery {
                bits_used: 32,
                msgs: 2,
                msg_bits: 32
            }
        );
        assert!(link.is_empty());
    }

    #[test]
    fn big_message_takes_multiple_rounds() {
        let mut link = Link::default();
        link.push(env(vec![0; 32])); // 256 bits at 100 bits/round: 3 rounds
        let mut out = Vec::new();
        for _ in 0..2 {
            link.deliver(100, &mut out);
            assert!(out.is_empty());
        }
        link.deliver(100, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn budget_does_not_carry_over_within_message_boundaries() {
        // 256-bit message at 100 bits/round: progress 100, 200, done at 256
        // on round 3 (with 44 budget left for the next message).
        let mut link = Link::default();
        link.push(env(vec![0; 32])); // 256 bits
        link.push(env(vec![0; 1])); // 8 bits
        let mut out = Vec::new();
        assert_eq!(link.deliver(100, &mut out).bits_used, 100);
        assert_eq!(link.deliver(100, &mut out).bits_used, 100);
        assert_eq!(out.len(), 0);
        // Third round: 56 to finish + 8 for the next message. The
        // delivered sizes are the full cached message sizes, not the
        // budget spent this round.
        let d = link.deliver(100, &mut out);
        assert_eq!((d.bits_used, d.msgs, d.msg_bits), (64, 2, 264));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link: Link<u32> = Link::default();
        for i in 0..5u32 {
            link.push(Envelope { src: 0, msg: i });
        }
        let mut out = Vec::new();
        link.deliver(u64::MAX, &mut out);
        let got: Vec<u32> = out.into_iter().map(|e| e.msg).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn totals_accumulate() {
        let mut link: Link<u32> = Link::default();
        link.push(Envelope { src: 0, msg: 1 });
        link.push(Envelope { src: 0, msg: 2 });
        assert_eq!(link.totals(), (2, 64));
        assert_eq!(link.queued(), 2);
    }
}
