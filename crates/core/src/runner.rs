//! The engine-agnostic execution API: [`Runner`], [`EngineKind`], and the
//! [`KmAlgorithm`] build→run→extract lifecycle.
//!
//! Every upper bound in the paper follows one pattern: partition the
//! input over `k` machines, run a [`Protocol`] to global quiescence, and
//! read the answer plus transcript statistics back out. [`Runner`] is
//! that pattern as a value — callers choose *what* to run and *under
//! which configuration*, while the engine (sequential reference or
//! thread-parallel, transcript-identical by construction) becomes a
//! one-line, even environment-driven, choice:
//!
//! ```
//! use km_core::{EngineKind, Envelope, NetConfig, Outbox, Protocol, RoundCtx, Runner, Status};
//!
//! struct Ping;
//! impl Protocol for Ping {
//!     type Msg = u8;
//!     fn round(
//!         &mut self,
//!         ctx: &mut RoundCtx<'_>,
//!         _inbox: &mut Vec<Envelope<u8>>,
//!         out: &mut Outbox<u8>,
//!     ) -> Status {
//!         if ctx.round == 0 && ctx.me != 0 {
//!             out.send(0, 1);
//!         }
//!         Status::Done
//!     }
//! }
//!
//! let report = Runner::new(NetConfig::with_bandwidth(4, 64, 7))
//!     .engine(EngineKind::Auto)
//!     .run(vec![Ping, Ping, Ping, Ping])?;
//! assert_eq!(report.metrics.total_msgs(), 3);
//! # Ok::<(), km_core::EngineError>(())
//! ```
//!
//! Full algorithms (sorting, MST, PageRank, triangle enumeration)
//! additionally share a *lifecycle*: build per-machine protocol state
//! from a global instance, run, then assemble a global output from the
//! final machine states. [`KmAlgorithm`] captures that lifecycle once,
//! and [`run_algorithm`] is the single generic driver every algorithm
//! crate and experiment routes through.

use crate::codec::WireCodec;
use crate::config::NetConfig;
use crate::engine::{DistributedEngine, ParallelEngine, RunReport, SequentialEngine};
use crate::error::EngineError;
use crate::faults::FaultPlan;
use crate::metrics::{Metrics, WireReport};
use crate::protocol::Protocol;

/// Environment variable overriding [`EngineKind::Auto`] resolution
/// (values: `seq`/`sequential`, `par`/`parallel`/`parallel:N`,
/// `dist`/`distributed`, `auto`). An unrecognized value is an
/// [`EngineError::InvalidConfig`] naming it — a typo must not silently
/// run a different engine than the experimenter asked for.
pub const ENGINE_ENV: &str = "KM_ENGINE";

/// Machine count at which [`EngineKind::Auto`] switches to the parallel
/// engine (when more than one hardware thread is available). Below this,
/// per-round fan-out/fan-in overhead outweighs the parallel speedup.
pub const AUTO_PARALLEL_MIN_K: usize = 32;

/// Which engine executes a run. All engines are transcript-identical
/// (same results, metrics, and RNG streams for the same seed), so this
/// is purely a wall-clock/fidelity choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The deterministic single-threaded reference engine.
    Sequential,
    /// The thread-parallel engine. `threads = 0` means "all available
    /// cores"; `threads = 1` degenerates to the sequential engine.
    Parallel {
        /// Worker threads (capped at `k` by the engine).
        threads: usize,
    },
    /// The message-passing engine: one OS thread per machine, messages
    /// serialized over per-link byte channels, and a measured
    /// [`WireReport`] in the outcome. Never chosen by `Auto` on its own
    /// (it spawns `k` threads and pays real serialization); opt in
    /// explicitly or via `KM_ENGINE=distributed`.
    Distributed,
    /// Resolve at run time: the [`ENGINE_ENV`] environment variable wins
    /// if set; otherwise runs with `k ≥` [`AUTO_PARALLEL_MIN_K`] go
    /// parallel when the host has more than one hardware thread.
    #[default]
    Auto,
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

impl EngineKind {
    /// Parses an engine name as accepted by [`ENGINE_ENV`] and the
    /// experiment harness's `--engine` flag. Returns `None` for
    /// unrecognized input.
    pub fn parse(s: &str) -> Option<EngineKind> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "seq" | "sequential" => Some(EngineKind::Sequential),
            "par" | "parallel" => Some(EngineKind::Parallel { threads: 0 }),
            "dist" | "distributed" => Some(EngineKind::Distributed),
            "auto" => Some(EngineKind::Auto),
            _ => {
                let threads = s
                    .strip_prefix("parallel:")
                    .or_else(|| s.strip_prefix("par:"))?;
                threads
                    .parse()
                    .ok()
                    .map(|threads| EngineKind::Parallel { threads })
            }
        }
    }

    /// Reads the [`ENGINE_ENV`] override: `Ok(None)` when unset.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] naming the value when the variable
    /// is set to something [`EngineKind::parse`] rejects. (It used to
    /// fall back to auto-resolution silently, which made `KM_ENGINE`
    /// typos run the wrong engine without a trace.)
    pub fn from_env() -> Result<Option<EngineKind>, EngineError> {
        let raw = std::env::var(ENGINE_ENV).ok();
        Self::from_env_value(raw.as_deref())
    }

    /// [`EngineKind::from_env`] with the environment read factored out,
    /// so the rejection path is testable without mutating the real
    /// (process-global) variable from a racing test thread.
    fn from_env_value(raw: Option<&str>) -> Result<Option<EngineKind>, EngineError> {
        match raw {
            None => Ok(None),
            Some(v) => match Self::parse(v) {
                Some(kind) => Ok(Some(kind)),
                None => Err(EngineError::InvalidConfig {
                    reason: format!(
                        "unrecognized {ENGINE_ENV} value {v:?} (expected seq, sequential, par, \
                         parallel, parallel:N, dist, distributed, or auto)"
                    ),
                }),
            },
        }
    }

    /// Resolves `Auto` (and `threads = 0`) into a concrete engine choice
    /// for a `k`-machine run.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if [`ENGINE_ENV`] is set to an
    /// unrecognized value (see [`EngineKind::from_env`]).
    pub fn resolve(self, k: usize) -> Result<EngineKind, EngineError> {
        Ok(self.resolve_with(Self::from_env()?, k, available_threads()))
    }

    /// Deterministic resolution core: `env` is the [`ENGINE_ENV`]
    /// override (ignored unless `self` is `Auto`), `cores` the hardware
    /// thread count. Exposed for tests; use [`EngineKind::resolve`].
    fn resolve_with(self, env: Option<EngineKind>, k: usize, cores: usize) -> EngineKind {
        match self {
            EngineKind::Sequential => EngineKind::Sequential,
            EngineKind::Parallel { threads: 0 } => EngineKind::Parallel {
                // A forced parallel run must actually exercise the
                // threaded engine, even on a single-core host.
                threads: cores.max(2),
            },
            EngineKind::Parallel { threads } => EngineKind::Parallel { threads },
            EngineKind::Distributed => EngineKind::Distributed,
            EngineKind::Auto => match env {
                Some(kind) if kind != EngineKind::Auto => kind.resolve_with(None, k, cores),
                _ if k >= AUTO_PARALLEL_MIN_K && cores > 1 => {
                    EngineKind::Parallel { threads: cores }
                }
                _ => EngineKind::Sequential,
            },
        }
    }
}

/// Builder for one k-machine execution: a [`NetConfig`] plus an
/// [`EngineKind`]. Validates the configuration before any engine work,
/// so `k = 0` and friends surface as [`EngineError::InvalidConfig`]
/// instead of a panic deep inside a run.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    config: NetConfig,
    engine: EngineKind,
    faults: Option<FaultPlan>,
}

impl Runner {
    /// A runner for `config` with the default [`EngineKind::Auto`].
    pub fn new(config: NetConfig) -> Self {
        Runner {
            config,
            engine: EngineKind::Auto,
            faults: None,
        }
    }

    /// Selects the engine.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Injects wire faults (see [`crate::faults`]). Faults act on the
    /// distributed engine's physical frames; the sequential and
    /// parallel engines have no wire, so they ignore the plan — which
    /// is exactly what lets a faulted distributed run be compared
    /// against a fault-free sequential ground truth. When no plan is
    /// set here, the [`crate::faults::FAULTS_ENV`] environment variable
    /// is consulted at run time.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The network configuration this runner executes under.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The engine this runner would use for its `k` (with `Auto` and
    /// `threads = 0` resolved against the current environment).
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if [`ENGINE_ENV`] is set to an
    /// unrecognized value.
    pub fn resolved_engine(&self) -> Result<EngineKind, EngineError> {
        self.engine.resolve(self.config.k)
    }

    /// Runs one protocol instance per machine to global quiescence.
    ///
    /// The `WireCodec` bound exists because any run may resolve to the
    /// distributed engine, which serializes every message; protocols
    /// driven directly through an engine (`SequentialEngine::run`) need
    /// only `WireSize`.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] for an invalid configuration, a
    /// machine count ≠ `k`, or a bad [`ENGINE_ENV`] value;
    /// [`EngineError::RoundLimitExceeded`] if the round-limit safety
    /// valve fires.
    pub fn run<P: Protocol>(&self, machines: Vec<P>) -> Result<RunReport<P>, EngineError>
    where
        P::Msg: WireCodec,
    {
        self.config.validate()?;
        self.dispatch(machines)
    }

    /// Engine dispatch after validation. A malformed
    /// [`crate::faults::FAULTS_ENV`] value is a hard error regardless
    /// of which engine resolves — a typo must not silently run
    /// fault-free.
    fn dispatch<P: Protocol>(&self, machines: Vec<P>) -> Result<RunReport<P>, EngineError>
    where
        P::Msg: WireCodec,
    {
        let faults = match self.faults {
            Some(plan) => Some(plan),
            None => FaultPlan::from_env()?,
        };
        match self.resolved_engine()? {
            EngineKind::Parallel { threads } if threads > 1 => {
                ParallelEngine::with_threads(threads).run(self.config, machines)
            }
            EngineKind::Distributed => {
                DistributedEngine::run_with_faults(self.config, machines, faults)
            }
            _ => SequentialEngine::run(self.config, machines),
        }
    }

    /// Runs a full [`KmAlgorithm`] through its build→run→extract
    /// lifecycle. Equivalent to [`run_algorithm`]`(alg, *self)`.
    pub fn run_algorithm<A: KmAlgorithm>(
        &self,
        alg: &A,
    ) -> Result<RunOutcome<A::Output>, EngineError>
    where
        <A::Machine as Protocol>::Msg: WireCodec,
    {
        // Validate before build so `k = 0` and friends surface as errors
        // rather than tripping the algorithm's own preconditions.
        self.config.validate()?;
        let machines = alg.build(self.config.k);
        let report = self.dispatch(machines)?;
        let output = alg.extract(report.machines, &report.metrics);
        Ok(RunOutcome {
            output,
            metrics: report.metrics,
            config: self.config,
            wire: report.wire,
        })
    }
}

/// A k-machine algorithm as a value: everything needed to instantiate
/// per-machine protocol state from a global problem instance and to
/// assemble the global output from the final machine states.
///
/// Implementors are cheap descriptor structs (usually holding references
/// to the input graph/partition plus a config), so one instance can be
/// run under several engines or configurations — the cross-engine
/// equivalence matrix in `tests/engine_equivalence.rs` does exactly
/// that.
pub trait KmAlgorithm {
    /// The per-machine protocol this algorithm runs.
    type Machine: Protocol;
    /// The assembled global output.
    type Output;

    /// Builds one protocol instance per machine (`k` of them, in machine
    /// order) from the problem instance.
    ///
    /// # Panics
    /// Implementations panic when the instance cannot be laid out over
    /// `k` machines (e.g. a partition built for a different `k`) — a
    /// programmer error at the call site, unlike the runtime conditions
    /// [`EngineError`] covers.
    fn build(&self, k: usize) -> Vec<Self::Machine>;

    /// Assembles the global output from the final machine states and the
    /// run's transcript statistics.
    fn extract(&self, machines: Vec<Self::Machine>, metrics: &Metrics) -> Self::Output;
}

/// The structured result of [`run_algorithm`]: the algorithm's output,
/// the transcript statistics, and an echo of the configuration that
/// produced them (so result tables are self-describing).
#[derive(Debug, Clone)]
pub struct RunOutcome<T> {
    /// The algorithm's assembled global output.
    pub output: T,
    /// Transcript statistics of the run.
    pub metrics: Metrics,
    /// The configuration the run executed under.
    pub config: NetConfig,
    /// Measured byte-frame statistics (`Some` only on the distributed
    /// engine). Engine instrumentation, not part of the run's identity —
    /// see the `PartialEq` impl below.
    pub wire: Option<WireReport>,
}

/// Equality covers the *bit-identity guarantee* — output, metrics, and
/// config echo. `wire` is excluded deliberately: it reports what one
/// particular engine's serialization measured, so including it would
/// make semantically identical runs on different engines compare
/// unequal.
impl<T: PartialEq> PartialEq for RunOutcome<T> {
    fn eq(&self, other: &Self) -> bool {
        self.output == other.output && self.metrics == other.metrics && self.config == other.config
    }
}

/// Runs `alg` to quiescence under `runner`: build one machine per
/// protocol instance, execute on the selected engine, extract the global
/// output. The single driver every algorithm crate routes through.
pub fn run_algorithm<A: KmAlgorithm>(
    alg: &A,
    runner: Runner,
) -> Result<RunOutcome<A::Output>, EngineError>
where
    <A::Machine as Protocol>::Msg: WireCodec,
{
    runner.run_algorithm(alg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Envelope, Outbox};
    use crate::protocol::{RoundCtx, Status};

    /// Machine `i` sends its index to machine 0; machine 0 sums.
    #[derive(Debug)]
    struct SumUp {
        total: u64,
    }

    impl Protocol for SumUp {
        type Msg = u64;
        fn round(
            &mut self,
            ctx: &mut RoundCtx<'_>,
            inbox: &mut Vec<Envelope<u64>>,
            out: &mut Outbox<u64>,
        ) -> Status {
            self.total += inbox.iter().map(|e| e.msg).sum::<u64>();
            if ctx.round == 0 && ctx.me != 0 {
                out.send(0, ctx.me as u64);
                return Status::Active;
            }
            Status::Done
        }
    }

    /// The same as a [`KmAlgorithm`]: output is machine 0's sum.
    struct SumAlgorithm;

    impl KmAlgorithm for SumAlgorithm {
        type Machine = SumUp;
        type Output = u64;
        fn build(&self, k: usize) -> Vec<SumUp> {
            (0..k).map(|_| SumUp { total: 0 }).collect()
        }
        fn extract(&self, machines: Vec<SumUp>, _metrics: &Metrics) -> u64 {
            machines[0].total
        }
    }

    #[test]
    fn parse_accepts_all_spellings() {
        assert_eq!(EngineKind::parse("seq"), Some(EngineKind::Sequential));
        assert_eq!(
            EngineKind::parse(" Sequential "),
            Some(EngineKind::Sequential)
        );
        assert_eq!(
            EngineKind::parse("par"),
            Some(EngineKind::Parallel { threads: 0 })
        );
        assert_eq!(
            EngineKind::parse("parallel"),
            Some(EngineKind::Parallel { threads: 0 })
        );
        assert_eq!(
            EngineKind::parse("parallel:6"),
            Some(EngineKind::Parallel { threads: 6 })
        );
        assert_eq!(
            EngineKind::parse("PAR:2"),
            Some(EngineKind::Parallel { threads: 2 })
        );
        assert_eq!(EngineKind::parse("dist"), Some(EngineKind::Distributed));
        assert_eq!(
            EngineKind::parse(" Distributed "),
            Some(EngineKind::Distributed)
        );
        assert_eq!(EngineKind::parse("auto"), Some(EngineKind::Auto));
        assert_eq!(EngineKind::parse("gpu"), None);
        assert_eq!(EngineKind::parse("parallel:x"), None);
    }

    #[test]
    fn auto_resolution_rules() {
        let auto = EngineKind::Auto;
        // Small k or single core: sequential.
        assert_eq!(
            auto.resolve_with(None, 8, 16),
            EngineKind::Sequential,
            "small k stays sequential"
        );
        assert_eq!(
            auto.resolve_with(None, 128, 1),
            EngineKind::Sequential,
            "single core stays sequential"
        );
        // Large k on a multicore host: parallel on all cores.
        assert_eq!(
            auto.resolve_with(None, AUTO_PARALLEL_MIN_K, 8),
            EngineKind::Parallel { threads: 8 }
        );
        // Environment override wins either way.
        assert_eq!(
            auto.resolve_with(Some(EngineKind::Sequential), 128, 8),
            EngineKind::Sequential
        );
        assert_eq!(
            auto.resolve_with(Some(EngineKind::Parallel { threads: 0 }), 4, 1),
            EngineKind::Parallel { threads: 2 },
            "forced parallel exercises the threaded engine even on one core"
        );
        // Explicit kinds ignore the environment.
        assert_eq!(
            EngineKind::Sequential.resolve_with(Some(EngineKind::Parallel { threads: 4 }), 64, 8),
            EngineKind::Sequential
        );
        // Auto never chooses the distributed engine on its own, but the
        // environment can demand it; explicit Distributed sticks.
        assert_eq!(
            auto.resolve_with(Some(EngineKind::Distributed), 4, 8),
            EngineKind::Distributed
        );
        assert_eq!(
            EngineKind::Distributed.resolve_with(None, 256, 1),
            EngineKind::Distributed
        );
    }

    #[test]
    fn runner_runs_on_every_engine_kind() {
        let cfg = NetConfig::with_bandwidth(5, 64, 3);
        for kind in [
            EngineKind::Sequential,
            EngineKind::Parallel { threads: 2 },
            EngineKind::Parallel { threads: 0 },
            EngineKind::Distributed,
            EngineKind::Auto,
        ] {
            let machines = (0..5).map(|_| SumUp { total: 0 }).collect();
            let report = Runner::new(cfg).engine(kind).run(machines).unwrap();
            assert_eq!(report.machines[0].total, 1 + 2 + 3 + 4, "{kind:?}");
        }
    }

    #[test]
    fn runner_rejects_invalid_configs_before_running() {
        let err = Runner::new(NetConfig::with_bandwidth(0, 64, 0))
            .run(Vec::<SumUp>::new())
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
        let err = Runner::new(NetConfig::with_bandwidth(0, 64, 0))
            .run_algorithm(&SumAlgorithm)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn run_algorithm_returns_structured_outcome() {
        let cfg = NetConfig::with_bandwidth(4, 64, 9);
        let outcome = run_algorithm(&SumAlgorithm, Runner::new(cfg)).unwrap();
        assert_eq!(outcome.output, 1 + 2 + 3);
        assert_eq!(outcome.config, cfg);
        assert_eq!(outcome.metrics.total_msgs(), 3);
    }

    #[test]
    fn env_override_is_read_and_parsed() {
        // The engines are transcript-identical, so a concurrent test
        // observing this temporary override still computes the same
        // results — the override is benign to race with. (The invalid
        // value below is also exercised in this same test, rather than
        // its own, so two tests never race on the variable.)
        let prev = std::env::var(ENGINE_ENV).ok();
        std::env::set_var(ENGINE_ENV, "parallel:3");
        assert_eq!(
            EngineKind::from_env().unwrap(),
            Some(EngineKind::Parallel { threads: 3 })
        );
        assert_eq!(
            EngineKind::Auto.resolve(4).unwrap(),
            EngineKind::Parallel { threads: 3 }
        );
        std::env::set_var(ENGINE_ENV, "distributed");
        assert_eq!(
            EngineKind::from_env().unwrap(),
            Some(EngineKind::Distributed)
        );
        assert_eq!(
            EngineKind::Auto.resolve(4).unwrap(),
            EngineKind::Distributed
        );
        match prev {
            Some(v) => std::env::set_var(ENGINE_ENV, v),
            None => std::env::remove_var(ENGINE_ENV),
        }
    }

    #[test]
    fn unrecognized_env_value_is_a_hard_error_naming_the_value() {
        // Regression: an unrecognized KM_ENGINE must be a hard error
        // naming the offender, not a silent fallback to Auto's own
        // choice. Exercised through `from_env_value` so this test never
        // plants an invalid value in the process-global environment,
        // which concurrent tests resolving `Auto` would trip over.
        let err = EngineKind::from_env_value(Some("warp-drive")).unwrap_err();
        match &err {
            EngineError::InvalidConfig { reason } => {
                assert!(reason.contains("warp-drive"), "{reason}");
                assert!(reason.contains(ENGINE_ENV), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        assert_eq!(EngineKind::from_env_value(None).unwrap(), None);
        assert_eq!(
            EngineKind::from_env_value(Some("dist")).unwrap(),
            Some(EngineKind::Distributed)
        );
    }
}
