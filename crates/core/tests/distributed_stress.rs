//! Round-barrier stress test: 64 worker threads with randomized
//! per-round jitter must still advance in lockstep, deliver per-link
//! traffic in FIFO order, and reproduce the sequential engine's
//! transcript bit for bit.
//!
//! The jitter durations are drawn from the per-machine protocol RNG, so
//! the RNG streams — and therefore the traffic — are identical on both
//! engines; only the thread arrival times at the barrier differ. Any
//! reordering the channels or the coordinator allowed would show up as
//! a FIFO violation (checked in-protocol via per-source sequence
//! numbers) or as a diverged log.

use km_core::engine::{DistributedEngine, SequentialEngine};
use km_core::{Envelope, NetConfig, Outbox, Protocol, Raw, RoundCtx, Status};
use rand::Rng;
use std::time::Duration;

const K: usize = 64;
const ROUNDS: u64 = 6;

/// Sends per-destination sequence-numbered messages, sleeps a random
/// jitter to stagger barrier arrivals, and asserts on receipt that each
/// source's sequence numbers arrive strictly in order.
#[derive(Debug)]
struct JitterSeq {
    /// Rounds of traffic before Done.
    rounds: u64,
    /// Stagger barrier arrivals with real sleeps (off under the model
    /// checker, whose scheduler explores arrival orders directly).
    jitter: bool,
    /// Next sequence number per destination.
    next_seq: Vec<u64>,
    /// Highest sequence number seen per source (+1), i.e. expected next.
    expect: Vec<u64>,
    /// Reception log: `(src, seq)` in delivery order.
    log: Vec<(usize, u64)>,
}

impl JitterSeq {
    fn fleet(k: usize, rounds: u64, jitter: bool) -> Vec<JitterSeq> {
        (0..k)
            .map(|_| JitterSeq {
                rounds,
                jitter,
                next_seq: vec![0; k],
                expect: vec![0; k],
                log: Vec::new(),
            })
            .collect()
    }
}

impl Protocol for JitterSeq {
    type Msg = Raw;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<Raw>>,
        out: &mut Outbox<Raw>,
    ) -> Status {
        for env in inbox.iter() {
            let bytes: [u8; 8] = env.msg.0[..8].try_into().expect("8-byte seq payload");
            let seq = u64::from_le_bytes(bytes);
            assert_eq!(
                seq, self.expect[env.src],
                "machine {} saw src {} out of FIFO order",
                ctx.me, env.src
            );
            self.expect[env.src] = seq + 1;
            self.log.push((env.src, seq));
        }
        if ctx.round < self.rounds {
            // A small random fanout keeps many links active at once.
            for _ in 0..3 {
                let dst = ctx.rng.gen_range(0..ctx.k);
                let seq = self.next_seq[dst];
                self.next_seq[dst] += 1;
                out.send(dst, Raw::from_vec(seq.to_le_bytes().to_vec()));
            }
            if self.jitter {
                // Randomized jitter (drawn from the same RNG stream on
                // every engine) staggers when each worker hits the
                // round barrier.
                let jitter_us = ctx.rng.gen_range(0..1500);
                std::thread::sleep(Duration::from_micros(jitter_us));
            }
            Status::Active
        } else {
            Status::Done
        }
    }
}

#[test]
fn k64_jittered_workers_stay_in_lockstep_and_fifo() {
    // Tight bandwidth forces multi-round deliveries, so the FIFO check
    // also covers partially-delivered messages spanning barriers.
    let cfg = NetConfig::with_bandwidth(K, 96, 4242).max_rounds(1_000_000);
    let seq =
        SequentialEngine::run(cfg, JitterSeq::fleet(K, ROUNDS, true)).expect("sequential run");
    let dist =
        DistributedEngine::run(cfg, JitterSeq::fleet(K, ROUNDS, true)).expect("distributed run");

    assert_eq!(seq.metrics, dist.metrics, "metrics diverged");
    for (i, (s, d)) in seq.machines.iter().zip(&dist.machines).enumerate() {
        assert_eq!(s.log, d.log, "machine {i} transcript diverged");
        assert_eq!(s.expect, d.expect, "machine {i} FIFO counters diverged");
    }
    // Every sent sequence number was received exactly once.
    let sent: u64 = seq.metrics.sent_msgs.iter().sum();
    let self_sends: u64 = seq
        .machines
        .iter()
        .enumerate()
        .map(|(i, m)| m.expect[i])
        .sum();
    let logged: u64 = dist.machines.iter().map(|m| m.log.len() as u64).sum();
    assert_eq!(logged, sent + self_sends, "lost or duplicated deliveries");

    let wire = dist.wire.expect("distributed runs report wire");
    assert_eq!(wire.logical_bits, seq.metrics.total_bits());
    assert_eq!(
        wire.messages, sent,
        "every link message framed exactly once"
    );
    // Batching: at most one frame per (link, round) with traffic —
    // never more frames than messages, and with 3 sends per machine
    // per round over 64² links, strictly fewer whenever two sends
    // share a destination.
    assert!(
        wire.frames <= sent,
        "batching must not split messages across extra frames"
    );
    assert!(wire.msgs_per_frame() >= 1.0);
}

/// The same lockstep/FIFO/conservation invariants, but with barrier
/// arrival orders driven by the model checker's schedule explorer
/// instead of real jitter: every explored interleaving of a small
/// fleet must reproduce the sequential transcript bit for bit.
#[test]
fn model_schedules_keep_small_fleet_in_lockstep_and_fifo() {
    use crossbeam::model::{explore, ModelConfig};

    const MK: usize = 4;
    const MROUNDS: u64 = 3;
    let cfg = NetConfig::with_bandwidth(MK, 96, 4242).max_rounds(100_000);
    let seq =
        SequentialEngine::run(cfg, JitterSeq::fleet(MK, MROUNDS, false)).expect("sequential run");

    let model_cfg = ModelConfig {
        seed: 9,
        schedules: 16,
        dfs_depth: 16,
        max_steps: 400_000,
    };
    let report = explore(&model_cfg, || {
        let dist = DistributedEngine::run(cfg, JitterSeq::fleet(MK, MROUNDS, false))
            .map_err(|e| format!("distributed run failed: {e}"))?;
        if dist.metrics != seq.metrics {
            return Err("metrics diverged from sequential".into());
        }
        for (i, (s, d)) in seq.machines.iter().zip(&dist.machines).enumerate() {
            if s.log != d.log || s.expect != d.expect {
                return Err(format!("machine {i} transcript diverged"));
            }
        }
        Ok(())
    })
    .unwrap_or_else(|failure| {
        panic!(
            "schedule {} failed: {}",
            failure.schedule, failure.violation
        )
    });
    assert_eq!(report.schedules, 16);
    assert!(
        report.max_decision_points > 0,
        "engine runs must branch under the scheduler"
    );
}
