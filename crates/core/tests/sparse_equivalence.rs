//! Property tests for the sparse delivery core: random protocols
//! (random sizes, destinations, round counts, self-sends, messages
//! spanning multiple rounds) must conserve traffic exactly and produce
//! bit-for-bit identical transcripts on the sequential and parallel
//! engines — the invariants the active-link index is not allowed to
//! bend.

use km_core::engine::{ParallelEngine, SequentialEngine};
use km_core::{Envelope, NetConfig, Outbox, Protocol, Raw, RoundCtx, Status};
use proptest::prelude::*;
use rand::Rng;

/// Sends `fanout` random-size byte blobs to uniformly random machines
/// (self included — self-sends are free and bypass links) for `rounds`
/// rounds, and logs every reception. The private per-machine RNG drives
/// all choices, so both engines must see identical traffic.
struct RandomTraffic {
    rounds: u64,
    fanout: usize,
    max_len: usize,
    log: Vec<(usize, usize)>,
    received_msgs: u64,
}

impl Protocol for RandomTraffic {
    type Msg = Raw;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<Raw>>,
        out: &mut Outbox<Raw>,
    ) -> Status {
        for env in inbox.iter() {
            self.log.push((env.src, env.msg.0.len()));
            if env.src != ctx.me {
                self.received_msgs += 1;
            }
        }
        if ctx.round < self.rounds {
            for _ in 0..self.fanout {
                let dst = ctx.rng.gen_range(0..ctx.k);
                let len = ctx.rng.gen_range(0..=self.max_len);
                out.send(dst, Raw::from_vec(vec![dst as u8; len]));
            }
            Status::Active
        } else {
            Status::Done
        }
    }
}

proptest! {
    /// Sent == received conservation under the sparse path, for traffic
    /// that exercises empty links, drained links, self-sends, and
    /// messages larger than one round's budget.
    #[test]
    fn random_protocols_conserve_traffic(
        k in 2usize..9,
        rounds in 1u64..6,
        fanout in 0usize..5,
        max_len in 0usize..40,
        bandwidth in 1u64..200,
        seed in 0u64..1_000_000,
    ) {
        let cfg = NetConfig::with_bandwidth(k, bandwidth, seed).max_rounds(1_000_000);
        let machines: Vec<RandomTraffic> = (0..k)
            .map(|_| RandomTraffic { rounds, fanout, max_len, log: Vec::new(), received_msgs: 0 })
            .collect();
        let report = SequentialEngine::run(cfg, machines).unwrap();
        let m = &report.metrics;
        prop_assert_eq!(
            m.sent_msgs.iter().sum::<u64>(),
            m.recv_msgs.iter().sum::<u64>(),
            "message conservation after drain"
        );
        prop_assert_eq!(
            m.sent_bits.iter().sum::<u64>(),
            m.recv_bits.iter().sum::<u64>(),
            "bit conservation after drain"
        );
        // The protocols' own receive logs agree with the metrics
        // (self-sends appear in logs but not in link metrics).
        let logged: u64 = report.machines.iter().map(|p| p.received_msgs).sum();
        prop_assert_eq!(logged, m.recv_msgs.iter().sum::<u64>());
        // Sparse invariant: the delivery loop never visits more links
        // than messages it moves (a visit only happens for queued
        // traffic; partial deliveries re-visit, bounded by bits/B).
        let delivered: u64 = m.recv_msgs.iter().sum();
        let worst_partial = m.total_bits() / bandwidth + delivered;
        prop_assert!(
            m.link_visits <= worst_partial + delivered,
            "link_visits {} exceeds active-traffic bound {}",
            m.link_visits,
            worst_partial + delivered
        );
    }

    /// Sequential and parallel engines are transcript-identical on the
    /// same random workloads: same metrics, same per-machine logs.
    #[test]
    fn engines_are_transcript_identical(
        k in 2usize..9,
        rounds in 1u64..5,
        fanout in 0usize..4,
        max_len in 0usize..32,
        bandwidth in 1u64..150,
        seed in 0u64..1_000_000,
        threads in 2usize..5,
    ) {
        let cfg = NetConfig::with_bandwidth(k, bandwidth, seed).max_rounds(1_000_000);
        let mk = || -> Vec<RandomTraffic> {
            (0..k)
                .map(|_| RandomTraffic { rounds, fanout, max_len, log: Vec::new(), received_msgs: 0 })
                .collect()
        };
        let seq = SequentialEngine::run(cfg, mk()).unwrap();
        let par = ParallelEngine::with_threads(threads).run(cfg, mk()).unwrap();
        prop_assert_eq!(&seq.metrics, &par.metrics, "metrics diverged");
        for (i, (s, p)) in seq.machines.iter().zip(&par.machines).enumerate() {
            prop_assert_eq!(&s.log, &p.log, "machine {} transcript diverged", i);
        }
    }
}
