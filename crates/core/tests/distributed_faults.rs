//! Regression tests for the distributed engine's failure paths: a
//! worker that panics, crashes, or hangs must surface as a *typed*
//! [`EngineError`] from a coordinator that then joins every thread —
//! never a process abort, a poisoned panic in the caller, or a hung
//! `run()`. (Before the failure model landed, a dead peer was a
//! `panic!("peer hung up mid-round")` inside a worker and an
//! `expect("worker alive")` in the coordinator.)

use km_core::engine::DistributedEngine;
use km_core::{
    CrashSpec, EngineError, Envelope, FaultPlan, NetConfig, Outbox, Protocol, RoundCtx, Status,
};
use std::time::{Duration, Instant};

/// All-to-all chatter for `rounds` rounds; machine `victim` panics /
/// stalls at round `trigger` according to `mode`.
#[derive(Debug)]
struct Saboteur {
    rounds: u64,
    victim: usize,
    trigger: u64,
    mode: Mode,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Panic,
    /// Sleeps well past the barrier timeout, then returns normally —
    /// a slow machine, not a dead one, but past the deadline.
    Stall(Duration),
    Healthy,
}

impl Protocol for Saboteur {
    type Msg = u32;
    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        _inbox: &mut Vec<Envelope<u32>>,
        out: &mut Outbox<u32>,
    ) -> Status {
        if ctx.me == self.victim && ctx.round == self.trigger {
            match self.mode {
                Mode::Panic => panic!("machine {} exploded in round {}", ctx.me, ctx.round),
                Mode::Stall(d) => std::thread::sleep(d),
                Mode::Healthy => {}
            }
        }
        if ctx.round < self.rounds {
            for dst in 0..ctx.k {
                if dst != ctx.me {
                    out.send(dst, ctx.round as u32);
                }
            }
            Status::Active
        } else {
            Status::Done
        }
    }
}

fn saboteurs(k: usize, victim: usize, trigger: u64, mode: Mode) -> Vec<Saboteur> {
    (0..k)
        .map(|_| Saboteur {
            rounds: 6,
            victim,
            trigger,
            mode,
        })
        .collect()
}

fn cfg(k: usize) -> NetConfig {
    NetConfig::with_bandwidth(k, 64, 7)
}

#[test]
fn worker_panic_is_typed_and_attributed() {
    let err = DistributedEngine::run(cfg(5), saboteurs(5, 2, 1, Mode::Panic)).unwrap_err();
    match err {
        EngineError::WorkerPanicked { machine, message } => {
            assert_eq!(machine, 2, "the panicking machine, not a victim peer");
            assert!(
                message.contains("machine 2 exploded in round 1"),
                "panic payload must survive into the error: {message:?}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

/// The panic may land in *any* machine, including the one the
/// coordinator polls first and last.
#[test]
fn worker_panic_attribution_covers_every_position() {
    for victim in [0, 4] {
        let err = DistributedEngine::run(cfg(5), saboteurs(5, victim, 0, Mode::Panic)).unwrap_err();
        match err {
            EngineError::WorkerPanicked { machine, .. } => assert_eq!(machine, victim),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}

/// A panicking worker must not hang the run: the coordinator returns
/// promptly (no barrier-timeout wait — the panic report short-circuits
/// it) and every other thread is joined before `run` returns.
#[test]
fn worker_panic_fails_fast_with_no_orphans() {
    let start = Instant::now();
    let err = DistributedEngine::run(cfg(6), saboteurs(6, 3, 2, Mode::Panic)).unwrap_err();
    assert!(matches!(
        err,
        EngineError::WorkerPanicked { machine: 3, .. }
    ));
    // Well under the 10s default barrier timeout: the failure was
    // detected by report, not by deadline.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "panic detection must not wait out the barrier timeout ({:?})",
        start.elapsed()
    );
}

/// A machine that stalls past the barrier deadline (but never dies) is
/// reported lost — and the run still tears down cleanly once the
/// straggler wakes up inside the aborted scope.
#[test]
fn stalled_machine_is_lost_at_the_barrier() {
    let plan = FaultPlan {
        barrier_timeout_ms: 200,
        ..FaultPlan::default()
    };
    let err = DistributedEngine::run_with_faults(
        cfg(4),
        saboteurs(4, 1, 1, Mode::Stall(Duration::from_millis(900))),
        Some(plan),
    )
    .unwrap_err();
    assert_eq!(
        err,
        EngineError::MachineLost {
            machine: 1,
            round: 1
        }
    );
}

/// Crash injection through the public `FaultPlan` API on a raw-engine
/// run (the algorithm-level path is covered by `tests/chaos_matrix.rs`
/// at the workspace root).
#[test]
fn planned_crash_names_machine_and_round() {
    let plan = FaultPlan {
        crash: Some(CrashSpec {
            machine: 3,
            round: 2,
        }),
        barrier_timeout_ms: 300,
        ..FaultPlan::default()
    };
    let err =
        DistributedEngine::run_with_faults(cfg(5), saboteurs(5, 0, 0, Mode::Healthy), Some(plan))
            .unwrap_err();
    assert_eq!(
        err,
        EngineError::MachineLost {
            machine: 3,
            round: 2
        }
    );
}

/// Back-to-back failing runs: if a failure leaked threads or wedged
/// channels, the second and third runs would hang or misbehave.
#[test]
fn failed_runs_leave_nothing_behind() {
    for _ in 0..3 {
        let err = DistributedEngine::run(cfg(4), saboteurs(4, 1, 0, Mode::Panic)).unwrap_err();
        assert!(matches!(
            err,
            EngineError::WorkerPanicked { machine: 1, .. }
        ));
    }
    // And a healthy run on the same thread still succeeds afterwards.
    let report = DistributedEngine::run(cfg(4), saboteurs(4, 0, 99, Mode::Healthy)).unwrap();
    assert!(report.metrics.rounds > 0);
}
