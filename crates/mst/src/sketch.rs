//! AGM graph sketches (Ahn–Guha–McGregor ℓ₀-sampling) — the ingredient
//! that upgrades Borůvka-style connectivity to the `O~(n/k²)` rounds of
//! Pandurangan–Robinson–Scquizzato \[51\], which the paper cites as the
//! matching upper bound for its GLBT-derived `Ω~(n/k²)` MST/connectivity
//! lower bound.
//!
//! The magic property is **linearity over GF(2)**: a vertex's sketch is
//! the XOR of encodings of its incident edges; XOR-ing the sketches of a
//! vertex set `S` cancels every edge internal to `S` and leaves exactly
//! the boundary `∂S` — so a component's `O(polylog n)`-bit sketch can be
//! aggregated at a proxy machine with `Θ(polylog)` communication *without
//! anyone knowing neighbor labels*, and an outgoing edge can be decoded
//! from it whp. Fresh independent sketch copies per Borůvka phase keep
//! the randomness sound (sketches are one-shot).
//!
//! This module provides the data structure with full tests plus
//! [`sketch_spanning_forest`], a phase-by-phase connectivity driver that
//! exercises exactly the per-phase logic the distributed protocol of \[51\]
//! runs (local XOR per label → component XOR → decode → merge), so the
//! sketch machinery is validated end to end. (The remaining distributed
//! plumbing — the pointer-jumping label service — is inventoried in
//! DESIGN.md as future work.)

use km_core::rng::{keyed_hash, splitmix64};
use km_graph::{CsrGraph, Edge, Vertex};

/// Levels per basic sampler: edge `e` participates in level `ℓ` with
/// probability `2^{-ℓ}` (level 0 holds every edge).
const LEVELS: usize = 40;

/// Independent basic samplers per sketch. One sampler isolates a single
/// boundary edge at *some* level only with constant probability; `REPS`
/// independent repetitions drive the failure rate to `O(c^{REPS})` —
/// this is the standard AGM amplification.
const REPS: usize = 8;

/// One basic ℓ₀ sampler: per level, the XOR of the sampled edges'
/// 64-bit keys plus an independent checksum and a parity bit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BasicSketch {
    key_xor: [u64; LEVELS],
    check_xor: [u32; LEVELS],
    parity: [u8; LEVELS],
}

impl BasicSketch {
    fn empty() -> Self {
        BasicSketch {
            key_xor: [0; LEVELS],
            check_xor: [0; LEVELS],
            parity: [0; LEVELS],
        }
    }

    fn toggle_edge(&mut self, key: u64, seed: u64) {
        let top = edge_level(seed, key);
        let check = edge_check(seed, key);
        // An edge at level ℓ participates in all levels 0..=ℓ.
        for l in 0..=top {
            self.key_xor[l] ^= key;
            self.check_xor[l] ^= check;
            self.parity[l] ^= 1;
        }
    }

    fn xor_in(&mut self, other: &Self) {
        for l in 0..LEVELS {
            self.key_xor[l] ^= other.key_xor[l];
            self.check_xor[l] ^= other.check_xor[l];
            self.parity[l] ^= other.parity[l];
        }
    }

    /// A level holding exactly one edge is detected by odd parity plus a
    /// matching checksum (several XOR-ed edges masquerading as one edge
    /// survive the checksum with probability `2^{-32}` per level).
    fn decode(&self, seed: u64) -> Option<Edge> {
        for l in (0..LEVELS).rev() {
            if self.parity[l] == 1 && self.key_xor[l] != 0 {
                let key = self.key_xor[l];
                if edge_check(seed, key) == self.check_xor[l]
                    && edge_level(seed, key) >= l
                    && (key >> 32) != (key & 0xFFFF_FFFF)
                {
                    return Some(key_to_edge(key));
                }
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.key_xor.iter().all(|&x| x == 0) && self.parity.iter().all(|&c| c == 0)
    }
}

/// An AGM ℓ₀-sampling sketch: `REPS` independent basic samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L0Sketch {
    reps: Vec<BasicSketch>,
}

/// Canonical 64-bit key of an edge.
#[inline]
fn edge_key(e: Edge) -> u64 {
    ((e.u as u64) << 32) | e.v as u64
}

#[inline]
fn key_to_edge(key: u64) -> Edge {
    Edge::new((key >> 32) as Vertex, (key & 0xFFFF_FFFF) as Vertex)
}

/// The level assignment of an edge under a given sketch seed: the number
/// of leading one-bits of its keyed hash (geometric with ratio 1/2).
#[inline]
fn edge_level(seed: u64, key: u64) -> usize {
    (keyed_hash(seed, key).leading_ones() as usize).min(LEVELS - 1)
}

#[inline]
fn edge_check(seed: u64, key: u64) -> u32 {
    (keyed_hash(seed ^ 0xC3EC_C3EC_C3EC_C3EC, key) >> 16) as u32
}

impl L0Sketch {
    /// The empty sketch (identity of XOR).
    pub fn empty() -> Self {
        L0Sketch {
            reps: (0..REPS).map(|_| BasicSketch::empty()).collect(),
        }
    }

    #[inline]
    fn rep_seed(seed: u64, rep: usize) -> u64 {
        splitmix64(seed ^ (rep as u64).wrapping_mul(0xD134_2543_DE82_EF95))
    }

    /// The sketch of a single vertex: XOR over its incident edges.
    /// `seed` must be shared by all participants of one phase and *fresh*
    /// across phases.
    pub fn for_vertex(g: &CsrGraph, v: Vertex, seed: u64) -> Self {
        let mut s = Self::empty();
        for &w in g.neighbors(v) {
            s.toggle_edge(Edge::new(v, w), seed);
        }
        s
    }

    /// XOR-inserts (or cancels) one edge in every repetition.
    pub fn toggle_edge(&mut self, e: Edge, seed: u64) {
        let key = edge_key(e);
        for (rep, basic) in self.reps.iter_mut().enumerate() {
            basic.toggle_edge(key, Self::rep_seed(seed, rep));
        }
    }

    /// Merges another sketch into this one (GF(2) linearity).
    pub fn xor_in(&mut self, other: &Self) {
        for (a, b) in self.reps.iter_mut().zip(&other.reps) {
            a.xor_in(b);
        }
    }

    /// Attempts to decode one boundary edge: each repetition is an
    /// independent constant-success-probability sampler, so the first hit
    /// wins and overall failure is `O(c^{REPS})`.
    pub fn decode(&self, seed: u64) -> Option<Edge> {
        self.reps
            .iter()
            .enumerate()
            .find_map(|(rep, basic)| basic.decode(Self::rep_seed(seed, rep)))
    }

    /// Whether every repetition is empty (no boundary edges).
    pub fn is_empty(&self) -> bool {
        self.reps.iter().all(BasicSketch::is_empty)
    }

    /// Logical wire size in bits (what the distributed protocol would
    /// ship per partial sketch): `REPS · LEVELS · (64 + 32 + 1)` —
    /// `O(polylog n)`, the property that makes `O~(n/k²)` connectivity
    /// possible.
    pub fn wire_bits() -> u64 {
        (REPS as u64) * (LEVELS as u64) * (64 + 32 + 1)
    }
}

/// The per-phase seed for sketch copy `phase` under a shared base seed.
pub fn phase_seed(base: u64, phase: usize) -> u64 {
    splitmix64(base ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E1F_C0DE)
}

/// Sketch-based Borůvka spanning forest: per phase, build *fresh* vertex
/// sketches, XOR them per component, decode one outgoing edge per
/// component, and contract. Returns the forest edges (sorted).
///
/// This mirrors the distributed per-phase dataflow of \[51\] (each XOR
/// grouping is exactly what machines/proxies would compute); failures to
/// decode (probability `O(2^{-Ω(levels)})` per component per phase) only
/// delay a merge to the next phase with fresh randomness.
pub fn sketch_spanning_forest(g: &CsrGraph, base_seed: u64) -> Vec<Edge> {
    let n = g.n();
    let mut label: Vec<Vertex> = (0..n as Vertex).collect();
    let mut forest: Vec<Edge> = Vec::new();
    // ≤ log2(n) productive phases; a few spares cover decode failures.
    let max_phases = (n.max(2) as f64).log2().ceil() as usize * 2 + 4;

    for phase in 0..max_phases {
        let seed = phase_seed(base_seed, phase);
        // Component sketches via GF(2) aggregation of vertex sketches.
        let mut comp_sketch: std::collections::BTreeMap<Vertex, L0Sketch> =
            std::collections::BTreeMap::new();
        for v in 0..n as Vertex {
            let s = L0Sketch::for_vertex(g, v, seed);
            comp_sketch
                .entry(label[v as usize])
                .or_insert_with(L0Sketch::empty)
                .xor_in(&s);
        }
        // Decode one outgoing edge per component.
        let mut merges: Vec<Edge> = Vec::new();
        let mut undecoded = 0usize;
        for sketch in comp_sketch.values() {
            if sketch.is_empty() {
                continue;
            }
            match sketch.decode(seed) {
                Some(e) => merges.push(e),
                None => undecoded += 1,
            }
        }
        if merges.is_empty() {
            if undecoded == 0 {
                break; // all components closed: done
            }
            continue; // retry with fresh randomness
        }
        // Contract (same deterministic union-find as the MST protocol).
        merges.sort_unstable();
        merges.dedup();
        let mut parent: std::collections::BTreeMap<Vertex, Vertex> =
            std::collections::BTreeMap::new();
        let find = |parent: &mut std::collections::BTreeMap<Vertex, Vertex>, mut x: Vertex| {
            while let Some(&p) = parent.get(&x) {
                if p == x {
                    break;
                }
                x = p;
            }
            x
        };
        for &e in &merges {
            let (cu, cv) = (label[e.u as usize], label[e.v as usize]);
            let (ru, rv) = (find(&mut parent, cu), find(&mut parent, cv));
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent.insert(hi, lo);
                parent.entry(lo).or_insert(lo);
                forest.push(e);
            }
        }
        for l in label.iter_mut() {
            *l = find(&mut parent, *l);
        }
    }
    forest.sort_unstable();
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::{classic, gnp};
    use km_graph::properties::component_count;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_edge_roundtrip() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let s = L0Sketch::for_vertex(&g, 0, 77);
        assert_eq!(s.decode(77), Some(Edge::new(0, 1)));
    }

    #[test]
    fn internal_edges_cancel() {
        // Path 0-1-2: XOR of all three vertex sketches must be empty
        // (every edge internal), XOR of {0,1} must decode edge {1,2}.
        let g = classic::path(3);
        let seed = 5;
        let mut all = L0Sketch::empty();
        for v in 0..3 {
            all.xor_in(&L0Sketch::for_vertex(&g, v, seed));
        }
        assert!(all.is_empty());

        let mut s01 = L0Sketch::for_vertex(&g, 0, seed);
        s01.xor_in(&L0Sketch::for_vertex(&g, 1, seed));
        assert_eq!(s01.decode(seed), Some(Edge::new(1, 2)));
    }

    #[test]
    fn decode_finds_a_true_boundary_edge_whp() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = gnp(60, 0.2, &mut rng);
        // Component S = first 30 vertices.
        for seed in 0..20u64 {
            let mut s = L0Sketch::empty();
            for v in 0..30 {
                s.xor_in(&L0Sketch::for_vertex(&g, v, seed));
            }
            let boundary: Vec<Edge> = g.edges().filter(|e| (e.u < 30) != (e.v < 30)).collect();
            match s.decode(seed) {
                Some(e) => assert!(boundary.contains(&e), "seed {seed}: {e:?} not boundary"),
                None => assert!(boundary.is_empty(), "seed {seed}: missed boundary"),
            }
        }
    }

    #[test]
    fn wire_size_is_polylog() {
        // The whole point: a component's connectivity summary in ~4.7 kbit.
        assert_eq!(L0Sketch::wire_bits(), 8 * 40 * 97);
    }

    #[test]
    fn spanning_forest_on_classic_graphs() {
        for (g, want_edges) in [
            (classic::path(50), 49),
            (classic::cycle(33), 32),
            (classic::complete(25), 24),
            (classic::star(40), 39),
        ] {
            let forest = sketch_spanning_forest(&g, 11);
            assert_eq!(forest.len(), want_edges);
            // A spanning forest connects everything the graph connects.
            let pairs: Vec<(Vertex, Vertex)> = forest.iter().map(|e| (e.u, e.v)).collect();
            let f = CsrGraph::from_edges(g.n(), &pairs);
            assert_eq!(component_count(&f), component_count(&g));
        }
    }

    #[test]
    fn spanning_forest_matches_component_structure_of_gnp() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for (n, p) in [(80usize, 0.015), (120, 0.05), (60, 0.4)] {
            let g = gnp(n, p, &mut rng);
            let forest = sketch_spanning_forest(&g, 21);
            let cc = component_count(&g);
            assert_eq!(forest.len(), n - cc, "n={n} p={p}");
            for e in &forest {
                assert!(g.has_edge(e.u, e.v), "forest edge {e:?} not in graph");
            }
        }
    }

    proptest! {
        /// Sketch linearity: sketch(S ∪ T) = sketch(S) ⊕ sketch(T) for
        /// disjoint S, T, and decoding a 1-edge boundary is exact.
        #[test]
        fn linearity(edges in proptest::collection::vec((0u32..24, 0u32..24), 1..80), seed in 0u64..1000) {
            let g = CsrGraph::from_edges(24, &edges);
            let mut left = L0Sketch::empty();
            let mut right = L0Sketch::empty();
            let mut whole = L0Sketch::empty();
            for v in 0..24u32 {
                let s = L0Sketch::for_vertex(&g, v, seed);
                if v < 12 { left.xor_in(&s) } else { right.xor_in(&s) }
                whole.xor_in(&s);
            }
            let mut combined = left.clone();
            combined.xor_in(&right);
            prop_assert_eq!(&combined, &whole);
            // The whole graph has no boundary: must be empty.
            prop_assert!(whole.is_empty());
        }

        /// The forest size equals n − #components on arbitrary graphs.
        #[test]
        fn forest_size_invariant(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120)) {
            let g = CsrGraph::from_edges(30, &edges);
            let forest = sketch_spanning_forest(&g, 5);
            prop_assert_eq!(forest.len(), 30 - component_count(&g));
        }
    }
}
