//! AGM graph sketches (Ahn–Guha–McGregor ℓ₀-sampling) — the ingredient
//! that upgrades Borůvka-style connectivity to the `O~(n/k²)` rounds of
//! Pandurangan–Robinson–Scquizzato \[51\], which the paper cites as the
//! matching upper bound for its GLBT-derived `Ω~(n/k²)` MST/connectivity
//! lower bound.
//!
//! The magic property is **linearity over GF(2)**: a vertex's sketch is
//! the XOR of encodings of its incident edges; XOR-ing the sketches of a
//! vertex set `S` cancels every edge internal to `S` and leaves exactly
//! the boundary `∂S` — so a component's `O(polylog n)`-bit sketch can be
//! aggregated at a proxy machine with `Θ(polylog)` communication *without
//! anyone knowing neighbor labels*, and an outgoing edge can be decoded
//! from it whp. Fresh independent sketch copies per Borůvka phase keep
//! the randomness sound (sketches are one-shot).
//!
//! This module provides the data structure itself, sized by
//! [`SketchParams`] (depth and repetition count tuned to the input via
//! [`SketchParams::for_graph`]), with honest wire accounting
//! ([`WireSize`]: a 16-bit shape header plus `reps · levels ·
//! (64 + 32 + 1)` payload bits) and an XOR-mergeable word serialization
//! ([`L0Sketch::to_words`]) so partial sketches can be combined on the
//! wire exactly like in memory.
//! [`sketch_spanning_forest`] is the *sequential* phase-by-phase driver
//! that validates the per-phase logic; the real distributed protocol —
//! partial sketches to proxies, decode, and the pointer-jumping label
//! service — is [`crate::conn::SketchConnectivity`]. (See DESIGN.md
//! § "MST and connectivity" for the two-algorithm story.)

use km_core::rng::{keyed_hash, splitmix64};
use km_core::{BitReader, BitWriter, CodecError, WireCodec, WireSize};
use km_graph::{CsrGraph, Edge, Vertex};

/// Default levels per basic sampler: edge `e` participates in level `ℓ`
/// with probability `2^{-ℓ}` (level 0 holds every edge). 40 levels cover
/// any edge set this simulator can hold.
const LEVELS: usize = 40;

/// Default number of independent basic samplers per sketch. One sampler
/// isolates a single boundary edge at *some* level only with constant
/// probability; `REPS` independent repetitions drive the failure rate to
/// `O(c^{REPS})` — the standard AGM amplification.
const REPS: usize = 8;

/// Shape of an [`L0Sketch`]: sampler depth and repetition count.
///
/// The defaults (`levels = 40`, `reps = 8`) are failure-proof for any
/// graph the simulator can hold; [`SketchParams::for_graph`] picks the
/// smallest honest size for a concrete input, which is what the
/// distributed protocol ships (its wire cost is
/// `reps · levels · (64 + 32 + 1)` bits, see [`WireSize`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// Geometric sampling depth; must exceed `log₂(boundary size)`.
    pub levels: usize,
    /// Independent sampler repetitions (failure rate `O(c^{reps})`).
    pub reps: usize,
}

impl Default for SketchParams {
    fn default() -> Self {
        SketchParams {
            levels: LEVELS,
            reps: REPS,
        }
    }
}

impl SketchParams {
    /// The smallest honest shape for an `n`-vertex, `m`-edge input: a
    /// boundary holds at most `m` edges, so `log₂ m + O(1)` levels give
    /// every boundary a level with ~1 expected survivor, and 4 samplers
    /// make the per-component per-phase decode failure a small constant
    /// (failures only defer a merge to the next phase's fresh sketch).
    pub fn for_graph(n: usize, m: usize) -> Self {
        let span = (2 * m.max(1)).max(n.max(2));
        let levels = ((span as f64).log2().ceil() as usize + 6).clamp(12, LEVELS);
        SketchParams { levels, reps: 4 }
    }

    /// Logical wire size in bits of one sketch of this shape: an 8-bit
    /// repetition count and 8-bit depth (the shape header that makes a
    /// serialized sketch self-describing), then per level and repetition
    /// a 64-bit key XOR, a 32-bit checksum, and a parity bit. Still
    /// `O(polylog n)` — the property that makes `O~(n/k²)` connectivity
    /// possible.
    pub fn sketch_bits(&self) -> u64 {
        16 + (self.reps as u64) * (self.levels as u64) * (64 + 32 + 1)
    }
}

/// One basic ℓ₀ sampler: per level, the XOR of the sampled edges'
/// 64-bit keys plus an independent checksum and a parity bit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BasicSketch {
    key_xor: Vec<u64>,
    check_xor: Vec<u32>,
    parity: Vec<u8>,
}

impl BasicSketch {
    fn empty(levels: usize) -> Self {
        BasicSketch {
            key_xor: vec![0; levels],
            check_xor: vec![0; levels],
            parity: vec![0; levels],
        }
    }

    fn levels(&self) -> usize {
        self.key_xor.len()
    }

    fn toggle_edge(&mut self, key: u64, seed: u64) {
        let top = edge_level(seed, key, self.levels());
        let check = edge_check(seed, key);
        // An edge at level ℓ participates in all levels 0..=ℓ.
        for l in 0..=top {
            self.key_xor[l] ^= key;
            self.check_xor[l] ^= check;
            self.parity[l] ^= 1;
        }
    }

    fn xor_in(&mut self, other: &Self) {
        debug_assert_eq!(self.levels(), other.levels(), "sketch shape mismatch");
        for l in 0..self.levels() {
            self.key_xor[l] ^= other.key_xor[l];
            self.check_xor[l] ^= other.check_xor[l];
            self.parity[l] ^= other.parity[l];
        }
    }

    /// A level holding exactly one edge is detected by odd parity plus a
    /// matching checksum (several XOR-ed edges masquerading as one edge
    /// survive the checksum with probability `2^{-32}` per level).
    fn decode(&self, seed: u64) -> Option<Edge> {
        for l in (0..self.levels()).rev() {
            if self.parity[l] == 1 && self.key_xor[l] != 0 {
                let key = self.key_xor[l];
                if edge_check(seed, key) == self.check_xor[l]
                    && edge_level(seed, key, self.levels()) >= l
                    && (key >> 32) != (key & 0xFFFF_FFFF)
                {
                    return Some(key_to_edge(key));
                }
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.key_xor.iter().all(|&x| x == 0) && self.parity.iter().all(|&c| c == 0)
    }
}

/// An AGM ℓ₀-sampling sketch: independent basic samplers per
/// [`SketchParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L0Sketch {
    reps: Vec<BasicSketch>,
}

/// Canonical 64-bit key of an edge.
#[inline]
fn edge_key(e: Edge) -> u64 {
    ((e.u as u64) << 32) | e.v as u64
}

#[inline]
fn key_to_edge(key: u64) -> Edge {
    Edge::new((key >> 32) as Vertex, (key & 0xFFFF_FFFF) as Vertex)
}

/// The level assignment of an edge under a given sketch seed: the number
/// of leading one-bits of its keyed hash (geometric with ratio 1/2).
#[inline]
fn edge_level(seed: u64, key: u64, levels: usize) -> usize {
    (keyed_hash(seed, key).leading_ones() as usize).min(levels - 1)
}

#[inline]
fn edge_check(seed: u64, key: u64) -> u32 {
    (keyed_hash(seed ^ 0xC3EC_C3EC_C3EC_C3EC, key) >> 16) as u32
}

impl L0Sketch {
    /// The empty sketch (identity of XOR) of the default shape.
    pub fn empty() -> Self {
        Self::empty_with(SketchParams::default())
    }

    /// The empty sketch of an explicit shape.
    pub fn empty_with(params: SketchParams) -> Self {
        L0Sketch {
            reps: (0..params.reps)
                .map(|_| BasicSketch::empty(params.levels))
                .collect(),
        }
    }

    /// The shape of this sketch.
    pub fn params(&self) -> SketchParams {
        SketchParams {
            levels: self.reps.first().map_or(0, BasicSketch::levels),
            reps: self.reps.len(),
        }
    }

    #[inline]
    fn rep_seed(seed: u64, rep: usize) -> u64 {
        splitmix64(seed ^ (rep as u64).wrapping_mul(0xD134_2543_DE82_EF95))
    }

    /// The sketch of a single vertex: XOR over its incident edges.
    /// `seed` must be shared by all participants of one phase and *fresh*
    /// across phases.
    pub fn for_vertex(g: &CsrGraph, v: Vertex, seed: u64) -> Self {
        Self::for_vertex_with(SketchParams::default(), g, v, seed)
    }

    /// [`Self::for_vertex`] with an explicit shape.
    pub fn for_vertex_with(params: SketchParams, g: &CsrGraph, v: Vertex, seed: u64) -> Self {
        Self::from_neighbors(params, v, g.neighbors(v), seed)
    }

    /// The sketch of a vertex given its adjacency slice — what a machine
    /// computes from its `LocalGraph` rows in the distributed protocol,
    /// with no access to the global graph.
    pub fn from_neighbors(
        params: SketchParams,
        v: Vertex,
        neighbors: &[Vertex],
        seed: u64,
    ) -> Self {
        let mut s = Self::empty_with(params);
        for &w in neighbors {
            s.toggle_edge(Edge::new(v, w), seed);
        }
        s
    }

    /// XOR-inserts (or cancels) one edge in every repetition.
    pub fn toggle_edge(&mut self, e: Edge, seed: u64) {
        let key = edge_key(e);
        for (rep, basic) in self.reps.iter_mut().enumerate() {
            basic.toggle_edge(key, Self::rep_seed(seed, rep));
        }
    }

    /// Merges another sketch into this one (GF(2) linearity). Both
    /// sketches must have the same shape.
    pub fn xor_in(&mut self, other: &Self) {
        debug_assert_eq!(self.reps.len(), other.reps.len(), "sketch shape mismatch");
        for (a, b) in self.reps.iter_mut().zip(&other.reps) {
            a.xor_in(b);
        }
    }

    /// Attempts to decode one boundary edge: each repetition is an
    /// independent constant-success-probability sampler, so the first hit
    /// wins and overall failure is `O(c^{reps})`.
    pub fn decode(&self, seed: u64) -> Option<Edge> {
        self.reps
            .iter()
            .enumerate()
            .find_map(|(rep, basic)| basic.decode(Self::rep_seed(seed, rep)))
    }

    /// Whether every repetition is empty (no boundary edges).
    pub fn is_empty(&self) -> bool {
        self.reps.iter().all(BasicSketch::is_empty)
    }

    /// Logical wire size in bits of a default-shape sketch (see
    /// [`SketchParams::sketch_bits`] for explicit shapes and the
    /// [`WireSize`] impl for what the engine charges).
    pub fn wire_bits() -> u64 {
        SketchParams::default().sketch_bits()
    }

    /// Serializes into 64-bit words such that the encoding is
    /// **XOR-mergeable**: `words(a ⊕ b) = words(a) ^ words(b)`
    /// elementwise. A relay can therefore combine partial sketches
    /// without deserializing. Layout per repetition: `levels` key words,
    /// then the 32-bit checksums packed two per word, then the parity
    /// bits packed 64 per word.
    pub fn to_words(&self) -> Vec<u64> {
        let p = self.params();
        let mut out = Vec::with_capacity(self.reps.len() * words_per_rep(p.levels));
        for basic in &self.reps {
            out.extend_from_slice(&basic.key_xor);
            for pair in basic.check_xor.chunks(2) {
                let hi = pair.get(1).copied().unwrap_or(0) as u64;
                out.push((hi << 32) | pair[0] as u64);
            }
            for bits in basic.parity.chunks(64) {
                let mut w = 0u64;
                for (i, &b) in bits.iter().enumerate() {
                    w |= (b as u64 & 1) << i;
                }
                out.push(w);
            }
        }
        out
    }

    /// Inverse of [`Self::to_words`] for a known shape. Returns `None`
    /// if the word count does not match the shape.
    pub fn from_words(params: SketchParams, words: &[u64]) -> Option<Self> {
        if words.len() != params.reps * words_per_rep(params.levels) {
            return None;
        }
        let mut reps = Vec::with_capacity(params.reps);
        let mut it = words.iter().copied();
        for _ in 0..params.reps {
            let key_xor: Vec<u64> = it.by_ref().take(params.levels).collect();
            let mut check_xor = Vec::with_capacity(params.levels);
            for _ in 0..params.levels.div_ceil(2) {
                let w = it.next()?;
                check_xor.push(w as u32);
                if check_xor.len() < params.levels {
                    check_xor.push((w >> 32) as u32);
                }
            }
            let mut parity = Vec::with_capacity(params.levels);
            for _ in 0..params.levels.div_ceil(64) {
                let w = it.next()?;
                for i in 0..64 {
                    if parity.len() < params.levels {
                        parity.push(((w >> i) & 1) as u8);
                    }
                }
            }
            reps.push(BasicSketch {
                key_xor,
                check_xor,
                parity,
            });
        }
        Some(L0Sketch { reps })
    }
}

fn words_per_rep(levels: usize) -> usize {
    levels + levels.div_ceil(2) + levels.div_ceil(64)
}

/// The honest per-sketch wire cost the engine charges when a sketch
/// crosses a link: a 16-bit shape header, then `reps · levels ·
/// (64 + 32 + 1)` bits — key, checksum, and parity per level per
/// repetition, nothing amortized away.
impl WireSize for L0Sketch {
    fn bits(&self) -> u64 {
        self.params().sketch_bits()
    }
}

/// Wire layout (matching [`SketchParams::sketch_bits`]): 8-bit `reps`,
/// 8-bit `levels`, then per repetition the level-indexed key words
/// (64 bits each), checksums (32 bits each), and parity bits. The shape
/// header makes a frame self-describing, so container messages (e.g.
/// `ConnMsg::Partial`) can place variable-width fields *after* a sketch
/// and still recover their widths from the frame's remaining bit count.
impl WireCodec for L0Sketch {
    fn encode(&self, w: &mut BitWriter) {
        let p = self.params();
        w.put(p.reps as u64, 8);
        w.put(p.levels as u64, 8);
        for basic in &self.reps {
            for l in 0..p.levels {
                w.put(basic.key_xor[l], 64);
                w.put(u64::from(basic.check_xor[l]), 32);
                w.put(u64::from(basic.parity[l]), 1);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let reps = r.take(8)? as usize;
        let levels = r.take(8)? as usize;
        if levels == 0 {
            return Err(CodecError::Invalid {
                what: "sketch depth",
                value: 0,
            });
        }
        let mut out = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut basic = BasicSketch::empty(levels);
            for l in 0..levels {
                basic.key_xor[l] = r.take(64)?;
                basic.check_xor[l] = r.take(32)? as u32;
                basic.parity[l] = r.take(1)? as u8;
            }
            out.push(basic);
        }
        Ok(L0Sketch { reps: out })
    }
}

/// The per-phase seed for sketch copy `phase` under a shared base seed.
pub fn phase_seed(base: u64, phase: usize) -> u64 {
    splitmix64(base ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E1F_C0DE)
}

/// Sketch-based Borůvka spanning forest: per phase, build *fresh* vertex
/// sketches, XOR them per component, decode one outgoing edge per
/// component, and contract. Returns the forest edges (sorted).
///
/// This mirrors the distributed per-phase dataflow of \[51\] (each XOR
/// grouping is exactly what machines/proxies would compute); failures to
/// decode (probability `O(2^{-Ω(levels)})` per component per phase) only
/// delay a merge to the next phase with fresh randomness. The fully
/// distributed version, including the label service this sequential
/// driver gets for free, is [`crate::conn::SketchConnectivity`].
pub fn sketch_spanning_forest(g: &CsrGraph, base_seed: u64) -> Vec<Edge> {
    let n = g.n();
    let params = SketchParams::for_graph(n, g.m());
    let mut label: Vec<Vertex> = (0..n as Vertex).collect();
    let mut forest: Vec<Edge> = Vec::new();
    // ≤ log2(n) productive phases; a few spares cover decode failures.
    let max_phases = (n.max(2) as f64).log2().ceil() as usize * 2 + 4;

    for phase in 0..max_phases {
        let seed = phase_seed(base_seed, phase);
        // Component sketches via GF(2) aggregation of vertex sketches.
        let mut comp_sketch: std::collections::BTreeMap<Vertex, L0Sketch> =
            std::collections::BTreeMap::new();
        for v in 0..n as Vertex {
            let s = L0Sketch::for_vertex_with(params, g, v, seed);
            comp_sketch
                .entry(label[v as usize])
                .or_insert_with(|| L0Sketch::empty_with(params))
                .xor_in(&s);
        }
        // Decode one outgoing edge per component.
        let mut merges: Vec<Edge> = Vec::new();
        let mut undecoded = 0usize;
        for sketch in comp_sketch.values() {
            if sketch.is_empty() {
                continue;
            }
            match sketch.decode(seed) {
                Some(e) => merges.push(e),
                None => undecoded += 1,
            }
        }
        if merges.is_empty() {
            if undecoded == 0 {
                break; // all components closed: done
            }
            continue; // retry with fresh randomness
        }
        // Contract (same deterministic union-find as the MST protocol).
        merges.sort_unstable();
        merges.dedup();
        let mut parent: std::collections::BTreeMap<Vertex, Vertex> =
            std::collections::BTreeMap::new();
        let find = |parent: &mut std::collections::BTreeMap<Vertex, Vertex>, mut x: Vertex| {
            while let Some(&p) = parent.get(&x) {
                if p == x {
                    break;
                }
                x = p;
            }
            x
        };
        for &e in &merges {
            let (cu, cv) = (label[e.u as usize], label[e.v as usize]);
            let (ru, rv) = (find(&mut parent, cu), find(&mut parent, cv));
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent.insert(hi, lo);
                parent.entry(lo).or_insert(lo);
                forest.push(e);
            }
        }
        for l in label.iter_mut() {
            *l = find(&mut parent, *l);
        }
    }
    forest.sort_unstable();
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::{classic, gnp};
    use km_graph::properties::component_count;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_edge_roundtrip() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let s = L0Sketch::for_vertex(&g, 0, 77);
        assert_eq!(s.decode(77), Some(Edge::new(0, 1)));
    }

    #[test]
    fn internal_edges_cancel() {
        // Path 0-1-2: XOR of all three vertex sketches must be empty
        // (every edge internal), XOR of {0,1} must decode edge {1,2}.
        let g = classic::path(3);
        let seed = 5;
        let mut all = L0Sketch::empty();
        for v in 0..3 {
            all.xor_in(&L0Sketch::for_vertex(&g, v, seed));
        }
        assert!(all.is_empty());

        let mut s01 = L0Sketch::for_vertex(&g, 0, seed);
        s01.xor_in(&L0Sketch::for_vertex(&g, 1, seed));
        assert_eq!(s01.decode(seed), Some(Edge::new(1, 2)));
    }

    #[test]
    fn decode_finds_a_true_boundary_edge_whp() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = gnp(60, 0.2, &mut rng);
        // Component S = first 30 vertices.
        for seed in 0..20u64 {
            let mut s = L0Sketch::empty();
            for v in 0..30 {
                s.xor_in(&L0Sketch::for_vertex(&g, v, seed));
            }
            let boundary: Vec<Edge> = g.edges().filter(|e| (e.u < 30) != (e.v < 30)).collect();
            match s.decode(seed) {
                Some(e) => assert!(boundary.contains(&e), "seed {seed}: {e:?} not boundary"),
                None => assert!(boundary.is_empty(), "seed {seed}: missed boundary"),
            }
        }
    }

    #[test]
    fn wire_size_is_polylog() {
        // The whole point: a component's connectivity summary in ~4.7 kbit
        // (16-bit shape header + 97 bits per level per repetition).
        assert_eq!(L0Sketch::wire_bits(), 16 + 8 * 40 * 97);
        assert_eq!(L0Sketch::empty().bits(), 16 + 8 * 40 * 97);
        // A tuned shape is smaller but still polylog in n.
        let p = SketchParams::for_graph(10_000, 80_000);
        assert!(p.levels < 40 && p.levels >= 12);
        assert_eq!(
            L0Sketch::empty_with(p).bits(),
            16 + (p.reps * p.levels * 97) as u64
        );
    }

    #[test]
    fn tuned_params_scale_with_input_and_stay_clamped() {
        let small = SketchParams::for_graph(4, 2);
        assert_eq!(small.levels, 12);
        let big = SketchParams::for_graph(1 << 30, 1 << 40);
        assert_eq!(big.levels, LEVELS);
        let mid = SketchParams::for_graph(1000, 8000);
        assert!(mid.levels > small.levels && mid.levels < big.levels);
    }

    #[test]
    fn words_roundtrip_and_merge() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = gnp(40, 0.2, &mut rng);
        let p = SketchParams::for_graph(g.n(), g.m());
        let a = L0Sketch::for_vertex_with(p, &g, 3, 99);
        let b = L0Sketch::for_vertex_with(p, &g, 17, 99);
        // Round trip.
        assert_eq!(L0Sketch::from_words(p, &a.to_words()), Some(a.clone()));
        // XOR-mergeable: words(a ⊕ b) == words(a) ^ words(b).
        let mut ab = a.clone();
        ab.xor_in(&b);
        let merged: Vec<u64> = a
            .to_words()
            .iter()
            .zip(b.to_words())
            .map(|(x, y)| x ^ y)
            .collect();
        assert_eq!(ab.to_words(), merged);
        assert_eq!(L0Sketch::from_words(p, &merged), Some(ab));
        // Shape mismatch is rejected, not mis-decoded.
        assert_eq!(L0Sketch::from_words(SketchParams::default(), &merged), None);
    }

    #[test]
    fn spanning_forest_on_classic_graphs() {
        for (g, want_edges) in [
            (classic::path(50), 49),
            (classic::cycle(33), 32),
            (classic::complete(25), 24),
            (classic::star(40), 39),
        ] {
            let forest = sketch_spanning_forest(&g, 11);
            assert_eq!(forest.len(), want_edges);
            // A spanning forest connects everything the graph connects.
            let pairs: Vec<(Vertex, Vertex)> = forest.iter().map(|e| (e.u, e.v)).collect();
            let f = CsrGraph::from_edges(g.n(), &pairs);
            assert_eq!(component_count(&f), component_count(&g));
        }
    }

    #[test]
    fn spanning_forest_matches_component_structure_of_gnp() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for (n, p) in [(80usize, 0.015), (120, 0.05), (60, 0.4)] {
            let g = gnp(n, p, &mut rng);
            let forest = sketch_spanning_forest(&g, 21);
            let cc = component_count(&g);
            assert_eq!(forest.len(), n - cc, "n={n} p={p}");
            for e in &forest {
                assert!(g.has_edge(e.u, e.v), "forest edge {e:?} not in graph");
            }
        }
    }

    /// The wire cost the engine actually charges for a shipped sketch is
    /// exactly the honest `16 + reps · levels · 97` accounting (plus
    /// nothing: the protocol header is the sender's business).
    #[test]
    fn staged_sketch_bits_match_engine_metrics() {
        use km_core::{Envelope, NetConfig, Outbox, Protocol, RoundCtx, Runner, Status};

        struct OneShot {
            sketch: Option<L0Sketch>,
        }
        impl Protocol for OneShot {
            type Msg = L0Sketch;
            fn round(
                &mut self,
                ctx: &mut RoundCtx<'_>,
                _inbox: &mut Vec<Envelope<L0Sketch>>,
                out: &mut Outbox<L0Sketch>,
            ) -> Status {
                if ctx.round == 0 && ctx.me == 0 {
                    out.send(1, self.sketch.take().expect("round 0 runs once"));
                    return Status::Active;
                }
                Status::Done
            }
        }

        let g = classic::path(6);
        let p = SketchParams::for_graph(g.n(), g.m());
        let sketch = L0Sketch::for_vertex_with(p, &g, 2, 7);
        let want_bits = sketch.bits();
        let machines = vec![
            OneShot {
                sketch: Some(sketch),
            },
            OneShot { sketch: None },
        ];
        let report = Runner::new(NetConfig::with_bandwidth(2, 64, 1).max_rounds(100_000))
            .run(machines)
            .unwrap();
        assert_eq!(report.metrics.sent_bits[0], want_bits);
        assert_eq!(report.metrics.recv_bits[1], want_bits);
        assert_eq!(want_bits, p.sketch_bits());
    }

    proptest! {
        /// Sketch linearity: sketch(S ∪ T) = sketch(S) ⊕ sketch(T) for
        /// disjoint S, T, and decoding a 1-edge boundary is exact.
        #[test]
        fn linearity(edges in proptest::collection::vec((0u32..24, 0u32..24), 1..80), seed in 0u64..1000) {
            let g = CsrGraph::from_edges(24, &edges);
            let mut left = L0Sketch::empty();
            let mut right = L0Sketch::empty();
            let mut whole = L0Sketch::empty();
            for v in 0..24u32 {
                let s = L0Sketch::for_vertex(&g, v, seed);
                if v < 12 { left.xor_in(&s) } else { right.xor_in(&s) }
                whole.xor_in(&s);
            }
            let mut combined = left.clone();
            combined.xor_in(&right);
            prop_assert_eq!(&combined, &whole);
            // The whole graph has no boundary: must be empty.
            prop_assert!(whole.is_empty());
        }

        /// Soundness on adversarial subsets: whatever `S` and seed, a
        /// successful decode is a *true* boundary edge of `∂S` — never a
        /// phantom. This is the whp guarantee the distributed protocol's
        /// correctness rests on (a phantom edge would corrupt the forest;
        /// a miss only defers a merge).
        #[test]
        fn decode_soundness_on_adversarial_subsets(
            edges in proptest::collection::vec((0u32..32, 0u32..32), 0..160),
            subset_bits in proptest::collection::vec(0u32..2, 32),
            seed in 0u64..10_000,
        ) {
            let subset: Vec<bool> = subset_bits.iter().map(|&b| b == 1).collect();
            let g = CsrGraph::from_edges(32, &edges);
            let params = SketchParams::for_graph(g.n(), g.m());
            let mut s = L0Sketch::empty_with(params);
            for v in 0..32u32 {
                if subset[v as usize] {
                    s.xor_in(&L0Sketch::for_vertex_with(params, &g, v, seed));
                }
            }
            let boundary: Vec<Edge> = g
                .edges()
                .filter(|e| subset[e.u as usize] != subset[e.v as usize])
                .collect();
            if boundary.is_empty() {
                prop_assert!(s.is_empty(), "no boundary ⇒ sketch must cancel to zero");
            }
            if let Some(e) = s.decode(seed) {
                prop_assert!(boundary.contains(&e), "decoded {e:?} outside ∂S");
            }
        }

        /// Serialization: round trip and XOR-mergeability on random data.
        #[test]
        fn words_are_xor_mergeable(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 1..60),
            seed in 0u64..500,
        ) {
            let g = CsrGraph::from_edges(20, &edges);
            let p = SketchParams::for_graph(g.n(), g.m());
            let a = L0Sketch::for_vertex_with(p, &g, 1, seed);
            let b = L0Sketch::for_vertex_with(p, &g, 2, seed);
            prop_assert_eq!(L0Sketch::from_words(p, &a.to_words()), Some(a.clone()));
            let mut ab = a.clone();
            ab.xor_in(&b);
            let merged: Vec<u64> =
                a.to_words().iter().zip(b.to_words()).map(|(x, y)| x ^ y).collect();
            prop_assert_eq!(ab.to_words(), merged);
        }

        /// Bit-level serialization: a sketch survives the distributed
        /// engine's wire format, and the frame is exactly as large as
        /// `sketch_bits` claims.
        #[test]
        fn sketches_roundtrip_the_wire(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            v in 0u32..20,
            seed in 0u64..500,
        ) {
            let g = CsrGraph::from_edges(20, &edges);
            let p = SketchParams::for_graph(g.n(), g.m());
            km_core::assert_roundtrip(&L0Sketch::for_vertex_with(p, &g, v, seed));
            km_core::assert_roundtrip(&L0Sketch::empty_with(p));
        }

        /// The forest size equals n − #components on arbitrary graphs.
        #[test]
        fn forest_size_invariant(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120)) {
            let g = CsrGraph::from_edges(30, &edges);
            let forest = sketch_spanning_forest(&g, 5);
            prop_assert_eq!(forest.len(), 30 - component_count(&g));
        }
    }
}
