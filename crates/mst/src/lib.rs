//! # km-mst — connectivity and minimum spanning forests in the k-machine
//! model.
//!
//! Section 1.3 uses MST as a showcase of the General Lower Bound Theorem:
//! on complete graphs with random edge weights the GLBT gives `Ω~(n/k²)`
//! rounds directly (footnote 6), tight by the algorithm of Pandurangan,
//! Robinson & Scquizzato [SPAA 2016]. This crate tells that story with
//! **two distributed algorithms** bracketing the bound (full narrative:
//! DESIGN.md § "MST and connectivity"):
//!
//! * [`kruskal`] — the sequential oracle;
//! * [`BoruvkaMst`] — the *simple* upper bound: distributed Borůvka with
//!   the paper's **randomized proxy computation** (per-component minimum
//!   candidate edges aggregate at a hash-chosen proxy machine), but the
//!   per-phase **choice broadcast** ships every chosen edge to all `k`
//!   machines, so each machine receives `Θ~(n)` bits over the run —
//!   `O~(n/k)` rounds, independent of how large `k` grows;
//! * [`SketchConnectivity`] (in [`conn`]) — the *optimal* `O~(n/k²)`
//!   protocol of \[51\]: per phase, machines XOR fresh AGM
//!   [`sketch::L0Sketch`]es of their hosted vertices per component and
//!   ship one `O(polylog n)`-bit partial sketch per component to a
//!   hash-chosen proxy; proxies decode one outgoing edge per component,
//!   and a **pointer-jumping label service** resolves merged component
//!   labels in `O(log n)` sub-rounds with no payload broadcast (only
//!   `O(log n)`-bit barrier markers cross every link). Per
//!   machine that is `O~(n/k)` received bits spread over `k−1` links —
//!   `O~(n/k²)` rounds, matching the GLBT lower bound
//!   (`km_lower::bounds::mst_rounds`) up to polylog factors. The
//!   measured crossover vs [`BoruvkaMst`] is recorded by the `CC-UB`
//!   experiment and the `sketch_cc` perfsnap matrix.
//!
//! [`SketchConnectivity`] computes connectivity / spanning forests (the
//! unweighted problem the `Ω~(n/k²)` bound already applies to); the MSF
//! refinement via weight-bucketed sketches is noted in DESIGN.md.

pub mod conn;
pub mod sketch;

pub use conn::{
    run_sketch_connectivity, run_sketch_connectivity_dist, ConnectivityOutput,
    DistributedSketchConnectivity, PrebuiltSketchConnectivity, SketchConnectivity,
};

use km_core::rng::keyed_hash;
use km_core::{
    id_bits, run_algorithm, BitReader, BitWriter, CodecError, Envelope, KmAlgorithm, Metrics,
    NetConfig, Outbox, Protocol, RoundCtx, Runner, Status, WireCodec, WireSize,
};
use km_graph::{DistGraph, DistGraphBuilder, Edge, LocalGraph, Partition, Vertex, WeightedGraph};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sequential Kruskal oracle; returns the minimum spanning forest edges
/// (canonical order) and the total weight.
pub fn kruskal(g: &WeightedGraph) -> (Vec<Edge>, f64) {
    let mut edges: Vec<(Edge, f64)> = g.weighted_edges().collect();
    // Deterministic total order: weight, then endpoints. `WeightedGraph`
    // guarantees finite weights, so total_cmp is the plain numeric order.
    edges.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut parent: Vec<u32> = (0..g.n() as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut out = Vec::new();
    let mut total = 0.0;
    for (e, w) in edges {
        let (ru, rv) = (find(&mut parent, e.u), find(&mut parent, e.v));
        if ru != rv {
            parent[ru as usize] = rv;
            out.push(e);
            total += w;
        }
    }
    out.sort_unstable();
    (out, total)
}

/// A candidate or chosen MST edge with its weight, ordered by
/// `(weight, edge)` for deterministic tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    w: f64,
    e: Edge,
}

impl Cand {
    fn better_than(&self, other: &Cand) -> bool {
        // Weights are finite by `WeightedGraph`'s construction invariant,
        // so total_cmp agrees with the numeric order.
        match self.w.total_cmp(&other.w) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.e < other.e,
        }
    }
}

/// Message of the Borůvka protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum MstPayload {
    /// A per-component candidate `(component, edge, weight)` on its way
    /// to the component's proxy.
    Candidate {
        /// Component label.
        comp: Vertex,
        /// The candidate edge.
        e: Edge,
        /// Its weight.
        w: f64,
    },
    /// A chosen minimum edge, broadcast by a proxy.
    Chosen {
        /// The chosen edge.
        e: Edge,
        /// Its weight.
        w: f64,
    },
    /// Barrier marker carrying the number of candidates the sender
    /// produced this phase (global zero ⇒ the forest is complete).
    Flush {
        /// Candidates produced by the sender in this phase.
        produced: u64,
    },
}

/// A parity-tagged Borůvka message (two barriers per phase).
#[derive(Debug, Clone, PartialEq)]
pub struct MstMsg {
    /// Barrier counter parity.
    pub parity: bool,
    /// The payload.
    pub payload: MstPayload,
    bits: u32,
}

impl WireSize for MstMsg {
    fn bits(&self) -> u64 {
        self.bits as u64
    }
}

/// Layout: parity (1) · tag (1) · body. `Flush` is a bare 32-bit counter
/// (34 bits total, the only body that narrow); otherwise the tag picks
/// `Candidate` (ids in `(remaining − 64) / 3` bits each: comp, e.u, e.v,
/// then the weight's 64 IEEE bits) or `Chosen` (ids in
/// `(remaining − 64) / 2` bits: e.u, e.v, then the weight).
impl WireCodec for MstMsg {
    fn encode(&self, w: &mut BitWriter) {
        w.put(u64::from(self.parity), 1);
        match self.payload {
            MstPayload::Candidate { comp, e, w: wt } => {
                let idb = (self.bits - 66) / 3;
                w.put(0, 1);
                w.put(u64::from(comp), idb);
                w.put(u64::from(e.u), idb);
                w.put(u64::from(e.v), idb);
                w.put(wt.to_bits(), 64);
            }
            MstPayload::Chosen { e, w: wt } => {
                let idb = (self.bits - 66) / 2;
                w.put(1, 1);
                w.put(u64::from(e.u), idb);
                w.put(u64::from(e.v), idb);
                w.put(wt.to_bits(), 64);
            }
            MstPayload::Flush { produced } => {
                w.put(0, 1);
                w.put(produced, 32);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let total = r.remaining();
        let parity = r.take(1)? != 0;
        let tag = r.take(1)?;
        let rem = r.remaining();
        let payload = if rem == 32 {
            MstPayload::Flush {
                produced: r.take(32)?,
            }
        } else {
            let fields = if tag == 0 { 3 } else { 2 };
            let id_total = rem.checked_sub(64).unwrap_or(1);
            if !id_total.is_multiple_of(fields) || !(1..=32).contains(&(id_total / fields)) {
                return Err(CodecError::Invalid {
                    what: "mst message body width",
                    value: rem,
                });
            }
            let idb = (id_total / fields) as u32;
            if tag == 0 {
                let comp = r.take(idb)? as Vertex;
                let u = r.take(idb)? as Vertex;
                let v = r.take(idb)? as Vertex;
                let w = f64::from_bits(r.take(64)?);
                MstPayload::Candidate {
                    comp,
                    e: Edge { u, v },
                    w,
                }
            } else {
                let u = r.take(idb)? as Vertex;
                let v = r.take(idb)? as Vertex;
                let w = f64::from_bits(r.take(64)?);
                MstPayload::Chosen {
                    e: Edge { u, v },
                    w,
                }
            }
        };
        Ok(MstMsg {
            parity,
            payload,
            bits: total as u32,
        })
    }
}

impl MstMsg {
    fn candidate(n: usize, parity: bool, comp: Vertex, e: Edge, w: f64) -> Self {
        let bits = (2 + 3 * id_bits(n) + 64) as u32;
        MstMsg {
            parity,
            payload: MstPayload::Candidate { comp, e, w },
            bits,
        }
    }
    fn chosen(n: usize, parity: bool, e: Edge, w: f64) -> Self {
        let bits = (2 + 2 * id_bits(n) + 64) as u32;
        MstMsg {
            parity,
            payload: MstPayload::Chosen { e, w },
            bits,
        }
    }
    fn flush(parity: bool, produced: u64) -> Self {
        MstMsg {
            parity,
            payload: MstPayload::Flush { produced },
            bits: 2 + 32,
        }
    }
}

/// Which half of a Borůvka phase the machine is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Half {
    /// Candidates sent, waiting for the candidate barrier.
    Gather,
    /// Choices broadcast, waiting for the choice barrier.
    Scatter,
}

/// One machine of the distributed Borůvka protocol.
#[derive(Debug)]
pub struct BoruvkaMst {
    n: usize,
    /// This machine's RVP input (hosted vertices + weighted adjacency).
    lg: LocalGraph,
    /// Component label of every vertex (identical on all machines: it is
    /// a deterministic function of the broadcast choice sets).
    labels: Vec<Vertex>,
    /// Proxy duty: best candidate per component I'm responsible for.
    proxy_best: BTreeMap<Vertex, Cand>,
    /// Chosen edges received this phase (applied at the scatter barrier).
    phase_chosen: Vec<(Edge, f64)>,
    half: Half,
    parity: bool,
    flushes: usize,
    flush_produced: u64,
    my_produced: u64,
    pending: Vec<MstMsg>,
    finished: bool,
    /// The minimum spanning forest, accumulated identically on every
    /// machine from the choice broadcasts.
    pub forest: Vec<(Edge, f64)>,
    /// Borůvka phases executed.
    pub phases: u64,
}

impl BoruvkaMst {
    /// Builds one protocol instance per machine (one fused pass over the
    /// global graph via [`DistGraphBuilder`]).
    pub fn build_all(g: &WeightedGraph, part: &Arc<Partition>) -> Vec<BoruvkaMst> {
        let n = g.n();
        Self::from_locals(n, DistGraphBuilder::new(part).weighted(g).into_locals())
    }

    /// Builds protocol instances from an already-distributed weighted
    /// input (e.g. a streaming ingest via `km_graph::stream`) — no global
    /// [`WeightedGraph`] is ever materialized.
    ///
    /// # Panics
    /// Panics if the distributed input was not built from a weighted
    /// stream.
    pub fn build_all_from_dist(dist: &DistGraph) -> Vec<BoruvkaMst> {
        let n = dist.locals()[0].global_n();
        assert!(
            dist.locals().iter().all(LocalGraph::is_weighted),
            "Borůvka needs a weighted distributed input"
        );
        Self::from_locals(n, dist.locals().to_vec())
    }

    fn from_locals(n: usize, locals: Vec<LocalGraph>) -> Vec<BoruvkaMst> {
        locals
            .into_iter()
            .map(|lg| BoruvkaMst {
                n,
                lg,
                labels: (0..n as Vertex).collect(),
                proxy_best: BTreeMap::new(),
                phase_chosen: Vec::new(),
                half: Half::Gather,
                parity: false,
                flushes: 0,
                flush_produced: 0,
                my_produced: 0,
                pending: Vec::new(),
                finished: false,
                forest: Vec::new(),
                phases: 0,
            })
            .collect()
    }

    /// Gather half: compute per-component best candidates over my
    /// vertices and route them to the components' proxy machines.
    fn gather(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<MstMsg>) {
        let mut best: BTreeMap<Vertex, Cand> = BTreeMap::new();
        for (j, &v) in self.lg.vertices().iter().enumerate() {
            let lv = self.labels[v as usize];
            for (&u, &w) in self.lg.neighbors(j).iter().zip(self.lg.neighbor_weights(j)) {
                if self.labels[u as usize] == lv {
                    continue;
                }
                let cand = Cand {
                    w,
                    e: Edge::new(v, u),
                };
                match best.get(&lv) {
                    Some(b) if b.better_than(&cand) => {}
                    _ => {
                        best.insert(lv, cand);
                    }
                }
            }
        }
        self.my_produced = best.len() as u64;
        for (comp, cand) in best {
            let proxy =
                (keyed_hash(ctx.shared_seed ^ 0x4D57_0001, comp as u64) % ctx.k as u64) as usize;
            if proxy == ctx.me {
                self.absorb_candidate(comp, cand);
            } else {
                out.send(
                    proxy,
                    MstMsg::candidate(self.n, self.parity, comp, cand.e, cand.w),
                );
            }
        }
        out.broadcast(ctx.me, MstMsg::flush(self.parity, self.my_produced));
        self.half = Half::Gather;
        self.phases += 1;
    }

    fn absorb_candidate(&mut self, comp: Vertex, cand: Cand) {
        match self.proxy_best.get(&comp) {
            Some(b) if b.better_than(&cand) => {}
            _ => {
                self.proxy_best.insert(comp, cand);
            }
        }
    }

    /// Scatter half: broadcast the per-component winners.
    fn scatter(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<MstMsg>) {
        let winners = std::mem::take(&mut self.proxy_best);
        for (_, cand) in winners {
            self.phase_chosen.push((cand.e, cand.w));
            out.broadcast(ctx.me, MstMsg::chosen(self.n, self.parity, cand.e, cand.w));
        }
        out.broadcast(ctx.me, MstMsg::flush(self.parity, 0));
        self.half = Half::Scatter;
    }

    /// Applies the phase's chosen edges: contract components (identical
    /// deterministic computation on every machine).
    fn contract(&mut self) {
        let mut chosen = std::mem::take(&mut self.phase_chosen);
        chosen.sort_by_key(|a| a.0);
        chosen.dedup_by(|a, b| a.0 == b.0);
        // Union-find over current labels.
        let mut parent: BTreeMap<Vertex, Vertex> = BTreeMap::new();
        let find = |parent: &mut BTreeMap<Vertex, Vertex>, mut x: Vertex| {
            while let Some(&p) = parent.get(&x) {
                if p == x {
                    break;
                }
                x = p;
            }
            x
        };
        let mut accepted = Vec::new();
        for &(e, w) in &chosen {
            let cu = self.labels[e.u as usize];
            let cv = self.labels[e.v as usize];
            let ru = find(&mut parent, cu);
            let rv = find(&mut parent, cv);
            if ru != rv {
                // Hook larger label under smaller for determinism.
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent.insert(hi, lo);
                parent.entry(lo).or_insert(lo);
                accepted.push((e, w));
            }
        }
        for v in 0..self.n {
            let l = self.labels[v];
            self.labels[v] = find(&mut parent, l);
        }
        self.forest.extend(accepted);
    }

    fn maybe_advance(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<MstMsg>) {
        while !self.finished && self.flushes == ctx.k - 1 {
            let produced = self.flush_produced + self.my_produced;
            self.flushes = 0;
            self.flush_produced = 0;
            self.my_produced = 0;
            self.parity = !self.parity;
            let pending = std::mem::take(&mut self.pending);
            for msg in &pending {
                debug_assert_eq!(msg.parity, self.parity, "barrier drift exceeded 1");
                self.apply(msg);
            }
            match self.half {
                Half::Gather => {
                    // Candidate barrier complete. If nobody produced a
                    // candidate, the forest is final.
                    if produced == 0 {
                        self.finished = true;
                        return;
                    }
                    self.scatter(ctx, out);
                }
                Half::Scatter => {
                    // Choice barrier complete: contract and start the next
                    // phase.
                    self.contract();
                    self.gather(ctx, out);
                }
            }
        }
    }

    fn apply(&mut self, msg: &MstMsg) {
        match msg.payload {
            MstPayload::Candidate { comp, e, w } => self.absorb_candidate(comp, Cand { w, e }),
            MstPayload::Chosen { e, w } => self.phase_chosen.push((e, w)),
            MstPayload::Flush { produced } => {
                self.flushes += 1;
                self.flush_produced += produced;
            }
        }
    }

    /// Total forest weight.
    pub fn forest_weight(&self) -> f64 {
        self.forest.iter().map(|&(_, w)| w).sum()
    }
}

impl Protocol for BoruvkaMst {
    type Msg = MstMsg;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<MstMsg>>,
        out: &mut Outbox<MstMsg>,
    ) -> Status {
        if ctx.round == 0 {
            self.gather(ctx, out);
            self.maybe_advance(ctx, out);
            return if self.finished {
                Status::Done
            } else {
                Status::Active
            };
        }
        for env in inbox.drain(..) {
            if env.msg.parity == self.parity {
                self.apply(&env.msg);
            } else {
                self.pending.push(env.msg);
            }
        }
        self.maybe_advance(ctx, out);
        if self.finished {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// Distributed Borůvka as a [`KmAlgorithm`]: weighted graph + partition
/// in, `(sorted forest edges, total weight)` out.
#[derive(Debug, Clone, Copy)]
pub struct DistributedMst<'a> {
    /// The weighted input graph.
    pub g: &'a WeightedGraph,
    /// The vertex partition (its `k` must match the runner's).
    pub part: &'a Arc<Partition>,
}

impl KmAlgorithm for DistributedMst<'_> {
    type Machine = BoruvkaMst;
    type Output = (Vec<Edge>, f64);

    fn build(&self, k: usize) -> Vec<BoruvkaMst> {
        assert_eq!(self.part.k(), k, "partition k must match the network k");
        BoruvkaMst::build_all(self.g, self.part)
    }

    fn extract(&self, machines: Vec<BoruvkaMst>, _metrics: &Metrics) -> (Vec<Edge>, f64) {
        let m0 = &machines[0];
        let mut edges: Vec<Edge> = m0.forest.iter().map(|&(e, _)| e).collect();
        edges.sort_unstable();
        let weight = m0.forest_weight();
        // All machines agree on the forest (deterministic contraction).
        for m in &machines[1..] {
            debug_assert_eq!(m.forest.len(), m0.forest.len());
        }
        (edges, weight)
    }
}

/// Runs distributed Borůvka and returns `(forest edges, total weight,
/// metrics)`; the forest is identical on every machine. Thin wrapper
/// over [`run_algorithm`] with the default engine choice.
pub fn run_boruvka(
    g: &WeightedGraph,
    part: &Arc<Partition>,
    net: NetConfig,
) -> Result<(Vec<Edge>, f64, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&DistributedMst { g, part }, Runner::new(net))?;
    let (edges, weight) = outcome.output;
    Ok((edges, weight, outcome.metrics))
}

/// Distributed Borůvka over an already-distributed weighted input: the
/// streaming counterpart of [`DistributedMst`], for graphs ingested via
/// `km_graph::stream` where no global [`WeightedGraph`] ever exists.
#[derive(Debug, Clone, Copy)]
pub struct PrebuiltMst<'a> {
    /// The distributed weighted input (its `k` must match the runner's).
    pub dist: &'a DistGraph,
}

impl KmAlgorithm for PrebuiltMst<'_> {
    type Machine = BoruvkaMst;
    type Output = (Vec<Edge>, f64);

    fn build(&self, k: usize) -> Vec<BoruvkaMst> {
        assert_eq!(
            self.dist.k(),
            k,
            "distributed input k must match the network k"
        );
        BoruvkaMst::build_all_from_dist(self.dist)
    }

    fn extract(&self, machines: Vec<BoruvkaMst>, _metrics: &Metrics) -> (Vec<Edge>, f64) {
        let m0 = &machines[0];
        let mut edges: Vec<Edge> = m0.forest.iter().map(|&(e, _)| e).collect();
        edges.sort_unstable();
        let weight = m0.forest_weight();
        for m in &machines[1..] {
            debug_assert_eq!(m.forest.len(), m0.forest.len());
        }
        (edges, weight)
    }
}

/// Runs distributed Borůvka from an already-distributed weighted input
/// (streaming ingest path).
pub fn run_boruvka_dist(
    dist: &DistGraph,
    net: NetConfig,
) -> Result<(Vec<Edge>, f64, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&PrebuiltMst { dist }, Runner::new(net))?;
    let (edges, weight) = outcome.output;
    Ok((edges, weight, outcome.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::classic::complete_weighted_random;
    use km_graph::generators::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net(k: usize, n: usize, seed: u64) -> NetConfig {
        NetConfig::polylog(k, n, seed).max_rounds(5_000_000)
    }

    fn random_weighted_gnp(n: usize, p: f64, rng: &mut ChaCha8Rng) -> WeightedGraph {
        use rand::Rng;
        let g = gnp(n, p, rng);
        let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
        let weights: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
        WeightedGraph::from_weighted_edges(n, &edges, &weights).unwrap()
    }

    #[test]
    fn kruskal_on_triangle_plus_pendant() {
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1), (1, 2), (0, 2), (2, 3)],
            &[1.0, 2.0, 3.0, 0.5],
        )
        .unwrap();
        let (edges, w) = kruskal(&g);
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]
        );
        assert!((w - 3.5).abs() < 1e-12);
    }

    #[test]
    fn boruvka_matches_kruskal_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for (n, p, k) in [(30usize, 0.3, 4usize), (50, 0.15, 8), (40, 0.5, 5)] {
            let g = random_weighted_gnp(n, p, &mut rng);
            let part = Arc::new(Partition::by_hash(n, k, 3));
            let (edges, w, _) = run_boruvka(&g, &part, net(k, n, 7)).unwrap();
            let (want_edges, want_w) = kruskal(&g);
            assert_eq!(edges, want_edges, "n={n} p={p} k={k}");
            assert!((w - want_w).abs() < 1e-9);
        }
    }

    #[test]
    fn mst_of_complete_random_weights() {
        // The paper's MST lower-bound family (footnote 6).
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 24;
        let g = complete_weighted_random(n, &mut rng).unwrap();
        let part = Arc::new(Partition::by_hash(n, 6, 1));
        let (edges, w, metrics) = run_boruvka(&g, &part, net(6, n, 13)).unwrap();
        assert_eq!(edges.len(), n - 1, "spanning tree of a connected graph");
        let (_, want_w) = kruskal(&g);
        assert!((w - want_w).abs() < 1e-9);
        assert!(metrics.rounds > 0);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        // Two components: 0-1-2 and 3-4.
        let g = WeightedGraph::from_weighted_edges(5, &[(0, 1), (1, 2), (3, 4)], &[1.0, 2.0, 3.0])
            .unwrap();
        let part = Arc::new(Partition::by_hash(5, 3, 2));
        let (edges, w, _) = run_boruvka(&g, &part, net(3, 5, 3)).unwrap();
        assert_eq!(edges.len(), 3);
        assert!((w - 6.0).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph_terminates_immediately() {
        let g = WeightedGraph::from_weighted_edges(6, &[], &[]).unwrap();
        let part = Arc::new(Partition::by_hash(6, 3, 2));
        let (edges, w, _) = run_boruvka(&g, &part, net(3, 6, 4)).unwrap();
        assert!(edges.is_empty());
        assert_eq!(w, 0.0);
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let n = 64;
        let g = random_weighted_gnp(n, 0.3, &mut rng);
        let part = Arc::new(Partition::by_hash(n, 4, 9));
        let machines = BoruvkaMst::build_all(&g, &part);
        let report = Runner::new(net(4, n, 21)).run(machines).unwrap();
        // Components at least halve per phase: ≤ log2(n) + 1 phases
        // (+1 for the final empty phase that detects termination).
        assert!(
            report.machines[0].phases <= 8,
            "phases {}",
            report.machines[0].phases
        );
    }

    proptest::proptest! {
        #[test]
        fn mst_msgs_roundtrip_the_wire(
            n in 2usize..1_000_000,
            a in 0u32..1_000_000,
            b in 0u32..1_000_000,
            w in -1.0e12f64..1.0e12,
            produced in 0u64..(1 << 32),
            parity in 0u8..2,
        ) {
            let parity = parity != 0;
            let n32 = n as u32;
            let (a, b) = (a % n32, b % n32);
            let e = if a == b {
                Edge::new(a, (a + 1) % n32.max(2))
            } else {
                Edge::new(a, b)
            };
            km_core::assert_roundtrip(&MstMsg::candidate(n, parity, a % n32, e, w));
            km_core::assert_roundtrip(&MstMsg::chosen(n, parity, e, w));
            km_core::assert_roundtrip(&MstMsg::flush(parity, produced));
        }
    }
}
