//! [`SketchConnectivity`] — the distributed `O~(n/k²)` connectivity /
//! spanning-forest protocol of Pandurangan–Robinson–Scquizzato \[51\],
//! run end to end over the engine.
//!
//! Per Borůvka-style phase (components at least halve, so `O(log n)`
//! phases):
//!
//! 1. **Partial sketches.** Each machine XORs fresh [`L0Sketch`]es of its
//!    hosted vertices per current component label (adjacency straight
//!    from its [`LocalGraph`] — no global state) and ships one
//!    `O(polylog n)`-bit partial sketch per label to the label's
//!    hash-chosen proxy machine ([`phase_proxy_of`], the paper's
//!    randomized proxy computation). A partial that cancels to zero
//!    proves its component is entirely local and boundary-free, so it is
//!    marked closed and never sketched (or shipped) again.
//! 2. **Decode.** Each proxy XORs the partials per label into the
//!    component sketch and decodes one outgoing boundary edge w.h.p.
//!    (a failed decode only defers the merge to the next phase's fresh
//!    sketch; an empty sketch means the component is closed and its
//!    contributors are told so).
//! 3. **Label service.** Decoded endpoints' labels are fetched from
//!    their home machines, merge records `{comp_a, comp_b, edge}` are
//!    exchanged between the two labels' proxies, and every component
//!    hooks onto its minimum merge partner (mutual 2-cycles break toward
//!    the smaller label — the classic Borůvka hooking, whose pointer
//!    graph is a forest). Proxies then resolve every label to its root
//!    by **pointer jumping** over `O(log n)` sub-rounds (chain depth at
//!    least halves per jump, and the loop exits early via the barrier
//!    counters), and push `old label → root` updates back to exactly the
//!    machines that contributed partials. **No payload is ever
//!    broadcast** — the only all-peers traffic is the `O(log n)`-bit
//!    barrier markers below: unlike [`crate::BoruvkaMst`]'s per-phase
//!    choice broadcast (`Θ~(n)` received bits per machine), every
//!    machine here receives `O~(n/k)` payload bits across the whole run
//!    (plus `Θ~(k)` of barrier markers, negligible until
//!    `k ≈ √(n·polylog)`) — spread over its `k − 1` links that is the
//!    `O~(n/k²)` round bound matching the GLBT lower bound
//!    (`km_lower::bounds::mst_rounds`).
//!
//! Stages are separated by flush barriers ([`PhaseBarrier`]): links are
//! FIFO, so `k − 1` flushes of the current parity guarantee all stage
//! payloads have arrived. The `CC-UB` experiment and the `sketch_cc`
//! perfsnap matrix measure the resulting `recv_bits` profile against
//! both [`crate::BoruvkaMst`] and the `n/k²` prediction.

use crate::sketch::{phase_seed, L0Sketch, SketchParams};
use km_core::router::{phase_proxy_of, PhaseBarrier};
use km_core::{
    id_bits, run_algorithm, BitReader, BitWriter, CodecError, Envelope, KmAlgorithm, MachineIdx,
    Metrics, NetConfig, Outbox, Protocol, RoundCtx, Runner, Status, WireCodec, WireSize,
};
use km_graph::{CsrGraph, DistGraph, DistGraphBuilder, Edge, LocalGraph, Partition, Vertex};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Payload of one sketch-connectivity message.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnPayload {
    /// A per-component partial sketch on its way to the label's proxy.
    Partial {
        /// Component label the sketch was aggregated under.
        comp: Vertex,
        /// XOR of the fresh vertex sketches of the sender's vertices
        /// with that label.
        sketch: L0Sketch,
    },
    /// Proxy → contributors: the component has no outgoing edges; stop
    /// sketching it.
    Closed {
        /// The closed component label.
        comp: Vertex,
    },
    /// Proxy → home machine: what is `v`'s current label?
    LabelQ {
        /// The queried vertex.
        v: Vertex,
    },
    /// Home machine → proxy: `v`'s current label.
    LabelA {
        /// The queried vertex.
        v: Vertex,
        /// Its current component label.
        label: Vertex,
    },
    /// A merge record for the component pair `{a, b}`, witnessed by the
    /// decoded graph edge `e`; sent to both labels' proxies.
    Merge {
        /// One component label of the pair.
        a: Vertex,
        /// The other component label.
        b: Vertex,
        /// A real graph edge between the two components.
        e: Edge,
    },
    /// Proxy of `c` → proxies of `c`'s merge partners: `c`'s minimum
    /// merge partner (needed for the mutual-hook 2-cycle break).
    MinX {
        /// The announcing component label.
        c: Vertex,
        /// Its minimum merge partner.
        min: Vertex,
    },
    /// Pointer-jumping query: the owner of `c` asks the owner of `d`
    /// (`c`'s current parent) for `d`'s parent.
    JumpQ {
        /// The label whose pointer is being shortened.
        c: Vertex,
        /// Its current parent (owned by the recipient).
        d: Vertex,
    },
    /// Pointer-jumping answer for `c`: the parent of `c`'s parent, and
    /// whether `c`'s parent is a root.
    JumpA {
        /// The label whose pointer is being shortened.
        c: Vertex,
        /// The parent of `c`'s (queried) parent.
        p: Vertex,
        /// Whether the queried parent is a root (`c` is now resolved).
        root: bool,
    },
    /// Proxy → contributors: relabel `old` to the resolved root `new`.
    Push {
        /// The label at the start of the phase.
        old: Vertex,
        /// Its resolved root after this phase's merges.
        new: Vertex,
    },
    /// Stage barrier marker with two aggregatable counters (meaning
    /// depends on the stage; see the `Stage` enum's variant docs).
    Flush {
        /// First counter (partials sent / decoded edges / unresolved).
        c0: u64,
        /// Second counter (failed decodes).
        c1: u64,
    },
}

/// A parity-tagged sketch-connectivity message with precomputed honest
/// wire size.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnMsg {
    /// Stage parity (see [`PhaseBarrier`]).
    pub parity: bool,
    /// The payload.
    pub payload: ConnPayload,
    bits: u32,
}

impl WireSize for ConnMsg {
    fn bits(&self) -> u64 {
        self.bits as u64
    }
}

/// Tag + parity bits charged on every message (10 variants ⇒ 4-bit tag).
const HDR: u64 = 5;

impl ConnMsg {
    fn new(n: usize, parity: bool, payload: ConnPayload) -> Self {
        let idb = id_bits(n);
        let bits = HDR
            + match &payload {
                ConnPayload::Partial { sketch, .. } => idb + sketch.bits(),
                ConnPayload::Closed { .. } | ConnPayload::LabelQ { .. } => idb,
                ConnPayload::LabelA { .. }
                | ConnPayload::MinX { .. }
                | ConnPayload::JumpQ { .. }
                | ConnPayload::Push { .. } => 2 * idb,
                ConnPayload::JumpA { .. } => 2 * idb + 1,
                ConnPayload::Merge { .. } => 4 * idb,
                // Counters are bounded by n, so ⌈log₂(n+1)⌉ bits each.
                ConnPayload::Flush { .. } => 2 * (idb + 1),
            };
        ConnMsg {
            parity,
            payload,
            bits: bits as u32,
        }
    }
}

/// Wire layout: parity (1) · tag (4) · body. Vertex-id widths are not
/// shipped; the decoder divides the remaining bit count by the variant's
/// field count (`Merge` has 4 ids, `LabelA` 2, …). The one subtlety is
/// `Partial`: the sketch is self-describing (its own 16-bit shape header,
/// see [`L0Sketch`]'s codec), so it goes first and `comp` takes whatever
/// bits remain after it.
impl WireCodec for ConnMsg {
    fn encode(&self, w: &mut BitWriter) {
        w.put(u64::from(self.parity), 1);
        let idb = |fields: u64, extra: u64| ((u64::from(self.bits) - HDR - extra) / fields) as u32;
        match &self.payload {
            ConnPayload::Partial { comp, sketch } => {
                w.put(0, 4);
                let before = w.bit_len();
                sketch.encode(w);
                let comp_bits = (u64::from(self.bits) - HDR - (w.bit_len() - before)) as u32;
                w.put(u64::from(*comp), comp_bits);
            }
            ConnPayload::Closed { comp } => {
                w.put(1, 4);
                w.put(u64::from(*comp), idb(1, 0));
            }
            ConnPayload::LabelQ { v } => {
                w.put(2, 4);
                w.put(u64::from(*v), idb(1, 0));
            }
            ConnPayload::LabelA { v, label } => {
                w.put(3, 4);
                let idb = idb(2, 0);
                w.put(u64::from(*v), idb);
                w.put(u64::from(*label), idb);
            }
            ConnPayload::Merge { a, b, e } => {
                w.put(4, 4);
                let idb = idb(4, 0);
                w.put(u64::from(*a), idb);
                w.put(u64::from(*b), idb);
                w.put(u64::from(e.u), idb);
                w.put(u64::from(e.v), idb);
            }
            ConnPayload::MinX { c, min } => {
                w.put(5, 4);
                let idb = idb(2, 0);
                w.put(u64::from(*c), idb);
                w.put(u64::from(*min), idb);
            }
            ConnPayload::JumpQ { c, d } => {
                w.put(6, 4);
                let idb = idb(2, 0);
                w.put(u64::from(*c), idb);
                w.put(u64::from(*d), idb);
            }
            ConnPayload::JumpA { c, p, root } => {
                w.put(7, 4);
                let idb = idb(2, 1);
                w.put(u64::from(*root), 1);
                w.put(u64::from(*c), idb);
                w.put(u64::from(*p), idb);
            }
            ConnPayload::Push { old, new } => {
                w.put(8, 4);
                let idb = idb(2, 0);
                w.put(u64::from(*old), idb);
                w.put(u64::from(*new), idb);
            }
            ConnPayload::Flush { c0, c1 } => {
                w.put(9, 4);
                // Counter width: (bits − HDR) / 2 = idb + 1; counters are
                // bounded by n, so `put`'s fit assertion enforces honesty.
                let cw = idb(2, 0);
                w.put(*c0, cw);
                w.put(*c1, cw);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let total = r.remaining();
        let parity = r.take(1)? != 0;
        let tag = r.take(4)?;
        let split = |rem: u64, fields: u64, extra: u64| -> Result<u32, CodecError> {
            let ids = rem - extra;
            if extra > rem || !ids.is_multiple_of(fields) || !(1..=32).contains(&(ids / fields)) {
                return Err(CodecError::Invalid {
                    what: "conn message body width",
                    value: rem,
                });
            }
            Ok((ids / fields) as u32)
        };
        let payload = match tag {
            0 => {
                let sketch = <L0Sketch as WireCodec>::decode(r)?;
                let comp_bits = split(r.remaining(), 1, 0)?;
                ConnPayload::Partial {
                    comp: r.take(comp_bits)? as Vertex,
                    sketch,
                }
            }
            1 => ConnPayload::Closed {
                comp: r.take(split(r.remaining(), 1, 0)?)? as Vertex,
            },
            2 => ConnPayload::LabelQ {
                v: r.take(split(r.remaining(), 1, 0)?)? as Vertex,
            },
            3 => {
                let idb = split(r.remaining(), 2, 0)?;
                ConnPayload::LabelA {
                    v: r.take(idb)? as Vertex,
                    label: r.take(idb)? as Vertex,
                }
            }
            4 => {
                let idb = split(r.remaining(), 4, 0)?;
                ConnPayload::Merge {
                    a: r.take(idb)? as Vertex,
                    b: r.take(idb)? as Vertex,
                    e: Edge {
                        u: r.take(idb)? as Vertex,
                        v: r.take(idb)? as Vertex,
                    },
                }
            }
            5 => {
                let idb = split(r.remaining(), 2, 0)?;
                ConnPayload::MinX {
                    c: r.take(idb)? as Vertex,
                    min: r.take(idb)? as Vertex,
                }
            }
            6 => {
                let idb = split(r.remaining(), 2, 0)?;
                ConnPayload::JumpQ {
                    c: r.take(idb)? as Vertex,
                    d: r.take(idb)? as Vertex,
                }
            }
            7 => {
                let idb = split(r.remaining(), 2, 1)?;
                let root = r.take(1)? != 0;
                ConnPayload::JumpA {
                    c: r.take(idb)? as Vertex,
                    p: r.take(idb)? as Vertex,
                    root,
                }
            }
            8 => {
                let idb = split(r.remaining(), 2, 0)?;
                ConnPayload::Push {
                    old: r.take(idb)? as Vertex,
                    new: r.take(idb)? as Vertex,
                }
            }
            9 => {
                // Counter width is idb + 1, so it may reach 33 bits.
                let rem = r.remaining();
                if !rem.is_multiple_of(2) || !(2..=66).contains(&rem) {
                    return Err(CodecError::Invalid {
                        what: "conn flush body width",
                        value: rem,
                    });
                }
                let cw = (rem / 2) as u32;
                ConnPayload::Flush {
                    c0: r.take(cw)?,
                    c1: r.take(cw)?,
                }
            }
            t => {
                return Err(CodecError::Invalid {
                    what: "conn message tag",
                    value: t,
                })
            }
        };
        Ok(ConnMsg {
            parity,
            payload,
            bits: total as u32,
        })
    }
}

/// The stage of a phase a machine is in; stages are separated by flush
/// barriers and advance in global lockstep (drift ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Ship per-label partial sketches to proxies. Flush `c0` counts
    /// partials produced (global 0 ⇒ every component closed ⇒ done).
    Partials,
    /// Proxies decode; send label queries and closed notices. Flush
    /// `(decoded, failed)`; global `decoded = 0` skips to the next phase.
    Decode,
    /// Home machines answer the label queries.
    LabelReply,
    /// Proxies exchange merge records between the pair's two owners.
    Notify,
    /// Each owner announces its component's minimum merge partner.
    MinExchange,
    /// Hooked labels query their parent's owner. Flush `c0` counts
    /// unresolved labels (global 0 exits the jump loop).
    JumpQ,
    /// Parent owners answer with the grandparent.
    JumpA,
    /// Proxies push `old → root` relabels back to the contributors.
    Push,
}

/// Proxy-side state for one component label this phase.
#[derive(Debug)]
struct Slot {
    sketch: L0Sketch,
    contributors: Vec<MachineIdx>,
    decoded: Option<Edge>,
}

/// One machine of the distributed sketch-connectivity protocol.
#[derive(Debug)]
pub struct SketchConnectivity {
    n: usize,
    params: SketchParams,
    /// This machine's RVP input (hosted vertices + adjacency).
    lg: LocalGraph,
    /// Current component label of each *hosted* vertex (local index
    /// order) — `O(n/k)` state; no machine ever stores all `n` labels.
    labels: Vec<Vertex>,
    /// Labels this machine knows to be closed (boundary-free).
    closed: BTreeSet<Vertex>,
    stage: Stage,
    phase: u64,
    barrier: PhaseBarrier<2>,
    my_counts: [u64; 2],
    pending: Vec<(MachineIdx, ConnMsg)>,
    finished: bool,
    // ---- proxy-side state, cleared every phase ----
    slots: BTreeMap<Vertex, Slot>,
    label_queries: Vec<(MachineIdx, Vertex)>,
    ans: BTreeMap<Vertex, Vertex>,
    partners: BTreeMap<Vertex, BTreeMap<Vertex, Edge>>,
    partner_mins: BTreeMap<Vertex, Vertex>,
    parent: BTreeMap<Vertex, Vertex>,
    resolved: BTreeSet<Vertex>,
    jq: Vec<(MachineIdx, Vertex, Vertex)>,
    relabel: BTreeMap<Vertex, Vertex>,
    /// Spanning-forest edges recorded at this machine (as the hooking
    /// label's proxy); the global forest is the union over machines.
    pub forest: Vec<Edge>,
    /// Phases started.
    pub phases: u64,
}

impl SketchConnectivity {
    /// Builds one protocol instance per machine (one fused pass over the
    /// global graph via [`DistGraphBuilder`]).
    pub fn build_all(g: &CsrGraph, part: &Arc<Partition>) -> Vec<SketchConnectivity> {
        let n = g.n();
        let params = SketchParams::for_graph(n, g.m());
        Self::from_locals(
            n,
            params,
            DistGraphBuilder::new(part).undirected(g).into_locals(),
        )
    }

    /// Builds protocol instances from an already-distributed input (e.g.
    /// a streaming ingest via `km_graph::stream`) — no global CSR is ever
    /// needed. Sketch parameters come from the distributed edge loads
    /// (`Σ loads = 2m` for undirected builds).
    pub fn build_all_from_dist(dist: &DistGraph) -> Vec<SketchConnectivity> {
        let n = dist.locals()[0].global_n();
        let m = dist.edge_loads().iter().sum::<usize>() / 2;
        let params = SketchParams::for_graph(n, m);
        Self::from_locals(n, params, dist.locals().to_vec())
    }

    fn from_locals(
        n: usize,
        params: SketchParams,
        locals: Vec<LocalGraph>,
    ) -> Vec<SketchConnectivity> {
        locals
            .into_iter()
            .map(|lg| SketchConnectivity {
                n,
                params,
                labels: lg.vertices().to_vec(),
                lg,
                closed: BTreeSet::new(),
                stage: Stage::Partials,
                phase: 0,
                barrier: PhaseBarrier::new(),
                my_counts: [0, 0],
                pending: Vec::new(),
                finished: false,
                slots: BTreeMap::new(),
                label_queries: Vec::new(),
                ans: BTreeMap::new(),
                partners: BTreeMap::new(),
                partner_mins: BTreeMap::new(),
                parent: BTreeMap::new(),
                resolved: BTreeSet::new(),
                jq: Vec::new(),
                relabel: BTreeMap::new(),
                forest: Vec::new(),
                phases: 0,
            })
            .collect()
    }

    /// The proxy machine owning label `c` this phase.
    #[inline]
    fn owner(&self, ctx: &RoundCtx<'_>, c: Vertex) -> MachineIdx {
        phase_proxy_of(ctx.shared_seed, self.phase, c as u64, ctx.k)
    }

    /// Routes a message: remote messages go on the wire, messages to
    /// self apply immediately (a machine being its own proxy costs no
    /// bandwidth, consistent with free local computation).
    fn post(
        &mut self,
        ctx: &RoundCtx<'_>,
        out: &mut Outbox<ConnMsg>,
        dst: MachineIdx,
        payload: ConnPayload,
    ) {
        let msg = ConnMsg::new(self.n, self.barrier.parity(), payload);
        if dst == ctx.me {
            self.apply(ctx, ctx.me, msg);
        } else {
            out.send(dst, msg);
        }
    }

    /// Finishes a stage entry: records this machine's flush counters and
    /// broadcasts the barrier marker.
    fn flush(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>, counts: [u64; 2]) {
        self.my_counts = counts;
        out.broadcast(
            ctx.me,
            ConnMsg::new(
                self.n,
                self.barrier.parity(),
                ConnPayload::Flush {
                    c0: counts[0],
                    c1: counts[1],
                },
            ),
        );
    }

    /// Stage 1: aggregate fresh vertex sketches per live label and ship
    /// the partials to this phase's proxies.
    fn enter_partials(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::Partials;
        self.phases += 1;
        let seed = phase_seed(ctx.shared_seed, self.phase as usize);
        let mut partials: BTreeMap<Vertex, L0Sketch> = BTreeMap::new();
        for (j, &v) in self.lg.vertices().iter().enumerate() {
            let l = self.labels[j];
            if self.closed.contains(&l) {
                continue;
            }
            // XOR-ing v's vertex sketch equals toggling its incident
            // edges, so toggle straight into the per-label partial — no
            // per-vertex sketch allocation in the hottest loop.
            let partial = partials
                .entry(l)
                .or_insert_with(|| L0Sketch::empty_with(self.params));
            for &w in self.lg.neighbors(j) {
                partial.toggle_edge(Edge::new(v, w), seed);
            }
        }
        let mut sent = 0u64;
        for (l, sketch) in partials {
            if sketch.is_empty() {
                // No boundary for my entire label-l set ⇒ the component
                // is fully hosted here and complete. Close it locally;
                // nothing to ship, no proxy involved.
                self.closed.insert(l);
                continue;
            }
            sent += 1;
            let dst = self.owner(ctx, l);
            self.post(ctx, out, dst, ConnPayload::Partial { comp: l, sketch });
        }
        self.flush(ctx, out, [sent, 0]);
    }

    /// Stage 2: decode each owned component sketch; query the decoded
    /// endpoints' labels, and tell contributors about closed components.
    fn enter_decode(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::Decode;
        let seed = phase_seed(ctx.shared_seed, self.phase as usize);
        let (mut decoded, mut failed) = (0u64, 0u64);
        let mut closed_posts: Vec<(MachineIdx, Vertex)> = Vec::new();
        let mut queries: BTreeSet<Vertex> = BTreeSet::new();
        for (&c, slot) in self.slots.iter_mut() {
            if slot.sketch.is_empty() {
                slot.contributors.sort_unstable();
                slot.contributors.dedup();
                for &m in &slot.contributors {
                    closed_posts.push((m, c));
                }
                continue;
            }
            match slot.sketch.decode(seed) {
                Some(e) => {
                    slot.decoded = Some(e);
                    decoded += 1;
                    queries.insert(e.u);
                    queries.insert(e.v);
                }
                None => failed += 1,
            }
        }
        for (m, comp) in closed_posts {
            self.post(ctx, out, m, ConnPayload::Closed { comp });
        }
        for v in queries {
            let home = self.lg.home(v);
            self.post(ctx, out, home, ConnPayload::LabelQ { v });
        }
        self.flush(ctx, out, [decoded, failed]);
    }

    /// Stage 3: answer the queued label queries from local state.
    fn enter_label_reply(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::LabelReply;
        for (asker, v) in std::mem::take(&mut self.label_queries) {
            // lint: allow(panic) — LabelQ messages are routed to home(v), which hosts v
            let j = self.lg.local(v).expect("label queries route to the home");
            let label = self.labels[j];
            self.post(ctx, out, asker, ConnPayload::LabelA { v, label });
        }
        self.flush(ctx, out, [0, 0]);
    }

    /// Stage 4: turn decoded edges into merge records and send each to
    /// both component labels' proxies.
    fn enter_notify(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::Notify;
        let mut records: Vec<(Vertex, Vertex, Edge)> = Vec::new();
        for slot in self.slots.values() {
            if let Some(e) = slot.decoded {
                let a = self.ans[&e.u];
                let b = self.ans[&e.v];
                debug_assert_ne!(a, b, "boundary edge {e:?} inside one component");
                if a != b {
                    records.push((a, b, e));
                }
            }
        }
        for (a, b, e) in records {
            let pa = self.owner(ctx, a);
            let pb = self.owner(ctx, b);
            self.post(ctx, out, pa, ConnPayload::Merge { a, b, e });
            if pb != pa {
                self.post(ctx, out, pb, ConnPayload::Merge { a, b, e });
            }
        }
        self.flush(ctx, out, [0, 0]);
    }

    /// Stage 5: announce each owned component's minimum merge partner to
    /// its partners' proxies (for the mutual-hook 2-cycle break).
    fn enter_min_exchange(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::MinExchange;
        let mut posts: Vec<(MachineIdx, Vertex, Vertex)> = Vec::new();
        for (&c, pmap) in &self.partners {
            // lint: allow(panic) — partner maps are created with their first entry and only grow
            let min = *pmap.keys().next().expect("partner maps are non-empty");
            let dsts: BTreeSet<MachineIdx> = pmap.keys().map(|&d| self.owner(ctx, d)).collect();
            for dst in dsts {
                posts.push((dst, c, min));
            }
        }
        for (dst, c, min) in posts {
            self.post(ctx, out, dst, ConnPayload::MinX { c, min });
        }
        self.flush(ctx, out, [0, 0]);
    }

    /// After the MinExchange barrier: hook every owned component with
    /// merge partners onto its minimum partner (Borůvka hooking; mutual
    /// pairs break toward the smaller label, so the pointer graph is a
    /// forest) and record the witnessing graph edge in the forest.
    fn apply_hooks(&mut self) {
        self.parent = self.slots.keys().map(|&c| (c, c)).collect();
        for (&c, pmap) in &self.partners {
            // lint: allow(panic) — partner maps are created with their first entry and only grow
            let (&d, &e) = pmap.iter().next().expect("non-empty");
            match self.partner_mins.get(&d) {
                Some(&md) if md == c && c < d => {
                    // Mutual minimum pair {c, d}: the smaller stays root,
                    // the larger records the edge when it hooks.
                }
                Some(_) => {
                    self.parent.insert(c, d);
                    self.forest.push(e);
                }
                None => {
                    debug_assert!(false, "missing MinX for partner {d} of {c}");
                }
            }
        }
        self.resolved = self
            .parent
            .iter()
            .filter(|&(c, p)| c == p)
            .map(|(&c, _)| c)
            .collect();
    }

    /// Stage 6 (looped): every hooked, unresolved label asks its
    /// parent's owner for the grandparent.
    fn enter_jump_q(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::JumpQ;
        let mut posts: Vec<(MachineIdx, Vertex, Vertex)> = Vec::new();
        for (&c, &p) in &self.parent {
            if p != c && !self.resolved.contains(&c) {
                posts.push((self.owner(ctx, p), c, p));
            }
        }
        let unresolved = posts.len() as u64;
        for (dst, c, d) in posts {
            self.post(ctx, out, dst, ConnPayload::JumpQ { c, d });
        }
        self.flush(ctx, out, [unresolved, 0]);
    }

    /// Stage 7 (looped): answer the queued jump queries.
    fn enter_jump_a(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::JumpA;
        for (asker, c, d) in std::mem::take(&mut self.jq) {
            let p = *self
                .parent
                .get(&d)
                // lint: allow(panic) — JumpQ messages are routed to the component owner, which tracks parent
                .expect("jump queries route to the owner");
            self.post(ctx, out, asker, ConnPayload::JumpA { c, p, root: p == d });
        }
        self.flush(ctx, out, [0, 0]);
    }

    /// Stage 8: push `old label → resolved root` back to exactly the
    /// machines that contributed partials for the label.
    fn enter_push(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        self.stage = Stage::Push;
        let mut posts: Vec<(MachineIdx, Vertex, Vertex)> = Vec::new();
        for (&c, slot) in self.slots.iter_mut() {
            let root = *self.parent.get(&c).unwrap_or(&c);
            if root == c {
                continue;
            }
            slot.contributors.sort_unstable();
            slot.contributors.dedup();
            for &m in &slot.contributors {
                posts.push((m, c, root));
            }
        }
        for (dst, old, new) in posts {
            self.post(ctx, out, dst, ConnPayload::Push { old, new });
        }
        self.flush(ctx, out, [0, 0]);
    }

    /// After the Push barrier: apply the relabels and reset the
    /// per-phase proxy state for the next phase.
    fn next_phase(&mut self) {
        for l in self.labels.iter_mut() {
            if let Some(&new) = self.relabel.get(l) {
                *l = new;
            }
        }
        self.slots.clear();
        self.label_queries.clear();
        self.ans.clear();
        self.partners.clear();
        self.partner_mins.clear();
        self.parent.clear();
        self.resolved.clear();
        self.jq.clear();
        self.relabel.clear();
        self.phase += 1;
    }

    /// Applies one delivered (or self-posted) message of the current
    /// stage parity.
    fn apply(&mut self, ctx: &RoundCtx<'_>, src: MachineIdx, msg: ConnMsg) {
        match msg.payload {
            ConnPayload::Partial { comp, sketch } => {
                let params = self.params;
                let slot = self.slots.entry(comp).or_insert_with(|| Slot {
                    sketch: L0Sketch::empty_with(params),
                    contributors: Vec::new(),
                    decoded: None,
                });
                slot.sketch.xor_in(&sketch);
                slot.contributors.push(src);
            }
            ConnPayload::Closed { comp } => {
                self.closed.insert(comp);
            }
            ConnPayload::LabelQ { v } => self.label_queries.push((src, v)),
            ConnPayload::LabelA { v, label } => {
                self.ans.insert(v, label);
            }
            ConnPayload::Merge { a, b, e } => {
                for (mine, other) in [(a, b), (b, a)] {
                    if self.owner(ctx, mine) == ctx.me {
                        let entry = self
                            .partners
                            .entry(mine)
                            .or_default()
                            .entry(other)
                            .or_insert(e);
                        // Deterministic witness: keep the smallest edge.
                        *entry = (*entry).min(e);
                    }
                }
            }
            ConnPayload::MinX { c, min } => {
                self.partner_mins.insert(c, min);
            }
            ConnPayload::JumpQ { c, d } => self.jq.push((src, c, d)),
            ConnPayload::JumpA { c, p, root } => {
                if root {
                    self.resolved.insert(c);
                } else {
                    self.parent.insert(c, p);
                }
            }
            ConnPayload::Push { old, new } => {
                self.relabel.insert(old, new);
            }
            ConnPayload::Flush { c0, c1 } => self.barrier.absorb([c0, c1]),
        }
    }

    /// Runs every barrier that is complete, transitioning stages (and
    /// phases) until blocked on in-flight messages or finished.
    ///
    /// Order per barrier: flip → stage-completion mutations
    /// (`next_phase` / `apply_hooks`) → replay early arrivals for the
    /// stage being entered → perform the entry's sends. Replaying last
    /// matters: a fast peer's next-phase `Partial` must land in the
    /// *cleared* slot table, not be wiped by `next_phase`.
    fn maybe_advance(&mut self, ctx: &RoundCtx<'_>, out: &mut Outbox<ConnMsg>) {
        while !self.finished && self.barrier.ready(ctx.k) {
            let agg = self.barrier.flip();
            let totals = [agg[0] + self.my_counts[0], agg[1] + self.my_counts[1]];
            self.my_counts = [0, 0];
            let next = match self.stage {
                Stage::Partials => {
                    if totals[0] == 0 {
                        // Every component is closed: the forest is final.
                        self.finished = true;
                        return;
                    }
                    Stage::Decode
                }
                Stage::Decode => {
                    if totals[0] == 0 {
                        // Nothing decoded: retry with fresh randomness
                        // (or, if everything just closed, terminate at
                        // the next Partials barrier).
                        self.next_phase();
                        Stage::Partials
                    } else {
                        Stage::LabelReply
                    }
                }
                Stage::LabelReply => Stage::Notify,
                Stage::Notify => Stage::MinExchange,
                Stage::MinExchange => {
                    self.apply_hooks();
                    Stage::JumpQ
                }
                Stage::JumpQ => {
                    if totals[0] == 0 {
                        Stage::Push
                    } else {
                        Stage::JumpA
                    }
                }
                Stage::JumpA => Stage::JumpQ,
                Stage::Push => {
                    self.next_phase();
                    Stage::Partials
                }
            };
            // Replay messages that arrived one stage early.
            for (src, msg) in std::mem::take(&mut self.pending) {
                debug_assert_eq!(
                    msg.parity,
                    self.barrier.parity(),
                    "barrier drift exceeded 1"
                );
                self.apply(ctx, src, msg);
            }
            match next {
                Stage::Partials => self.enter_partials(ctx, out),
                Stage::Decode => self.enter_decode(ctx, out),
                Stage::LabelReply => self.enter_label_reply(ctx, out),
                Stage::Notify => self.enter_notify(ctx, out),
                Stage::MinExchange => self.enter_min_exchange(ctx, out),
                Stage::JumpQ => self.enter_jump_q(ctx, out),
                Stage::JumpA => self.enter_jump_a(ctx, out),
                Stage::Push => self.enter_push(ctx, out),
            }
        }
    }
}

impl Protocol for SketchConnectivity {
    type Msg = ConnMsg;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<ConnMsg>>,
        out: &mut Outbox<ConnMsg>,
    ) -> Status {
        if ctx.round == 0 {
            self.enter_partials(ctx, out);
        } else {
            for env in inbox.drain(..) {
                if env.msg.parity == self.barrier.parity() {
                    self.apply(ctx, env.src, env.msg);
                } else {
                    self.pending.push((env.src, env.msg));
                }
            }
        }
        self.maybe_advance(ctx, out);
        if self.finished {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// The assembled output of a sketch-connectivity run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityOutput {
    /// The spanning forest, sorted canonically. Every edge is a real
    /// graph edge; `forest.len() = n − components`.
    pub forest: Vec<Edge>,
    /// Number of connected components.
    pub components: usize,
    /// Protocol phases executed (identical on every machine).
    pub phases: u64,
}

/// Sketch connectivity as a [`KmAlgorithm`]: graph + partition in,
/// spanning forest out.
#[derive(Debug, Clone, Copy)]
pub struct DistributedSketchConnectivity<'a> {
    /// The input graph.
    pub g: &'a CsrGraph,
    /// The vertex partition (its `k` must match the runner's).
    pub part: &'a Arc<Partition>,
}

impl KmAlgorithm for DistributedSketchConnectivity<'_> {
    type Machine = SketchConnectivity;
    type Output = ConnectivityOutput;

    fn build(&self, k: usize) -> Vec<SketchConnectivity> {
        assert_eq!(self.part.k(), k, "partition k must match the network k");
        SketchConnectivity::build_all(self.g, self.part)
    }

    fn extract(&self, machines: Vec<SketchConnectivity>, _metrics: &Metrics) -> ConnectivityOutput {
        let phases = machines[0].phases;
        let mut forest: Vec<Edge> = machines.into_iter().flat_map(|m| m.forest).collect();
        forest.sort_unstable();
        debug_assert!(
            forest.windows(2).all(|w| w[0] != w[1]),
            "a forest edge was recorded twice"
        );
        ConnectivityOutput {
            components: self.g.n() - forest.len(),
            forest,
            phases,
        }
    }
}

/// Runs the distributed sketch-connectivity protocol and returns the
/// output plus transcript metrics. Thin wrapper over [`run_algorithm`]
/// with the default engine choice.
pub fn run_sketch_connectivity(
    g: &CsrGraph,
    part: &Arc<Partition>,
    net: NetConfig,
) -> Result<(ConnectivityOutput, Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&DistributedSketchConnectivity { g, part }, Runner::new(net))?;
    Ok((outcome.output, outcome.metrics))
}

/// Sketch connectivity over an already-distributed input: the streaming
/// counterpart of [`DistributedSketchConnectivity`], for graphs ingested
/// via `km_graph::stream` where no global [`CsrGraph`] ever exists.
#[derive(Debug, Clone, Copy)]
pub struct PrebuiltSketchConnectivity<'a> {
    /// The distributed input (its partition `k` must match the runner's).
    pub dist: &'a DistGraph,
}

impl KmAlgorithm for PrebuiltSketchConnectivity<'_> {
    type Machine = SketchConnectivity;
    type Output = ConnectivityOutput;

    fn build(&self, k: usize) -> Vec<SketchConnectivity> {
        assert_eq!(
            self.dist.k(),
            k,
            "distributed input k must match the network k"
        );
        SketchConnectivity::build_all_from_dist(self.dist)
    }

    fn extract(&self, machines: Vec<SketchConnectivity>, _metrics: &Metrics) -> ConnectivityOutput {
        let phases = machines[0].phases;
        let mut forest: Vec<Edge> = machines.into_iter().flat_map(|m| m.forest).collect();
        forest.sort_unstable();
        debug_assert!(
            forest.windows(2).all(|w| w[0] != w[1]),
            "a forest edge was recorded twice"
        );
        ConnectivityOutput {
            components: self.dist.locals()[0].global_n() - forest.len(),
            forest,
            phases,
        }
    }
}

/// Runs sketch connectivity from an already-distributed input (streaming
/// ingest path).
pub fn run_sketch_connectivity_dist(
    dist: &DistGraph,
    net: NetConfig,
) -> Result<(ConnectivityOutput, Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&PrebuiltSketchConnectivity { dist }, Runner::new(net))?;
    Ok((outcome.output, outcome.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::{classic, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net(k: usize, n: usize, seed: u64) -> NetConfig {
        NetConfig::polylog(k, n, seed).max_rounds(50_000_000)
    }

    /// Union-find oracle: component id (min member) per vertex.
    fn oracle_components(g: &CsrGraph) -> Vec<Vertex> {
        let mut parent: Vec<Vertex> = (0..g.n() as Vertex).collect();
        fn find(parent: &mut [Vertex], mut x: Vertex) -> Vertex {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for e in g.edges() {
            let (ru, rv) = (find(&mut parent, e.u), find(&mut parent, e.v));
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
        (0..g.n() as Vertex).map(|v| find(&mut parent, v)).collect()
    }

    /// Asserts the protocol's forest induces exactly the oracle's
    /// component structure.
    fn assert_matches_oracle(g: &CsrGraph, out: &ConnectivityOutput) {
        let want = oracle_components(g);
        let want_cc = want.iter().collect::<BTreeSet<_>>().len();
        assert_eq!(out.components, want_cc, "component count");
        assert_eq!(out.forest.len(), g.n() - want_cc, "forest size");
        for e in &out.forest {
            assert!(g.has_edge(e.u, e.v), "forest edge {e:?} not in graph");
        }
        // Forest reachability equals graph reachability: same size + real
        // edges + acyclicity (checked via component count of the forest).
        let pairs: Vec<(Vertex, Vertex)> = out.forest.iter().map(|e| (e.u, e.v)).collect();
        let f = CsrGraph::from_edges(g.n(), &pairs);
        let got = oracle_components(&f);
        assert_eq!(got, want, "forest connects exactly the graph's components");
    }

    #[test]
    fn classic_graphs_spanning_trees() {
        for (g, k) in [
            (classic::path(40), 4usize),
            (classic::cycle(31), 3),
            (classic::star(50), 5),
            (classic::complete(24), 6),
        ] {
            let part = Arc::new(Partition::by_hash(g.n(), k, 7));
            let (out, _) = run_sketch_connectivity(&g, &part, net(k, g.n(), 5)).unwrap();
            assert_matches_oracle(&g, &out);
            assert_eq!(out.components, 1);
        }
    }

    #[test]
    fn random_graphs_match_union_find_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for (n, p, k) in [
            (60usize, 0.015, 4usize), // many components + isolated vertices
            (120, 0.03, 8),
            (80, 0.2, 5),
            (50, 0.5, 3),
        ] {
            let g = gnp(n, p, &mut rng);
            let part = Arc::new(Partition::by_hash(n, k, k as u64 + 1));
            let (out, _) = run_sketch_connectivity(&g, &part, net(k, n, 11)).unwrap();
            assert_matches_oracle(&g, &out);
        }
    }

    #[test]
    fn edgeless_graph_closes_immediately() {
        let g = CsrGraph::from_edges(12, &[]);
        let part = Arc::new(Partition::by_hash(12, 4, 2));
        let (out, metrics) = run_sketch_connectivity(&g, &part, net(4, 12, 3)).unwrap();
        assert!(out.forest.is_empty());
        assert_eq!(out.components, 12);
        // One Partials stage of pure flushes suffices.
        assert!(metrics.rounds <= 4, "rounds {}", metrics.rounds);
    }

    #[test]
    fn degenerate_machine_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = gnp(30, 0.1, &mut rng);
        for k in [1usize, 2] {
            let part = Arc::new(Partition::by_hash(30, k, 5));
            let (out, _) = run_sketch_connectivity(&g, &part, net(k, 30, 9)).unwrap();
            assert_matches_oracle(&g, &out);
        }
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let n = 128;
        let g = gnp(n, 0.1, &mut rng);
        let part = Arc::new(Partition::by_hash(n, 4, 3));
        let (out, _) = run_sketch_connectivity(&g, &part, net(4, n, 13)).unwrap();
        // Components at least halve per productive phase; decode failures
        // may add a few retries, and the final all-closed check adds one.
        assert!(out.phases <= 18, "phases {}", out.phases);
    }

    #[test]
    fn no_broadcast_recv_bits_shrink_with_k() {
        // The headline property: unlike BoruvkaMst's choice broadcast,
        // per-machine received bits *decrease* as k grows at fixed n.
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let n = 400;
        let g = gnp(n, 0.03, &mut rng);
        let recv = |k: usize| {
            let part = Arc::new(Partition::by_hash(n, k, 5));
            let (out, m) = run_sketch_connectivity(&g, &part, net(k, n, 7)).unwrap();
            assert_matches_oracle(&g, &out);
            m.max_recv_bits()
        };
        let (r4, r16) = (recv(4), recv(16));
        assert!(
            (r16 as f64) < 0.6 * r4 as f64,
            "recv bits should shrink with k: k=4 → {r4}, k=16 → {r16}"
        );
    }

    proptest::proptest! {
        /// Every ConnPayload variant survives the distributed engine's
        /// wire format, including the Partial variant whose sketch and
        /// component id are both variable-width.
        #[test]
        fn conn_msgs_roundtrip_the_wire(
            n in 2usize..1_000_000,
            a in 0u32..1_000_000,
            b in 0u32..1_000_000,
            edges in proptest::collection::vec((0u32..16, 0u32..16), 0..40),
            counter in 0u64..1_000_000,
            seed in 0u64..500,
            parity in 0u8..2,
        ) {
            let parity = parity != 0;
            let n32 = n as u32;
            let (a, b) = (a % n32, b % n32);
            let e = if a == b {
                km_graph::Edge::new(a, (a + 1) % n32.max(2))
            } else {
                km_graph::Edge::new(a, b)
            };
            let g = CsrGraph::from_edges(16, &edges);
            let p = SketchParams::for_graph(g.n(), g.m());
            let sketch = L0Sketch::for_vertex_with(p, &g, a % 16, seed);
            let counter = counter % (n as u64 + 1); // flush counters are ≤ n
            for payload in [
                ConnPayload::Partial { comp: a, sketch },
                ConnPayload::Closed { comp: a },
                ConnPayload::LabelQ { v: a },
                ConnPayload::LabelA { v: a, label: b },
                ConnPayload::Merge { a, b, e },
                ConnPayload::MinX { c: a, min: b },
                ConnPayload::JumpQ { c: a, d: b },
                ConnPayload::JumpA { c: a, p: b, root: parity },
                ConnPayload::Push { old: a, new: b },
                ConnPayload::Flush { c0: counter, c1: n as u64 - (counter % (n as u64)) },
            ] {
                km_core::assert_roundtrip(&ConnMsg::new(n, parity, payload));
            }
        }
    }
}
