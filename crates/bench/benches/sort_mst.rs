//! Criterion benches for the sorting, MST, and sketch-connectivity
//! applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use km_core::NetConfig;
use km_graph::generators::classic::complete_weighted_random;
use km_graph::generators::gnp;
use km_graph::Partition;
use km_mst::{kruskal, run_boruvka, run_sketch_connectivity, sketch::sketch_spanning_forest};
use km_sort::{run_sample_sort, SampleSort};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    let n = 10_000;
    for k in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("sample_sort_n10k", k), &k, |b, &k| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let inputs = SampleSort::random_input(n, k, &mut rng);
            let net = NetConfig::polylog(k, n, 5).max_rounds(50_000_000);
            b.iter(|| run_sample_sort(inputs.clone(), net).unwrap())
        });
    }
    group.finish();
}

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let g = complete_weighted_random(150, &mut rng).unwrap();

    group.bench_function("kruskal/K150", |b| b.iter(|| kruskal(&g)));
    for k in [4usize, 8] {
        let part = Arc::new(Partition::by_hash(g.n(), k, 2));
        let net = NetConfig::polylog(k, g.n(), 3).max_rounds(50_000_000);
        group.bench_with_input(BenchmarkId::new("boruvka/K150", k), &k, |b, _| {
            b.iter(|| run_boruvka(&g, &part, net).unwrap())
        });
    }
    group.finish();
}

fn bench_sketch_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_cc");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let n = 600;
    let g = gnp(n, 0.01, &mut rng);

    group.bench_function("sequential_driver/G600", |b| {
        b.iter(|| sketch_spanning_forest(&g, 13))
    });
    for k in [4usize, 16] {
        let part = Arc::new(Partition::by_hash(n, k, 2));
        let net = NetConfig::polylog(k, n, 3).max_rounds(50_000_000);
        group.bench_with_input(BenchmarkId::new("distributed/G600", k), &k, |b, _| {
            b.iter(|| run_sketch_connectivity(&g, &part, net).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort, bench_mst, bench_sketch_cc);
criterion_main!(benches);
