//! Criterion benches for the engines and the Lemma 13 scatter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use km_core::router::UniformScatter;
use km_core::{EngineKind, NetConfig, Runner};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    let k = 16;
    let x = 2048;
    let cfg = NetConfig::with_bandwidth(k, 64, 9).max_rounds(50_000_000);

    group.bench_function("sequential/scatter_k16_x2048", |b| {
        b.iter(|| {
            let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(x)).collect();
            Runner::new(cfg)
                .engine(EngineKind::Sequential)
                .run(machines)
                .unwrap()
        })
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel/scatter_k16_x2048", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let machines: Vec<UniformScatter> =
                        (0..k).map(|_| UniformScatter::new(x)).collect();
                    Runner::new(cfg)
                        .engine(EngineKind::Parallel { threads })
                        .run(machines)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
