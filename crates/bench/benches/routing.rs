//! Criterion benches for the engines and the Lemma 13 scatter, plus the
//! sparse long-tail family the active-link index exists for: few
//! messages per round, many rounds, where the pre-index delivery loop
//! was quadratic in `k` (see `km_bench::workloads`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use km_bench::workloads::{dense_delivery_reference, sparse_ring_machines};
use km_core::router::UniformScatter;
use km_core::{EngineKind, NetConfig, Runner};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    let k = 16;
    let x = 2048;
    let cfg = NetConfig::with_bandwidth(k, 64, 9).max_rounds(50_000_000);

    group.bench_function("sequential/scatter_k16_x2048", |b| {
        b.iter(|| {
            let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(x)).collect();
            Runner::new(cfg)
                .engine(EngineKind::Sequential)
                .run(machines)
                .unwrap()
        })
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel/scatter_k16_x2048", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let machines: Vec<UniformScatter> =
                        (0..k).map(|_| UniformScatter::new(x)).collect();
                    Runner::new(cfg)
                        .engine(EngineKind::Parallel { threads })
                        .run(machines)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Sparse long-tail delivery: 8 tokens circle a ring for 400 rounds, so
/// 8 of the k² ordered links are active per round. `engine/*` is the
/// sparse fast path; `dense_reference/*` replays the same traffic
/// through the pre-index O(k²)-per-round scan for comparison.
fn bench_sparse_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);
    let (tokens, hops) = (8usize, 400u64);

    for k in [64usize, 128, 256] {
        let cfg = NetConfig::with_bandwidth(k, 64, 7).max_rounds(1_000_000);
        group.bench_with_input(BenchmarkId::new("engine", k), &k, |b, &k| {
            b.iter(|| {
                Runner::new(cfg)
                    .engine(EngineKind::Sequential)
                    .run(sparse_ring_machines(k, tokens, hops))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_reference", k), &k, |b, &k| {
            b.iter(|| black_box(dense_delivery_reference(k, tokens, hops, 64)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_sparse_delivery);
criterion_main!(benches);
