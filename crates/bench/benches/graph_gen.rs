//! Criterion benches for graph generation, CSR construction, and the
//! fused per-machine distribution layer (`km_graph::dist`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use km_graph::dist::replicated_scan_reference;
use km_graph::generators::lower_bound_h::LowerBoundGraph;
use km_graph::generators::{chung_lu, gnm, gnp, power_law_weights};
use km_graph::{CsrGraph, DistGraphBuilder, Partition};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("gnp_sparse", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                gnp(n, 10.0 / n as f64, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("gnm", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                gnm(n, 5 * n, &mut rng)
            })
        });
    }
    group.bench_function("chung_lu/n2000", |b| {
        let w = power_law_weights(2000, 2.5, 8.0);
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            chung_lu(&w, &mut rng)
        })
    });
    group.bench_function("lower_bound_h/n40001", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            LowerBoundGraph::random(40_001, &mut rng)
        })
    });
    group.bench_function("csr_from_edges/m100k", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = gnm(20_000, 100_000, &mut rng);
        let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
        b.iter(|| CsrGraph::from_edges(20_000, &edges))
    });
    group.bench_function("rvp_partition/n100k", |b| {
        b.iter(|| Partition::by_hash(100_000, 64, 9))
    });
    group.finish();
}

/// Fused single-pass `DistGraphBuilder` vs the preserved replicated
/// per-machine scan (`HashMap` index + `Vec<Vec<_>>` adjacency) on
/// identical inputs.
fn bench_graph_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_dist");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let n = 10_000;
    let g = gnm(n, 8 * n, &mut rng);
    for k in [16usize, 128] {
        let part = Arc::new(Partition::by_hash(n, k, 5));
        group.bench_with_input(BenchmarkId::new("fused_build", k), &k, |b, _| {
            b.iter(|| DistGraphBuilder::new(&part).undirected(&g))
        });
        group.bench_with_input(BenchmarkId::new("replicated_scan", k), &k, |b, _| {
            b.iter(|| replicated_scan_reference(&g, &part))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators, bench_graph_dist);
criterion_main!(benches);
