//! Criterion benches for triangle enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use km_core::NetConfig;
use km_graph::generators::gnp;
use km_graph::Partition;
use km_triangle::baseline::run_broadcast_triangles;
use km_triangle::clique::run_clique_triangles;
use km_triangle::kmachine::{run_kmachine_triangles, TriConfig};
use km_triangle::seq::{enumerate_triangles, node_iterator_naive};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn bench_triangles(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = gnp(250, 0.5, &mut rng);

    let mut group = c.benchmark_group("triangles");
    group.sample_size(10);

    group.bench_function("sequential_forward/n250", |b| {
        b.iter(|| enumerate_triangles(&g))
    });
    group.bench_function("sequential_naive/n250", |b| {
        b.iter(|| node_iterator_naive(&g))
    });

    for k in [8usize, 27] {
        let part = Arc::new(Partition::by_hash(g.n(), k, 3));
        let net = NetConfig::polylog(k, g.n(), 7).max_rounds(50_000_000);
        group.bench_with_input(BenchmarkId::new("kmachine_color", k), &k, |b, _| {
            b.iter(|| run_kmachine_triangles(&g, &part, TriConfig::default(), net).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("broadcast_baseline", k), &k, |b, _| {
            b.iter(|| run_broadcast_triangles(&g, &part, net).unwrap())
        });
    }

    let small = gnp(64, 0.5, &mut rng);
    group.bench_function("congested_clique/n64", |b| {
        b.iter(|| run_clique_triangles(&small, 5).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_triangles);
criterion_main!(benches);
