//! Criterion wall-clock benches for the PageRank implementations
//! (simulator throughput; the paper-facing round counts live in the
//! `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use km_core::NetConfig;
use km_graph::generators::gnp;
use km_graph::Partition;
use km_pagerank::congest_baseline::run_congest_pagerank;
use km_pagerank::kmachine::{bidirect, run_kmachine_pagerank};
use km_pagerank::power_iteration::power_iteration;
use km_pagerank::PrConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn bench_pagerank(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = bidirect(&gnp(600, 0.02, &mut rng));
    let cfg = PrConfig::paper(g.n(), 0.4, 2.0);

    let mut group = c.benchmark_group("pagerank");
    group.sample_size(10);

    group.bench_function("power_iteration/n600", |b| {
        b.iter(|| power_iteration(&g, 0.4, 1e-10, 10_000))
    });

    for k in [4usize, 8] {
        let part = Arc::new(Partition::by_hash(g.n(), k, 3));
        let net = NetConfig::polylog(k, g.n(), 7).max_rounds(50_000_000);
        group.bench_with_input(BenchmarkId::new("algorithm1", k), &k, |b, _| {
            b.iter(|| run_kmachine_pagerank(&g, &part, cfg, net).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("congest_baseline", k), &k, |b, _| {
            b.iter(|| run_congest_pagerank(&g, &part, cfg, net).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
