//! `perfsnap` — one-command performance snapshot for the perf trajectory.
//!
//! Runs a fixed workload matrix (Lemma-13 scatter, Borůvka MST, triangle
//! enumeration at k ∈ {16, 64, 128}) plus the sparse long-tail delivery
//! comparison at k = 256 and the fused `DistGraphBuilder` build-time
//! matrix at n ∈ {10k, 100k}, k ∈ {16, 128}, and writes wall-time +
//! rounds + bits to `BENCH_<date>.json` (or the path given as the first
//! argument) so each PR can commit a comparable snapshot.
//!
//! It additionally runs the `sketch_cc` matrix — sketch connectivity vs
//! the Borůvka broadcast baseline at n ∈ {10k, 100k} × k ∈ {16, 64, 128}
//! — into a second file `BENCH_<date>_sketch.json` (or `<out>` with
//! `_sketch` inserted before the extension), recording each run's
//! per-machine and per-link received bits next to the `n/k²` prediction.
//!
//! Finally it re-runs scatter, Borůvka MST, and sketch connectivity on
//! the *distributed* engine (real byte channels, one batched frame per
//! (link, round)) and writes `BENCH_<date>_wire.json`, pairing each
//! run's measured frame bits with its logical `WireSize` bits and the
//! pre-batching PR 6/PR 8 per-message baselines.
//!
//! It also measures the streaming-ingestion tier — `km_graph::stream`
//! building the distributed input at n ∈ {10⁶, 10⁷} without ever
//! materializing the global CSR — into `BENCH_<date>_ingest.json`, with
//! peak-RSS (Linux `VmHWM`) and build-throughput columns next to the
//! in-memory `DistGraphBuilder` path at n = 10⁶ for comparison.
//!
//! Usage: `cargo run --release -p km-bench --bin perfsnap [-- out.json]`
//!
//! Pass `--ingest-only` to run (and write) just the ingest tier — the
//! mode CI uses, and the cheapest way to regenerate the ingest snapshot.
//! Pass `--wire-only` to run (and write) just the wire tier — the CI
//! wire smoke, which also asserts `header_bits < logical_bits` on the
//! scatter rows.

use km_bench::workloads::{dense_delivery_reference, sparse_ring_machines};
use km_core::router::UniformScatter;
use km_core::{EngineKind, Metrics, NetConfig, Runner};
use km_graph::dist::replicated_scan_reference;
use km_graph::generators::{gnm, gnp};
use km_graph::{
    DistGraphBuilder, GnpStream, LocalGraph, Partition, StreamingDistBuilder, Vertex, WeightedGraph,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// The `n` tiers shared by the `dist_build` and `sketch_cc` matrices.
const TIERS_BUILD: [usize; 2] = [10_000, 100_000];

/// The streaming-ingestion tiers. The larger one is far above what the
/// one-shot in-memory path can build without a multi-GB global CSR.
const TIERS_INGEST: [usize; 2] = [1_000_000, 10_000_000];

/// Largest tier where the in-memory comparison build still runs.
const INGEST_IN_MEMORY_MAX_N: usize = 1_000_000;

/// Machines for the ingest tier (matches the STREAM experiment).
const INGEST_K: usize = 8;

/// Expected average degree of the ingested `G(n, p)` inputs.
const INGEST_AVG_DEGREE: f64 = 4.0;

/// One measured workload cell.
#[derive(Serialize)]
struct Cell {
    name: String,
    k: usize,
    engine: String,
    /// Best-of-`runs` wall time, milliseconds.
    wall_ms: f64,
    runs: u32,
    rounds: u64,
    total_msgs: u64,
    total_bits: u64,
    /// Links the delivery loop actually visited (active-link index).
    link_visits: u64,
}

/// The sparse fast-path headline: new engine vs the preserved pre-index
/// dense delivery loop on identical traffic.
#[derive(Serialize)]
struct SparseComparison {
    k: usize,
    tokens: usize,
    hops: u64,
    bandwidth_bits: u64,
    engine_wall_ms: f64,
    dense_reference_wall_ms: f64,
    speedup: f64,
    note: String,
}

/// One cell of the `DistGraphBuilder` build-time matrix: the fused
/// single-pass build vs the preserved replicated per-machine scan.
#[derive(Serialize)]
struct DistBuildCell {
    n: usize,
    m: usize,
    k: usize,
    fused_wall_ms: f64,
    replicated_scan_wall_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Snapshot {
    date: String,
    host_threads: usize,
    workloads: Vec<Cell>,
    sparse_fast_path: SparseComparison,
    dist_build: Vec<DistBuildCell>,
}

/// One cell of the `sketch_cc` matrix: one algorithm on one `(n, k)`.
#[derive(Serialize)]
struct SketchCcCell {
    n: usize,
    m: usize,
    k: usize,
    /// `"sketch"` (`SketchConnectivity`) or `"boruvka"` (`BoruvkaMst`).
    algo: String,
    wall_ms: f64,
    rounds: u64,
    /// `max_i recv_bits[i]` — the transcript size Lemma 3 bounds.
    max_recv_bits: u64,
    /// `max_recv_bits / (k − 1)`: the per-link load that divides into
    /// rounds; the sketch protocol's falls like `n/k²·polylog`.
    recv_bits_per_link: u64,
    /// `Metrics::round_floor` — the Lemma 3 round lower bound implied by
    /// the transcript.
    round_floor: u64,
    /// The GLBT shape `n/k²` this cell is compared against.
    nk2_prediction: f64,
}

#[derive(Serialize)]
struct SketchSnapshot {
    date: String,
    host_threads: usize,
    sketch_cc: Vec<SketchCcCell>,
    note: String,
}

/// One cell of the wire matrix: one workload run on the distributed
/// engine, with the measured frame traffic next to the logical
/// [`km_core::WireSize`] accounting the theory charges.
#[derive(Serialize)]
struct WireCell {
    name: String,
    n: usize,
    k: usize,
    engine: String,
    wall_ms: f64,
    rounds: u64,
    /// `Metrics::total_bits()` — the logical transcript the paper counts.
    logical_bits: u64,
    /// Frame bytes × 8 actually shipped over the byte channels.
    measured_bits: u64,
    /// Batch frames shipped (one per (link, round) with traffic).
    frames: u64,
    /// Link messages carried inside those frames.
    messages: u64,
    /// `messages / frames` — how far the header amortizes.
    msgs_per_frame: f64,
    /// Bits spent on frame headers
    /// ([`km_core::codec::FRAME_HEADER_BYTES`] per frame).
    header_bits: u64,
    /// Bits spent on batch bookkeeping (count + per-message length
    /// varints).
    record_bits: u64,
    /// Bits lost to byte-aligning each frame's payload (≤ 7 per frame).
    padding_bits: u64,
    /// `measured_bits / logical_bits` — framing overhead only, since the
    /// codec layer asserts payload bits == logical bits per batch.
    wire_vs_logical: f64,
    /// What PR 8's one-frame-per-message wire (21-byte header each, no
    /// batch records) would have shipped for the same transcript,
    /// divided by `logical_bits`. Comparing against `wire_vs_logical`
    /// isolates what batching bought.
    wire_vs_logical_pr8: f64,
    /// PR 8 solo-framed bits / measured bits — how many × the batched
    /// wire shrinks the same transcript. > 1.0 means batching helped.
    batching_gain_vs_pr8: f64,
    /// Recovery-layer traffic (retransmits + NACKs). perfsnap runs on a
    /// reliable wire, so this is asserted zero — the self-healing
    /// machinery must be pay-for-what-you-use.
    recovery_bytes: u64,
    /// Measured bits vs what PR 6's pre-self-healing wire (12-byte
    /// header, one frame per message) would have shipped:
    /// `measured / pr6_solo − 1`. Negative means batching reclaimed
    /// more than the seq + kind + CRC-32 bytes cost.
    zero_fault_overhead_vs_pr6: f64,
}

/// Frame-header bytes PR 6 shipped per message (payload length +
/// logical bits), before the self-healing wire added seq + kind +
/// CRC-32. The `zero_fault_overhead_vs_pr6` column measures today's
/// batched wire against that per-message baseline.
const PR6_HEADER_BYTES: u64 = 12;

/// Frame-header bytes PR 8 shipped per message (PR 6's 12 plus seq +
/// kind + CRC-32), back when every message got its own frame. The
/// batching columns measure against this baseline.
const PR8_HEADER_BYTES: u64 = km_core::codec::FRAME_HEADER_BYTES as u64;

#[derive(Serialize)]
struct WireSnapshot {
    date: String,
    host_threads: usize,
    wire: Vec<WireCell>,
    note: String,
}

/// One cell of the streaming-ingestion tier: one build mode on one `n`.
#[derive(Serialize)]
struct IngestCell {
    n: usize,
    /// Undirected edges actually stored (`Σ edge_loads / 2`).
    m: usize,
    k: usize,
    /// `"streaming"` (`StreamingDistBuilder`) or `"in_memory"`
    /// (one-shot generator + `DistGraphBuilder`).
    mode: String,
    wall_ms: f64,
    edges_per_sec: f64,
    /// Linux `VmHWM` after the build, reset (`clear_refs`) right before
    /// it; 0 where the kernel interface is unavailable.
    peak_rss_bytes: u64,
}

#[derive(Serialize)]
struct IngestSnapshot {
    date: String,
    host_threads: usize,
    ingest: Vec<IngestCell>,
    note: String,
}

/// Resets the process peak-RSS counter (`VmHWM`) to the current RSS so
/// the next [`peak_rss_bytes`] read isolates one build. No-op where
/// `/proc/self/clear_refs` is unavailable.
fn reset_peak_rss() {
    #[cfg(target_os = "linux")]
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`),
/// or 0 where unavailable.
fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        if let Ok(kb) = kb.parse::<u64>() {
                            return kb * 1024;
                        }
                    }
                }
            }
        }
    }
    0
}

/// The streaming-ingestion tier. Runs first (and alone under
/// `--ingest-only`) so the streaming peak-RSS reading starts from a
/// near-fresh process baseline.
fn run_ingest(date: &str, host_threads: usize, out: &str) {
    let mut ingest = Vec::new();
    for &n in &TIERS_INGEST {
        let p = INGEST_AVG_DEGREE / (n - 1) as f64;
        let part = Arc::new(Partition::by_hash(n, INGEST_K, 5));

        // Streaming first: clean baseline, never the O(m) global CSR.
        reset_peak_rss();
        let t = Instant::now();
        let mut gs = GnpStream::<ChaCha8Rng>::new(n, p, n as u64 + 2, 1 << 16);
        let d = StreamingDistBuilder::new(&part)
            .undirected(&mut gs)
            .expect("generator edges are always in range");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let rss = peak_rss_bytes();
        let m = d.edge_loads().iter().sum::<usize>() / 2;
        drop(d);
        println!(
            "ingest         n={n:<9} streaming {wall_ms:>10.1} ms  \
             ({:.2e} edges/s, peak RSS {:.1} MiB)",
            m as f64 / (wall_ms / 1e3),
            rss as f64 / (1 << 20) as f64
        );
        ingest.push(IngestCell {
            n,
            m,
            k: INGEST_K,
            mode: "streaming".to_string(),
            wall_ms,
            edges_per_sec: m as f64 / (wall_ms / 1e3),
            peak_rss_bytes: rss,
        });

        // In-memory comparison: one-shot generator Vec + global CSR +
        // fused build. Skipped above the tier where that is the point.
        if n <= INGEST_IN_MEMORY_MAX_N {
            reset_peak_rss();
            let t = Instant::now();
            let mut rng = ChaCha8Rng::seed_from_u64(n as u64 + 2);
            let g = gnp(n, p, &mut rng);
            let d = DistGraphBuilder::new(&part).undirected(&g);
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            let rss = peak_rss_bytes();
            let m2 = d.edge_loads().iter().sum::<usize>() / 2;
            assert_eq!(m, m2, "streaming and in-memory builds must agree on m");
            drop(d);
            println!(
                "ingest         n={n:<9} in_memory {wall_ms:>10.1} ms  \
                 ({:.2e} edges/s, peak RSS {:.1} MiB)",
                m2 as f64 / (wall_ms / 1e3),
                rss as f64 / (1 << 20) as f64
            );
            ingest.push(IngestCell {
                n,
                m: m2,
                k: INGEST_K,
                mode: "in_memory".to_string(),
                wall_ms,
                edges_per_sec: m2 as f64 / (wall_ms / 1e3),
                peak_rss_bytes: rss,
            });
        }
    }
    let snap = IngestSnapshot {
        date: date.to_string(),
        host_threads,
        ingest,
        note: "G(n, p) at E[deg] = 4, k = 8; same seed per n so both modes build the \
               identical DistGraph. peak_rss_bytes is VmHWM reset (clear_refs) right \
               before each build, so the streaming cell bounds the whole-process peak \
               of the out-of-core path while in_memory additionally materializes the \
               one-shot edge list + global CSR; the top tier is streaming-only because \
               the in-memory path would need the multi-GB global graph"
            .to_string(),
    };
    let ingest_out = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}_ingest.json"),
        None => format!("{out}_ingest.json"),
    };
    let json = serde_json::to_string_pretty(&snap).expect("serialize ingest snapshot");
    std::fs::write(&ingest_out, json + "\n").expect("write ingest snapshot");
    println!("wrote {ingest_out}");
}

/// The G(600, 0.02) weighted MST instance shared by the wall and wire
/// matrices: same seed, same weight stream, so the two tiers run the
/// identical workload.
fn mst_instance() -> (usize, WeightedGraph) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n = 600;
    let g = gnp(n, 0.02, &mut rng);
    let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    (
        n,
        WeightedGraph::from_weighted_edges(n, &edges, &ws).unwrap(),
    )
}

fn wire_cell(
    name: &str,
    n: usize,
    k: usize,
    wall_ms: f64,
    metrics: &Metrics,
    wire: &km_core::WireReport,
) -> WireCell {
    assert_eq!(
        wire.logical_bits,
        metrics.total_bits(),
        "framed logical bits must match the metrics transcript"
    );
    assert_eq!(
        wire.recovery_bytes(),
        0,
        "a fault-free run must trigger zero recovery traffic"
    );
    assert_eq!(
        wire.messages,
        metrics.total_msgs(),
        "every link message must be framed exactly once"
    );
    // What the pre-batching wires would have shipped for the same
    // transcript: one frame per message, 12-byte (PR 6) or 21-byte
    // (PR 8) header each, payloads byte-aligned per message.
    let pr6_solo_bits = wire.solo_framing_bits(PR6_HEADER_BYTES);
    let pr8_solo_bits = wire.solo_framing_bits(PR8_HEADER_BYTES);
    let measured = wire.measured_bits();
    let zero_fault_overhead_vs_pr6 = if pr6_solo_bits == 0 {
        0.0
    } else {
        measured as f64 / pr6_solo_bits as f64 - 1.0
    };
    let batching_gain_vs_pr8 = if measured == 0 {
        1.0
    } else {
        pr8_solo_bits as f64 / measured as f64
    };
    if name.starts_with("sketch_cc") && zero_fault_overhead_vs_pr6 > 0.01 {
        println!(
            "WARN wire {name} k={k}: batched self-healing wire costs {:.2}% over the \
             PR 6 per-message baseline (>1% budget) — header amortization regressed",
            zero_fault_overhead_vs_pr6 * 100.0
        );
    }
    if measured >= pr8_solo_bits {
        println!(
            "WARN wire {name} k={k}: batching does not improve wire_vs_logical \
             ({:.3}x measured vs {:.3}x under PR 8 per-message framing)",
            wire.wire_vs_logical(),
            pr8_solo_bits as f64 / wire.logical_bits as f64
        );
    }
    if name.starts_with("scatter") {
        // CI wire-tier smoke: the batched wire must hold the Lemma-13
        // scatter within the PR 9 budget (one-frame-per-message framing
        // measured 11.5x here).
        assert!(
            wire.wire_vs_logical() <= 3.0,
            "{name} k={k}: wire_vs_logical {:.3} blew the 3.0 budget",
            wire.wire_vs_logical()
        );
        // …and where the workload gives batching room (k=16 puts ~32
        // tokens on each link; k=64 only ~8 × 16-bit tokens, less than
        // one 168-bit header by construction), the header must be
        // amortized strictly below the payload it fronts.
        if k <= 16 {
            assert!(
                wire.header_bits() < wire.logical_bits,
                "{name} k={k}: header bits {} not amortized below logical bits {}",
                wire.header_bits(),
                wire.logical_bits
            );
        }
    }
    WireCell {
        name: name.to_string(),
        n,
        k,
        engine: format!("{:?}", EngineKind::Distributed),
        wall_ms,
        rounds: metrics.rounds,
        logical_bits: wire.logical_bits,
        measured_bits: measured,
        frames: wire.frames,
        messages: wire.messages,
        msgs_per_frame: wire.msgs_per_frame(),
        header_bits: wire.header_bits(),
        record_bits: wire.record_bits(),
        padding_bits: wire.padding_bits(),
        wire_vs_logical: wire.wire_vs_logical(),
        wire_vs_logical_pr8: pr8_solo_bits as f64 / wire.logical_bits as f64,
        batching_gain_vs_pr8,
        recovery_bytes: wire.recovery_bytes(),
        zero_fault_overhead_vs_pr6,
    }
}

/// Best-of-`runs` wall time in milliseconds for `f`.
fn best_ms<T>(runs: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("runs >= 1"))
}

fn cell(name: &str, k: usize, runs: u32, wall_ms: f64, kind: EngineKind, m: &Metrics) -> Cell {
    Cell {
        name: name.to_string(),
        k,
        engine: format!("{kind:?}"),
        wall_ms,
        runs,
        rounds: m.rounds,
        total_msgs: m.total_msgs(),
        total_bits: m.total_bits(),
        link_visits: m.link_visits,
    }
}

/// Civil date (UTC) from the system clock, `YYYY-MM-DD`.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs() as i64;
    // Days-to-civil (Howard Hinnant's algorithm).
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let mut ingest_only = false;
    let mut wire_only = false;
    let mut out_arg: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--ingest-only" => ingest_only = true,
            "--wire-only" => wire_only = true,
            other => out_arg = Some(other.to_string()),
        }
    }
    let date = today_utc();
    let out = out_arg.unwrap_or_else(|| format!("BENCH_{date}.json"));
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    if wire_only {
        run_wire(&date, host_threads, &out);
        return;
    }
    run_ingest(&date, host_threads, &out);
    if ingest_only {
        return;
    }

    let ks = [16usize, 64, 128];
    let mut workloads = Vec::new();

    // Lemma-13 uniform scatter: 2048 tokens/machine, 16-bit tokens, B=64.
    for &k in &ks {
        let cfg = NetConfig::with_bandwidth(k, 64, 9).max_rounds(50_000_000);
        let runner = Runner::new(cfg);
        let kind = runner.resolved_engine().expect("engine resolves");
        let (ms, report) = best_ms(5, || {
            let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(2048)).collect();
            runner.run(machines).unwrap()
        });
        workloads.push(cell("scatter_x2048", k, 5, ms, kind, &report.metrics));
        println!("scatter        k={k:<4} {ms:>10.3} ms");
    }

    // Borůvka MST on G(600, 0.02) with random weights.
    let (n, wg) = mst_instance();
    for &k in &ks {
        let part = Arc::new(Partition::by_hash(n, k, 3));
        let cfg = NetConfig::polylog(k, n, 11).max_rounds(50_000_000);
        let runner = Runner::new(cfg);
        let kind = runner.resolved_engine().expect("engine resolves");
        let (ms, metrics) = best_ms(3, || km_mst::run_boruvka(&wg, &part, cfg).unwrap().2);
        workloads.push(cell("mst_n600_p02", k, 3, ms, kind, &metrics));
        println!("mst            k={k:<4} {ms:>10.3} ms");
    }

    // Triangle enumeration on G(120, 0.15).
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let tn = 120;
    let tg = gnp(tn, 0.15, &mut rng);
    for &k in &ks {
        let part = Arc::new(Partition::by_hash(tn, k, 5));
        let cfg = NetConfig::polylog(k, tn, 13).max_rounds(50_000_000);
        let runner = Runner::new(cfg);
        let kind = runner.resolved_engine().expect("engine resolves");
        let (ms, metrics) = best_ms(3, || {
            km_triangle::kmachine::run_kmachine_triangles(
                &tg,
                &part,
                km_triangle::kmachine::TriConfig::default(),
                cfg,
            )
            .unwrap()
            .1
        });
        workloads.push(cell("triangles_n120_p15", k, 3, ms, kind, &metrics));
        println!("triangles      k={k:<4} {ms:>10.3} ms");
    }

    // Sparse long-tail headline: 8 tokens × 400 hops on a k = 256 ring.
    let (k, tokens, hops, budget) = (256usize, 8usize, 400u64, 64u64);
    let cfg = NetConfig::with_bandwidth(k, budget, 7).max_rounds(1_000_000);
    let (engine_ms, _) = best_ms(5, || {
        Runner::new(cfg)
            .engine(EngineKind::Sequential)
            .run(sparse_ring_machines(k, tokens, hops))
            .unwrap()
    });
    let (dense_ms, _) = best_ms(3, || dense_delivery_reference(k, tokens, hops, budget));
    let sparse = SparseComparison {
        k,
        tokens,
        hops,
        bandwidth_bits: budget,
        engine_wall_ms: engine_ms,
        dense_reference_wall_ms: dense_ms,
        speedup: dense_ms / engine_ms,
        note: "dense_reference replays the pre-active-index delivery loop (k^2 link scan \
               per round) on identical traffic; it is delivery-only, so the true \
               engine-vs-engine speedup is at least this ratio"
            .to_string(),
    };
    println!(
        "sparse k=256: engine {engine_ms:.3} ms vs dense reference {dense_ms:.3} ms \
         => {:.1}x",
        sparse.speedup
    );

    // Fused DistGraphBuilder build vs the replicated per-machine scan.
    let mut dist_build = Vec::new();
    for &n in &TIERS_BUILD {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let g = gnm(n, 8 * n, &mut rng);
        for &k in &[16usize, 128] {
            let part = Arc::new(Partition::by_hash(n, k, 5));
            let (fused_ms, d) = best_ms(5, || DistGraphBuilder::new(&part).undirected(&g));
            let (scan_ms, endpoints) = best_ms(5, || replicated_scan_reference(&g, &part));
            assert_eq!(
                d.locals()
                    .iter()
                    .map(LocalGraph::edge_endpoints)
                    .sum::<usize>(),
                endpoints,
                "fused and replicated builds must store identical state"
            );
            println!(
                "dist_build     n={n:<7} k={k:<4} fused {fused_ms:>8.3} ms vs scan \
                 {scan_ms:>8.3} ms => {:.2}x",
                scan_ms / fused_ms
            );
            dist_build.push(DistBuildCell {
                n,
                m: g.m(),
                k,
                fused_wall_ms: fused_ms,
                replicated_scan_wall_ms: scan_ms,
                speedup: scan_ms / fused_ms,
            });
        }
    }

    // sketch_cc matrix: the O~(n/k²) sketch protocol vs the Borůvka
    // broadcast baseline on identical topology.
    let mut sketch_cc = Vec::new();
    for &n in &TIERS_BUILD {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64 + 1);
        let g = gnm(n, 4 * n, &mut rng);
        let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
        let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let wg = WeightedGraph::from_weighted_edges(n, &edges, &ws).unwrap();
        let runs = if n >= 100_000 { 1 } else { 2 };
        for &k in &[16usize, 64, 128] {
            let part = Arc::new(Partition::by_hash(n, k, 5));
            let cfg = NetConfig::polylog(k, n, 17).max_rounds(500_000_000);
            let (sketch_ms, (cc, sm)) = best_ms(runs, || {
                km_mst::run_sketch_connectivity(&g, &part, cfg).unwrap()
            });
            let (boruvka_ms, (forest, _, bm)) =
                best_ms(runs, || km_mst::run_boruvka(&wg, &part, cfg).unwrap());
            assert_eq!(
                cc.forest.len(),
                forest.len(),
                "both spanning forests cover the same components"
            );
            let links = (k - 1) as u64;
            let nk2 = n as f64 / (k * k) as f64;
            for (algo, ms, m) in [("sketch", sketch_ms, &sm), ("boruvka", boruvka_ms, &bm)] {
                sketch_cc.push(SketchCcCell {
                    n,
                    m: g.m(),
                    k,
                    algo: algo.to_string(),
                    wall_ms: ms,
                    rounds: m.rounds,
                    max_recv_bits: m.max_recv_bits(),
                    recv_bits_per_link: m.max_recv_bits() / links,
                    round_floor: m.round_floor(cfg.bandwidth_bits),
                    nk2_prediction: nk2,
                });
            }
            println!(
                "sketch_cc      n={n:<7} k={k:<4} sketch {sketch_ms:>9.1} ms \
                 ({:>12} recv bits, {:>9}/link) vs boruvka {boruvka_ms:>9.1} ms \
                 ({:>12} recv bits, {:>9}/link)",
                sm.max_recv_bits(),
                sm.max_recv_bits() / links,
                bm.max_recv_bits(),
                bm.max_recv_bits() / links,
            );
        }
    }

    let snap = Snapshot {
        date: date.clone(),
        host_threads,
        workloads,
        sparse_fast_path: sparse,
        dist_build,
    };
    let json = serde_json::to_string_pretty(&snap).expect("serialize snapshot");
    std::fs::write(&out, json + "\n").expect("write snapshot");
    println!("wrote {out}");

    let sketch_snap = SketchSnapshot {
        date: snap.date.clone(),
        host_threads: snap.host_threads,
        sketch_cc,
        note: "max per-machine recv_bits: the sketch protocol's fall with k (no broadcast; \
               O~(n/k) total, n/k^2*polylog per link) while boruvka's stay ~flat at Theta~(n); \
               compare recv_bits_per_link against nk2_prediction across k at fixed n"
            .to_string(),
    };
    let sketch_out = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}_sketch.json"),
        None => format!("{out}_sketch.json"),
    };
    let json = serde_json::to_string_pretty(&sketch_snap).expect("serialize sketch snapshot");
    std::fs::write(&sketch_out, json + "\n").expect("write sketch snapshot");
    println!("wrote {sketch_out}");

    run_wire(&date, host_threads, &out);
}

/// The wire matrix: scatter, Borůvka MST, and sketch connectivity on
/// the distributed engine, where each (link, round) ships one batched
/// byte frame, so measured frame bits can be reported next to the
/// logical WireSize accounting. Standalone so `--wire-only` (the CI
/// smoke) can run it without the ingest and wall tiers.
fn run_wire(date: &str, host_threads: usize, out: &str) {
    let (n, wg) = mst_instance();
    let mut wire = Vec::new();
    for &k in &[16usize, 64] {
        // Lemma-13 scatter: 512 tokens/machine, so the workload size is
        // 512·k 16-bit tokens.
        let cfg = NetConfig::with_bandwidth(k, 64, 9).max_rounds(50_000_000);
        let runner = Runner::new(cfg).engine(EngineKind::Distributed);
        let (ms, report) = best_ms(1, || {
            let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(512)).collect();
            runner.run(machines).unwrap()
        });
        let w = report.wire.as_ref().expect("distributed runs report wire");
        wire.push(wire_cell(
            "scatter_x512",
            512 * k,
            k,
            ms,
            &report.metrics,
            w,
        ));
        println!(
            "wire scatter   k={k:<4} {:>12} logical bits vs {:>12} measured ({:.2}x, {:.1} msgs/frame)",
            w.logical_bits,
            w.measured_bits(),
            w.wire_vs_logical(),
            w.msgs_per_frame()
        );

        // Borůvka MST on G(600, 0.02), same instance as the wall matrix.
        let part = Arc::new(Partition::by_hash(n, k, 3));
        let cfg = NetConfig::polylog(k, n, 11).max_rounds(50_000_000);
        let (ms, outcome) = best_ms(1, || {
            km_core::run_algorithm(
                &km_mst::DistributedMst {
                    g: &wg,
                    part: &part,
                },
                Runner::new(cfg).engine(EngineKind::Distributed),
            )
            .unwrap()
        });
        let w = outcome.wire.as_ref().expect("distributed runs report wire");
        wire.push(wire_cell("mst_n600_p02", n, k, ms, &outcome.metrics, w));
        println!(
            "wire mst       k={k:<4} {:>12} logical bits vs {:>12} measured ({:.2}x, {:.1} msgs/frame)",
            w.logical_bits,
            w.measured_bits(),
            w.wire_vs_logical(),
            w.msgs_per_frame()
        );

        // Sketch connectivity on G(n = 10k, m = 4n).
        let cn = 10_000usize;
        let mut rng = ChaCha8Rng::seed_from_u64(cn as u64 + 1);
        let cg = gnm(cn, 4 * cn, &mut rng);
        let part = Arc::new(Partition::by_hash(cn, k, 5));
        let cfg = NetConfig::polylog(k, cn, 17).max_rounds(500_000_000);
        let (ms, outcome) = best_ms(1, || {
            km_core::run_algorithm(
                &km_mst::DistributedSketchConnectivity {
                    g: &cg,
                    part: &part,
                },
                Runner::new(cfg).engine(EngineKind::Distributed),
            )
            .unwrap()
        });
        let w = outcome.wire.as_ref().expect("distributed runs report wire");
        wire.push(wire_cell("sketch_cc_n10k", cn, k, ms, &outcome.metrics, w));
        println!(
            "wire sketch_cc k={k:<4} {:>12} logical bits vs {:>12} measured ({:.2}x, {:.1} msgs/frame)",
            w.logical_bits,
            w.measured_bits(),
            w.wire_vs_logical(),
            w.msgs_per_frame()
        );
    }
    let wire_snap = WireSnapshot {
        date: date.to_string(),
        host_threads,
        wire,
        note: "distributed-engine runs on a reliable wire: each (link, round) ships \
               ONE batched frame — a 21-byte self-healing header (length + batch \
               bits + seq + kind + CRC-32) followed by a message-count varint and \
               per-message (bit-length varint, payload) records bit-packed back to \
               back; n for scatter rows is the total token count (512·k); \
               measured_bits counts frame bytes while logical_bits is the WireSize \
               transcript the theory charges, so wire_vs_logical isolates framing \
               overhead (header + batch records + ≤7 padding bits per frame); \
               wire_vs_logical_pr8 / batching_gain_vs_pr8 compare against PR 8's \
               one-frame-per-message wire and zero_fault_overhead_vs_pr6 against \
               PR 6's pre-self-healing 12-byte per-message wire (negative = \
               batching reclaimed more than seq+kind+CRC cost); recovery_bytes is \
               asserted zero (no faults injected); known gap: sketch_cc at k=64 \
               averages only ~1.5 msgs/frame (sparse links), which leaves the \
               21-byte header under-amortized and that row above the 1% pr6 \
               budget — flagged by the WARN, tracked in ROADMAP"
            .to_string(),
    };
    let wire_out = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}_wire.json"),
        None => format!("{out}_wire.json"),
    };
    let json = serde_json::to_string_pretty(&wire_snap).expect("serialize wire snapshot");
    std::fs::write(&wire_out, json + "\n").expect("write wire snapshot");
    println!("wrote {wire_out}");
}
