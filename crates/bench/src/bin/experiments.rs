//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p km-bench --bin experiments            # all
//! cargo run --release -p km-bench --bin experiments -- T4-UB   # one id
//! cargo run --release -p km-bench --bin experiments -- --list
//! cargo run --release -p km-bench --bin experiments -- --seed 7 F1 T5-UB
//! cargo run --release -p km-bench --bin experiments -- --engine par S1
//! cargo run --release -p km-bench --bin experiments -- --stream
//! ```
//!
//! `--stream` runs the STREAM experiment (streaming ingestion + the
//! paper's algorithms at n = 10⁶; scale with `KM_STREAM_N`). It is
//! excluded from the no-argument sweep because of its size.
//!
//! `--engine {seq,par,dist,auto}` selects the execution engine for every run
//! (transcript-identical engines, so tables are engine-independent); it
//! is wired through `km_core::EngineKind` via the `KM_ENGINE` variable
//! that `EngineKind::Auto` resolution honors.
//!
//! Tables are printed to stdout and archived as JSON under `results/`.

use km_bench::exp;
use km_core::{runner::ENGINE_ENV, EngineKind};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut wanted: Vec<String> = Vec::new();
    let mut list_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list_only = true,
            "--stream" => wanted.push("STREAM".to_string()),
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--engine" => {
                i += 1;
                let name = args.get(i).expect("--engine needs {seq,par,dist,auto}");
                let kind = EngineKind::parse(name).unwrap_or_else(|| {
                    panic!("unknown engine `{name}`; try seq, par, dist, or auto")
                });
                // Every experiment runs through Runner's Auto resolution,
                // which reads this variable — one switch flips them all.
                std::env::set_var(ENGINE_ENV, name);
                eprintln!("engine: {kind:?}");
            }
            id => wanted.push(id.to_string()),
        }
        i += 1;
    }

    let all = exp::all();
    if list_only {
        for (id, _) in &all {
            println!("{id}");
        }
        return;
    }

    let selected: Vec<_> = if wanted.is_empty() {
        all.into_iter()
            .filter(|(id, _)| !exp::ON_DEMAND.contains(id))
            .collect()
    } else {
        all.into_iter()
            .filter(|(id, _)| wanted.iter().any(|w| w.eq_ignore_ascii_case(id)))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches {wanted:?}; try --list");
        std::process::exit(1);
    }

    std::fs::create_dir_all("results").ok();
    for (id, runner) in selected {
        let start = Instant::now();
        let table = runner(seed);
        let elapsed = start.elapsed();
        println!("{}", table.render());
        println!("  ({id} took {elapsed:.2?})\n");
        let json = serde_json::to_string_pretty(&table).expect("serialize");
        let path = format!("results/{}.json", id.to_lowercase().replace('/', "_"));
        std::fs::write(&path, json).expect("write results file");
    }
}
