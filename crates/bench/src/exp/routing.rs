//! Lemma 13 — randomized routing.

use crate::table::{f, Table};
use km_core::router::{lemma13_bound, UniformScatter};
use km_core::{NetConfig, Runner};
use km_pagerank::analysis::log_log_slope;

/// L13 — each machine scatters `x` tokens to uniform destinations; the
/// measured round count should track `(x log x)/k` (scaled by the
/// tokens-per-round capacity of a link).
pub fn l13_random_routing(seed: u64) -> Table {
    let mut t = Table::new(
        "L13",
        "Lemma 13: uniform scatter of x messages/machine (16-bit tokens, B = 64)",
        &["k", "x", "rounds", "(x log x)/k", "rounds*k/x"],
    );
    let mut per_k_rounds: Vec<(usize, Vec<f64>, Vec<f64>)> = Vec::new();
    for &k in &[8usize, 16, 32] {
        let mut xs = Vec::new();
        let mut rs = Vec::new();
        for &x in &[256usize, 1024, 4096] {
            let cfg =
                NetConfig::with_bandwidth(k, 64, seed + (k * x) as u64).max_rounds(50_000_000);
            let machines: Vec<UniformScatter> = (0..k).map(|_| UniformScatter::new(x)).collect();
            let report = Runner::new(cfg).run(machines).expect("run");
            let rounds = report.metrics.rounds;
            xs.push(x as f64);
            rs.push(rounds as f64);
            t.row(vec![
                k.to_string(),
                x.to_string(),
                rounds.to_string(),
                f(lemma13_bound(x as f64, k)),
                f(rounds as f64 * k as f64 / x as f64),
            ]);
        }
        per_k_rounds.push((k, xs, rs));
    }
    for (k, xs, rs) in per_k_rounds {
        let slope = log_log_slope(&xs, &rs).unwrap_or(f64::NAN);
        t.note(format!(
            "k={k}: rounds vs x slope {slope:.2} (paper: ~1, x log x/k)"
        ));
    }
    t
}
