//! The Section 1.3 GLBT applications: sorting and MST.

use crate::table::{f, Table};
use km_core::NetConfig;
use km_graph::generators::classic::complete_weighted_random;
use km_graph::generators::gnp;
use km_graph::{Partition, Vertex, WeightedGraph};
use km_mst::{kruskal, run_boruvka};
use km_pagerank::analysis::log_log_slope;
use km_sort::{run_sample_sort, SampleSort};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(50_000_000)
}

/// S1 — distributed sorting: rounds vs k at fixed n (`Θ~(n/k²)`, tight
/// by the GLBT).
pub fn s1_sorting(seed: u64) -> Table {
    let mut t = Table::new(
        "S1",
        "Sorting (sample sort) on n = 60000 random keys: rounds vs k",
        &["k", "rounds", "n/k^2 shape", "total msgs"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 60_000;
    let ks = [4usize, 8, 16, 32];
    let mut rounds = Vec::new();
    for &k in &ks {
        let inputs = SampleSort::random_input(n, k, &mut rng);
        let (outputs, m) = run_sample_sort(inputs, net(k, n, seed + k as u64)).expect("run");
        let total: usize = outputs.iter().map(Vec::len).sum();
        assert_eq!(total, n, "all keys accounted for");
        rounds.push(m.rounds as f64);
        t.row(vec![
            k.to_string(),
            m.rounds.to_string(),
            f(km_lower::bounds::sorting_rounds(n, k)),
            m.total_msgs().to_string(),
        ]);
    }
    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let slope = log_log_slope(&xs, &rounds).unwrap_or(f64::NAN);
    t.note(format!(
        "fitted slope {slope:.2} (paper: Theta~(n/k^2) => ~ -2 until the O~(1) barrier floor)"
    ));
    t
}

/// M1 — MST via distributed Borůvka: correctness vs Kruskal and scaling.
pub fn m1_mst(seed: u64) -> Table {
    let mut t = Table::new(
        "M1",
        "MST (Boruvka + proxies): correctness vs Kruskal, rounds vs k",
        &["graph", "k", "rounds", "forest edges", "weight == Kruskal"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sparse: WeightedGraph = {
        let g = gnp(1000, 0.01, &mut rng);
        let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
        let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
        WeightedGraph::from_weighted_edges(1000, &edges, &ws).unwrap()
    };
    let dense = complete_weighted_random(200, &mut rng).unwrap();
    let mut rounds_by_k = Vec::new();
    let ks = [4usize, 8, 16];
    for (name, g) in [("gnp(1000,0.01)+U(0,1)", &sparse), ("K200+U(0,1)", &dense)] {
        let (_, want_w) = kruskal(g);
        for &k in &ks {
            let part = Arc::new(Partition::by_hash(g.n(), k, seed + 7));
            let (edges, w, m) = run_boruvka(g, &part, net(k, g.n(), seed + k as u64)).expect("run");
            if name.starts_with("gnp") {
                rounds_by_k.push(m.rounds as f64);
            }
            t.row(vec![
                name.to_string(),
                k.to_string(),
                m.rounds.to_string(),
                edges.len().to_string(),
                ((w - want_w).abs() < 1e-9).to_string(),
            ]);
        }
    }
    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let slope = log_log_slope(&xs, &rounds_by_k).unwrap_or(f64::NAN);
    t.note(format!(
        "fitted slope (sparse) {slope:.2}; this Boruvka is O~(n/k) — the optimal O~(n/k^2) of [51] \
         is the sketch-based km_mst::SketchConnectivity, measured against it in CC-UB \
         (see DESIGN.md, \"MST and connectivity\")"
    ));
    t
}
