//! GLBT — the Theorem 1 information chain on instrumented runs.

use crate::table::{f, Table};
use km_core::NetConfig;
use km_graph::generators::gnp;
use km_graph::generators::lower_bound_h::LowerBoundGraph;
use km_graph::Partition;
use km_lower::infocost::InfoCostReport;
use km_lower::pagerank_lb::PagerankLb;
use km_lower::triangle_lb::TriangleLb;
use km_pagerank::kmachine::run_kmachine_pagerank;
use km_pagerank::PrConfig;
use km_triangle::kmachine::{run_kmachine_triangles, TriConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// GLBT — verify the chain `IC ≤ max|Π_i| ≤ (B+1)(k−1)T` on real runs of
/// both headline algorithms on their hard instances.
pub fn glbt_chain(seed: u64) -> Table {
    let mut t = Table::new(
        "GLBT",
        "Theorem 1 chain on instrumented runs: IC <= max|Pi| <= (B+1)(k-1)T",
        &[
            "problem",
            "k",
            "IC",
            "max |Pi|",
            "(B+1)(k-1)T",
            "T",
            "T >= LB",
            "chain",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // PageRank on the Figure-1 graph.
    let h = LowerBoundGraph::random(2001, &mut rng);
    for &k in &[4usize, 8] {
        let netc = NetConfig::polylog(k, h.n(), seed + k as u64).max_rounds(50_000_000);
        let part = Arc::new(Partition::by_hash(h.n(), k, seed));
        let cfg = PrConfig::paper(h.n(), 0.3, 4.0);
        let (_, m) = run_kmachine_pagerank(&h.graph, &part, cfg, netc).expect("run");
        let bound = PagerankLb::new(h.n(), k).glbt(netc.bandwidth_bits);
        let r = InfoCostReport::from_run(&m, &bound);
        t.row(vec![
            "pagerank/H".into(),
            k.to_string(),
            f(r.ic_predicted),
            r.max_transcript_bits.to_string(),
            f(r.lemma3_capacity),
            r.rounds.to_string(),
            (r.rounds as f64 >= r.round_lower_bound.floor()).to_string(),
            r.chain_holds().to_string(),
        ]);
    }

    // Triangles on G(n, 1/2).
    let n = 250;
    let g = gnp(n, 0.5, &mut rng);
    for &k in &[8usize, 27] {
        let netc = NetConfig::polylog(k, n, seed + k as u64).max_rounds(50_000_000);
        let part = Arc::new(Partition::by_hash(n, k, seed));
        let (_, m) = run_kmachine_triangles(&g, &part, TriConfig::default(), netc).expect("run");
        let bound = TriangleLb::new(n, k).glbt(netc.bandwidth_bits);
        let r = InfoCostReport::from_run(&m, &bound);
        t.row(vec![
            "triangles/Gnp".into(),
            k.to_string(),
            f(r.ic_predicted),
            r.max_transcript_bits.to_string(),
            f(r.lemma3_capacity),
            r.rounds.to_string(),
            (r.rounds as f64 >= r.round_lower_bound.floor()).to_string(),
            r.chain_holds().to_string(),
        ]);
    }
    t.note("chain = true on every row: the busiest transcript carries >= IC bits and fits Lemma 3");
    t
}
