//! Triangle experiments (Theorems 3 and 5, Corollaries 1 and 2).

use crate::table::{f, Table};
use km_core::NetConfig;
use km_graph::generators::gnp;
use km_graph::Partition;
use km_lower::triangle_lb::TriangleLb;
use km_pagerank::analysis::log_log_slope;
use km_triangle::baseline::run_broadcast_triangles;
use km_triangle::clique::run_clique_triangles;
use km_triangle::kmachine::{run_kmachine_triangles, TriConfig};
use km_triangle::seq::enumerate_triangles;
use km_triangle::verify::diff_enumeration;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(50_000_000)
}

/// T3-LB — Theorem 3: the predicted `Ω~(m/Bk^{5/3})` bound vs measured
/// runs of the Theorem 5 algorithm on `G(n, 1/2)`.
pub fn t3_lower_bound(seed: u64) -> Table {
    let mut t = Table::new(
        "T3-LB",
        "Theorem 3 on G(n,1/2): GLBT bound vs the Theorem-5 algorithm",
        &[
            "n",
            "k",
            "IC (bits)",
            "LB rounds",
            "measured rounds",
            "max |Pi| (bits)",
            "LB respected",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &(n, k) in &[(200usize, 8usize), (200, 27), (300, 27), (300, 64)] {
        let g = gnp(n, 0.5, &mut rng);
        let netc = net(k, n, seed + k as u64);
        let lb = TriangleLb::new(n, k);
        let bound = lb.glbt(netc.bandwidth_bits);
        let part = Arc::new(Partition::by_hash(n, k, seed + 1));
        let (_, metrics) =
            run_kmachine_triangles(&g, &part, TriConfig::default(), netc).expect("run");
        t.row(vec![
            n.to_string(),
            k.to_string(),
            f(bound.ic),
            f(bound.round_lower_bound()),
            metrics.rounds.to_string(),
            metrics.max_recv_bits().to_string(),
            bound.is_respected_by(&metrics).to_string(),
        ]);
    }
    t.note("paper: T = Omega~(m/Bk^{5/3}) via IC = Theta((t/k)^{2/3}); runs must sit above");
    t
}

/// T5-UB — Theorem 5: rounds vs `k` for the color-partition algorithm
/// against the broadcast baseline on `G(n, 1/2)`.
pub fn t5_scaling(seed: u64) -> Table {
    let mut t = Table::new(
        "T5-UB",
        "Theorem 5: rounds vs k on G(300, 1/2) (color partition vs broadcast)",
        &[
            "k",
            "colors q",
            "alg rounds",
            "bcast rounds",
            "alg msgs",
            "bcast msgs",
        ],
    );
    let n = 300;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = gnp(n, 0.5, &mut rng);
    let ks = [8usize, 27, 64, 125];
    let mut alg_rounds = Vec::new();
    let mut bc_rounds = Vec::new();
    for &k in &ks {
        let netc = net(k, n, seed + k as u64);
        let part = Arc::new(Partition::by_hash(n, k, seed + 2));
        let scheme = km_triangle::kmachine::ColorScheme::for_machines(k);
        let (ts_a, ma) =
            run_kmachine_triangles(&g, &part, TriConfig::default(), netc).expect("alg");
        let (ts_b, mb) = run_broadcast_triangles(&g, &part, netc).expect("bcast");
        assert_eq!(ts_a, ts_b, "both must enumerate the same set");
        alg_rounds.push(ma.rounds as f64);
        bc_rounds.push(mb.rounds as f64);
        t.row(vec![
            k.to_string(),
            scheme.colors().to_string(),
            ma.rounds.to_string(),
            mb.rounds.to_string(),
            ma.total_msgs().to_string(),
            mb.total_msgs().to_string(),
        ]);
    }
    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let sa = log_log_slope(&xs, &alg_rounds).unwrap_or(f64::NAN);
    let sb = log_log_slope(&xs, &bc_rounds).unwrap_or(f64::NAN);
    t.note(format!(
        "fitted slopes: algorithm {sa:.2} (paper ~ -5/3), broadcast {sb:.2} (paper ~ -1)"
    ));
    t
}

/// T5-COR — exactness of the distributed enumeration across graph
/// families.
pub fn t5_correctness(seed: u64) -> Table {
    let mut t = Table::new(
        "T5-COR",
        "Theorem 5 correctness: distributed enumeration vs sequential oracle",
        &["graph", "k", "triangles", "missing", "spurious", "verdict"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cases: Vec<(String, km_graph::CsrGraph, usize)> = vec![
        ("gnp(150,0.5)".into(), gnp(150, 0.5, &mut rng), 27),
        ("gnp(200,0.2)".into(), gnp(200, 0.2, &mut rng), 16),
        ("complete(40)".into(), km_graph::generators::complete(40), 9),
        (
            "powerlaw(300)".into(),
            km_graph::generators::chung_lu(
                &km_graph::generators::power_law_weights(300, 2.3, 10.0),
                &mut rng,
            ),
            27,
        ),
    ];
    for (name, g, k) in cases {
        let part = Arc::new(Partition::by_hash(g.n(), k, seed + 5));
        let (ts, _) = run_kmachine_triangles(&g, &part, TriConfig::default(), net(k, g.n(), seed))
            .expect("run");
        let diff = diff_enumeration(&g, &ts);
        t.row(vec![
            name,
            k.to_string(),
            enumerate_triangles(&g).len().to_string(),
            diff.missing.len().to_string(),
            diff.spurious.len().to_string(),
            if diff.is_exact() {
                "exact".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    t.note("paper: every triangle output by exactly one machine (Theorem 5 correctness argument)");
    t
}

/// C1 — Corollary 1: congested-clique rounds vs `n^{1/3}`.
pub fn c1_congested_clique(seed: u64) -> Table {
    let mut t = Table::new(
        "C1",
        "Corollary 1: congested clique (k = n) rounds vs n^{1/3} on G(n,1/2)",
        &["n", "rounds", "n^{1/3}", "rounds/n^{1/3}"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ns = [27usize, 64, 125, 216];
    let mut rounds = Vec::new();
    for &n in &ns {
        let g = gnp(n, 0.5, &mut rng);
        let want = enumerate_triangles(&g);
        let (ts, m) = run_clique_triangles(&g, seed + n as u64).expect("run");
        assert_eq!(ts, want);
        rounds.push(m.rounds as f64);
        let cbrt = (n as f64).powf(1.0 / 3.0);
        t.row(vec![
            n.to_string(),
            m.rounds.to_string(),
            f(cbrt),
            f(m.rounds as f64 / cbrt),
        ]);
    }
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let slope = log_log_slope(&xs, &rounds).unwrap_or(f64::NAN);
    t.note(format!(
        "fitted slope of rounds vs n: {slope:.2} (paper: tight Theta~(n^{{1/3}}) => ~0.33, modulo the B=Theta(log n) divisor)"
    ));
    t
}

/// C2 — Corollary 2: total messages of the round-optimal algorithm vs
/// the `Ω~(n²k^{1/3})` tradeoff.
pub fn c2_messages(seed: u64) -> Table {
    let mut t = Table::new(
        "C2",
        "Corollary 2: messages of the round-optimal algorithm vs Omega~(n^2 k^{1/3}) / polylog",
        &["n", "k", "measured msgs", "k * IC / log n (shape)", "ratio"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 250;
    let g = gnp(n, 0.5, &mut rng);
    for &k in &[8usize, 27, 64] {
        let part = Arc::new(Partition::by_hash(n, k, seed + 6));
        let (_, m) =
            run_kmachine_triangles(&g, &part, TriConfig::default(), net(k, n, seed)).expect("run");
        let lb = TriangleLb::new(n, k);
        // Each message carries Theta(log n) bits, so the bit bound k*IC
        // translates to k*IC/log n messages.
        let shape = lb.message_lower_bound() / (n as f64).log2();
        t.row(vec![
            n.to_string(),
            k.to_string(),
            m.total_msgs().to_string(),
            f(shape),
            f(m.total_msgs() as f64 / shape),
        ]);
    }
    t.note("message count grows with k (k^{1/3} shape): aggregation at one machine cannot happen");
    t
}
