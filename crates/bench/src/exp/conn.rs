//! CC-UB — the Section 1.3 connectivity upper bound: sketch-based
//! `O~(n/k²)` (Pandurangan–Robinson–Scquizzato \[51\]) vs the simple
//! Borůvka-with-broadcast `O~(n/k)` baseline on identical topology.
//!
//! The transcript observable (Lemma 3) is the per-machine received-bit
//! count. Borůvka's per-phase choice broadcast pins every machine's
//! total at `Θ~(n)` whatever `k` is; the sketch protocol never
//! broadcasts, so its per-machine total falls like `O~(n/k)` — and per
//! *link* (`recv/(k−1)`, the quantity that divides into rounds) like
//! `n/k²·polylog`, the matching upper bound for the GLBT `Ω~(n/k²)`
//! (`km_lower::bounds::mst_rounds`).

use crate::table::{f, Table};
use km_core::NetConfig;
use km_graph::generators::gnp;
use km_graph::{Partition, Vertex, WeightedGraph};
use km_mst::{run_boruvka, run_sketch_connectivity};
use km_pagerank::analysis::log_log_slope;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// CC-UB — sketch connectivity vs Borůvka: received bits and rounds vs k.
pub fn cc_sketch_scaling(seed: u64) -> Table {
    let mut t = Table::new(
        "CC-UB",
        "Connectivity on G(2000, 0.004): sketch O~(n/k^2) vs Boruvka broadcast, recv bits vs k",
        &[
            "k",
            "sketch recv/machine",
            "sketch recv/link",
            "n/k^2 shape",
            "boruvka recv/machine",
            "sketch rounds",
            "boruvka rounds",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 2_000;
    let g = gnp(n, 0.004, &mut rng);
    let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.u, e.v)).collect();
    let ws: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let wg = WeightedGraph::from_weighted_edges(n, &edges, &ws).expect("finite weights");

    let ks = [4usize, 8, 16, 32];
    let (mut sketch_machine, mut sketch_link, mut boruvka_machine) =
        (Vec::new(), Vec::new(), Vec::new());
    for &k in &ks {
        let part = Arc::new(Partition::by_hash(n, k, seed + 3));
        let net = NetConfig::polylog(k, n, seed + k as u64).max_rounds(50_000_000);
        let (cc, sm) = run_sketch_connectivity(&g, &part, net).expect("sketch run");
        let (forest, _, bm) = run_boruvka(&wg, &part, net).expect("boruvka run");
        assert_eq!(cc.forest.len(), forest.len(), "same spanning forest size");
        let links = (k - 1).max(1) as u64;
        sketch_machine.push(sm.max_recv_bits() as f64);
        sketch_link.push((sm.max_recv_bits() / links) as f64);
        boruvka_machine.push(bm.max_recv_bits() as f64);
        t.row(vec![
            k.to_string(),
            sm.max_recv_bits().to_string(),
            (sm.max_recv_bits() / links).to_string(),
            f(km_lower::bounds::mst_rounds(n, k)),
            bm.max_recv_bits().to_string(),
            sm.rounds.to_string(),
            bm.rounds.to_string(),
        ]);
    }
    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let s_m = log_log_slope(&xs, &sketch_machine).unwrap_or(f64::NAN);
    let s_l = log_log_slope(&xs, &sketch_link).unwrap_or(f64::NAN);
    let b_m = log_log_slope(&xs, &boruvka_machine).unwrap_or(f64::NAN);
    t.note(format!(
        "log-log slopes in k: sketch recv/machine {s_m:.2} (O~(n/k): ~ -1), sketch recv/link \
         {s_l:.2} (n/k^2 polylog: ~ -2), boruvka recv/machine {b_m:.2} (broadcast: ~ 0 => never \
         sublinear in n/k)"
    ));
    t
}
