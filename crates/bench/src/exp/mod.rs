//! Experiment implementations, grouped by subsystem.

pub mod ablation;
pub mod conn;
pub mod glbt;
pub mod pagerank;
pub mod partition;
pub mod routing;
pub mod sortmst;
pub mod stream;
pub mod triangle;

use crate::Table;

/// An experiment entry point: seed in, result table out.
pub type Runner = fn(u64) -> Table;

/// Every experiment, in DESIGN.md order. Each entry is `(id, runner)`.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("F1", pagerank::f1_lemma4_separation),
        ("T2-LB", pagerank::t2_lower_bound),
        ("T4-UB", pagerank::t4_scaling),
        ("T4-ACC", pagerank::t4_accuracy),
        ("T3-LB", triangle::t3_lower_bound),
        ("T5-UB", triangle::t5_scaling),
        ("T5-COR", triangle::t5_correctness),
        ("C1", triangle::c1_congested_clique),
        ("C2", triangle::c2_messages),
        ("L13", routing::l13_random_routing),
        ("P2", partition::p2_rodl_rucinski),
        ("RVP", partition::rvp_balance),
        ("REP", partition::rep_conversion),
        ("S1", sortmst::s1_sorting),
        ("M1", sortmst::m1_mst),
        ("CC-UB", conn::cc_sketch_scaling),
        ("GLBT", glbt::glbt_chain),
        ("ABL", ablation::ablations),
        ("STREAM", stream::stream_scale),
    ]
}

/// Experiments excluded from the no-argument "run everything" sweep —
/// they run at scales (n = 10⁶) that dwarf the rest of the suite.
/// Request them explicitly by id or via their dedicated flag.
pub const ON_DEMAND: &[&str] = &["STREAM"];
