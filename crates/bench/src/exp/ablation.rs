//! Ablations of the paper's two key algorithmic devices.
//!
//! DESIGN.md calls out two design choices the proofs lean on:
//!
//! * the **heavy-vertex β path** of Algorithm 1 (without it, a machine
//!   hosting a token-heavy hub emits one α message per distinct
//!   destination vertex, recreating the congestion the paper's Section
//!   3.1 discussion warns about);
//! * the **edge-proxy hop** of the Theorem 5 protocol (without it, the
//!   links into the `Θ(k)` triplet machines carry the whole re-routing
//!   volume and the `k^{5/3}` scaling degrades).

use crate::table::Table;
use km_core::{run_algorithm, NetConfig, Runner};
use km_graph::generators::{classic, gnp};
use km_graph::Partition;
use km_pagerank::kmachine::{bidirect, DistributedPageRank};
use km_pagerank::PrConfig;
use km_triangle::clique::identity_partition;
use km_triangle::kmachine::{DistributedTriangles, TriConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// ABL — run each algorithm with its key device disabled.
pub fn ablations(seed: u64) -> Table {
    let mut t = Table::new(
        "ABL",
        "Ablations: the paper's devices switched off",
        &["experiment", "config", "rounds", "max recv bits", "msgs"],
    );

    // 1. PageRank heavy path on a star.
    let n = 4000;
    let k = 8;
    let g = bidirect(&classic::star(n));
    let part = Arc::new(Partition::by_hash(n, k, seed));
    let cfg = PrConfig::paper(n, 0.4, 2.0);
    let netc = NetConfig::polylog(k, n, seed).max_rounds(50_000_000);
    for (label, threshold) in [
        ("heavy path ON (thresh k)", k as u64),
        ("heavy path OFF", u64::MAX),
    ] {
        let alg = DistributedPageRank {
            g: &g,
            part: &part,
            cfg,
            heavy_threshold: Some(threshold),
        };
        let outcome = run_algorithm(&alg, Runner::new(netc)).expect("run");
        t.row(vec![
            format!("pagerank star({n}) k={k}"),
            label.to_string(),
            outcome.metrics.rounds.to_string(),
            outcome.metrics.max_recv_bits().to_string(),
            outcome.metrics.total_msgs().to_string(),
        ]);
    }

    // 2. Triangle edge proxies in the congested clique (k = n).
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 216;
    let g = gnp(n, 0.5, &mut rng);
    let cpart = Arc::new(identity_partition(n));
    let cnet = km_core::clique::clique_config(n, seed);
    for (label, use_proxies) in [("proxies ON", true), ("proxies OFF", false)] {
        let cfg = TriConfig {
            degree_threshold: Some(n),
            enumerate_triads: false,
            use_proxies,
        };
        let alg = DistributedTriangles {
            g: &g,
            part: &cpart,
            cfg,
        };
        let outcome = run_algorithm(&alg, Runner::new(cnet)).expect("run");
        t.row(vec![
            format!("triangles clique n={n}"),
            label.to_string(),
            outcome.metrics.rounds.to_string(),
            outcome.metrics.max_recv_bits().to_string(),
            outcome.metrics.total_msgs().to_string(),
        ]);
    }
    t.note("both devices cut rounds: the β path tames hub congestion; proxies spread re-routing");
    t
}
