//! STREAM — streaming ingestion end to end: build the distributed input
//! at `n = 10⁶` through `km_graph::stream` (the global CSR is never
//! materialized — the k-machine model's own input shape, Section 1.1),
//! then run the paper's algorithms on the prebuilt [`DistGraph`]:
//! sketch connectivity, Borůvka MST, and k-machine PageRank.
//!
//! Scale knob: `KM_STREAM_N` overrides the vertex count (default
//! 1,000,000) — handy for CI smoke runs at toy sizes.

use crate::table::{f, Table};
use km_core::NetConfig;
use km_graph::partition::splitmix64;
use km_graph::stream::{EdgeChunk, EdgeStream, GnpStream, StreamingDistBuilder};
use km_graph::{DistGraph, Partition};
use km_pagerank::PrConfig;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

/// Headline scale: the single-host RAM ceiling the streaming path breaks.
const DEFAULT_N: usize = 1_000_000;

/// Machines — modest so per-machine state stays `O(n/k)`-meaningful
/// while the single-core simulator remains tractable.
const K: usize = 8;

/// Expected average degree of the streamed `G(n, p)` input.
const AVG_DEGREE: f64 = 4.0;

fn stream_n() -> usize {
    std::env::var("KM_STREAM_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N)
}

/// Attaches a deterministic pseudo-`Uniform(0,1)` weight (a splitmix
/// hash of the endpoints) to every edge of an unweighted stream —
/// weighted input at any scale with `O(1)` extra state.
struct HashWeighted<S> {
    inner: S,
    scratch: EdgeChunk,
    seed: u64,
}

impl<S: EdgeStream> HashWeighted<S> {
    fn new(inner: S, seed: u64) -> Self {
        HashWeighted {
            inner,
            scratch: EdgeChunk::default(),
            seed,
        }
    }
}

impl<S: EdgeStream> EdgeStream for HashWeighted<S> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn is_weighted(&self) -> bool {
        true
    }

    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool {
        chunk.clear();
        if !self.inner.next_chunk(&mut self.scratch) {
            return false;
        }
        for &(u, v) in self.scratch.edges() {
            let h = splitmix64(self.seed ^ (((u as u64) << 32) | v as u64));
            // Top 53 bits → [0, 1); never an MST tie on distinct hashes.
            let w = (h >> 11) as f64 / (1u64 << 53) as f64;
            chunk.push_weighted(u, v, w);
        }
        true
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Emits each undirected edge as the two opposite arcs — the streaming
/// counterpart of `km_pagerank::kmachine::bidirect`.
struct Bidirect<S> {
    inner: S,
    scratch: EdgeChunk,
}

impl<S: EdgeStream> Bidirect<S> {
    fn new(inner: S) -> Self {
        Bidirect {
            inner,
            scratch: EdgeChunk::default(),
        }
    }
}

impl<S: EdgeStream> EdgeStream for Bidirect<S> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn next_chunk(&mut self, chunk: &mut EdgeChunk) -> bool {
        chunk.clear();
        if !self.inner.next_chunk(&mut self.scratch) {
            return false;
        }
        for &(u, v) in self.scratch.edges() {
            chunk.push(u, v);
            chunk.push(v, u);
        }
        true
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

fn global_m(d: &DistGraph) -> usize {
    d.edge_loads().iter().sum::<usize>() / 2
}

/// STREAM — streaming ingest at n = 10⁶, then sketch CC / MST / PageRank
/// on the prebuilt distributed input.
pub fn stream_scale(seed: u64) -> Table {
    let n = stream_n();
    let p = (AVG_DEGREE / (n.saturating_sub(1).max(1)) as f64).min(1.0);
    let mut t = Table::new(
        "STREAM",
        &format!(
            "Streaming ingestion at n = {n} (G(n, p), E[deg] = {AVG_DEGREE}, k = {K}): \
             build + algorithms with no global CSR ever materialized"
        ),
        &["stage", "n", "k", "wall ms", "result"],
    );
    let part = Arc::new(Partition::by_hash(n, K, seed + 1));
    let net = NetConfig::polylog(K, n, seed + 2).max_rounds(u64::MAX / 2);

    // Ingest: chunked G(n, p) routed straight into the per-machine locals.
    let start = Instant::now();
    let mut gs = GnpStream::<ChaCha8Rng>::new(n, p, seed, 1 << 16);
    let dist = StreamingDistBuilder::new(&part)
        .undirected(&mut gs)
        .expect("in-RAM streaming build cannot fail on generator input");
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
    let m = global_m(&dist);
    t.row(vec![
        "ingest undirected".into(),
        n.to_string(),
        K.to_string(),
        f(ingest_ms),
        format!(
            "m = {m}, {} edges/s, edge imbalance {:.3}",
            f(m as f64 / (ingest_ms / 1e3)),
            dist.edge_balance().imbalance
        ),
    ]);

    // Sketch connectivity end-to-end on the prebuilt input.
    let start = Instant::now();
    let (cc, ccm) = km_mst::run_sketch_connectivity_dist(&dist, net).expect("sketch run");
    let cc_ms = start.elapsed().as_secs_f64() * 1e3;
    t.row(vec![
        "sketch_cc".into(),
        n.to_string(),
        K.to_string(),
        f(cc_ms),
        format!(
            "{} components, {} phases, {} rounds",
            cc.components, cc.phases, ccm.rounds
        ),
    ]);
    drop(dist);

    // Borůvka MST on a hash-weighted stream of the same topology.
    let start = Instant::now();
    let mut ws = HashWeighted::new(
        GnpStream::<ChaCha8Rng>::new(n, p, seed, 1 << 16),
        seed ^ 0x9e37,
    );
    let wdist = StreamingDistBuilder::new(&part)
        .weighted(&mut ws)
        .expect("finite hash weights");
    let (forest, weight, mm) = km_mst::run_boruvka_dist(&wdist, net).expect("boruvka run");
    let mst_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        forest.len(),
        n - cc.components,
        "MST forest and sketch components must agree on the topology"
    );
    t.row(vec![
        "boruvka_mst".into(),
        n.to_string(),
        K.to_string(),
        f(mst_ms),
        format!(
            "{} forest edges, total weight {:.1}, {} rounds",
            forest.len(),
            weight,
            mm.rounds
        ),
    ]);
    drop(wdist);

    // PageRank on the bidirected arc stream of the same topology.
    let start = Instant::now();
    let mut bs = Bidirect::new(GnpStream::<ChaCha8Rng>::new(n, p, seed, 1 << 15));
    let ddist = StreamingDistBuilder::new(&part)
        .directed(&mut bs)
        .expect("in-RAM streaming build cannot fail on generator input");
    let cfg = PrConfig::paper(n, 0.2, 0.5);
    let (pr, prm) = km_pagerank::run_kmachine_pagerank_dist(&ddist, cfg, net).expect("pr run");
    let pr_ms = start.elapsed().as_secs_f64() * 1e3;
    let mass: f64 = pr.iter().sum();
    t.row(vec![
        "pagerank".into(),
        n.to_string(),
        K.to_string(),
        f(pr_ms),
        format!(
            "estimate mass {:.3} (→ 1 as c grows), {} rounds",
            mass, prm.rounds
        ),
    ]);

    t.note(format!(
        "all inputs streamed in {}-edge chunks through StreamingDistBuilder — peak memory is \
         the distributed state itself (O(m/k + chunk) per machine), never the O(m) global CSR; \
         set KM_STREAM_N to rescale",
        1 << 16
    ));
    t
}
