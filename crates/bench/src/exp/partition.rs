//! Input-partition experiments (RVP balance, REP conversion,
//! Proposition 2).

use crate::table::{f, Table};
use km_graph::generators::gnp;
use km_graph::partition::balance::{edge_balance, is_vertex_balanced, vertex_balance};
use km_graph::partition::rep::{conversion_rounds, EdgePartition};
use km_graph::Partition;
use km_lower::rodl_rucinski::{
    expected_induced_edges, induced_edge_bound, mean_induced_edges, violation_rate,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// P2 — Proposition 2: `e(G[R]) ≤ 3ηt²` w.h.p.
pub fn p2_rodl_rucinski(seed: u64) -> Table {
    let mut t = Table::new(
        "P2",
        "Proposition 2 (Rodl-Rucinski) on gnp(400, p): induced edges of random t-subsets (300 trials)",
        &["p", "t", "mean e(G[R])", "E[e(G[R])]", "bound 3*eta*t^2", "violations"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &p in &[0.2, 0.5] {
        let g = gnp(400, p, &mut rng);
        for &tt in &[25usize, 50, 100] {
            let mean = mean_induced_edges(&g, tt, 300, &mut rng);
            let expect = expected_induced_edges(&g, tt);
            let bound = induced_edge_bound(&g, tt);
            let viol = violation_rate(&g, tt, 300, &mut rng);
            t.row(vec![
                f(p),
                tt.to_string(),
                f(mean),
                f(expect),
                f(bound),
                f(viol),
            ]);
        }
    }
    t.note("paper: Pr[e(G[R]) > 3 eta t^2] < t e^{-ct} — violation rate must be ~0");
    t
}

/// RVP — Section 1.1: every machine hosts `Θ~(n/k)` vertices.
pub fn rvp_balance(seed: u64) -> Table {
    let mut t = Table::new(
        "RVP",
        "Random vertex partition balance (n = 100000)",
        &[
            "k",
            "n/k ideal",
            "max load",
            "min load",
            "imbalance",
            "edge imb (gnp 0.001)",
            "ok",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 100_000;
    let g = gnp(5_000, 0.002, &mut rng); // separate graph for edge balance
    for &k in &[10usize, 50, 100, 500] {
        let part = Partition::random_vertex(n, k, &mut rng);
        let vstats = vertex_balance(&part);
        let gpart = Partition::random_vertex(g.n(), k.min(g.n()), &mut rng);
        let estats = edge_balance(&g, &gpart).expect("matched graph/partition sizes");
        t.row(vec![
            k.to_string(),
            f(n as f64 / k as f64),
            vstats.max.to_string(),
            vstats.min.to_string(),
            f(vstats.imbalance),
            f(estats.imbalance),
            is_vertex_balanced(&part, 2.0).to_string(),
        ]);
    }
    t.note("paper: each machine hosts Theta~(n/k) vertices w.h.p. — imbalance stays O(1)");
    t
}

/// REP — footnote 3: REP→RVP conversion in `O~(m/k² + n/k)` rounds.
pub fn rep_conversion(seed: u64) -> Table {
    let mut t = Table::new(
        "REP",
        "REP->RVP conversion on gnp(2000, 0.01), B = 121 bits",
        &["k", "m", "measured rounds", "m/k^2 + n/k shape", "ratio"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 2000;
    let g = gnp(n, 0.01, &mut rng);
    let b = 121;
    for &k in &[4usize, 8, 16, 32] {
        let rep = EdgePartition::random(&g, k, &mut rng);
        let rvp = Partition::random_vertex(n, k, &mut rng);
        let rounds = conversion_rounds(&rep, &rvp, b);
        let shape = km_lower::bounds::rep_conversion_rounds(n, g.m(), k);
        t.row(vec![
            k.to_string(),
            g.m().to_string(),
            rounds.to_string(),
            f(shape),
            f(rounds as f64 / shape),
        ]);
    }
    t.note("paper (footnote 3): transformable in O~(m/k^2 + n/k) rounds — ratio stays O(1/B..1)");
    t
}
