//! PageRank experiments (Figure 1, Theorems 2 and 4).

use crate::table::{f, Table};
use km_core::NetConfig;
use km_graph::generators::lower_bound_h::LowerBoundGraph;
use km_graph::generators::{chung_lu, classic, power_law_weights};
use km_graph::Partition;
use km_pagerank::analysis::log_log_slope;
use km_pagerank::congest_baseline::run_congest_pagerank;
use km_pagerank::kmachine::{bidirect, run_kmachine_pagerank};
use km_pagerank::lemma4;
use km_pagerank::{max_relative_error, power_iteration, PrConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net(k: usize, n: usize, seed: u64) -> NetConfig {
    NetConfig::polylog(k, n, seed).max_rounds(50_000_000)
}

/// F1 — Figure 1 + Lemma 4: the PageRank separation at `v_i`.
pub fn f1_lemma4_separation(seed: u64) -> Table {
    let n = 4001;
    let mut t = Table::new(
        "F1",
        "Lemma 4 separation on H(n=4001): PageRank(v_i)·n by orientation bit",
        &[
            "eps",
            "PR|b=0 ·n",
            "PR|b=1 ·n",
            "ratio",
            "paper b=0",
            "paper b=1 (LB)",
            "powit dev",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let h = LowerBoundGraph::random(401, &mut rng); // concrete H for power iteration
    for &eps in &[0.1, 0.2, 0.5, 0.85] {
        let rows = lemma4::separation_table(&[eps], n);
        let r = rows[0];
        let dev = lemma4::verify_against_power_iteration(&h, eps);
        t.row(vec![
            f(eps),
            f(r.pr_bit0_times_n),
            f(r.pr_bit1_times_n),
            f(r.ratio),
            f(LowerBoundGraph::lemma4_value_bit0(n, eps) * n as f64),
            f(LowerBoundGraph::lemma4_bound_bit1(n, eps) * n as f64),
            format!("{dev:.1e}"),
        ]);
    }
    t.note("paper: constant-factor separation for every eps < 1 (Lemma 4) — ratio > 1 in all rows");
    t
}

/// T2-LB — Theorem 2: predicted `Ω(n/Bk²)` vs. the measured rounds of
/// Algorithm 1 on the hard instance `H`.
pub fn t2_lower_bound(seed: u64) -> Table {
    let n = 2001;
    let mut t = Table::new(
        "T2-LB",
        "Theorem 2 on H(n=2001): GLBT lower bound vs Algorithm 1 (B = polylog)",
        &[
            "k",
            "IC (bits)",
            "LB rounds",
            "measured rounds",
            "max |Pi| (bits)",
            "LB respected",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let h = LowerBoundGraph::random(n, &mut rng);
    let g = &h.graph;
    for &k in &[4usize, 8, 16] {
        let netc = net(k, g.n(), seed + k as u64);
        let lb = km_lower::pagerank_lb::PagerankLb::new(g.n(), k);
        let bound = lb.glbt(netc.bandwidth_bits);
        let part = Arc::new(Partition::by_hash(g.n(), k, seed + 1));
        let cfg = PrConfig::paper(g.n(), 0.3, 4.0);
        let (_, metrics) = run_kmachine_pagerank(g, &part, cfg, netc).expect("run");
        t.row(vec![
            k.to_string(),
            f(bound.ic),
            f(bound.round_lower_bound()),
            metrics.rounds.to_string(),
            metrics.max_recv_bits().to_string(),
            bound.is_respected_by(&metrics).to_string(),
        ]);
    }
    t.note("paper: T = Omega(n/Bk^2); every measured run must sit above the bound");
    t
}

/// T4-UB — Theorem 4: rounds vs `k` for Algorithm 1 against the
/// `O~(n/k)` conversion-theorem baseline, on the star (the congestion
/// worst case) and a power-law graph.
pub fn t4_scaling(seed: u64) -> Table {
    let mut t = Table::new(
        "T4-UB",
        "Theorem 4: rounds vs k (Algorithm 1 vs conversion baseline)",
        &[
            "graph",
            "k",
            "alg1 rounds",
            "baseline rounds",
            "alg1 msgs",
            "baseline msgs",
        ],
    );
    let ks = [4usize, 8, 16, 32];
    let mut slopes: Vec<(String, f64, f64)> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let star = bidirect(&classic::star(8000));
    let pl = {
        let w = power_law_weights(3000, 2.5, 8.0);
        bidirect(&chung_lu(&w, &mut rng))
    };
    for (name, g) in [("star(8000)", &star), ("powerlaw(3000)", &pl)] {
        let cfg = PrConfig::paper(g.n(), 0.4, 2.0);
        let mut alg_rounds = Vec::new();
        let mut base_rounds = Vec::new();
        for &k in &ks {
            let netc = net(k, g.n(), seed + k as u64);
            let part = Arc::new(Partition::by_hash(g.n(), k, seed + 2));
            let (_, ma) = run_kmachine_pagerank(g, &part, cfg, netc).expect("alg1");
            let (_, mb) = run_congest_pagerank(g, &part, cfg, netc).expect("baseline");
            alg_rounds.push(ma.rounds as f64);
            base_rounds.push(mb.rounds as f64);
            t.row(vec![
                name.to_string(),
                k.to_string(),
                ma.rounds.to_string(),
                mb.rounds.to_string(),
                ma.total_msgs().to_string(),
                mb.total_msgs().to_string(),
            ]);
        }
        let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
        let sa = log_log_slope(&xs, &alg_rounds).unwrap_or(f64::NAN);
        let sb = log_log_slope(&xs, &base_rounds).unwrap_or(f64::NAN);
        slopes.push((name.to_string(), sa, sb));
    }
    for (name, sa, sb) in slopes {
        t.note(format!(
            "{name}: fitted slope alg1 {sa:.2} (paper ~ -2 + additive polylog), baseline {sb:.2} (paper ~ -1)"
        ));
    }
    t
}

/// T4-ACC — Theorem 4's δ-approximation: error vs token budget.
pub fn t4_accuracy(seed: u64) -> Table {
    let mut t = Table::new(
        "T4-ACC",
        "Theorem 4 accuracy: max relative error vs tokens per vertex (gnp(400, 0.05))",
        &["tokens/vertex", "max rel err", "mean PR floor"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = bidirect(&km_graph::generators::gnp(400, 0.05, &mut rng));
    let eps = 0.25;
    let exact = power_iteration(&g, eps, 1e-13, 100_000);
    let floor = eps / g.n() as f64;
    for &tokens in &[64u64, 256, 1024, 4096] {
        let cfg = PrConfig {
            reset_prob: eps,
            tokens_per_vertex: tokens,
        };
        let part = Arc::new(Partition::by_hash(g.n(), 8, seed + 3));
        let (pr, _) = run_kmachine_pagerank(&g, &part, cfg, net(8, g.n(), seed)).expect("run");
        let err = max_relative_error(&pr, &exact, floor);
        t.row(vec![tokens.to_string(), f(err), format!("{floor:.2e}")]);
    }
    t.note("error shrinks ~ 1/sqrt(tokens): any constant delta is reachable (delta-approximation)");
    t
}
