//! Reusable benchmark workloads for the engine hot paths.
//!
//! The headline workload is the **sparse long-tail ring**: a handful of
//! tokens circulating for many rounds, so only `tokens` of the `k²`
//! ordered links carry traffic in any round. Before the active-link
//! index this was the engine's worst case — every round paid a full
//! `k²` link scan to move a few messages — and it is the shape most of
//! the paper's algorithms settle into after their bulk phases
//! (coordinator funnels, convergecast tails, token trickles).
//!
//! [`dense_delivery_reference`] preserves the pre-index delivery loop
//! (scan every ordered pair each round, re-deriving `WireSize::bits` on
//! delivery) as a measurable artifact, so `perfsnap` can keep reporting
//! the sparse-vs-dense ratio on every host long after the old engine
//! code is gone.

use km_core::link::Link;
use km_core::message::WireSize;
use km_core::{Envelope, Outbox, Protocol, RoundCtx, Status};

/// A machine on a directed ring: tokens hop to `(me + 1) % k` each
/// round, decrementing, until they expire. With `t` tokens, exactly `t`
/// links are active per round — sparse traffic with a long round tail.
#[derive(Debug)]
pub struct SparseRing {
    /// Whether this machine injects a token in round 0.
    pub start: bool,
    /// Hops each injected token travels.
    pub hops: u64,
}

impl Protocol for SparseRing {
    type Msg = u64;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<u64>>,
        out: &mut Outbox<u64>,
    ) -> Status {
        if ctx.round == 0 {
            if self.start {
                out.send((ctx.me + 1) % ctx.k, self.hops);
            }
            return Status::Active;
        }
        let mut sent = false;
        for env in inbox.iter() {
            if env.msg > 1 {
                out.send((ctx.me + 1) % ctx.k, env.msg - 1);
                sent = true;
            }
        }
        if sent {
            Status::Active
        } else {
            Status::Done
        }
    }
}

/// `k` ring machines, the first `tokens` of which inject a `hops`-hop
/// token. Total traffic: `tokens · hops` messages over `hops + O(1)`
/// rounds.
pub fn sparse_ring_machines(k: usize, tokens: usize, hops: u64) -> Vec<SparseRing> {
    (0..k)
        .map(|i| SparseRing {
            start: i < tokens,
            hops,
        })
        .collect()
}

/// Replays the sparse ring workload through the **pre-PR dense delivery
/// loop**: every round scans all `k·(k−1)` ordered links (almost all
/// empty) and recomputes message bits on delivery, exactly as
/// `Network::deliver` did before the active-link index. Returns the
/// number of token hops delivered, as an optimization barrier.
///
/// This is a cost model of the old *delivery phase only* — no protocol
/// or RNG overhead — so timing it against a full engine run of the same
/// workload understates, not overstates, the speedup.
pub fn dense_delivery_reference(k: usize, tokens: usize, hops: u64, budget: u64) -> u64 {
    assert!(k >= 2, "a ring needs at least two machines");
    let mut links: Vec<Link<u64>> = Vec::with_capacity(k * k);
    links.resize_with(k * k, Link::default);
    let mut inboxes: Vec<Vec<Envelope<u64>>> = (0..k).map(|_| Vec::new()).collect();
    for src in 0..tokens.min(k) {
        links[src * k + (src + 1) % k].push(Envelope { src, msg: hops });
    }
    let mut delivered = 0u64;
    loop {
        // The dense scan the active-link index eliminated: all k² pairs.
        let mut any = false;
        for dst in 0..k {
            for src in 0..k {
                if src == dst {
                    continue;
                }
                let before = inboxes[dst].len();
                if links[src * k + dst]
                    .deliver(budget, &mut inboxes[dst])
                    .bits_used
                    > 0
                {
                    any = true;
                }
                // Pre-index recv accounting re-called WireSize::bits here.
                let bits: u64 = inboxes[dst][before..]
                    .iter()
                    .map(|e| e.msg.bits().max(1))
                    .sum();
                std::hint::black_box(bits);
            }
        }
        if !any {
            break;
        }
        // Forward surviving tokens one hop (the protocol stand-in).
        for me in 0..k {
            while let Some(env) = inboxes[me].pop() {
                delivered += 1;
                if env.msg > 1 {
                    links[me * k + (me + 1) % k].push(Envelope {
                        src: me,
                        msg: env.msg - 1,
                    });
                }
            }
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_core::{EngineKind, NetConfig, Runner};

    #[test]
    fn ring_and_dense_reference_agree_on_traffic() {
        let (k, tokens, hops) = (12, 3, 20u64);
        let cfg = NetConfig::with_bandwidth(k, 64, 1).max_rounds(10_000);
        let report = Runner::new(cfg)
            .engine(EngineKind::Sequential)
            .run(sparse_ring_machines(k, tokens, hops))
            .unwrap();
        // Every token crosses `hops` links exactly once.
        assert_eq!(report.metrics.total_msgs(), tokens as u64 * hops);
        assert_eq!(report.metrics.rounds, hops);
        // The engine's sparse path visits `tokens` links per round...
        assert_eq!(report.metrics.link_visits, tokens as u64 * hops);
        // ...and the dense reference moves the same messages.
        assert_eq!(
            dense_delivery_reference(k, tokens, hops, 64),
            tokens as u64 * hops
        );
    }
}
