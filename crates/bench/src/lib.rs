//! # km-bench — the experiment harness.
//!
//! One experiment per theorem/figure/claim of the paper, per the index in
//! `DESIGN.md`. Each experiment is a pure function returning a [`Table`];
//! the `experiments` binary prints them and archives JSON next to
//! `EXPERIMENTS.md`. Criterion wall-clock microbenches live in
//! `benches/`.
//!
//! | ID | Claim |
//! |----|-------|
//! | F1 | Figure 1 / Lemma 4 PageRank separation on `H` |
//! | T2-LB | `Ω~(n/Bk²)` PageRank round lower bound |
//! | T4-UB | Algorithm 1 `O~(n/k²)` vs baseline `O~(n/k)` |
//! | T4-ACC | δ-approximation quality |
//! | T3-LB | `Ω~(m/Bk^{5/3})` triangle round lower bound |
//! | T5-UB | triangle algorithm `O~(m/k^{5/3}+n/k^{4/3})` vs broadcast |
//! | T5-COR | exact enumeration |
//! | C1 | congested clique `Θ~(n^{1/3})` |
//! | C2 | message-round tradeoff `Ω~(n²k^{1/3})` |
//! | L13 | random routing `O((x log x)/k)` |
//! | P2 | Rödl–Ruciński induced-edge concentration |
//! | RVP | `Θ~(n/k)` partition balance |
//! | REP | REP→RVP conversion `O~(m/k²+n/k)` |
//! | S1 | sorting `Θ~(n/k²)` |
//! | M1 | MST correctness + scaling |
//! | CC-UB | sketch connectivity `O~(n/k²)` vs Borůvka broadcast |
//! | GLBT | Theorem 1 chain `IC ≤ maxΠ ≤ (B+1)(k−1)T` |

pub mod exp;
pub mod table;
pub mod workloads;

pub use table::Table;
