//! Plain-text result tables (what the paper's evaluation section would
//! have contained).

use serde::Serialize;

/// A printable, serializable experiment result table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (e.g. "T4-UB").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (fit slopes, verdicts).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== [{}] {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// Formats a float compactly.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("X1", "demo", &["k", "rounds"]);
        t.row(vec!["8".into(), "123".into()]);
        t.row(vec!["16".into(), "31".into()]);
        t.note("slope -2.0");
        let s = t.render();
        assert!(s.contains("[X1] demo"));
        assert!(s.contains("rounds"));
        assert!(s.contains("slope -2.0"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_row() {
        let mut t = Table::new("X", "x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(42.25), "42.2");
        assert_eq!(f(1.23456), "1.235");
    }
}
