//! km-check: systematic schedule exploration for the distributed
//! engine.
//!
//! The stress tests and chaos matrix only ever see the handful of
//! thread interleavings the OS happens to pick. This crate runs small
//! engine configurations under *thousands* of schedules through the
//! crossbeam shim's model mode ([`crossbeam::model`]): one runnable
//! task at a time, every channel operation a yield point, schedules
//! chosen by a seeded PRNG with DFS backtracking over the first
//! decision points, and `recv_timeout` firing from virtual schedule
//! time instead of the wall clock.
//!
//! Each schedule asserts the engine's headline guarantees:
//!
//! - **Termination** — no schedule deadlocks (the "backpressure can
//!   never deadlock" claim, checked instead of argued) or livelocks
//!   (step-limit guard).
//! - **Bit-identity** — the distributed transcript (per-machine logs,
//!   digests, and [`km_core::Metrics`]) equals the sequential engine's
//!   on every schedule, including under frame drop/duplicate/corrupt/
//!   delay faults — which also proves lost batches replay exactly once
//!   (a zero- or twice-replayed batch diverges the transcript).
//! - **Typed failures** — crash plans surface exactly
//!   [`EngineError::MachineLost`] for the crashed machine and round, on
//!   every schedule.
//!
//! Any failure carries a replayable handle (`config/seed:index`)
//! accepted by `km-check --replay`.

use crossbeam::model::{self, Failure, ModelConfig, Report};
use km_core::{
    CrashSpec, DistributedEngine, EngineError, Envelope, FaultPlan, NetConfig, Outbox, Protocol,
    Raw, RoundCtx, RunReport, SequentialEngine, Status,
};

/// Environment knob: schedules explored per matrix configuration (the
/// CI smoke uses a bounded value; deeper local runs raise it).
pub const SCHEDULES_ENV: &str = "KM_CHECK_SCHEDULES";

/// Default schedules per configuration when [`SCHEDULES_ENV`] is unset:
/// 24 matrix configs × 96 ≈ 2.3k schedules per full run.
pub const DEFAULT_SCHEDULES: u64 = 96;

/// Message mixes the matrix exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoKind {
    /// Scatter-like fan-out: every machine sends a small token to every
    /// peer (and itself) each round — the router/scatter traffic shape.
    Scatter,
    /// MST-like convergecast: leaves stream state to machine 0, which
    /// broadcasts back — asymmetric links, idle reverse directions.
    Converge,
    /// Sketch-like bulk: few, large messages around a ring — exercises
    /// bandwidth-limited multi-round delivery of single batches.
    Bulk,
}

impl ProtoKind {
    fn rounds(self) -> u64 {
        match self {
            ProtoKind::Scatter => 2,
            ProtoKind::Converge => 4,
            ProtoKind::Bulk => 3,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ProtoKind::Scatter => "scatter",
            ProtoKind::Converge => "converge",
            ProtoKind::Bulk => "bulk",
        }
    }
}

/// Deterministic test protocol: logs a digest of everything received
/// (the transcript) and emits the kind's traffic shape. Pure arithmetic
/// on `(me, round, state)` — no RNG, so the transcript depends only on
/// delivery order, which is exactly what the checker must pin down.
#[derive(Debug)]
pub struct CheckProto {
    kind: ProtoKind,
    rounds: u64,
    state: u64,
    /// `(src, payload digest)` in delivery order — the transcript.
    log: Vec<(usize, u64)>,
}

fn digest(bytes: &[u8]) -> u64 {
    // FNV-1a; any stable digest works, it only has to notice diffs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn payload(words: &[u64], len: usize) -> Raw {
    let mut bytes = Vec::with_capacity(len);
    let mut i = 0;
    while bytes.len() < len {
        let w = digest(&words[i % words.len()].to_le_bytes());
        bytes.extend_from_slice(&w.to_le_bytes());
        i += 1;
    }
    bytes.truncate(len);
    Raw::from_vec(bytes)
}

impl Protocol for CheckProto {
    type Msg = Raw;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<Raw>>,
        out: &mut Outbox<Raw>,
    ) -> Status {
        for env in inbox.iter() {
            let d = digest(&env.msg.0);
            self.state = self.state.rotate_left(7) ^ d ^ env.src as u64;
            self.log.push((env.src, d));
        }
        if ctx.round >= self.rounds {
            return Status::Done;
        }
        let me = ctx.me as u64;
        match self.kind {
            ProtoKind::Scatter => {
                for dst in 0..ctx.k {
                    out.send(dst, payload(&[me, ctx.round, dst as u64, 1], 8));
                }
            }
            ProtoKind::Converge => {
                if ctx.me == 0 {
                    for dst in 1..ctx.k {
                        out.send(dst, payload(&[self.state, ctx.round, 2], 8));
                    }
                } else {
                    out.send(0, payload(&[self.state, me, ctx.round, 3], 8));
                }
            }
            ProtoKind::Bulk => {
                out.send((ctx.me + 1) % ctx.k, payload(&[me, ctx.round, 4], 48));
            }
        }
        Status::Active
    }
}

/// What the checker asserts about a configuration's runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Every schedule succeeds with a transcript bit-identical to the
    /// sequential engine's (which also proves exactly-once replay).
    Transcript,
    /// Every schedule fails with exactly this typed error.
    MachineLost { machine: usize, round: u64 },
}

/// One cell of the k × protocol × fault matrix.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    pub name: String,
    pub net: NetConfig,
    pub kind: ProtoKind,
    pub faults: Option<FaultPlan>,
    pub expect: Expectation,
}

fn fleet(cfg: &CheckConfig) -> Vec<CheckProto> {
    (0..cfg.net.k)
        .map(|_| CheckProto {
            kind: cfg.kind,
            rounds: cfg.kind.rounds(),
            state: 0,
            log: Vec::new(),
        })
        .collect()
}

/// Barrier timeout for crash configs, in virtual-clock ticks. Must
/// comfortably exceed worst-case NACK recovery (a handful of 16-tick
/// pacing cycles) so only a genuinely dead machine can time out, while
/// staying small enough that crash schedules stay cheap to explore.
const CRASH_BARRIER_TICKS: u64 = 400;

/// The full k ∈ {2, 3} × message-mix × fault-plan matrix: 24 configs.
pub fn matrix() -> Vec<CheckConfig> {
    let mut out = Vec::new();
    for k in [2usize, 3] {
        for kind in [ProtoKind::Scatter, ProtoKind::Converge, ProtoKind::Bulk] {
            // Tight bandwidth so bulk batches span delivery rounds.
            let net = NetConfig::with_bandwidth(k, 256, 42).max_rounds(10_000);
            let drop_plan = FaultPlan {
                seed: 11,
                drop: 0.4,
                duplicate: 0.15,
                corrupt: 0.15,
                delay: 0.25,
                crash: None,
                barrier_timeout_ms: 0,
            };
            let crash = CrashSpec {
                machine: k - 1,
                round: 1,
            };
            let crash_plan = FaultPlan {
                seed: 7,
                drop: 0.0,
                duplicate: 0.0,
                corrupt: 0.0,
                delay: 0.0,
                crash: Some(crash),
                barrier_timeout_ms: CRASH_BARRIER_TICKS,
            };
            let chaos_plan = FaultPlan {
                drop: 0.3,
                delay: 0.2,
                ..crash_plan
            };
            let lost = Expectation::MachineLost {
                machine: crash.machine,
                round: crash.round,
            };
            for (fault_name, faults, expect) in [
                ("ok", None, Expectation::Transcript),
                ("drop", Some(drop_plan), Expectation::Transcript),
                ("crash", Some(crash_plan), lost),
                ("drop+crash", Some(chaos_plan), lost),
            ] {
                out.push(CheckConfig {
                    name: format!("k{k}-{}-{fault_name}", kind.name()),
                    net,
                    kind,
                    faults,
                    expect,
                });
            }
        }
    }
    out
}

fn verdict(
    cfg: &CheckConfig,
    baseline: Option<&RunReport<CheckProto>>,
    got: Result<RunReport<CheckProto>, EngineError>,
) -> Result<(), String> {
    match (cfg.expect, got) {
        (Expectation::Transcript, Ok(report)) => {
            // lint: allow(panic) — verdict() gets Some(baseline) for every Transcript config by construction
            let base = baseline.unwrap_or_else(|| unreachable!("Transcript configs precompute"));
            if report.metrics != base.metrics {
                return Err(format!(
                    "metrics diverged from sequential: {:?} vs {:?}",
                    report.metrics, base.metrics
                ));
            }
            for (i, (d, s)) in report.machines.iter().zip(&base.machines).enumerate() {
                if d.log != s.log || d.state != s.state {
                    return Err(format!(
                        "machine {i} transcript diverged from sequential (lost, duplicated, or reordered delivery)"
                    ));
                }
            }
            let wire = report
                .wire
                .as_ref()
                .ok_or("distributed run reported no wire")?;
            if wire.logical_bits != base.metrics.total_bits() {
                return Err(format!(
                    "wire logical bits {} != sequential {}",
                    wire.logical_bits,
                    base.metrics.total_bits()
                ));
            }
            Ok(())
        }
        (Expectation::Transcript, Err(e)) => Err(format!("run failed unexpectedly: {e}")),
        (Expectation::MachineLost { machine, round }, got) => match got {
            Err(EngineError::MachineLost {
                machine: m,
                round: r,
            }) if m == machine && r == round => Ok(()),
            Err(e) => Err(format!(
                "expected MachineLost {{ machine: {machine}, round: {round} }}, got: {e}"
            )),
            Ok(_) => Err(format!(
                "run succeeded but machine {machine} crashes at round {round}"
            )),
        },
    }
}

/// Model parameters used for one matrix cell.
pub fn model_config(seed: u64, schedules: u64) -> ModelConfig {
    ModelConfig {
        seed,
        schedules,
        dfs_depth: 20,
        // Generous livelock guard: healthy schedules run a few thousand
        // steps; crash schedules tick out the barrier in tens of
        // thousands.
        max_steps: 400_000,
    }
}

/// Explores `schedules` schedules of one configuration. The sequential
/// baseline is computed once, outside the model (the sequential engine
/// has no concurrency to explore).
pub fn check_one(cfg: &CheckConfig, model_cfg: &ModelConfig) -> Result<Report, Box<Failure>> {
    let baseline = match cfg.expect {
        Expectation::Transcript => Some(
            SequentialEngine::run(cfg.net, fleet(cfg))
                // lint: allow(panic) — a failing fault-free sequential baseline is a broken matrix, not a schedule bug
                .unwrap_or_else(|e| panic!("sequential baseline for {} failed: {e}", cfg.name)),
        ),
        Expectation::MachineLost { .. } => None,
    };
    model::explore(model_cfg, || {
        let got = DistributedEngine::run_with_faults(cfg.net, fleet(cfg), cfg.faults);
        verdict(cfg, baseline.as_ref(), got)
    })
}

/// Replays exactly one schedule of one configuration (the
/// `--replay config/seed:index` path).
pub fn replay_one(
    cfg: &CheckConfig,
    model_cfg: &ModelConfig,
    id: model::ScheduleId,
) -> Result<Report, Box<Failure>> {
    let baseline = match cfg.expect {
        Expectation::Transcript => Some(
            SequentialEngine::run(cfg.net, fleet(cfg))
                // lint: allow(panic) — a failing fault-free sequential baseline is a broken matrix, not a schedule bug
                .unwrap_or_else(|e| panic!("sequential baseline for {} failed: {e}", cfg.name)),
        ),
        Expectation::MachineLost { .. } => None,
    };
    model::replay(model_cfg, id, || {
        let got = DistributedEngine::run_with_faults(cfg.net, fleet(cfg), cfg.faults);
        verdict(cfg, baseline.as_ref(), got)
    })
}

/// Aggregate of a full matrix run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatrixOutcome {
    pub configs: usize,
    pub total_schedules: u64,
    pub max_decision_points: u64,
}

/// A failing cell: which configuration, plus the replayable failure.
#[derive(Debug)]
pub struct MatrixFailure {
    pub config: String,
    pub failure: Failure,
}

impl std::fmt::Display for MatrixFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "config {} schedule {}: {}\n  replay: km-check --replay {}/{}",
            self.config,
            self.failure.schedule,
            self.failure.violation,
            self.config,
            self.failure.schedule
        )
    }
}

/// Runs every matrix cell under `schedules` schedules each; stops at
/// the first failing schedule.
pub fn run_matrix(seed: u64, schedules: u64) -> Result<MatrixOutcome, Box<MatrixFailure>> {
    let mut outcome = MatrixOutcome::default();
    for cfg in matrix() {
        let report = check_one(&cfg, &model_config(seed, schedules)).map_err(|failure| {
            Box::new(MatrixFailure {
                config: cfg.name.clone(),
                failure: *failure,
            })
        })?;
        outcome.configs += 1;
        outcome.total_schedules += report.schedules;
        outcome.max_decision_points = outcome.max_decision_points.max(report.max_decision_points);
    }
    Ok(outcome)
}

/// Reads [`SCHEDULES_ENV`], parsed hard: a malformed or zero value is
/// an error naming the variable (the `KM_FAULTS` discipline).
pub fn schedules_from_env() -> Result<u64, String> {
    schedules_from_value(std::env::var(SCHEDULES_ENV).ok().as_deref())
}

/// [`schedules_from_env`] with the value passed in, so the parse rules
/// are testable without planting process-global state.
pub fn schedules_from_value(raw: Option<&str>) -> Result<u64, String> {
    match raw {
        None => Ok(DEFAULT_SCHEDULES),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!(
                "{SCHEDULES_ENV}: expected a positive schedule count, got {raw:?}"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_k_mixes_and_fault_plans() {
        let m = matrix();
        assert_eq!(m.len(), 24, "2 k-values × 3 mixes × 4 fault plans");
        assert!(m.iter().any(|c| c.name == "k2-scatter-ok"));
        assert!(m.iter().any(|c| c.name == "k3-bulk-drop+crash"));
        let crashes = m
            .iter()
            .filter(|c| matches!(c.expect, Expectation::MachineLost { .. }))
            .count();
        assert_eq!(crashes, 12);
        // Names are unique — they are replay handles.
        let mut names: Vec<_> = m.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), m.len());
    }

    #[test]
    fn fault_free_configs_pass_under_real_threads_too() {
        // Sanity outside the model: the harness protocols themselves
        // are engine-clean (any failure here is a harness bug, not a
        // schedule bug).
        for cfg in matrix() {
            if cfg.faults.is_none() {
                let base = SequentialEngine::run(cfg.net, fleet(&cfg)).expect("sequential");
                let dist = DistributedEngine::run(cfg.net, fleet(&cfg)).expect("distributed");
                assert_eq!(base.metrics, dist.metrics, "{}", cfg.name);
                for (s, d) in base.machines.iter().zip(&dist.machines) {
                    assert_eq!(s.log, d.log, "{}", cfg.name);
                }
            }
        }
    }

    #[test]
    fn schedules_env_value_is_parsed_hard() {
        // Exercised through `schedules_from_value` so the test never
        // touches the process-global environment.
        assert_eq!(schedules_from_value(None), Ok(DEFAULT_SCHEDULES));
        assert_eq!(schedules_from_value(Some("12")), Ok(12));
        for bad in ["0", "-3", "many", ""] {
            let err = schedules_from_value(Some(bad)).unwrap_err();
            assert!(err.contains(SCHEDULES_ENV), "{err}");
        }
    }
}
