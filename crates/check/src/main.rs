//! `km-check` — schedule-exploring model checker for the distributed
//! engine.
//!
//! ```text
//! km-check [--schedules N] [--seed S]        explore the full matrix
//! km-check --replay <config>/<seed>:<index>  re-run one failing schedule
//! km-check --list                            print the matrix cells
//! ```
//!
//! Schedules per configuration default to `KM_CHECK_SCHEDULES` (96 when
//! unset); any failing schedule prints a replay handle and exits 1.

use crossbeam::model::ScheduleId;
use km_check::{matrix, model_config, replay_one, run_matrix, schedules_from_env};

fn usage() -> ! {
    eprintln!(
        "usage: km-check [--schedules N] [--seed S] [--replay <config>/<seed>:<index>] [--list]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("km-check: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut schedules: Option<u64> = None;
    let mut seed: u64 = 0;
    let mut replay: Option<String> = None;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schedules" => {
                let v = args.next().unwrap_or_else(|| usage());
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => schedules = Some(n),
                    _ => fail(&format!("--schedules expects a positive count, got {v:?}")),
                }
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                match v.parse::<u64>() {
                    Ok(s) => seed = s,
                    Err(_) => fail(&format!("--seed expects an integer, got {v:?}")),
                }
            }
            "--replay" => replay = Some(args.next().unwrap_or_else(|| usage())),
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    if list {
        for cfg in matrix() {
            println!("{}", cfg.name);
        }
        return;
    }

    let schedules = match schedules {
        Some(n) => n,
        None => schedules_from_env().unwrap_or_else(|e| fail(&e)),
    };

    if let Some(handle) = replay {
        // Handle shape: <config>/<seed>:<index>, as printed on failure.
        let Some((name, id)) = handle.split_once('/') else {
            fail(&format!(
                "--replay expects <config>/<seed>:<index>, got {handle:?}"
            ));
        };
        let Some(id) = ScheduleId::parse(id) else {
            fail(&format!("--replay: malformed schedule id in {handle:?}"));
        };
        let Some(cfg) = matrix().into_iter().find(|c| c.name == name) else {
            fail(&format!(
                "--replay: unknown config {name:?} (see km-check --list)"
            ));
        };
        match replay_one(&cfg, &model_config(id.seed, schedules), id) {
            Ok(_) => println!("schedule {id} of {name} passes"),
            Err(failure) => {
                eprintln!(
                    "config {name} schedule {}: {}",
                    failure.schedule, failure.violation
                );
                std::process::exit(1);
            }
        }
        return;
    }

    match run_matrix(seed, schedules) {
        Ok(outcome) => {
            println!(
                "km-check: {} schedules across {} configs passed (max {} decision points; {} schedules/config, seed {seed})",
                outcome.total_schedules, outcome.configs, outcome.max_decision_points, schedules
            );
        }
        Err(failure) => {
            eprintln!("km-check: FAILED\n{failure}");
            std::process::exit(1);
        }
    }
}
