//! The checker must *catch* bugs, not just bless the shipped engine.
//!
//! This test re-introduces the classic barrier ordering bug the
//! engine's design rules out — a worker acknowledging the round
//! barrier *before* draining its owed inbox frames — in a miniature
//! coordinator/worker harness built from the same shim primitives the
//! engine uses, and asserts the explorer finds the losing interleaving
//! within the CI schedule budget. The corrected ordering must pass the
//! same budget, and the failing schedule must replay bit-for-bit.

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use crossbeam::model::{explore, replay, ModelConfig, Violation};
use crossbeam::thread;
use crossbeam::utils::Backoff;

const ROUNDS: u64 = 2;
const K: usize = 2;

struct Worker {
    cmd_rx: Receiver<u64>,
    done_tx: Sender<()>,
    peer_tx: Sender<u64>,
    peer_rx: Receiver<u64>,
}

/// One worker of a 2-machine round barrier. Each round it sends one
/// value to its peer and must end the run having received exactly one
/// value per round, in round order — the engine's owed-frame contract.
///
/// `ack_before_drain` re-introduces the bug: the barrier ack goes out
/// first and the drain becomes a single opportunistic `try_recv`, so
/// any schedule where the peer's send lands after the drain loses the
/// message for good.
fn worker(me: usize, w: Worker, ack_before_drain: bool) -> Result<(), String> {
    let mut got: Vec<u64> = Vec::new();
    for round in 0..ROUNDS {
        let cmd = w.cmd_rx.recv().map_err(|_| "coordinator gone")?;
        if cmd != round {
            return Err(format!("worker {me}: round skew: got {cmd} want {round}"));
        }
        w.peer_tx
            .send(round * 10 + me as u64)
            .map_err(|_| "peer gone")?;
        if ack_before_drain {
            // BUG: barrier ack before the inbox drain.
            w.done_tx.send(()).map_err(|_| "coordinator gone")?;
            if let Ok(v) = w.peer_rx.try_recv() {
                got.push(v);
            }
        } else {
            // Correct ordering: drain everything this round owes us,
            // then ack the barrier.
            let backoff = Backoff::new();
            while got.len() as u64 <= round {
                match w.peer_rx.try_recv() {
                    Ok(v) => got.push(v),
                    Err(TryRecvError::Empty) => backoff.snooze(),
                    Err(TryRecvError::Disconnected) => return Err("peer hung up".into()),
                }
            }
            w.done_tx.send(()).map_err(|_| "coordinator gone")?;
        }
    }
    // The owed-frame contract: one message per round, in round order.
    let want: Vec<u64> = (0..ROUNDS).map(|r| r * 10 + (1 - me) as u64).collect();
    if got != want {
        return Err(format!(
            "worker {me}: delivery broke: got {got:?}, want {want:?}"
        ));
    }
    Ok(())
}

/// Runs the miniature barrier under the model: a coordinator task plus
/// two workers exchanging one message per round over cap-1 channels.
fn barrier_run(ack_before_drain: bool) -> Result<(), String> {
    let (cmd0_tx, cmd0_rx) = bounded::<u64>(1);
    let (cmd1_tx, cmd1_rx) = bounded::<u64>(1);
    let (done_tx, done_rx) = bounded::<()>(K);
    // Peer links hold one frame per round so sends never block: the
    // only way the buggy variant can fail is by *losing* a delivery,
    // which keeps the violation kind deterministic for the assertions.
    let (a_tx, a_rx) = bounded::<u64>(ROUNDS as usize);
    let (b_tx, b_rx) = bounded::<u64>(ROUNDS as usize);
    let workers = vec![
        Worker {
            cmd_rx: cmd0_rx,
            done_tx: done_tx.clone(),
            peer_tx: a_tx,
            peer_rx: b_rx,
        },
        Worker {
            cmd_rx: cmd1_rx,
            done_tx,
            peer_tx: b_tx,
            peer_rx: a_rx,
        },
    ];
    let cmd_txs = [cmd0_tx, cmd1_tx];

    let results = thread::scope(|s| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(me, w)| s.spawn(move |_| worker(me, w, ack_before_drain)))
            .collect();
        // Coordinator: release each round to both workers, then wait
        // for both barrier acks. A worker that already failed drops
        // its channel ends, so ignore per-send errors and keep going —
        // the join below surfaces the real failure.
        for round in 0..ROUNDS {
            for tx in &cmd_txs {
                let _ = tx.send(round);
            }
            for _ in 0..K {
                if done_rx.recv().is_err() {
                    break;
                }
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Err("worker panicked".into())))
            .collect::<Vec<_>>()
    })
    .unwrap_or_else(|_| unreachable!("worker panics are joined above"));
    for r in results {
        r?;
    }
    Ok(())
}

fn budget() -> ModelConfig {
    ModelConfig {
        seed: 3,
        schedules: 512,
        dfs_depth: 18,
        max_steps: 50_000,
    }
}

#[test]
fn correct_barrier_ordering_survives_the_schedule_budget() {
    let report = explore(&budget(), || barrier_run(false)).unwrap_or_else(|failure| {
        panic!("correct ordering must pass every schedule, but: {failure}")
    });
    assert_eq!(report.schedules, 512);
    assert!(report.max_decision_points > 0, "schedules must branch");
}

#[test]
fn ack_before_drain_is_caught_within_budget_and_replays() {
    let failure = explore(&budget(), || barrier_run(true))
        .expect_err("the checker must find the lost delivery");
    match &failure.violation {
        Violation::Check { message } => {
            assert!(message.contains("delivery broke"), "{message}");
        }
        other => panic!("expected a Check violation, got {other}"),
    }
    // The printed handle replays to the identical violation.
    let replayed = replay(&budget(), failure.schedule, || barrier_run(true))
        .expect_err("replay must reproduce the violation");
    assert_eq!(replayed.schedule, failure.schedule);
    assert_eq!(replayed.violation, failure.violation);
}
